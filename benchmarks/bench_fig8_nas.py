"""Fig. 8: NAS kernels across the four stacks (bench-scale: class A)."""

import pytest

from repro import config
from repro.workloads.nas import adjust_procs, run_kernel
from benchmarks.conftest import once

KERNELS = ["bt", "cg", "ep", "ft", "sp", "mg", "lu"]


@pytest.mark.benchmark(group="fig8")
def test_fig8_nas_class_a(benchmark):
    def sweep():
        out = {}
        for kernel in KERNELS:
            for p in (8, 16):
                pk = adjust_procs(kernel, p)
                out[(kernel, p)] = {
                    "mvapich": run_kernel(kernel, "A", pk,
                                          config.mvapich2()).time_seconds,
                    "openmpi": run_kernel(kernel, "A", pk,
                                          config.openmpi_ib()).time_seconds,
                    "nmad": run_kernel(kernel, "A", pk,
                                       config.mpich2_nmad()).time_seconds,
                }
        return out

    res = once(benchmark, sweep)
    for (kernel, p), times in res.items():
        # every stack scales: p=16 beats p=8
        if p == 16:
            assert times["nmad"] < res[(kernel, 8)]["nmad"]
        # Open MPI lags (paper calls out EP and LU; the efficiency factor
        # shows everywhere, most visibly in compute-dominated kernels)
        assert times["openmpi"] > times["nmad"] * 1.02
        # MPICH2-NewMadeleine on par with the network-tailored MVAPICH2
        assert times["nmad"] == pytest.approx(times["mvapich"], rel=0.05)


@pytest.mark.benchmark(group="fig8")
def test_fig8_pioman_overhead_under_3_percent(benchmark):
    def sweep():
        out = {}
        for kernel in ("cg", "ft", "sp"):
            pk = adjust_procs(kernel, 16)
            base = run_kernel(kernel, "A", pk, config.mpich2_nmad())
            piom = run_kernel(kernel, "A", pk, config.mpich2_nmad_pioman())
            out[kernel] = (base.time_seconds, piom.time_seconds)
        return out

    res = once(benchmark, sweep)
    for kernel, (base, piom) in res.items():
        assert abs(piom - base) / base < 0.03
