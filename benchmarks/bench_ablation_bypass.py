"""Ablation 1: CH3-direct bypass vs the plain network-module path.

Quantifies the paper's Section 3.1 design decision: bypassing Nemesis
and CH3's protocols avoids queue-cell copies (small/medium messages)
and the nested rendezvous handshake of Fig. 2 (large messages).
"""

import pytest

from repro import config
from repro.workloads.netpipe import run_netpipe
from benchmarks.conftest import once

SIZES = [4, 4 << 10, 64 << 10, 1 << 20, 16 << 20]


@pytest.mark.benchmark(group="ablation")
def test_bypass_vs_netmod(benchmark):
    cluster = config.xeon_pair()

    def sweep():
        return {
            "direct": run_netpipe(config.mpich2_nmad(), cluster, SIZES, reps=4),
            "netmod": run_netpipe(config.mpich2_nmad_netmod(), cluster, SIZES,
                                  reps=4),
        }

    res = once(benchmark, sweep)
    for i, size in enumerate(SIZES):
        # the direct path wins at every size
        assert res["direct"].latencies[i] < res["netmod"].latencies[i]

    # the nested handshake costs an extra round trip on large messages
    i1m = SIZES.index(1 << 20)
    gap = res["netmod"].latencies[i1m] - res["direct"].latencies[i1m]
    assert gap > 3e-6

    # the cell copies hurt medium eager messages proportionally more
    i4k = SIZES.index(4 << 10)
    ratio_medium = res["netmod"].latencies[i4k] / res["direct"].latencies[i4k]
    assert ratio_medium > 1.3
