"""Benchmark harness conventions.

Every ``bench_fig*`` file regenerates one panel of a paper figure: the
pytest-benchmark timing measures the *simulator's* cost to reproduce
it, and the assertions check the *paper-shape* invariants (who wins, by
roughly what factor, where crossovers fall).  Run with::

    pytest benchmarks/ --benchmark-only
"""


def once(benchmark, fn):
    """Run a heavy experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
