"""Benchmark harness conventions.

Every ``bench_fig*`` file regenerates one panel of a paper figure: the
pytest-benchmark timing measures the *simulator's* cost to reproduce
it, and the assertions check the *paper-shape* invariants (who wins, by
roughly what factor, where crossovers fall).  Run with::

    pytest benchmarks/ --benchmark-only

Under pytest-xdist (``-n auto``) pytest-benchmark force-disables timing
and then rejects ``--benchmark-only`` outright.  The hook below drops
the ``--benchmark-only`` flag in that case so the suite degrades to
running each benchmark body once (timings meaningless, every shape
assertion still enforced) instead of erroring out.  Benchmarks whose
numbers matter (``bench_simulator.py``) must be run without ``-n``.
"""

import os

import pytest


def _xdist_active(config) -> bool:
    if os.environ.get("PYTEST_XDIST_WORKER"):
        return True
    if not config.pluginmanager.hasplugin("xdist"):
        return False
    try:
        return config.getoption("dist", "no") != "no"
    except (ValueError, KeyError):
        return False


def pytest_configure(config):
    # runs before pytest-benchmark's own configure (conftest plugins are
    # called first), i.e. before it can raise "can't have both
    # --benchmark-only and --benchmark-disable"
    if getattr(config.option, "benchmark_only", False) \
            and _xdist_active(config):
        config.option.benchmark_only = False


try:
    import pytest_benchmark  # noqa: F401
except ImportError:  # pragma: no cover - CI always has the plugin
    class _NullBenchmark:
        """Runs the target once; keeps assertions on the result."""

        def __call__(self, fn, *args, **kwargs):
            return fn(*args, **kwargs)

        def pedantic(self, fn, args=(), kwargs=None, rounds=1,
                     iterations=1, warmup_rounds=0):
            return fn(*args, **(kwargs or {}))

    @pytest.fixture
    def benchmark():
        return _NullBenchmark()


def once(benchmark, fn):
    """Run a heavy experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
