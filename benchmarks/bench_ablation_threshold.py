"""Ablation 4: the eager/rendezvous threshold sweep.

NewMadeleine copies eager payloads into packet wrappers (two memcpys
end to end) while the rendezvous path is zero-copy but pays a
handshake plus on-the-fly registration.  The crossover justifies the
default threshold.
"""

import pytest

from repro import config
from repro.nmad.core import NmadCosts
from repro.workloads.netpipe import run_netpipe
from benchmarks.conftest import once

THRESHOLDS = [1 << 10, 16 << 10, 256 << 10]
PROBE_SIZES = [4 << 10, 16 << 10, 64 << 10]


def latency_with_threshold(threshold, size):
    costs = NmadCosts(eager_threshold=threshold,
                      max_pw_size=max(32 << 10, threshold))
    spec = config.mpich2_nmad().with_(nmad_costs=costs)
    res = run_netpipe(spec, config.xeon_pair(), [size], reps=4)
    return res.latencies[0]


@pytest.mark.benchmark(group="ablation")
def test_eager_threshold_sweep(benchmark):
    def sweep():
        return {(t, s): latency_with_threshold(t, s)
                for t in THRESHOLDS for s in PROBE_SIZES}

    res = once(benchmark, sweep)

    # 4 KiB: eager (threshold >= 16K) beats forced rendezvous (1K)
    assert res[(16 << 10, 4 << 10)] < res[(1 << 10, 4 << 10)]
    # 64 KiB: rendezvous (threshold 16K) beats forced eager (256K)
    assert res[(16 << 10, 64 << 10)] < res[(256 << 10, 64 << 10)]
    # the default 16 KiB threshold is optimal-or-tied at every probe size
    for s in PROBE_SIZES:
        best = min(res[(t, s)] for t in THRESHOLDS)
        assert res[(16 << 10, s)] <= best * 1.02
