"""Fig. 5(b): multirail bandwidth approaches the sum of the rails."""

import pytest

from repro import config
from repro.workloads.netpipe import run_netpipe
from benchmarks.conftest import once

SIZES = [64 << 10, 1 << 20, 16 << 20, 64 << 20]


@pytest.mark.benchmark(group="fig5")
def test_fig5b_multirail_bandwidth(benchmark):
    cluster = config.xeon_pair()

    def sweep():
        return {
            rails: run_netpipe(config.mpich2_nmad(rails=rails), cluster,
                               SIZES, reps=3)
            for rails in (("mx",), ("ib",), ("ib", "mx"))
        }

    res = once(benchmark, sweep)
    big = 64 << 20
    bw_mx = res[("mx",)].bandwidth_at(big)
    bw_ib = res[("ib",)].bandwidth_at(big)
    bw_multi = res[("ib", "mx")].bandwidth_at(big)

    # paper: ~2250 MiB/s aggregate, near the sum of the rails
    assert bw_multi == pytest.approx(2250, rel=0.08)
    assert bw_multi > 0.85 * (bw_mx + bw_ib)
    assert bw_multi > bw_ib > bw_mx

    # below the split threshold the multirail curve tracks IB-only
    small = 64 << 10
    assert res[("ib", "mx")].bandwidth_at(small) == pytest.approx(
        res[("ib",)].bandwidth_at(small), rel=0.02)
