"""Fig. 4(b): InfiniBand bandwidth, three configurations."""

import pytest

from repro import config
from repro.workloads.netpipe import run_netpipe
from benchmarks.conftest import once

SIZES = [16 << 10, 64 << 10, 256 << 10, 4 << 20, 64 << 20]


@pytest.mark.benchmark(group="fig4")
def test_fig4b_bandwidth(benchmark):
    cluster = config.xeon_pair()

    def sweep():
        return {
            "MVAPICH2": run_netpipe(config.mvapich2(), cluster, SIZES, reps=4),
            "Open MPI": run_netpipe(config.openmpi_ib(), cluster, SIZES, reps=4),
            "Nmad": run_netpipe(config.mpich2_nmad(), cluster, SIZES, reps=4),
        }

    res = once(benchmark, sweep)
    peak = {k: v.bandwidth_at(64 << 20) for k, v in res.items()}

    # paper: MVAPICH2 ~1400 > Nmad ~1300 > Open MPI ~1150 MiB/s
    assert peak["MVAPICH2"] == pytest.approx(1400, rel=0.08)
    assert peak["Nmad"] == pytest.approx(1300, rel=0.08)
    assert peak["Open MPI"] == pytest.approx(1150, rel=0.08)
    assert peak["MVAPICH2"] > peak["Nmad"] > peak["Open MPI"]

    # paper: Nmad reaches higher bandwidth than Open MPI at medium sizes
    for size in (64 << 10, 256 << 10):
        assert res["Nmad"].bandwidth_at(size) > res["Open MPI"].bandwidth_at(size)
