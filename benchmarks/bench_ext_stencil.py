"""Extension bench: PIOMan's application-level overlap payoff.

Asserts the shape of the paper's anticipated result ("benefits of
PIOMan on real applications, especially in the overlapping
department"): on a halo-exchange stencil, background progress turns the
nonblocking idiom into real overlap.
"""

import pytest

from repro import config
from repro.workloads.stencil import StencilConfig, run_stencil
from benchmarks.conftest import once

CFG = StencilConfig(n=8192, iters=6)
P = 16


@pytest.mark.benchmark(group="extension")
def test_stencil_overlap_payoff(benchmark):
    def sweep():
        out = {}
        for name, factory in [("nmad", config.mpich2_nmad),
                              ("pioman", config.mpich2_nmad_pioman),
                              ("mvapich", config.mvapich2)]:
            out[name] = {
                "plain": run_stencil(factory(), P, CFG, overlap=False),
                "over": run_stencil(factory(), P, CFG, overlap=True),
            }
        return out

    res = once(benchmark, sweep)

    def gain(name):
        plain = res[name]["plain"].per_iter
        return (plain - res[name]["over"].per_iter) / plain

    # every stack gains a little from pre-posting; PIOMan gains 2x+ more
    assert 0 <= gain("nmad") < 0.2
    assert 0 <= gain("mvapich") < 0.2
    assert gain("pioman") > 0.2
    assert gain("pioman") > 2 * gain("nmad")
