"""Simulator-core throughput: events/second of the engine itself.

Not a paper figure — engineering telemetry for the reproduction: the
cost of events, task switches, and channel operations bounds how large
a NAS configuration the harness can simulate per wall-second.

The unparametrized benchmarks run the *default* scheduler (the
calendar queue) and are what the two-sided regression guard ratchets
against ``BENCH_simulator.json``.  The ``[heap]``/``[calendar]``
variants pin both schedulers individually so the guard's history
records per-scheduler numbers and the heap reference can never rot
unmeasured.  ``min_rounds=30`` keeps each bench's per-round minimum —
the statistic the guard ratchets on — well sampled under ambient load.
"""

import pytest

from repro.simulator import SCHEDULER_KINDS, Channel, Semaphore, Simulator

N = 20_000

SCHEDULERS = sorted(SCHEDULER_KINDS)


@pytest.mark.benchmark(group="simulator", min_rounds=30)
def test_event_heap_throughput(benchmark):
    def run():
        sim = Simulator()
        count = [0]
        for i in range(N):
            sim.schedule(i * 1e-9, lambda: count.__setitem__(0, count[0] + 1))
        sim.run()
        return count[0]

    assert benchmark(run) == N


@pytest.mark.benchmark(group="simulator", min_rounds=30)
def test_task_switch_throughput(benchmark):
    def run():
        sim = Simulator()

        def proc():
            for _ in range(N // 10):
                yield sim.timeout(1e-9)

        for _ in range(10):
            sim.spawn(proc())
        sim.run()
        return sim.now

    assert benchmark(run) > 0


@pytest.mark.benchmark(group="simulator", min_rounds=30)
@pytest.mark.parametrize("sched", SCHEDULERS)
def test_event_queue_throughput_per_scheduler(benchmark, sched):
    """The event-heap benchmark, pinned to one scheduler kind."""
    def run():
        sim = Simulator(scheduler=sched)
        count = [0]
        for i in range(N):
            sim.schedule(i * 1e-9, lambda: count.__setitem__(0, count[0] + 1))
        sim.run()
        return count[0]

    assert benchmark(run) == N


@pytest.mark.benchmark(group="simulator", min_rounds=30)
@pytest.mark.parametrize("sched", SCHEDULERS)
def test_same_time_flood_throughput(benchmark, sched):
    """Dense ties: N events over N/200 timestamps (collective fan-out
    shape) — the workload the calendar queue's batch drain targets."""
    def run():
        sim = Simulator(scheduler=sched)
        count = [0]
        bump = lambda: count.__setitem__(0, count[0] + 1)  # noqa: E731
        for i in range(N):
            sim.schedule((i // 200) * 1e-6, bump)
        sim.run()
        return count[0]

    assert benchmark(run) == N


@pytest.mark.benchmark(group="simulator", min_rounds=30)
def test_channel_pingpong_throughput(benchmark):
    def run():
        sim = Simulator()
        a, b = Channel(sim), Channel(sim)

        def left():
            for i in range(N // 10):
                a.put(i)
                yield b.get()

        def right():
            for _ in range(N // 10):
                item = yield a.get()
                b.put(item)

        sim.spawn(left())
        sim.spawn(right())
        sim.run()

    benchmark(run)


@pytest.mark.benchmark(group="simulator", min_rounds=30)
def test_semaphore_contention_throughput(benchmark):
    def run():
        sim = Simulator()
        sem = Semaphore(sim, value=2)

        def worker():
            for _ in range(N // 40):
                yield sem.acquire()
                yield sim.timeout(1e-9)
                sem.release()

        for _ in range(8):
            sim.spawn(worker())
        sim.run()

    benchmark(run)


N_MSG = 300


def _message_rate_program(comm):
    """The shared 300-message workload of the full-stack benchmarks."""
    if comm.rank == 0:
        for i in range(N_MSG):
            yield from comm.send(1, tag=i % 4, size=256, data=i)
    else:
        out = 0
        for i in range(N_MSG):
            yield from comm.recv(src=0, tag=i % 4)
            out += 1
        return out


def _message_rate(trace=None, scheduler=None):
    from repro import config
    from repro.runtime import run_mpi

    return run_mpi(_message_rate_program, 2, config.mpich2_nmad(),
                   cluster=config.xeon_pair(), trace=trace,
                   scheduler=scheduler).result(1)


@pytest.mark.benchmark(group="simulator", min_rounds=30)
def test_full_stack_message_rate(benchmark):
    """End-to-end: messages/second through the complete nmad stack."""
    assert benchmark(_message_rate) == N_MSG


@pytest.mark.benchmark(group="simulator", min_rounds=30)
@pytest.mark.parametrize("sched", SCHEDULERS)
def test_full_stack_message_rate_per_scheduler(benchmark, sched):
    """The end-to-end benchmark, pinned to one scheduler kind."""
    assert benchmark(lambda: _message_rate(scheduler=sched)) == N_MSG


@pytest.mark.benchmark(group="simulator", min_rounds=30)
def test_full_stack_message_rate_traced(benchmark):
    """Same workload under a full in-memory Trace: tracing overhead."""
    from repro.simulator import Trace

    assert benchmark(lambda: _message_rate(Trace())) == N_MSG


@pytest.mark.benchmark(group="simulator", min_rounds=30)
def test_full_stack_message_rate_ring(benchmark):
    """Same workload under a bounded RingTrace(1024) streaming sink."""
    from repro.simulator import RingTrace

    assert benchmark(lambda: _message_rate(RingTrace(1024))) == N_MSG
