"""Ablation 3: sampling-adaptive split ratio vs a fixed 50/50 split.

The paper's multirail strategy [4] computes an adaptive split ratio
from network sampling.  On asymmetric rails (IB 1.5 GB/s vs MX
1.2 GB/s) a naive even split finishes when the *slower* rail does;
the adaptive ratio balances completion times.
"""

import pytest

from repro import config
from repro.nmad.strategies.sampling import NetworkSampler
from repro.runtime import MPIRuntime
from benchmarks.conftest import once

SIZE = 32 << 20


class FixedSplitSampler(NetworkSampler):
    """Degenerate sampler: pretends every rail performs identically."""

    def sampled_bandwidth(self, driver):
        return 1.0


def timed_transfer(sampler=None):
    rt = MPIRuntime(2, config.mpich2_nmad(rails=("ib", "mx")),
                    cluster=config.xeon_pair())
    if sampler is not None:
        for stack in rt.stacks:
            stack.core.sampler = sampler

    def program(comm):
        t0 = comm.sim.now
        if comm.rank == 0:
            yield from comm.send(1, tag=0, size=SIZE)
        else:
            yield from comm.recv(src=0, tag=0)
        return comm.sim.now - t0

    return rt.run(program).result(1)


@pytest.mark.benchmark(group="ablation")
def test_adaptive_vs_fixed_split(benchmark):
    res = once(benchmark, lambda: {
        "adaptive": timed_transfer(),
        "fixed": timed_transfer(FixedSplitSampler()),
    })
    # the adaptive ratio beats 50/50 on asymmetric rails
    assert res["adaptive"] < res["fixed"]
    # by roughly the serialization imbalance: 50% of data on the 1.2 GB/s
    # rail vs the balanced 44% — a few percent end to end
    assert res["fixed"] / res["adaptive"] > 1.02
