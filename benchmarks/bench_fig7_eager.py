"""Fig. 7(a): overlapping eager messages over MX (20 us compute)."""

import pytest

from repro import config
from repro.workloads.overlap import run_overlap
from benchmarks.conftest import once

SIZES = [4 << 10, 16 << 10]
COMPUTE = 20e-6

STACKS = {
    "nmad": lambda: config.mpich2_nmad(rails=("mx",)),
    "pioman": lambda: config.mpich2_nmad_pioman(rails=("mx",)),
    "pml": config.openmpi_pml_mx,
    "btl": config.openmpi_btl_mx,
}


@pytest.mark.benchmark(group="fig7")
def test_fig7a_eager_overlap(benchmark):
    cluster = config.xeon_pair()

    def sweep():
        out = {}
        for name, factory in STACKS.items():
            out[name] = {
                "ref": run_overlap(factory(), cluster, SIZES, 0.0, reps=3),
                "loaded": run_overlap(factory(), cluster, SIZES, COMPUTE,
                                      reps=3),
            }
        return out

    res = once(benchmark, sweep)
    for size in SIZES:
        # non-PIOMan stacks: sending time ~ own-comm + compute (no overlap)
        for name in ("nmad", "pml", "btl"):
            ref = res[name]["ref"].at(size)
            assert res[name]["loaded"].at(size) > ref + 0.75 * COMPUTE

    # PIOMan at 16K (comm ~ comp): decisively below the sum
    ref = res["pioman"]["ref"].at(16 << 10)
    loaded = res["pioman"]["loaded"].at(16 << 10)
    assert loaded < ref + 0.5 * COMPUTE
    assert loaded < res["nmad"]["loaded"].at(16 << 10)
