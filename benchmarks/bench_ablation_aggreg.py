"""Ablation 2: aggregation strategy vs plain FIFO under bursty sends.

Quantifies NewMadeleine's headline mechanism (Section 2.2): when the
NIC is busy, accumulated small sends merge into fewer packet wrappers,
amortizing per-message NIC costs.
"""

import pytest

from repro import config
from repro.runtime import run_mpi
from repro.simulator import Trace
from benchmarks.conftest import once

N_SMALL = 64
SMALL = 2048  # above the inline-pump threshold: queueing builds up


def burst_program(comm):
    """A 16 KiB blocker followed by a burst of small sends."""
    if comm.rank == 0:
        blocker = yield from comm.isend(1, tag="blk", size=16 << 10)
        reqs = []
        for i in range(N_SMALL):
            req = yield from comm.isend(1, tag="s", size=SMALL, data=i)
            reqs.append(req)
        yield from comm.wait(blocker)
        yield from comm.waitall(reqs)
        return comm.sim.now
    yield from comm.recv(src=0, tag="blk")
    out = []
    for _ in range(N_SMALL):
        msg = yield from comm.recv(src=0, tag="s")
        out.append(msg.data)
    return out


def run_with(strategy):
    trace = Trace(categories={"nic.tx"})
    r = run_mpi(burst_program, 2,
                config.mpich2_nmad().with_(strategy=strategy),
                cluster=config.xeon_pair(), trace=trace)
    assert r.result(1) == list(range(N_SMALL))
    return trace.count("nic.tx"), r.result(0)


@pytest.mark.benchmark(group="ablation")
def test_aggregation_vs_fifo(benchmark):
    res = once(benchmark, lambda: {
        "default": run_with("default"),
        "aggreg": run_with("aggreg"),
    })
    frames_default, drain_default = res["default"]
    frames_aggreg, drain_aggreg = res["aggreg"]

    # aggregation coalesces the burst into far fewer wire packets
    assert frames_aggreg < 0.75 * frames_default
    # and the sender's injection queue drains sooner
    assert drain_aggreg < drain_default
