"""Fig. 4(a): InfiniBand small-message latency, four configurations."""

import pytest

from repro.experiments import fig4_infiniband
from benchmarks.conftest import once


@pytest.mark.benchmark(group="fig4")
def test_fig4a_latency(benchmark):
    data = once(benchmark, lambda: fig4_infiniband.run(fast=True))
    lat = data["latency"]
    i4 = data["lat_sizes"].index(4)

    mva = lat["MVAPICH2"][i4]
    omp = lat["Open MPI"][i4]
    nmad = lat["MPICH2:Nem:Nmad:IB"][i4]
    nmad_as = lat["MPICH2:Nem:Nmad:IB w/AS"][i4]

    # paper values: 1.5 / 1.6 / 2.1 / 2.4 us
    assert mva == pytest.approx(1.5e-6, rel=0.1)
    assert omp == pytest.approx(1.6e-6, rel=0.1)
    assert nmad == pytest.approx(2.1e-6, rel=0.1)
    # ordering and the constant ANY_SOURCE gap
    assert mva < omp < nmad < nmad_as
    assert nmad_as - nmad == pytest.approx(0.3e-6, rel=0.5)
    # the AS gap stays constant as size grows
    ilast = len(data["lat_sizes"]) - 1
    gap_last = lat["MPICH2:Nem:Nmad:IB w/AS"][ilast] - lat["MPICH2:Nem:Nmad:IB"][ilast]
    assert gap_last == pytest.approx(nmad_as - nmad, rel=0.2)
