"""Guard against simulator hot-path regressions.

Compares a fresh ``--benchmark-json`` run of ``bench_simulator.py``
against the committed baseline ``BENCH_simulator.json``: if any
benchmark's throughput (1 / mean seconds) drops more than the threshold
(default 15 %), exit non-zero.  Speedups are reported and always pass —
refresh the committed baseline when they stick::

    pytest benchmarks/bench_simulator.py --benchmark-only \
        --benchmark-json=BENCH_simulator.json

Usage::

    python benchmarks/check_simulator_regression.py NEW.json \
        [--baseline BENCH_simulator.json] [--threshold 0.15]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict


def _throughputs(path: str) -> Dict[str, float]:
    """benchmark fullname -> events-per-second-style throughput."""
    with open(path) as fh:
        data = json.load(fh)
    out = {}
    for bench in data["benchmarks"]:
        mean = bench["stats"]["mean"]
        if mean > 0:
            out[bench["fullname"]] = 1.0 / mean
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="fail on simulator benchmark throughput regressions")
    parser.add_argument("current", help="fresh --benchmark-json output")
    parser.add_argument("--baseline",
                        default=os.path.join(os.path.dirname(__file__),
                                             os.pardir,
                                             "BENCH_simulator.json"))
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="max allowed fractional throughput drop")
    args = parser.parse_args(argv)

    baseline = _throughputs(args.baseline)
    current = _throughputs(args.current)
    if not baseline:
        print("no baseline benchmarks found", file=sys.stderr)
        return 2

    failures = []
    for name, base in sorted(baseline.items()):
        if name not in current:
            failures.append(f"{name}: missing from current run")
            continue
        ratio = current[name] / base
        marker = "OK "
        if ratio < 1.0 - args.threshold:
            marker = "REG"
            failures.append(
                f"{name}: {ratio:.2f}x baseline throughput "
                f"(limit {1.0 - args.threshold:.2f}x)")
        print(f"  {marker} {name.split('::')[-1]:40s} {ratio:6.2f}x baseline")
    for name in sorted(set(current) - set(baseline)):
        print(f"  NEW {name.split('::')[-1]:40s} (no baseline)")

    if failures:
        print(f"\n{len(failures)} regression(s) beyond "
              f"{args.threshold:.0%}:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\nall {len(baseline)} benchmarks within {args.threshold:.0%} "
          "of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
