"""Guard against simulator hot-path regressions (two-sided).

Compares a fresh ``--benchmark-json`` run of ``bench_simulator.py``
against the committed baseline ``BENCH_simulator.json``.  The ratchet
statistic is each benchmark's per-round **minimum**, not its mean:
scheduler noise on a shared box only ever *adds* time, so the min is
the stable estimate of the code's actual cost while means and medians
swing with ambient load.

* a benchmark whose throughput (1 / min seconds) drops more than the
  threshold (default 15 %) is a **REG** and the run exits non-zero;
* one that *gains* more than the threshold is an **IMP** — it passes,
  but the guard emits an updated baseline (``<baseline>.updated``, or
  in place with ``--update-baseline``) so the improvement gets locked
  in instead of becoming headroom for a later regression;
* benchmarks new in the current run are **NEW** and enter the emitted
  baseline.

Every run appends one JSON line to ``--history`` (default
``benchmarks/bench_history.jsonl``) with the per-benchmark timings and
ratios; ``repro perf`` renders the trajectory.  Timestamps come from
pytest-benchmark's own metadata, so the guard itself never reads the
wall clock.

Benchmarks parametrized by scheduler kind (``foo[heap]`` /
``foo[calendar]``) additionally feed a ``per_scheduler`` section in
the history line, and the guard prints the head-to-head speedup for
every such pair so per-scheduler numbers are recorded run over run.

Usage::

    pytest benchmarks/bench_simulator.py --benchmark-only \
        --benchmark-json=NEW.json
    python benchmarks/check_simulator_regression.py NEW.json \
        [--baseline BENCH_simulator.json] [--threshold 0.15] \
        [--history benchmarks/bench_history.jsonl | --no-history] \
        [--update-baseline]
"""

from __future__ import annotations

import argparse
import json
import os
import re
import shutil
import sys
from typing import Any, Dict, Optional, Tuple

DEFAULT_HISTORY = os.path.join(os.path.dirname(__file__),
                               "bench_history.jsonl")

#: scheduler-kind parametrization suffix, e.g. ``foo[calendar]``
_SCHED_PARAM = re.compile(r"^(?P<base>.+)\[(?P<kind>heap|calendar)\]$")


def _per_scheduler(mins: Dict[str, float]) -> Dict[str, Dict[str, float]]:
    """kind -> {base benchmark name -> min seconds}."""
    out: Dict[str, Dict[str, float]] = {}
    for name, timing in mins.items():
        match = _SCHED_PARAM.match(name)
        if match:
            out.setdefault(match.group("kind"), {})[match.group("base")] = timing
    return out


def _load(path: str) -> Tuple[Dict[str, float], Dict[str, Any]]:
    """benchmark fullname -> min seconds per round, plus run metadata."""
    with open(path) as fh:
        data = json.load(fh)
    mins = {}
    for bench in data["benchmarks"]:
        timing = bench["stats"]["min"]
        if timing > 0:
            mins[bench["fullname"]] = timing
    meta = {"datetime": data.get("datetime"),
            "commit": (data.get("commit_info") or {}).get("id")}
    return mins, meta


def _append_history(path: str, entry: Dict[str, Any]) -> None:
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "a") as fh:
        fh.write(json.dumps(entry, sort_keys=True))
        fh.write("\n")


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        description="fail on simulator benchmark throughput regressions; "
                    "detect and lock in improvements")
    parser.add_argument("current", help="fresh --benchmark-json output")
    parser.add_argument("--baseline",
                        default=os.path.join(os.path.dirname(__file__),
                                             os.pardir,
                                             "BENCH_simulator.json"))
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="fractional throughput change that counts as "
                             "a regression (drop) or improvement (gain)")
    parser.add_argument("--history", default=DEFAULT_HISTORY,
                        help="JSONL file receiving one line per guard run")
    parser.add_argument("--no-history", action="store_true",
                        help="skip the history append")
    parser.add_argument("--update-baseline", action="store_true",
                        help="overwrite the baseline with the current run "
                             "(instead of writing <baseline>.updated on "
                             "improvement)")
    args = parser.parse_args(argv)

    base_mins, _ = _load(args.baseline)
    cur_mins, cur_meta = _load(args.current)
    if not base_mins:
        print("no baseline benchmarks found", file=sys.stderr)
        return 2

    failures = []
    regressions = []
    improvements = []
    benches: Dict[str, Dict[str, Optional[float]]] = {}
    for name, base_min in sorted(base_mins.items()):
        if name not in cur_mins:
            failures.append(f"{name}: missing from current run")
            regressions.append(name)
            benches[name] = {"min": None, "base_min": base_min,
                             "ratio": None}
            continue
        timing = cur_mins[name]
        ratio = base_min / timing   # throughput ratio: >1 = faster now
        benches[name] = {"min": timing, "base_min": base_min,
                         "ratio": ratio}
        marker = "OK "
        if ratio < 1.0 - args.threshold:
            marker = "REG"
            regressions.append(name)
            failures.append(
                f"{name}: {ratio:.2f}x baseline throughput "
                f"(limit {1.0 - args.threshold:.2f}x)")
        elif ratio > 1.0 + args.threshold:
            marker = "IMP"
            improvements.append(name)
        print(f"  {marker} {name.split('::')[-1]:44s} {ratio:6.2f}x baseline")
    new_names = sorted(set(cur_mins) - set(base_mins))
    for name in new_names:
        benches[name] = {"min": cur_mins[name], "base_min": None,
                         "ratio": None}
        print(f"  NEW {name.split('::')[-1]:44s} (no baseline)")

    per_sched = _per_scheduler(cur_mins)
    if len(per_sched) > 1:
        kinds = sorted(per_sched)
        shared = sorted(set.intersection(*(set(per_sched[k])
                                           for k in kinds)))
        print("\nper-scheduler head-to-head (min seconds):")
        for base in shared:
            cells = "  ".join(f"{k}={per_sched[k][base]:.4g}s"
                              for k in kinds)
            ratio = per_sched["heap"][base] / per_sched["calendar"][base] \
                if {"heap", "calendar"} <= set(kinds) else None
            extra = f"  calendar {ratio:.2f}x vs heap" if ratio else ""
            print(f"  {base.split('::')[-1]:44s} {cells}{extra}")

    if not args.no_history:
        _append_history(args.history, {
            "datetime": cur_meta.get("datetime"),
            "commit": cur_meta.get("commit"),
            "baseline": os.path.basename(args.baseline),
            "threshold": args.threshold,
            "benches": benches,
            "per_scheduler": per_sched,
            "regressions": regressions,
            "improvements": improvements,
            "new": new_names,
        })
        print(f"\nhistory entry appended to {args.history}")

    if failures:
        print(f"\n{len(failures)} regression(s) beyond "
              f"{args.threshold:.0%}:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1

    if args.update_baseline:
        shutil.copyfile(args.current, args.baseline)
        print(f"baseline {args.baseline} updated from current run")
    elif improvements or new_names:
        updated = args.baseline + ".updated"
        shutil.copyfile(args.current, updated)
        what = []
        if improvements:
            what.append(f"{len(improvements)} improvement(s) beyond "
                        f"{args.threshold:.0%}")
        if new_names:
            what.append(f"{len(new_names)} new benchmark(s)")
        print(f"\n{' and '.join(what)}: updated baseline written to "
              f"{updated} (commit it, or rerun with --update-baseline)")

    print(f"\nall {len(base_mins)} baseline benchmarks within "
          f"{args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
