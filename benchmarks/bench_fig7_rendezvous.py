"""Fig. 7(b): rendezvous progression over IB (400 us compute)."""

import pytest

from repro import config
from repro.workloads.overlap import run_overlap
from benchmarks.conftest import once

SIZES = [16 << 10, 64 << 10, 256 << 10, 1 << 20]
COMPUTE = 400e-6

STACKS = {
    "nmad": config.mpich2_nmad,
    "pioman": config.mpich2_nmad_pioman,
    "openmpi": config.openmpi_ib,
    "mvapich": config.mvapich2,
}


@pytest.mark.benchmark(group="fig7")
def test_fig7b_rendezvous_progress(benchmark):
    cluster = config.xeon_pair()

    def sweep():
        out = {}
        for name, factory in STACKS.items():
            out[name] = {
                "ref": run_overlap(factory(), cluster, SIZES, 0.0, reps=3),
                "loaded": run_overlap(factory(), cluster, SIZES, COMPUTE,
                                      reps=3),
            }
        return out

    res = once(benchmark, sweep)
    for size in SIZES:
        # PIOMan detects the handshake in the background: ~ max(comm, comp)
        ideal = max(res["pioman"]["ref"].at(size), COMPUTE)
        assert res["pioman"]["loaded"].at(size) < ideal * 1.15
        # nobody else makes rendezvous progress while computing
        for name in ("nmad", "openmpi", "mvapich"):
            ref = res[name]["ref"].at(size)
            assert res[name]["loaded"].at(size) > ref + 0.85 * COMPUTE

    # at 256K the gap is the paper's headline: ~600 us vs ~400 us
    assert (res["nmad"]["loaded"].at(256 << 10)
            > 1.4 * res["pioman"]["loaded"].at(256 << 10))
