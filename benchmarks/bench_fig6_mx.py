"""Fig. 6(b): PIOMan's network-path (MX) latency overhead."""

import pytest

from repro import config
from repro.workloads.netpipe import run_netpipe
from benchmarks.conftest import once

SIZES = [4, 64, 512]


@pytest.mark.benchmark(group="fig6")
def test_fig6b_mx_overhead(benchmark):
    cluster = config.xeon_pair()

    def sweep():
        return {
            "nmad": run_netpipe(config.mpich2_nmad(rails=("mx",)), cluster,
                                SIZES, reps=5),
            "pioman": run_netpipe(config.mpich2_nmad_pioman(rails=("mx",)),
                                  cluster, SIZES, reps=5),
            "pml": run_netpipe(config.openmpi_pml_mx(), cluster, SIZES, reps=5),
            "btl": run_netpipe(config.openmpi_btl_mx(), cluster, SIZES, reps=5),
        }

    res = once(benchmark, sweep)
    gaps = [res["pioman"].latencies[i] - res["nmad"].latencies[i]
            for i in range(len(SIZES))]

    # paper: ~2 us overhead (stronger synchronization than shm), constant
    assert gaps[0] == pytest.approx(2.0e-6, rel=0.25)
    assert max(gaps) - min(gaps) < 0.2e-6
    # BTL path visibly slower than PML/CM path
    assert res["btl"].latencies[0] > res["pml"].latencies[0] + 1e-6
