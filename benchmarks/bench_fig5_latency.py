"""Fig. 5(a): multirail latency — small messages ride the fastest rail."""

import pytest

from repro import config
from repro.workloads.netpipe import run_netpipe
from benchmarks.conftest import once

SIZES = [4, 64, 512]


@pytest.mark.benchmark(group="fig5")
def test_fig5a_multirail_latency(benchmark):
    cluster = config.xeon_pair()

    def sweep():
        return {
            rails: run_netpipe(config.mpich2_nmad(rails=rails), cluster,
                               SIZES, reps=5)
            for rails in (("mx",), ("ib",), ("ib", "mx"))
        }

    res = once(benchmark, sweep)
    for i in range(len(SIZES)):
        # multirail latency equals the IB-only (fastest-rail) latency
        assert res[("ib", "mx")].latencies[i] == pytest.approx(
            res[("ib",)].latencies[i], rel=0.01)
        # and is clearly better than MX-only
        assert res[("ib", "mx")].latencies[i] < res[("mx",)].latencies[i]
