"""Fig. 6(a): PIOMan's intra-node (shared-memory) latency overhead."""

import pytest

from repro import config
from repro.workloads.netpipe import run_netpipe
from benchmarks.conftest import once

SIZES = [1, 64, 512]


@pytest.mark.benchmark(group="fig6")
def test_fig6a_shm_overhead(benchmark):
    cluster = config.xeon_pair()

    def sweep():
        return {
            "nemesis": run_netpipe(config.mpich2_nmad(), cluster, SIZES,
                                   reps=5, intra_node=True),
            "pioman": run_netpipe(config.mpich2_nmad_pioman(), cluster, SIZES,
                                  reps=5, intra_node=True),
            "openmpi": run_netpipe(config.openmpi_ib(), cluster, SIZES,
                                   reps=5, intra_node=True),
        }

    res = once(benchmark, sweep)
    gaps = [res["pioman"].latencies[i] - res["nemesis"].latencies[i]
            for i in range(len(SIZES))]

    # paper: ~450 ns overhead, constant in size
    assert gaps[0] == pytest.approx(0.45e-6, rel=0.25)
    assert max(gaps) - min(gaps) < 0.1e-6
    # Nemesis is the fastest shm path; Open MPI sits between
    assert res["nemesis"].latencies[0] < res["openmpi"].latencies[0]
    assert res["openmpi"].latencies[0] < res["pioman"].latencies[0]
