"""Addressable experiment points.

A :class:`Point` is the smallest independently simulatable unit of an
experiment module: one (stack, workload, size/kernel, seed) cell of a
figure.  Points are **pure data** — the stack is referenced by preset
name plus keyword overrides, never by object — so a point can be

* pickled to a worker process,
* digested into a content-addressed cache key, and
* re-executed bit-identically by :func:`repro.campaign.executors.execute_point`.

Experiment modules expose ``points(fast)`` returning their point list
and ``merge(results, fast)`` rebuilding the module's result dict from
``{point.key: result}``; the serial ``run()`` entry point is merge over
an in-process loop, so the campaign runner and the legacy path share
one code path and produce identical data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

__all__ = ["stack_ref", "Point"]


def stack_ref(preset: str, **kw: Any) -> Dict[str, Any]:
    """A serializable reference to a stack preset.

    ``preset`` names a factory in :mod:`repro.config` (``mpich2_nmad``,
    ``mvapich2``, ...); ``kw`` are its keyword arguments.  Sequences
    must be passed as lists (JSON has no tuples) — the executor
    re-tuples ``rails``.
    """
    return {"preset": preset, "kw": dict(kw)}


@dataclass(frozen=True)
class Point:
    """One addressable cell of an experiment module."""

    #: experiment module short name, e.g. ``"fig4_infiniband"``
    module: str
    #: unique key within the module, e.g. ``"lat/MVAPICH2/4"``
    key: str
    #: executor kind: ``netpipe`` | ``overlap`` | ``nas`` | ``stencil``
    kind: str
    #: kind-specific JSON-clean parameters (stacks via :func:`stack_ref`)
    params: Dict[str, Any] = field(default_factory=dict)
    #: RNG seed the simulation streams derive from (0 = preset default)
    seed: int = 0

    @property
    def point_id(self) -> str:
        return f"{self.module}:{self.key}"

    def config(self) -> Dict[str, Any]:
        """The canonical JSON-clean dict fed to executor and cache key."""
        return {
            "module": self.module,
            "key": self.key,
            "kind": self.kind,
            "seed": self.seed,
            "params": self.params,
        }
