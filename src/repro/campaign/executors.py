"""Point execution: pure-data point config -> JSON-clean result.

One executor per point ``kind``.  Every executor rebuilds its stack,
cluster, and workload objects from the serialized params, runs exactly
the same workload call the serial experiment modules make, and returns
a plain dict of floats/ints/lists — JSON-clean so a cache round-trip
reproduces the result bit-identically (tuples are forbidden: JSON would
silently turn them into lists).
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from repro import config


def build_stack(ref: Dict[str, Any]) -> config.StackSpec:
    """Rebuild a :class:`~repro.config.StackSpec` from a ``stack_ref``."""
    preset = ref["preset"]
    factory = getattr(config, preset, None)
    if factory is None or not callable(factory):
        raise ValueError(f"unknown stack preset {preset!r}")
    kw = dict(ref.get("kw") or {})
    if "rails" in kw:
        kw["rails"] = tuple(kw["rails"])
    spec = factory(**kw)
    if spec.pioman and spec.progress is None:
        # Campaign results are content-addressed by the point config
        # alone, so the ambient REPRO_PROGRESS knob must never leak in:
        # pin the reference engine unless the point selects one
        # explicitly (``stack_ref(..., progress="manual_poll")``).
        spec = spec.with_(progress="pioman")
    return spec


def _exec_netpipe(params: Dict[str, Any]) -> Dict[str, Any]:
    from repro.workloads.netpipe import run_netpipe

    spec = build_stack(params["stack"])
    res = run_netpipe(spec, config.xeon_pair(), [params["size"]],
                      reps=params["reps"],
                      warmup=params.get("warmup", 2),
                      anysource=params.get("anysource", False),
                      intra_node=params.get("intra_node", False))
    return {"latency": res.latencies[0], "bandwidth": res.bandwidths[0]}


def _exec_overlap(params: Dict[str, Any]) -> Dict[str, Any]:
    from repro.workloads.overlap import run_overlap

    spec = build_stack(params["stack"])
    res = run_overlap(spec, config.xeon_pair(), [params["size"]],
                      params["compute"], reps=params["reps"])
    return {"sending_time": res.sending_times[0]}


def _exec_nas(params: Dict[str, Any]) -> Dict[str, Any]:
    from repro.workloads.nas import run_kernel
    from repro.workloads.nas.base import KERNELS

    spec = build_stack(params["stack"])
    kernel = params["kernel"]
    registered_variant = False
    if kernel == "is-contig" and kernel not in KERNELS:
        # the ext_is_datatypes contiguous-layout variant of the IS skeleton
        from repro.experiments.ext_is_datatypes import _contiguous_is

        KERNELS[kernel] = _contiguous_is()
        registered_variant = True
    try:
        res = run_kernel(kernel, params["cls"], params["procs"], spec,
                         sim_iters=params.get("sim_iters"))
    finally:
        if registered_variant:
            KERNELS.pop(kernel, None)
    return {"time_seconds": res.time_seconds,
            "simulated_iters": res.simulated_iters,
            "total_iters": res.total_iters}


def _exec_stencil(params: Dict[str, Any]) -> Dict[str, Any]:
    from repro.workloads.stencil import StencilConfig, run_stencil

    spec = build_stack(params["stack"])
    cfg = StencilConfig(**params["cfg"])
    res = run_stencil(spec, params["nprocs"], cfg,
                      overlap=params["overlap"])
    return {"time_seconds": res.time_seconds, "per_iter": res.per_iter}


def _exec_coll(params: Dict[str, Any]) -> Dict[str, Any]:
    from repro.workloads.collbench import run_collbench

    spec = build_stack(params["stack"])
    cluster = None
    topo = params.get("topology")
    if topo:
        from repro.hardware.netgraph import parse_topology

        cluster = config.ClusterSpec(n_nodes=params["nprocs"],
                                     topology=parse_topology(topo))
    res = run_collbench(spec, params["nprocs"], params["collective"],
                        params["size"],
                        algorithm=params.get("algorithm"),
                        reps=params.get("reps", 5),
                        warmup=params.get("warmup", 2),
                        cluster=cluster)
    return {"per_op": res.per_op, "algorithm": res.algorithm,
            "elapsed": res.elapsed}


def _exec_topo_multirail(params: Dict[str, Any]) -> Dict[str, Any]:
    """Striped transfers on a two-rail cluster whose mx rail is routed.

    Rank 0 streams ``n_msgs`` payloads of ``size`` bytes to rank 1 under
    the configured split strategy; an optional ``bg`` flow injects pure
    interference frames on the routed rail so its links congest.  The
    result records how the mx split share evolved.
    """
    from repro.hardware import presets as hw
    from repro.hardware.netgraph import BackgroundTraffic, parse_topology
    from repro.runtime.builder import MPIRuntime
    from repro.simulator import Trace

    spec = build_stack(params["stack"])
    cluster = config.ClusterSpec(
        n_nodes=params["n_nodes"], rails=(hw.IB_CONNECTX, hw.MX_MYRI10G),
        topology=parse_topology(params["topology"]), topo_rails=("mx",))
    size, n_msgs = params["size"], params["n_msgs"]

    def prog(comm):
        for i in range(n_msgs):
            if comm.rank == 0:
                yield from comm.send(1, tag=i, size=size)
                yield from comm.recv(src=1, tag=1000 + i)
            else:
                yield from comm.recv(src=0, tag=i)
                yield from comm.send(0, tag=1000 + i, size=16)

    trace = Trace()
    rt = MPIRuntime(2, spec, cluster=cluster, trace=trace)
    bg = params.get("bg")
    if bg:
        BackgroundTraffic(rt.cluster.fabrics["mx"], src=bg["src"],
                          dst=bg["dst"], size=bg["size"],
                          period=bg["period"], count=bg["count"]).install()
    res = rt.run(prog)
    splits = [r.data["shares"] for r in trace.records
              if r.category == "strategy.split"]
    mx_shares = [dict(s).get("mx", 0) / sum(c for _, c in s) for s in splits]
    return {"elapsed": res.elapsed,
            "splits": len(mx_shares),
            "mx_share_first": mx_shares[0] if mx_shares else 0.0,
            "mx_share_last": mx_shares[-1] if mx_shares else 0.0,
            "mx_share_min": min(mx_shares) if mx_shares else 0.0,
            "observed_delay":
                rt.cluster.fabrics["mx"].observed_source_delay(0)}


def _exec_reg_churn(params: Dict[str, Any]) -> Dict[str, Any]:
    """Rendezvous buffer churn against the IB pin-down cache.

    Rank 0 streams rendezvous transfers to rank 1 cycling through
    ``sizes`` for ``rounds`` rounds; when the cycled working set
    exceeds the configured cache capacity the LRU keeps evicting, so
    the result exposes the cache's hit/evict behaviour (summed over
    both ranks' caches) next to the run's elapsed time.
    """
    from repro.runtime.builder import MPIRuntime

    spec = build_stack(params["stack"])
    sizes, rounds = params["sizes"], params["rounds"]

    def prog(comm):
        tag = 0
        for _ in range(rounds):
            for size in sizes:
                if comm.rank == 0:
                    yield from comm.send(1, tag=tag, size=size)
                else:
                    yield from comm.recv(src=0, tag=tag)
                tag += 1

    rt = MPIRuntime(2, spec, cluster=config.xeon_pair())
    res = rt.run(prog)
    caches = [stack.core.reg_cache for stack in rt.stacks
              if stack.core.reg_cache is not None]
    return {"elapsed": res.elapsed,
            "hits": sum(c.hits for c in caches),
            "misses": sum(c.misses for c in caches),
            "evictions": sum(c.evictions for c in caches),
            "pinned_bytes": sum(c.pinned_bytes for c in caches)}


_EXECUTORS: Dict[str, Callable[[Dict[str, Any]], Dict[str, Any]]] = {
    "netpipe": _exec_netpipe,
    "overlap": _exec_overlap,
    "nas": _exec_nas,
    "stencil": _exec_stencil,
    "coll": _exec_coll,
    "topo_multirail": _exec_topo_multirail,
    "reg_churn": _exec_reg_churn,
}


def execute_point(point_config: Dict[str, Any]) -> Dict[str, Any]:
    """Run one point (given as ``Point.config()`` data) to its result."""
    kind = point_config["kind"]
    executor = _EXECUTORS.get(kind)
    if executor is None:
        raise ValueError(f"unknown point kind {kind!r}; "
                         f"known: {', '.join(sorted(_EXECUTORS))}")
    return executor(point_config["params"])
