"""The campaign runner: fan points out, merge deterministically.

``run_campaign`` resolves the requested experiment modules, collects
their points, satisfies as many as possible from the content-addressed
cache, executes the misses (serially or across a process pool), and
hands each module's ``{key: result}`` map to its ``merge`` to rebuild
exactly the dict the serial ``run()`` would have produced.

Determinism: results are keyed by point key and merged in point-list
order, never in completion order, so ``--workers 4`` and ``--workers
1`` (and a warm cached rerun) produce byte-identical merged data.

Per-point timing lands in a
:class:`~repro.observability.metrics.MetricsRegistry`:

* ``campaign.points`` / ``campaign.cache_hits`` / ``campaign.cache_misses``
* ``campaign.point_time[<module>]`` — histogram of executed-point wall
  seconds (cache hits observe the miss-time recorded at fill time under
  ``campaign.cached_point_time[<module>]``).
"""

from __future__ import annotations

import importlib
import json
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.campaign.cache import ResultCache, campaign_key
from repro.campaign.executors import execute_point
from repro.campaign.points import Point
from repro.experiments import EXPERIMENTS
from repro.experiments.common import host_clock
from repro.observability.metrics import MetricsRegistry

#: every campaign-able module, in run_all order
ALL_MODULES: Tuple[str, ...] = tuple(EXPERIMENTS) + (
    "ext_is_datatypes",
    "ext_stencil_overlap",
    "ext_collectives",
    "ext_topology",
    "ext_progress",
)


def campaign_modules(names: Optional[Sequence[str]] = None) -> Dict[str, Any]:
    """Resolve module short names -> imported experiment modules.

    Accepts any module exposing ``points``/``merge``; unknown names
    raise with the available list.
    """
    selected = list(names) if names else list(ALL_MODULES)
    out: Dict[str, Any] = {}
    for name in selected:
        if name not in ALL_MODULES:
            raise ValueError(f"unknown experiment module {name!r}; "
                             f"available: {', '.join(ALL_MODULES)}")
        mod = importlib.import_module(f"repro.experiments.{name}")
        if not hasattr(mod, "points") or not hasattr(mod, "merge"):
            raise ValueError(f"module {name!r} has no points()/merge() — "
                             "not campaign-able")
        out[name] = mod
    return out


@dataclass
class CampaignReport:
    """Everything one campaign run produced."""

    #: merged per-module result dicts, exactly as the serial ``run()``
    modules: Dict[str, Any]
    fast: bool
    workers: int
    points: int
    cache_hits: int
    cache_misses: int
    wall_seconds: float
    #: executed + cached wall seconds per module
    per_module: Dict[str, Dict[str, float]] = field(default_factory=dict)
    registry: Optional[MetricsRegistry] = None
    #: where per-point telemetry was appended (None without a cache)
    telemetry_path: Optional[str] = None

    @property
    def all_cached(self) -> bool:
        return self.points > 0 and self.cache_hits == self.points

    def stats(self) -> Dict[str, Any]:
        return {
            "fast": self.fast,
            "workers": self.workers,
            "points": self.points,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "wall_seconds": self.wall_seconds,
            "per_module": self.per_module,
        }

    def to_dict(self) -> Dict[str, Any]:
        """JSON-clean dump (dataclasses flattened, tuples listified)."""
        from repro.campaign.cache import _as_plain

        return {"modules": _as_plain(self.modules), "stats": self.stats()}

    def format_summary(self) -> str:
        lines = [
            f"campaign: {self.points} points across "
            f"{len(self.modules)} module(s), workers={self.workers}",
            f"  cache: {self.cache_hits} hit(s), "
            f"{self.cache_misses} miss(es)"
            + (" [fully cached]" if self.all_cached else ""),
            f"  wall time: {self.wall_seconds:.1f}s",
        ]
        for name in self.modules:
            pm = self.per_module.get(name, {})
            lines.append(
                f"  {name:24s} {int(pm.get('points', 0)):4d} points, "
                f"{pm.get('executed_seconds', 0.0):7.1f}s executed, "
                f"{int(pm.get('hits', 0)):4d} cached")
        return "\n".join(lines)


def _worker(point_config: Dict[str, Any]) -> Tuple[Dict[str, Any], float]:
    """Top-level (picklable) worker: execute one point, time it."""
    t0 = host_clock()
    result = execute_point(point_config)
    return result, host_clock() - t0


def run_campaign(modules: Optional[Sequence[str]] = None,
                 fast: bool = False,
                 workers: int = 1,
                 cache: Optional[ResultCache] = None,
                 force: bool = False,
                 registry: Optional[MetricsRegistry] = None) -> CampaignReport:
    """Run a campaign over ``modules`` (default: all of run_all).

    Parameters
    ----------
    workers:
        Process-pool width.  ``1`` executes in-process (no pool), which
        is also the reference for the determinism guarantee.
    cache:
        A :class:`ResultCache`, or None to disable memoization.
    force:
        Recompute every point even on a cache hit (results are still
        written back).
    registry:
        Optional metrics registry to feed; one is created if omitted.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    t_start = host_clock()
    mods = campaign_modules(modules)
    registry = registry if registry is not None else MetricsRegistry()

    plan: List[Tuple[str, Point, str]] = []   # (module, point, cache key)
    results: Dict[str, Dict[str, Any]] = {name: {} for name in mods}
    per_module: Dict[str, Dict[str, float]] = {
        name: {"points": 0, "hits": 0, "executed_seconds": 0.0}
        for name in mods}
    hits = misses = 0

    pending: List[Tuple[str, Point, str]] = []
    for name, mod in mods.items():
        for point in mod.points(fast=fast):
            key = campaign_key(point.config()) if cache is not None else ""
            plan.append((name, point, key))
            per_module[name]["points"] += 1
            cached = cache.get(key) if (cache is not None and not force) \
                else None
            if cached is not None:
                result, elapsed = cached
                results[name][point.key] = result
                per_module[name]["hits"] += 1
                hits += 1
                registry.counter("campaign.cache_hits").inc()
                registry.histogram("campaign.cached_point_time",
                                   name).observe(elapsed)
            else:
                pending.append((name, point, key))

    if pending:
        if workers == 1:
            timed = [_worker(point.config()) for _name, point, _k in pending]
        else:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [pool.submit(_worker, point.config())
                           for _name, point, _k in pending]
                # collected in submission order: deterministic merge
                timed = [future.result() for future in futures]
        for (name, point, key), (result, elapsed) in zip(pending, timed):
            results[name][point.key] = result
            per_module[name]["executed_seconds"] += elapsed
            misses += 1
            registry.counter("campaign.cache_misses").inc()
            registry.histogram("campaign.point_time", name).observe(elapsed)
            if cache is not None:
                cache.put(key, point.config(), result, elapsed)

    registry.counter("campaign.points").inc(len(plan))
    merged = {name: mod.merge(results[name], fast=fast)
              for name, mod in mods.items()}
    wall = host_clock() - t_start
    telemetry_path = None
    if cache is not None:
        point_rows = []
        pending_elapsed = {(name, point.key): elapsed
                           for (name, point, _k), (_r, elapsed)
                           in zip(pending, timed)} if pending else {}
        for name, point, key in plan:
            hit = (name, point.key) not in pending_elapsed
            point_rows.append({
                "module": name, "point": str(point.key), "key": key,
                "cached": hit,
                "elapsed": (0.0 if hit
                            else pending_elapsed[(name, point.key)]),
            })
        telemetry_path = _append_telemetry(
            cache, run_started=t_start, wall_seconds=wall, fast=fast,
            workers=workers, hits=hits, misses=misses, points=point_rows)
    return CampaignReport(
        modules=merged, fast=fast, workers=workers, points=len(plan),
        cache_hits=hits, cache_misses=misses,
        wall_seconds=wall,
        per_module=per_module, registry=registry,
        telemetry_path=telemetry_path)


def _append_telemetry(cache: ResultCache, run_started: float,
                      wall_seconds: float, fast: bool, workers: int,
                      hits: int, misses: int,
                      points: List[Dict[str, Any]]) -> str:
    """Append one run's telemetry next to the content-addressed store.

    One JSON line per run: a summary plus the per-point rows, so
    ``repro perf`` can render the wall-time/hit-rate trajectory across
    campaign runs without touching the result store itself.
    """
    path = cache.telemetry_path
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    entry = {
        "run_started": run_started,
        "wall_seconds": wall_seconds,
        "fast": fast,
        "workers": workers,
        "points": len(points),
        "cache_hits": hits,
        "cache_misses": misses,
        "executed_seconds": sum(p["elapsed"] for p in points),
        "per_point": points,
    }
    with open(path, "a") as fh:
        fh.write(json.dumps(entry, sort_keys=True))
        fh.write("\n")
    return path
