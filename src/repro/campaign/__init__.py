"""Process-parallel experiment campaigns with a content-addressed cache.

The serial evaluation (``python -m repro.experiments.run_all``) walks
every figure module in one long loop even though each measured point is
an independent deterministic simulation.  This package decomposes the
modules into addressable **points** (stack x workload x size x seed),
executes them across a :class:`concurrent.futures.ProcessPoolExecutor`
with deterministic result merging, and memoizes each point in an
on-disk cache keyed by a digest of (point config, hardware model
params, ``repro`` source tree) — warm reruns only recompute what
changed.

Entry points::

    python -m repro campaign --all --workers 4          # CLI
    from repro.campaign import run_campaign             # library

See ``docs/CAMPAIGNS.md`` for the cache layout and invalidation rules.
"""

from repro.campaign.cache import (
    ResultCache,
    campaign_key,
    canonical_json,
    hardware_fingerprint,
    source_tree_digest,
)
from repro.campaign.executors import build_stack, execute_point
from repro.campaign.points import Point, stack_ref
from repro.campaign.runner import (
    CampaignReport,
    campaign_modules,
    run_campaign,
)

__all__ = [
    "CampaignReport",
    "Point",
    "ResultCache",
    "build_stack",
    "campaign_key",
    "campaign_modules",
    "canonical_json",
    "execute_point",
    "hardware_fingerprint",
    "run_campaign",
    "source_tree_digest",
    "stack_ref",
]
