"""Content-addressed on-disk cache for campaign point results.

The cache key of a point is the SHA-256 of the canonical JSON of

* the **point config** (module, key, kind, seed, params),
* the **hardware fingerprint** (every NIC/node/memory cost preset and
  default protocol-cost dataclass the model is built from), and
* the **source-tree digest** (every ``.py`` file under ``repro``).

Any change to a knob, a hardware constant, or a line of simulator code
therefore invalidates exactly the results it could have affected — a
warm rerun after an experiment-only edit recomputes nothing, and a
rerun after an engine edit recomputes everything, which is the safe
direction.

Layout (one file per point, first two hex chars shard the directory)::

    <cache_dir>/
        v1/
            ab/abcdef....json    # {"point": ..., "result": ..., "elapsed": ...}

Writes are atomic (tmp file + ``os.replace``), so concurrent writers
(e.g. pytest-xdist workers warming the same cache) can only race to
produce identical files.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from functools import lru_cache
from typing import Any, Dict, Optional, Tuple

#: bump to invalidate every existing cache entry on format changes
CACHE_FORMAT = "v1"

#: default cache location (relative to the working directory)
DEFAULT_CACHE_DIR = ".repro-cache"


def canonical_json(obj: Any) -> str:
    """Deterministic JSON text: sorted keys, no whitespace drift."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


@lru_cache(maxsize=1)
def source_tree_digest() -> str:
    """SHA-256 over every ``.py`` file of the installed ``repro`` package.

    Files are visited in sorted relative-path order; each contributes
    its path and raw bytes, so renames and edits both change the
    digest.
    """
    import repro

    root = os.path.dirname(os.path.abspath(repro.__file__))
    h = hashlib.sha256()
    paths = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        for name in sorted(filenames):
            if name.endswith(".py"):
                paths.append(os.path.join(dirpath, name))
    for path in sorted(paths):
        rel = os.path.relpath(path, root)
        h.update(rel.encode())
        h.update(b"\0")
        with open(path, "rb") as fh:
            h.update(fh.read())
        h.update(b"\0")
    return h.hexdigest()


def _as_plain(obj: Any) -> Any:
    """Dataclass -> dict (recursively), tuples -> lists."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {f.name: _as_plain(getattr(obj, f.name))
                for f in dataclasses.fields(obj)}
    if isinstance(obj, (list, tuple)):
        return [_as_plain(v) for v in obj]
    if isinstance(obj, dict):
        return {k: _as_plain(v) for k, v in obj.items()}
    return obj


@lru_cache(maxsize=1)
def _hardware_fingerprint_cached() -> str:
    return canonical_json(hardware_fingerprint())


def hardware_fingerprint() -> Dict[str, Any]:
    """Every hardware/cost constant the simulations are calibrated with.

    Covers the NIC and node presets, the native-stack comparator cost
    tables, and the default protocol-cost dataclasses.  Returned as a
    plain JSON-clean dict so tests can perturb single fields and verify
    the cache key moves.
    """
    from repro.comparators import presets as comparator_presets
    from repro.hardware import presets as hw
    from repro.mpich2.ch3 import CH3Costs
    from repro.mpich2.nemesis.shm import ShmCosts
    from repro.nmad.core import NmadCosts
    from repro.nmad.reliability import ReliabilityParams
    from repro.pioman import PIOManParams

    fp: Dict[str, Any] = {}
    for name in dir(hw):
        value = getattr(hw, name)
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            fp[f"hw.{name}"] = _as_plain(value)
    for name in dir(comparator_presets):
        value = getattr(comparator_presets, name)
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            fp[f"native.{name}"] = _as_plain(value)
    fp["costs.NmadCosts"] = _as_plain(NmadCosts())
    fp["costs.CH3Costs"] = _as_plain(CH3Costs())
    fp["costs.ShmCosts"] = _as_plain(ShmCosts())
    fp["costs.PIOManParams"] = _as_plain(PIOManParams())
    fp["costs.ReliabilityParams"] = _as_plain(ReliabilityParams())
    return fp


def campaign_key(point_config: Dict[str, Any],
                 hw: Optional[Dict[str, Any]] = None,
                 code_digest: Optional[str] = None) -> str:
    """The content-addressed cache key of one point.

    ``hw`` and ``code_digest`` default to the live hardware fingerprint
    and source-tree digest; tests pass explicit values to probe key
    sensitivity.
    """
    hw_text = canonical_json(hw) if hw is not None \
        else _hardware_fingerprint_cached()
    payload = canonical_json({
        "format": CACHE_FORMAT,
        "point": point_config,
        "hw": hw_text,
        "code": code_digest if code_digest is not None
        else source_tree_digest(),
    })
    return hashlib.sha256(payload.encode()).hexdigest()


class ResultCache:
    """One directory of memoized point results."""

    def __init__(self, cache_dir: str = DEFAULT_CACHE_DIR):
        self.root = os.path.join(cache_dir, CACHE_FORMAT)
        #: per-point run telemetry lands beside the versioned store (it
        #: describes runs, not results, so it survives format bumps)
        self.telemetry_path = os.path.join(cache_dir, "telemetry.jsonl")

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key + ".json")

    def get(self, key: str) -> Optional[Tuple[Any, float]]:
        """``(result, original_elapsed_seconds)`` or None on a miss."""
        try:
            with open(self._path(key)) as fh:
                entry = json.load(fh)
        except (OSError, ValueError):
            return None
        return entry["result"], entry.get("elapsed", 0.0)

    def put(self, key: str, point_config: Dict[str, Any], result: Any,
            elapsed: float) -> None:
        """Store atomically; concurrent writers of one key are harmless."""
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w") as fh:
            json.dump({"point": point_config, "result": result,
                       "elapsed": elapsed}, fh, sort_keys=True)
        os.replace(tmp, path)

    def __len__(self) -> int:
        n = 0
        if not os.path.isdir(self.root):
            return 0
        for dirpath, _dirnames, filenames in os.walk(self.root):
            n += sum(1 for f in filenames if f.endswith(".json"))
        return n
