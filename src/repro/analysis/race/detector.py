"""Happens-before race detection for the simulated stack.

The DES engine serializes everything, so nothing ever *crashes* from a
data race — but the real stack this simulates is concurrent: PIOMan
ltasks, driver completion callbacks and application threads all touch
the posted/unexpected queues, the retransmit maps and the rail-health
state.  In the simulation those contexts are only ordered by the event
heap's FIFO tie-break, which is an *accident* of scheduling, not a
guarantee the modelled code provides.

This module is TSan for the DES: it rebuilds the *enforced* causality
(and only that) as vector clocks and reports shared-state accesses that
are unordered under it.

Happens-before edges
--------------------
fork
    ``sim.schedule`` inside a callback: the scheduled callback inherits
    a snapshot of the scheduler's clock.  Event triggering is built on
    this (``Event.succeed`` schedules waiter callbacks), so join edges
    — waiter resumes after triggerer — come with it.
sync
    ``Semaphore``/``Mutex``/``Channel`` operations: a release publishes
    the releaser's clock into the primitive, an acquire joins it.
region
    ``sim.sync_region(key)`` — the virtual locks the real stack takes
    around progress-engine state (PIOMan's ``piom_lock``; the paper's
    Section 3.3 synchronization).  All regions with the same key are
    serialized: entering joins the region clock, leaving publishes to
    it, and a region held across a task suspension re-synchronizes at
    every slice boundary.

Execution contexts
------------------
Each heap callback slice runs in a context: durable per ``Task`` (one
application thread, one PIOMan worker), durable per ``Event`` (its
trigger/dispatch chain), ephemeral per plain callback (a NIC completion,
a retransmit timer).  A context's clock ticks once per slice; accesses
are tagged ``(context, tick)``.

An access pair on the same variable, at least one a write, from two
different contexts, neither ordered before the other, is reported as a
race with both contexts' sim-event stacks.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

Clock = Dict[int, int]


def vc_join(into: Clock, other: Clock) -> None:
    """Pointwise max, in place."""
    for cid, tick in other.items():
        if into.get(cid, 0) < tick:
            into[cid] = tick


class ExecContext:
    """One simulated execution context (thread-analog)."""

    __slots__ = ("cid", "name", "kind", "vc", "held", "stack")

    def __init__(self, cid: int, name: str, kind: str):
        self.cid = cid
        self.name = name
        self.kind = kind                      # task | event | callback | main
        self.vc: Clock = {cid: 0}
        self.held: Dict["SyncClock", int] = {}  # region -> reentry depth
        self.stack: List[str] = []            # region labels, innermost last

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ctx {self.name}>"


class SyncClock:
    """Clock holder for a sync primitive or a virtual lock region."""

    __slots__ = ("key", "label", "vc")

    def __init__(self, key: Any, label: Optional[str]):
        self.key = key
        self.label = label
        self.vc: Clock = {}


@dataclass(frozen=True)
class Access:
    """One recorded access to a watched variable."""

    ctx_name: str
    ctx_kind: str
    cid: int
    tick: int
    write: bool
    time: float
    where: str                     # source location of the access
    regions: Tuple[str, ...]       # region-label stack at access time
    detail: Optional[str]

    def format(self) -> str:
        kind = "write" if self.write else "read"
        regions = " > ".join(self.regions) if self.regions else "(no region)"
        text = (f"{kind} at t={self.time * 1e6:.3f}us in {self.ctx_name} "
                f"[{self.ctx_kind}]\n      at {self.where}\n"
                f"      sim-event stack: {regions}")
        if self.detail:
            text += f"\n      detail: {self.detail}"
        return text


@dataclass(frozen=True)
class RaceFinding:
    """Two unordered conflicting accesses to one variable."""

    var: str
    first: Access
    second: Access

    def format(self) -> str:
        return (f"RACE on {self.var}\n"
                f"  (1) {self.first.format()}\n"
                f"  (2) {self.second.format()}")


@dataclass
class RaceReport:
    """Outcome of one detector run."""

    races: List[RaceFinding]
    accesses: int = 0
    contexts: int = 0
    syncs: int = 0
    variables: int = 0
    dropped: int = 0               # findings beyond the report cap

    @property
    def clean(self) -> bool:
        return not self.races and not self.dropped

    def format_text(self) -> str:
        lines = [f"race detector: {self.accesses} accesses to "
                 f"{self.variables} shared variables across "
                 f"{self.contexts} contexts ({self.syncs} sync edges)"]
        if self.clean:
            lines.append("no unordered conflicting accesses found")
        else:
            lines.append(f"{len(self.races) + self.dropped} race(s) found:")
            for race in self.races:
                lines.append("")
                lines.append(race.format())
            if self.dropped:
                lines.append(f"... and {self.dropped} more (report cap)")
        return "\n".join(lines)


@dataclass
class _VarState:
    last_write: Optional[Access] = None
    reads: Dict[int, Access] = field(default_factory=dict)  # cid -> access


class _Region:
    """Context manager returned by :meth:`RaceDetector.region`."""

    __slots__ = ("det", "key", "label")

    def __init__(self, det: "RaceDetector", key: Any, label: Optional[str]):
        self.det = det
        self.key = key
        self.label = label

    def __enter__(self) -> "_Region":
        self.det.region_enter(self.key, self.label)
        return self

    def __exit__(self, *exc: Any) -> bool:
        self.det.region_exit(self.key)
        return False


class RaceDetector:
    """Engine monitor implementing the happens-before check.

    Install with :meth:`install` (sets ``sim.monitor``); the engine then
    feeds ``on_schedule`` / ``before_step`` / ``after_step``, sync
    primitives feed ``sync_acquire`` / ``sync_release``, and the
    instrumented stack feeds ``on_access`` and ``region``.
    """

    def __init__(self, max_reports: int = 25):
        self.max_reports = max_reports
        self.sim: Any = None
        self._next_cid = 0
        self._durable: Dict[int, ExecContext] = {}   # id(obj) -> ctx
        self._pinned: List[Any] = []                 # keep durable owners alive
        self._syncs: Dict[Any, SyncClock] = {}
        self._vars: Dict[str, _VarState] = {}
        self._seen_pairs: set = set()
        self.races: List[RaceFinding] = []
        self.dropped = 0
        self.accesses = 0
        self.sync_edges = 0
        self.main = self._new_context("main", "main")
        self.current = self.main

    # ------------------------------------------------------------------
    def install(self, sim: Any) -> None:
        self.sim = sim
        sim.monitor = self

    def _new_context(self, name: str, kind: str) -> ExecContext:
        ctx = ExecContext(self._next_cid, name, kind)
        self._next_cid += 1
        return ctx

    def _context_for(self, handle: Any) -> ExecContext:
        """Durable context for Task/Event-bound callbacks, else ephemeral."""
        from repro.simulator.events import Event
        from repro.simulator.process import Task

        fn = handle.fn
        owner = getattr(fn, "__self__", None)
        if isinstance(owner, Event):
            ctx = self._durable.get(id(owner))
            if ctx is None:
                if isinstance(owner, Task):
                    name = f"task:{owner.name or 'anon'}"
                    kind = "task"
                else:
                    name = f"event:{type(owner).__name__}#{self._next_cid}"
                    kind = "event"
                ctx = self._new_context(name, kind)
                self._durable[id(owner)] = ctx
                self._pinned.append(owner)
            return ctx
        label = getattr(fn, "__qualname__", None) or repr(fn)
        return self._new_context(f"cb:{label}#{self._next_cid}", "callback")

    # ------------------------------------------------------------------
    # Engine hooks
    # ------------------------------------------------------------------
    def on_schedule(self, handle: Any) -> None:
        """Fork edge: the callback inherits the scheduler's clock."""
        handle.origin = dict(self.current.vc)

    def before_step(self, handle: Any) -> None:
        ctx = self._context_for(handle)
        ctx.vc[ctx.cid] = ctx.vc.get(ctx.cid, 0) + 1   # new slice
        origin = getattr(handle, "origin", None)
        if origin is not None:
            vc_join(ctx.vc, origin)
        for lock in ctx.held:                           # held regions re-sync
            vc_join(ctx.vc, lock.vc)
        self.current = ctx

    def after_step(self, handle: Any) -> None:
        ctx = self.current
        for lock in ctx.held:
            vc_join(lock.vc, ctx.vc)
        self.current = self.main

    # ------------------------------------------------------------------
    # Sync primitives and virtual lock regions
    # ------------------------------------------------------------------
    def _sync(self, key: Any, label: Optional[str] = None) -> SyncClock:
        clock = self._syncs.get(key)
        if clock is None:
            clock = self._syncs[key] = SyncClock(key, label)
        elif label and clock.label is None:
            clock.label = label
        return clock

    def sync_acquire(self, key: Any) -> None:
        """The current context observes everything published to ``key``."""
        vc_join(self.current.vc, self._sync(key).vc)
        self.sync_edges += 1

    def sync_release(self, key: Any) -> None:
        """Publish the current context's clock into ``key``."""
        vc_join(self._sync(key).vc, self.current.vc)
        self.sync_edges += 1

    def region(self, key: Any, label: Optional[str] = None) -> _Region:
        return _Region(self, key, label)

    def region_enter(self, key: Any, label: Optional[str] = None) -> None:
        ctx = self.current
        lock = self._sync(key, label)
        vc_join(ctx.vc, lock.vc)
        ctx.held[lock] = ctx.held.get(lock, 0) + 1
        ctx.stack.append(label or str(key))
        self.sync_edges += 1

    def region_exit(self, key: Any) -> None:
        ctx = self.current
        lock = self._sync(key)
        vc_join(lock.vc, ctx.vc)
        depth = ctx.held.get(lock, 0) - 1
        if depth > 0:
            ctx.held[lock] = depth
        else:
            ctx.held.pop(lock, None)
        if ctx.stack:
            ctx.stack.pop()

    # ------------------------------------------------------------------
    # Accesses
    # ------------------------------------------------------------------
    def on_access(self, name: str, write: bool,
                  detail: Optional[str] = None) -> None:
        ctx = self.current
        self.accesses += 1
        frame = sys._getframe(2)   # caller -> Simulator.race_* -> here
        where = f"{frame.f_code.co_filename}:{frame.f_lineno}"
        access = Access(ctx_name=ctx.name, ctx_kind=ctx.kind, cid=ctx.cid,
                        tick=ctx.vc[ctx.cid], write=write,
                        time=self.sim.now if self.sim is not None else 0.0,
                        where=where, regions=tuple(ctx.stack), detail=detail)
        var = self._vars.get(name)
        if var is None:
            var = self._vars[name] = _VarState()

        def ordered(prev: Access) -> bool:
            return ctx.vc.get(prev.cid, 0) >= prev.tick

        if write:
            conflicts = list(var.reads.values())
            if var.last_write is not None:
                conflicts.append(var.last_write)
            for prev in conflicts:
                if prev.cid != ctx.cid and not ordered(prev):
                    self._report(name, prev, access)
            var.last_write = access
            var.reads = {}
        else:
            prev = var.last_write
            if prev is not None and prev.cid != ctx.cid and not ordered(prev):
                self._report(name, prev, access)
            var.reads[ctx.cid] = access

    def _report(self, name: str, first: Access, second: Access) -> None:
        key = (name, first.where, second.where, first.write, second.write)
        if key in self._seen_pairs:
            return
        self._seen_pairs.add(key)
        if len(self.races) >= self.max_reports:
            self.dropped += 1
            return
        self.races.append(RaceFinding(var=name, first=first, second=second))

    # ------------------------------------------------------------------
    def report(self) -> RaceReport:
        return RaceReport(races=list(self.races),
                          accesses=self.accesses,
                          contexts=self._next_cid,
                          syncs=self.sync_edges,
                          variables=len(self._vars),
                          dropped=self.dropped)
