"""Simulated-concurrency race detection ("TSan for the DES").

The engine interleaves logical execution contexts — application rank
threads, PIOMan ltasks, per-rail NIC callbacks, reliability timers — at
simulated-time granularity.  A run being deterministic does not make it
*correct*: two contexts touching the same queue without a
happens-before edge is a real bug that a different event ordering (new
timing parameters, added jitter) will expose.  The detector builds
vector clocks from engine causality (schedule edges, event completion,
semaphore/channel handoffs, virtual lock regions) and reports
conflicting accesses that no edge orders.

See :mod:`repro.analysis.race.detector` for the model and
``docs/ANALYSIS.md`` for the rules of engagement and its limits.
"""

from repro.analysis.race.detector import (
    Access,
    ExecContext,
    RaceDetector,
    RaceFinding,
    RaceReport,
)
from repro.analysis.race.harness import run_race, run_racy_demo

__all__ = [
    "Access",
    "ExecContext",
    "RaceDetector",
    "RaceFinding",
    "RaceReport",
    "run_race",
    "run_racy_demo",
]
