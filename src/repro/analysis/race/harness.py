"""Canned race-detector runs over the simulated MPI stacks.

``run_race`` wires a :class:`~repro.analysis.race.detector.RaceDetector`
into a freshly built :class:`~repro.runtime.builder.MPIRuntime` *before*
the job starts (the monitor must see every schedule from t=0) and runs a
small inter-node ping-pong — the workload that exercises every shared
structure the detector watches: posted/unexpected queues, the strategy
window, driver submission state, and (on reliable stacks) the
retransmit maps and rail-health monitor.

``run_racy_demo`` is the deliberately broken counterpart: the same run
plus a rogue callback that peeks at rank 1's posted-request list with
no synchronization at all — the bug class the detector exists to catch.
It must always report at least one race.
"""

from __future__ import annotations

from typing import Any, Optional

from repro import config
from repro.analysis.race.detector import RaceDetector, RaceReport
from repro.config import ClusterSpec, StackSpec
from repro.runtime.builder import MPIRuntime
from repro.workloads.netpipe import pingpong


def run_race(spec: StackSpec, *, size: int = 65536, reps: int = 3,
             seed: int = 0, nprocs: int = 2,
             cluster: Optional[ClusterSpec] = None,
             faults: Optional[Any] = None,
             scheduler: Optional[Any] = None) -> RaceReport:
    """Run a ping-pong under the race detector; return its report.

    ``cluster`` defaults to the two-node point-to-point testbed; pass a
    topology-bearing :class:`~repro.config.ClusterSpec` to put the
    routed-fabric link traversal (and its congestion-feedback writes)
    under happens-before tracking too.

    The run is kept deliberately small: happens-before tracking keeps a
    vector-clock entry per execution context, so this mode is meant for
    smoke-sized scenarios, not sweeps (see docs/ANALYSIS.md).
    """
    detector = RaceDetector()
    runtime = MPIRuntime(nprocs, spec,
                         cluster=cluster if cluster is not None
                         else config.xeon_pair(),
                         seed=seed, faults=faults, scheduler=scheduler)
    detector.install(runtime.sim)
    runtime.run(pingpong(size, reps=reps, warmup=0))
    return detector.report()


def run_racy_demo(*, size: int = 4096, reps: int = 2,
                  seed: int = 0) -> RaceReport:
    """A seeded true positive: unsynchronized reads of shared state.

    Eight plain callbacks spread across the start of the run read rank
    1's NewMadeleine posted-request list without entering the node's
    progress-lock region — exactly what a naive monitoring hook bolted
    onto the engine would do.  Whether a rogue read lands before or
    after the protocol's writes, no happens-before edge orders them, so
    the detector must flag at least one read-write conflict.
    """
    spec = config.mpich2_nmad()
    detector = RaceDetector()
    runtime = MPIRuntime(2, spec, cluster=config.xeon_pair(), seed=seed)
    detector.install(runtime.sim)
    sim = runtime.sim

    def rogue_peek() -> None:
        sim.race_read("nmad.posted@r1", detail="rogue monitor peek")

    for i in range(8):
        sim.schedule(2e-6 * (i + 1), rogue_peek)
    runtime.run(pingpong(size, reps=reps, warmup=0))
    return detector.report()
