"""Static and dynamic analyses of the reproduction itself.

Three sub-packages:

``traffic``
    Trace post-processing: per-rail traffic summaries and ASCII
    timelines (the original ``repro.analysis`` module).
``lint``
    The determinism lint: an AST pass over ``src/`` enforcing the
    repo-specific invariants every ``(seed, config)`` run depends on
    (no wall-clock, no stray RNG, no iteration-order hazards, ...).
    Run it with ``repro lint``.
``race``
    The simulated-concurrency race detector: a dynamic happens-before
    checker over the DES engine's event causality.  Run it with
    ``repro race``.

The traffic API is re-exported here so existing imports
(``from repro.analysis import summarize_traffic``) keep working.
"""

from repro.analysis.traffic import (RailSummary, TrafficSummary,
                                    format_timeline, format_traffic,
                                    summarize_traffic)

__all__ = [
    "RailSummary",
    "TrafficSummary",
    "format_timeline",
    "format_traffic",
    "summarize_traffic",
]
