"""The determinism lint engine (``repro lint``).

Runs the :mod:`repro.analysis.lint.rules` registry over a set of
source files and reports :class:`Violation` findings.  Two suppression
mechanisms, mirroring real-world linters:

inline pragma
    ``# repro-lint: allow`` on the offending line silences every rule
    for that line; ``# repro-lint: allow[RPR001,RPR004]`` silences only
    the listed codes.

baseline file
    A checked-in JSON file of violation fingerprints
    (``.repro-lint-baseline.json``).  Fingerprints hash the file path,
    rule code and offending source text — not the line number — so
    baselined debt survives unrelated edits but resurfaces when the
    flagged line itself changes.  Regenerate with
    ``repro lint --update-baseline``.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis.lint.rules import RULES, Module, Rule

__all__ = ["Violation", "LintResult", "RULES", "lint_source", "lint_file",
           "run_lint", "load_baseline", "baseline_counts", "save_baseline",
           "default_target"]

_PRAGMA = re.compile(r"#\s*repro-lint:\s*allow(?:\[([A-Z0-9, ]+)\])?")


@dataclass(frozen=True)
class Violation:
    """One rule finding at one source location."""

    path: str
    line: int
    col: int
    code: str
    message: str
    snippet: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def fingerprint(self) -> str:
        """Stable identity for the baseline: path + code + source text."""
        key = f"{_normalize(self.path)}|{self.code}|{self.snippet}"
        return hashlib.sha1(key.encode()).hexdigest()[:16]


@dataclass
class LintResult:
    """Outcome of one lint run."""

    violations: List[Violation]      # actionable findings
    baselined: List[Violation]       # suppressed by the baseline file
    files: int

    @property
    def clean(self) -> bool:
        return not self.violations


def _normalize(path: str) -> str:
    """Posix path rooted at ``repro/`` so results match from any cwd."""
    posix = path.replace(os.sep, "/")
    marker = posix.rfind("repro/")
    return posix[marker:] if marker >= 0 else posix.rsplit("/", 1)[-1]


def _pragmas(lines: Sequence[str]) -> Dict[int, Optional[frozenset]]:
    """line number -> allowed codes (None = all codes allowed)."""
    out: Dict[int, Optional[frozenset]] = {}
    for i, text in enumerate(lines, start=1):
        m = _PRAGMA.search(text)
        if m:
            codes = m.group(1)
            out[i] = (frozenset(c.strip() for c in codes.split(","))
                      if codes else None)
    return out


def lint_source(source: str, path: str = "<string>",
                rules: Sequence[Rule] = RULES) -> List[Violation]:
    """Lint one source string; raises SyntaxError on unparsable input."""
    tree = ast.parse(source, filename=path)
    lines = source.splitlines()
    mod = Module(path=path, rel=_normalize(path), tree=tree, lines=lines)
    pragmas = _pragmas(lines)

    found: List[Violation] = []
    for rule in rules:
        if rule.allowed(mod.rel):
            continue
        for line, col, message in rule.visit(mod):
            allowed = pragmas.get(line, False)
            if allowed is None or (allowed and rule.code in allowed):
                continue
            snippet = lines[line - 1].strip() if 0 < line <= len(lines) else ""
            found.append(Violation(path=path, line=line, col=col,
                                   code=rule.code, message=message,
                                   snippet=snippet))
    found.sort(key=lambda v: (v.line, v.col, v.code))
    return found


def lint_file(path: str, rules: Sequence[Rule] = RULES) -> List[Violation]:
    with open(path, "r", encoding="utf-8") as fh:
        return lint_source(fh.read(), path=path, rules=rules)


def iter_py_files(paths: Iterable[str]) -> List[str]:
    out: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs.sort()
                out.extend(os.path.join(root, f)
                           for f in sorted(files) if f.endswith(".py"))
        else:
            out.append(path)
    return out


def default_target() -> str:
    """The installed ``repro`` package directory (lint target default)."""
    import repro

    return os.path.dirname(os.path.abspath(repro.__file__))


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
def load_baseline(path: str) -> Dict[str, int]:
    """fingerprint -> allowed count.  Missing file = empty baseline."""
    if not os.path.exists(path):
        return {}
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    return {str(k): int(v) for k, v in data.get("fingerprints", {}).items()}


def baseline_counts(violations: Iterable[Violation]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for violation in violations:
        fp = violation.fingerprint()
        counts[fp] = counts.get(fp, 0) + 1
    return counts


def save_baseline(path: str, violations: Iterable[Violation]) -> None:
    payload = {
        "comment": "repro lint baseline; regenerate with "
                   "`repro lint --update-baseline`",
        "version": 1,
        "fingerprints": dict(sorted(baseline_counts(violations).items())),
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")


def run_lint(paths: Optional[Sequence[str]] = None,
             baseline: Optional[Dict[str, int]] = None,
             rules: Sequence[Rule] = RULES) -> LintResult:
    """Lint ``paths`` (default: the installed repro package)."""
    files = iter_py_files(paths or [default_target()])
    found: List[Violation] = []
    for path in files:
        found.extend(lint_file(path, rules=rules))

    remaining = dict(baseline or {})
    fresh: List[Violation] = []
    suppressed: List[Violation] = []
    for violation in found:
        fp = violation.fingerprint()
        if remaining.get(fp, 0) > 0:
            remaining[fp] -= 1
            suppressed.append(violation)
        else:
            fresh.append(violation)
    return LintResult(violations=fresh, baselined=suppressed,
                      files=len(files))
