"""The determinism lint engine (``repro lint``).

Runs the :mod:`repro.analysis.lint.rules` registry over a set of
source files and reports :class:`Violation` findings.  Two suppression
mechanisms, mirroring real-world linters:

inline pragma
    ``# repro-lint: allow`` on the offending line silences every rule
    for that line; ``# repro-lint: allow[RPR001,RPR004]`` silences only
    the listed codes.  On a comment-only line the pragma also covers
    the next line (for justifications that don't fit inline).

baseline file
    A checked-in JSON file of violation fingerprints
    (``.repro-lint-baseline.json``).  Fingerprints hash the file path,
    rule code and offending source text — not the line number — so
    baselined debt survives unrelated edits but resurfaces when the
    flagged line itself changes.  Regenerate with
    ``repro lint --update-baseline``.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis.lint.rules import RULES, Module, Rule
from repro.analysis.reporting import (Violation, apply_baseline,
                                      baseline_counts, load_baseline,
                                      normalize_path, parse_pragmas,
                                      save_baseline as _save_baseline,
                                      suppressed_by_pragma)

__all__ = ["Violation", "LintResult", "RULES", "lint_source", "lint_file",
           "run_lint", "load_baseline", "baseline_counts", "save_baseline",
           "default_target", "rule_catalog"]


@dataclass
class LintResult:
    """Outcome of one lint run."""

    violations: List[Violation]      # actionable findings
    baselined: List[Violation]       # suppressed by the baseline file
    files: int

    @property
    def clean(self) -> bool:
        return not self.violations


def rule_catalog(rules: Sequence[Rule] = RULES) -> List[tuple]:
    """``(code, summary)`` pairs for the SARIF rule listing."""
    return [(rule.code, rule.summary) for rule in rules]


def lint_source(source: str, path: str = "<string>",
                rules: Sequence[Rule] = RULES) -> List[Violation]:
    """Lint one source string; raises SyntaxError on unparsable input."""
    tree = ast.parse(source, filename=path)
    lines = source.splitlines()
    mod = Module(path=path, rel=normalize_path(path), tree=tree, lines=lines)
    pragmas = parse_pragmas(lines, tool="repro-lint")

    found: List[Violation] = []
    for rule in rules:
        if rule.allowed(mod.rel):
            continue
        for line, col, message in rule.visit(mod):
            if suppressed_by_pragma(pragmas, line, rule.code):
                continue
            snippet = lines[line - 1].strip() if 0 < line <= len(lines) else ""
            found.append(Violation(path=path, line=line, col=col,
                                   code=rule.code, message=message,
                                   snippet=snippet))
    found.sort(key=lambda v: (v.line, v.col, v.code))
    return found


def lint_file(path: str, rules: Sequence[Rule] = RULES) -> List[Violation]:
    with open(path, "r", encoding="utf-8") as fh:
        return lint_source(fh.read(), path=path, rules=rules)


def iter_py_files(paths: Iterable[str]) -> List[str]:
    out: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs.sort()
                out.extend(os.path.join(root, f)
                           for f in sorted(files) if f.endswith(".py"))
        else:
            out.append(path)
    return out


def default_target() -> str:
    """The installed ``repro`` package directory (lint target default)."""
    import repro

    return os.path.dirname(os.path.abspath(repro.__file__))


# ----------------------------------------------------------------------
# Baseline (shared machinery lives in repro.analysis.reporting)
# ----------------------------------------------------------------------
def save_baseline(path: str, violations: Iterable[Violation]) -> None:
    _save_baseline(path, violations,
                   comment="repro lint baseline; regenerate with "
                           "`repro lint --update-baseline`")


def run_lint(paths: Optional[Sequence[str]] = None,
             baseline: Optional[Dict[str, int]] = None,
             rules: Sequence[Rule] = RULES) -> LintResult:
    """Lint ``paths`` (default: the installed repro package)."""
    files = iter_py_files(paths or [default_target()])
    found: List[Violation] = []
    for path in files:
        found.extend(lint_file(path, rules=rules))
    fresh, suppressed = apply_baseline(found, baseline)
    return LintResult(violations=fresh, baselined=suppressed,
                      files=len(files))
