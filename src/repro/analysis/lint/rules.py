"""The determinism lint rules (``RPR001`` ...).

Each rule is a small AST pass with a stable code, a one-line summary,
and an optional path allowlist (files audited to legitimately do the
flagged thing).  Rules are registered in :data:`RULES`; the engine in
``repro.analysis.lint`` runs them over a parsed module and merges the
findings with pragma and baseline suppression.

The rules encode the two invariants the reproduction rests on: every
``(seed, config)`` run must be bit-for-bit deterministic, and every
stochastic draw must flow through ``repro.simulator.rng.rng_stream``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

Finding = Tuple[int, int, str]  # (line, col, message)


@dataclass
class Module:
    """One parsed source file handed to every rule."""

    path: str                    # path as given on the command line
    rel: str                     # normalized posix path, rooted at repro/
    tree: ast.AST
    lines: List[str] = field(default_factory=list)


def dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class Rule:
    """Base class: subclasses set the class attributes and ``visit``."""

    code: str = ""
    name: str = ""
    summary: str = ""
    #: posix path suffixes where this rule is audited as acceptable
    allow_paths: Tuple[str, ...] = ()

    def allowed(self, rel: str) -> bool:
        return any(rel.endswith(suffix) for suffix in self.allow_paths)

    def visit(self, mod: Module) -> Iterator[Finding]:
        raise NotImplementedError


# ----------------------------------------------------------------------
class WallClockRule(Rule):
    """RPR001: no wall-clock reads outside the audited allowlist.

    A single ``time.time()`` in simulation code silently couples results
    to the host machine; host-side telemetry and progress reporting must
    go through ``repro.simulator.hostclock.host_clock`` (the one audited
    call site, re-exported by ``repro.experiments.common``).
    """

    code = "RPR001"
    name = "wall-clock"
    summary = "wall-clock read outside the audited allowlist"
    allow_paths = ("repro/simulator/hostclock.py",)

    _CALLS = frozenset({
        "time.time", "time.time_ns", "time.perf_counter",
        "time.perf_counter_ns", "time.monotonic", "time.monotonic_ns",
        "time.process_time", "time.process_time_ns",
        "datetime.now", "datetime.utcnow", "datetime.today",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today", "date.today",
    })
    _FROM_TIME = frozenset({
        "time", "time_ns", "perf_counter", "perf_counter_ns",
        "monotonic", "monotonic_ns", "process_time", "process_time_ns",
    })

    def visit(self, mod: Module) -> Iterator[Finding]:
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Call):
                d = dotted(node.func)
                if d in self._CALLS:
                    yield (node.lineno, node.col_offset,
                           f"wall-clock call {d!r}; host-side timing must "
                           f"go through experiments.common.host_clock()")
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in self._FROM_TIME:
                        yield (node.lineno, node.col_offset,
                               f"imports wall-clock {alias.name!r} from "
                               f"'time'; use experiments.common.host_clock()")


class RngRule(Rule):
    """RPR002: no ``random`` module, no raw numpy generators.

    Every stochastic draw must come from a named, seeded stream via
    ``simulator.rng.rng_stream`` so runs replay bit-for-bit.
    """

    code = "RPR002"
    name = "stray-rng"
    summary = "randomness outside simulator.rng.rng_stream"
    allow_paths = ("repro/simulator/rng.py",)

    def _is_module_random(self, d: str) -> bool:
        parts = d.split(".")
        for i, part in enumerate(parts[:-1]):  # must have an attr after it
            if part == "random" and (i == 0 or parts[i - 1] in ("np", "numpy")):
                return True
        return False

    def visit(self, mod: Module) -> Iterator[Finding]:
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("numpy.random"):
                        yield (node.lineno, node.col_offset,
                               f"import of {alias.name!r}; draw from "
                               f"simulator.rng.rng_stream instead")
            elif isinstance(node, ast.ImportFrom):
                if node.module in ("random", "numpy.random", "np.random"):
                    yield (node.lineno, node.col_offset,
                           f"import from {node.module!r}; draw from "
                           f"simulator.rng.rng_stream instead")
                elif node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            yield (node.lineno, node.col_offset,
                                   "import of numpy.random; draw from "
                                   "simulator.rng.rng_stream instead")
            elif isinstance(node, ast.Call):
                d = dotted(node.func)
                if d and self._is_module_random(d):
                    yield (node.lineno, node.col_offset,
                           f"stochastic call {d!r}; all draws must flow "
                           f"through simulator.rng.rng_stream")


class IterationOrderRule(Rule):
    """RPR003: no unordered iteration feeding the event schedule.

    Iterating a ``set`` (or sorting by ``id()``) yields a hash-seed /
    allocation dependent order; any schedule built from it diverges
    between runs.  Wrap the iterable in ``sorted(...)``.
    """

    code = "RPR003"
    name = "iteration-order"
    summary = "iteration-order hazard (unordered set / id() ordering)"

    @classmethod
    def _is_set_expr(cls, node: ast.AST, setvars: set) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            d = dotted(node.func)
            return d in ("set", "frozenset")
        if isinstance(node, ast.Name):
            return node.id in setvars
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Sub, ast.BitOr, ast.BitAnd, ast.BitXor)):
            return (cls._is_set_expr(node.left, setvars)
                    or cls._is_set_expr(node.right, setvars))
        return False

    @classmethod
    def _iter_scope(cls, node: ast.AST) -> Iterator[ast.AST]:
        """Child nodes in source order; nested defs are yielded (so the
        scanner can queue them) but not descended into."""
        for child in ast.iter_child_nodes(node):
            yield child
            if not isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                      ast.Lambda)):
                yield from cls._iter_scope(child)

    def _scan_scope(self, body: List[ast.stmt],
                    inherited: frozenset = frozenset()) -> Iterator[Finding]:
        setvars: set = set(inherited)
        # (nested def, closed-over set vars at its definition point)
        nested: List[Tuple[ast.AST, frozenset]] = []
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested.append((stmt, frozenset(setvars)))
                continue
            for node in [stmt] + list(self._iter_scope(stmt)):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    nested.append((node, frozenset(setvars)))
                elif isinstance(node, ast.Assign) and len(node.targets) == 1 \
                        and isinstance(node.targets[0], ast.Name):
                    name = node.targets[0].id
                    if self._is_set_expr(node.value, setvars):
                        setvars.add(name)
                    else:
                        setvars.discard(name)
                elif isinstance(node, (ast.For, ast.comprehension)):
                    it = node.iter
                    if self._is_set_expr(it, setvars):
                        what = it.id if isinstance(it, ast.Name) else "a set"
                        yield (it.lineno, it.col_offset,
                               f"iterating unordered set {what!r}; wrap in "
                               f"sorted(...) before it reaches the schedule")
                elif isinstance(node, ast.Call):
                    for kw in node.keywords:
                        if kw.arg == "key" and isinstance(kw.value, ast.Name) \
                                and kw.value.id == "id":
                            yield (node.lineno, node.col_offset,
                                   "ordering by id() is allocation-dependent "
                                   "and differs between runs")
        for fn, snapshot in nested:
            yield from self._scan_scope(fn.body, snapshot)  # type: ignore[attr-defined]

    def visit(self, mod: Module) -> Iterator[Finding]:
        yield from self._scan_scope(mod.tree.body)  # type: ignore[attr-defined]


class FloatEqRule(Rule):
    """RPR004: no ``==`` / ``!=`` between simulated timestamps.

    Simulated times are accumulated floats; exact comparison works until
    a cost model changes rounding, then silently flips.  Compare with an
    ordering or an explicit tolerance.
    """

    code = "RPR004"
    name = "float-eq-time"
    summary = "float equality on simulated timestamps"

    _NAMES = frozenset({"now", "arrival", "deadline", "timestamp", "t0", "t1"})
    _SUFFIXES = ("_time", "_at", "_deadline", "_arrival", "_since")

    def _timey(self, node: ast.AST) -> Optional[str]:
        name = None
        if isinstance(node, ast.Attribute):
            name = node.attr
        elif isinstance(node, ast.Name):
            name = node.id
        if name and (name in self._NAMES or name.endswith(self._SUFFIXES)):
            return name
        return None

    def visit(self, mod: Module) -> Iterator[Finding]:
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left] + list(node.comparators)
            if any(isinstance(o, ast.Constant) and o.value is None
                   for o in operands):
                continue  # `x == None` is a different lint's problem
            for operand in operands:
                name = self._timey(operand)
                if name:
                    yield (node.lineno, node.col_offset,
                           f"float equality on simulated timestamp {name!r}; "
                           f"use an ordering or an explicit tolerance")
                    break


class MutableDefaultRule(Rule):
    """RPR005: no mutable default arguments in simulator actors.

    A shared default list/dict leaks state between simulation runs in
    one process — the classic way two back-to-back "identical" runs
    diverge.
    """

    code = "RPR005"
    name = "mutable-default"
    summary = "mutable default argument"

    _CTORS = frozenset({"list", "dict", "set", "deque", "defaultdict",
                        "collections.deque", "collections.defaultdict",
                        "collections.OrderedDict", "OrderedDict"})

    def _mutable(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            return dotted(node.func) in self._CTORS
        return False

    def visit(self, mod: Module) -> Iterator[Finding]:
        for node in ast.walk(mod.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None]
            for default in defaults:
                if self._mutable(default):
                    yield (default.lineno, default.col_offset,
                           "mutable default argument is shared across calls "
                           "(and across simulation runs); default to None")


class TaxonomyRule(Rule):
    """RPR006: every literal trace category must be registered.

    A typo'd category in ``sim.record(...)`` silently vanishes from the
    Perfetto export and from every ``trace.filter`` consumer; this rule
    resolves each literal against ``observability.taxonomy.CATEGORIES``.
    """

    code = "RPR006"
    name = "trace-taxonomy"
    summary = "trace category not registered in observability.taxonomy"

    _METHODS = frozenset({"record", "filter", "count"})

    def __init__(self) -> None:
        from repro.observability.taxonomy import CATEGORIES
        self._known = frozenset(CATEGORIES)

    @staticmethod
    def _category_like(text: str) -> bool:
        head, dot, tail = text.partition(".")
        return bool(dot) and head.replace("_", "").isalpha() \
            and tail.replace("_", "").replace(".", "").isalpha()

    def visit(self, mod: Module) -> Iterator[Finding]:
        for node in ast.walk(mod.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in self._METHODS
                    and node.args):
                continue
            arg = node.args[0]
            if not (isinstance(arg, ast.Constant) and isinstance(arg.value, str)):
                continue
            if self._category_like(arg.value) and arg.value not in self._known:
                yield (arg.lineno, arg.col_offset,
                       f"trace category {arg.value!r} is not registered in "
                       f"observability.taxonomy.CATEGORIES")


#: the registry, in code order
RULES: Tuple[Rule, ...] = (
    WallClockRule(),
    RngRule(),
    IterationOrderRule(),
    FloatEqRule(),
    MutableDefaultRule(),
    TaxonomyRule(),
)
