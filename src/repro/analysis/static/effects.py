"""Per-function effect inference and interprocedural propagation.

Every function in the :class:`~repro.analysis.static.callgraph.CallGraph`
gets a *local* effect set from its own body, then a fixpoint worklist
propagates callee effects to callers along resolved ``call`` edges:

``RAW_CLOCK``
    a host wall-clock read (``time.time``, ``datetime.now``, ...),
    resolved through import aliases — ``from time import time as now``
    does not hide it the way it hides from the per-site lint.
``RAW_RNG``
    a draw from process-global randomness (``random.*``,
    ``numpy.random.*`` legacy globals).
``HOST_CLOCK`` / ``RNG_STREAM``
    the audited funnels.  The funnel functions *absorb* their raw
    effect: callers of ``host_clock()`` see ``HOST_CLOCK``, never
    ``RAW_CLOCK``, so debt cannot leak out of the audited module.
``YIELDS``
    the body is a generator (contains ``yield``) — a simulation
    process.  Calling a generator function executes nothing, so **no**
    effects propagate through a call edge into a generator; its effects
    only matter once the engine drives it as a process.
``BLOCKS``
    host-blocking: ``time.sleep`` or re-entering the scheduler
    (``Simulator.run`` / ``Simulator.step``).
``TRACE_EMIT``
    emits trace records (category literals collected separately).
``MUTATES_SHARED`` / ``RACE_INSTRUMENTED``
    container mutation through ``self`` outside ``__init__`` /
    presence of ``race_read``/``race_write``/``sync_region`` calls —
    the raw material for the race-coverage contract.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.static.callgraph import CallGraph, FunctionInfo

__all__ = ["RAW_CLOCK", "RAW_RNG", "HOST_CLOCK", "RNG_STREAM", "YIELDS",
           "BLOCKS", "TRACE_EMIT", "MUTATES_SHARED", "RACE_INSTRUMENTED",
           "FunctionEffects", "EffectAnalysis", "own_nodes"]

RAW_CLOCK = "RAW_CLOCK"
RAW_RNG = "RAW_RNG"
HOST_CLOCK = "HOST_CLOCK"
RNG_STREAM = "RNG_STREAM"
YIELDS = "YIELDS"
BLOCKS = "BLOCKS"
TRACE_EMIT = "TRACE_EMIT"
MUTATES_SHARED = "MUTATES_SHARED"
RACE_INSTRUMENTED = "RACE_INSTRUMENTED"

#: external dotted names that read the host wall clock (mirrors RPR001,
#: but matched after import-alias resolution)
RAW_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.date.today",
})

#: external dotted names that block the host thread
BLOCKING_CALLS = frozenset({"time.sleep"})

#: dotted-prefix matches for process-global RNG draws
RAW_RNG_PREFIXES = ("random.", "numpy.random.", "np.random.")

#: audited funnel functions and the effect they absorb into
FUNNEL_SUFFIXES: Dict[str, Tuple[str, str]] = {
    "simulator.hostclock.host_clock": (RAW_CLOCK, HOST_CLOCK),
    "simulator.rng.rng_stream": (RAW_RNG, RNG_STREAM),
}

#: in-package functions that re-enter the scheduler (host-blocking from
#: any non-process context)
BLOCKING_QNAME_SUFFIXES = (
    "simulator.engine.Simulator.run",
    "simulator.engine.Simulator.step",
)

#: method names that mutate their receiver container in place
_MUTATORS = frozenset({
    "append", "appendleft", "extend", "add", "insert", "remove",
    "discard", "pop", "popleft", "popitem", "update", "clear",
    "setdefault", "push",
})

_RACE_HOOKS = frozenset({"race_read", "race_write", "sync_region"})

_TRACE_METHODS = frozenset({"record", "count", "filter"})


@dataclass
class FunctionEffects:
    """Inferred effects of one function."""

    local: Set[str] = field(default_factory=set)
    #: transitive effects after propagation + funnel absorption
    out: Set[str] = field(default_factory=set)
    #: effect -> (via, line): ``via`` is the callee qname (or the raw
    #: external name) the effect arrived through; empty = local origin
    witness: Dict[str, Tuple[str, int]] = field(default_factory=dict)
    #: (category literal, line) of every trace emission in the body
    categories: List[Tuple[str, int]] = field(default_factory=list)
    #: (line, description) of shared-container writes through ``self``
    mutations: List[Tuple[int, str]] = field(default_factory=list)

    @property
    def is_generator(self) -> bool:
        return YIELDS in self.local

    @property
    def instrumented(self) -> bool:
        return RACE_INSTRUMENTED in self.local


def own_nodes(info: FunctionInfo) -> Iterator[ast.AST]:
    """AST nodes of ``info``'s own body, not descending into nested
    function/class/lambda scopes (those are separate graph nodes)."""
    node = info.node
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)):
        stack: List[ast.AST] = list(node.body)
    elif isinstance(node, ast.Lambda):
        stack = [node.body]
    else:                                                # pragma: no cover
        stack = []
    while stack:
        current = stack.pop()
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.ClassDef, ast.Lambda)):
            continue
        yield current
        stack.extend(ast.iter_child_nodes(current))


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _external_name(imports: Dict[str, str], dotted: str) -> str:
    """Rewrite the head of ``dotted`` through the module's import map so
    aliased externals (``from time import time as now``) still match."""
    head, _, rest = dotted.partition(".")
    target = imports.get(head)
    if target is None:
        return dotted
    return f"{target}.{rest}" if rest else target


def _category_like(value: str) -> bool:
    return ("." in value and value == value.lower()
            and " " not in value and value.replace(".", "")
            .replace("_", "").isalnum())


class EffectAnalysis:
    """Local inference + worklist propagation over a call graph."""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self.functions: Dict[str, FunctionEffects] = {}
        self._funnels: Dict[str, Tuple[str, str]] = {}
        self._run()

    # -- public queries -------------------------------------------------
    def effects(self, qname: str) -> FunctionEffects:
        return self.functions[qname]

    def is_funnel(self, qname: str) -> bool:
        return qname in self._funnels

    def chain(self, qname: str, effect: str, limit: int = 12) -> List[str]:
        """Witness path from ``qname`` down to the effect's origin."""
        path = [qname]
        current = qname
        while len(path) < limit:
            fx = self.functions.get(current)
            if fx is None:
                break
            via = fx.witness.get(effect, ("", 0))[0]
            if not via:
                break
            path.append(via)
            if via not in self.functions:
                break                     # external name: terminal
            current = via
        return path

    # -- construction ---------------------------------------------------
    def _run(self) -> None:
        graph = self.graph
        for qname in sorted(graph.functions):
            info = graph.functions[qname]
            for suffix, absorb in sorted(FUNNEL_SUFFIXES.items()):
                if qname == f"{graph.package}.{suffix}":
                    self._funnels[qname] = absorb
            self.functions[qname] = self._infer_local(info)
        for suffix in BLOCKING_QNAME_SUFFIXES:
            qname = f"{graph.package}.{suffix}"
            fx = self.functions.get(qname)
            if fx is not None and BLOCKS not in fx.local:
                fx.local.add(BLOCKS)
                fx.witness.setdefault(
                    BLOCKS, ("", graph.functions[qname].line))
        self._propagate()

    def _infer_local(self, info: FunctionInfo) -> FunctionEffects:
        fx = FunctionEffects()
        mod = self.graph.modules.get(info.module)
        imports = mod.imports if mod is not None else {}
        for node in own_nodes(info):
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                fx.local.add(YIELDS)
                fx.witness.setdefault(YIELDS, ("", node.lineno))
            elif isinstance(node, ast.Call):
                self._infer_call(info, fx, imports, node)
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
                self._infer_mutation(info, fx, node)
        return fx

    def _infer_call(self, info: FunctionInfo, fx: FunctionEffects,
                    imports: Dict[str, str], node: ast.Call) -> None:
        dotted = _dotted(node.func)
        attr = node.func.attr if isinstance(node.func, ast.Attribute) \
            else dotted
        if dotted is not None:
            external = _external_name(imports, dotted)
            if external in RAW_CLOCK_CALLS:
                fx.local.add(RAW_CLOCK)
                fx.witness.setdefault(RAW_CLOCK, (external, node.lineno))
            elif external in BLOCKING_CALLS:
                fx.local.add(BLOCKS)
                fx.witness.setdefault(BLOCKS, (external, node.lineno))
            elif external.startswith(RAW_RNG_PREFIXES):
                fx.local.add(RAW_RNG)
                fx.witness.setdefault(RAW_RNG, (external, node.lineno))
        if attr in _RACE_HOOKS:
            fx.local.add(RACE_INSTRUMENTED)
            fx.witness.setdefault(RACE_INSTRUMENTED, ("", node.lineno))
        if attr in _TRACE_METHODS and node.args:
            first = node.args[0]
            if isinstance(first, ast.Constant) \
                    and isinstance(first.value, str) \
                    and _category_like(first.value):
                fx.local.add(TRACE_EMIT)
                fx.witness.setdefault(TRACE_EMIT, ("", node.lineno))
                fx.categories.append((first.value, node.lineno))
        # in-place container mutation through self (self.x.append(v))
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr in _MUTATORS:
            receiver = _dotted(node.func.value)
            if receiver is not None and receiver.startswith("self.") \
                    and info.name not in ("__init__", "__new__", "reset"):
                fx.local.add(MUTATES_SHARED)
                fx.mutations.append(
                    (node.lineno, f"{receiver}.{node.func.attr}"))

    def _infer_mutation(self, info: FunctionInfo, fx: FunctionEffects,
                        node: ast.Assign | ast.AugAssign | ast.Delete,
                        ) -> None:
        if info.cls is None or info.name in ("__init__", "__new__", "reset"):
            return
        if isinstance(node, ast.Assign):
            targets: List[ast.expr] = list(node.targets)
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
        else:
            targets = list(node.targets)
        for target in targets:
            if not isinstance(target, ast.Subscript):
                continue
            receiver = _dotted(target.value)
            if receiver is not None and receiver.startswith("self."):
                fx.local.add(MUTATES_SHARED)
                fx.mutations.append((node.lineno, f"{receiver}[...]"))

    # -- propagation ----------------------------------------------------
    def _exported(self, qname: str) -> Set[str]:
        """Effects ``qname`` contributes to a caller.

        Generators contribute nothing (calling one executes no code);
        funnels swap their raw effect for the audited one.
        """
        fx = self.functions[qname]
        if fx.is_generator:
            return set()
        out = set(fx.out)
        absorb = self._funnels.get(qname)
        if absorb is not None:
            raw, funneled = absorb
            if raw in out:
                out.discard(raw)
                out.add(funneled)
        # receiver-local bookkeeping effects do not travel: a caller of
        # an instrumented/mutating method is not itself mutating
        out.discard(MUTATES_SHARED)
        out.discard(RACE_INSTRUMENTED)
        return out

    def _propagate(self) -> None:
        graph = self.graph
        for qname in sorted(self.functions):
            fx = self.functions[qname]
            fx.out = set(fx.local)
        worklist = sorted(self.functions)
        pending = set(worklist)
        while worklist:
            qname = worklist.pop()
            pending.discard(qname)
            contribution = self._exported(qname)
            if not contribution:
                continue
            for edge in graph.calls_to(qname):
                if edge.kind != "call":
                    continue
                caller_fx = self.functions.get(edge.caller)
                if caller_fx is None:
                    continue
                added = contribution - caller_fx.out
                if not added:
                    continue
                caller_fx.out |= added
                for effect in sorted(added):
                    caller_fx.witness.setdefault(
                        effect, (qname, edge.line))
                if edge.caller not in pending:
                    pending.add(edge.caller)
                    worklist.append(edge.caller)
