"""The whole-package static effect & contract checker (``repro check``).

Where ``repro lint`` inspects one file at a time, this package builds
an interprocedural view of all of ``src/repro``:

1. :mod:`~repro.analysis.static.callgraph` parses every module and
   resolves calls, method dispatch, imports/re-exports, lambdas and
   callback registrations into one :class:`CallGraph`;
2. :mod:`~repro.analysis.static.effects` infers per-function effects
   (blocking, yielding, host-clock, RNG, trace emission, shared-state
   mutation) and propagates them callee-to-caller to a fixpoint, with
   the audited ``hostclock``/``rng_stream`` funnels absorbing their raw
   effects;
3. :mod:`~repro.analysis.static.contracts` enforces the package-wide
   contracts (RPC001–RPC006) and offers an advisory dead-code report.

Suppression mirrors the lint exactly, via the shared
:mod:`repro.analysis.reporting` machinery: inline
``# repro-check: allow[RPC...]`` pragmas and a checked-in fingerprint
baseline (``.repro-check-baseline.json``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.reporting import (Violation, apply_baseline,
                                      parse_pragmas,
                                      save_baseline as _save_baseline,
                                      suppressed_by_pragma)
from repro.analysis.static.callgraph import (CallGraph, FunctionInfo,
                                             build_package)
from repro.analysis.static.contracts import (CONTRACTS, contract_catalog,
                                             dead_public_functions,
                                             run_contracts)
from repro.analysis.static.effects import EffectAnalysis

__all__ = ["CheckResult", "CONTRACTS", "contract_catalog", "check_package",
           "run_check", "save_baseline", "default_target"]

PRAGMA_TOOL = "repro-check"


@dataclass
class CheckResult:
    """Outcome of one ``repro check`` run."""

    violations: List[Violation]          # actionable findings
    baselined: List[Violation]           # suppressed by the baseline
    files: int
    graph: CallGraph
    analysis: EffectAnalysis
    dead: List[FunctionInfo] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.violations


def default_target() -> str:
    from repro.analysis.lint import default_target as lint_target

    return lint_target()


def save_baseline(path: str, violations: List[Violation]) -> None:
    _save_baseline(path, violations,
                   comment="repro check baseline; regenerate with "
                           "`repro check --update-baseline`")


def _drop_pragma_suppressed(graph: CallGraph,
                            found: List[Violation]) -> List[Violation]:
    pragmas_by_path: Dict[str, Dict[int, Optional[frozenset]]] = {}
    for name in sorted(graph.modules):
        mod = graph.modules[name]
        pragmas_by_path[mod.path] = parse_pragmas(mod.lines,
                                                  tool=PRAGMA_TOOL)
    kept: List[Violation] = []
    for violation in found:
        pragmas = pragmas_by_path.get(violation.path, {})
        if not suppressed_by_pragma(pragmas, violation.line,
                                    violation.code):
            kept.append(violation)
    return kept


def check_package(root: str, dead_code: bool = False,
                  ) -> Tuple[List[Violation], CallGraph, EffectAnalysis,
                             List[FunctionInfo]]:
    """Analyze the package at ``root``; pragma suppression applied."""
    graph = build_package(root)
    analysis = EffectAnalysis(graph)
    found = _drop_pragma_suppressed(graph, run_contracts(graph, analysis))
    dead = dead_public_functions(graph) if dead_code else []
    return found, graph, analysis, dead


def run_check(root: Optional[str] = None,
              baseline: Optional[Dict[str, int]] = None,
              dead_code: bool = False) -> CheckResult:
    """Check ``root`` (default: the installed repro package)."""
    target = root or default_target()
    found, graph, analysis, dead = check_package(target,
                                                 dead_code=dead_code)
    fresh, suppressed = apply_baseline(found, baseline)
    return CheckResult(violations=fresh, baselined=suppressed,
                       files=len(graph.modules), graph=graph,
                       analysis=analysis, dead=dead)
