"""Package-wide contract passes over the effect-annotated call graph.

Each pass yields :class:`~repro.analysis.reporting.Violation` findings
with stable RPC codes (the static complement to the per-file RPR lint):

RPC001 callback-blocks
    A blocking/yielding effect is reachable from a non-process context:
    a ``Trace.subscribe``/``add_done_callback`` callback or a strategy
    ``_shares`` hook.  These run inline in the engine or in a
    subscriber sweep — suspending or re-entering the scheduler there
    deadlocks or corrupts simulated time.
RPC002 raw-clock-escape
    A host wall-clock read outside the audited
    ``repro.simulator.hostclock`` funnel — resolved through import
    aliases, so wrappers cannot launder ``time.time``.
RPC003 stray-rng
    A process-global RNG draw outside the seeded
    ``repro.simulator.rng.rng_stream`` funnel.
RPC004 unguarded-shared-write
    In a race-instrumented class, a method mutates shared ``self``
    state with no ``race_write``/``sync_region`` in its own body nor in
    every in-package caller — a coverage gap the dynamic detector
    cannot see.
RPC005 unregistered-category
    A trace emission whose literal category is missing from
    ``observability/taxonomy.py``.
RPC006 dead-taxonomy
    A taxonomy category no category-like literal in the package ever
    mentions (indirect emission via ``functools.partial`` counts — any
    literal occurrence is accepted as evidence of life).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.reporting import Violation, normalize_path
from repro.analysis.static.callgraph import CallGraph, FunctionInfo
from repro.analysis.static.effects import (BLOCKS, MUTATES_SHARED, RAW_CLOCK,
                                           RAW_RNG, YIELDS, EffectAnalysis,
                                           _category_like)

__all__ = ["CONTRACTS", "contract_catalog", "run_contracts",
           "dead_public_functions"]

#: (code, summary) — the full catalog, stable order
CONTRACTS: Tuple[Tuple[str, str], ...] = (
    ("RPC001", "blocking or yielding effect reachable from a "
               "non-process callback context"),
    ("RPC002", "host wall-clock read outside the audited hostclock "
               "funnel (alias-resolved)"),
    ("RPC003", "process-global RNG draw outside the seeded rng_stream "
               "funnel"),
    ("RPC004", "shared-state write in a race-instrumented class with no "
               "instrumentation coverage"),
    ("RPC005", "trace emission with a category missing from the "
               "taxonomy registry"),
    ("RPC006", "taxonomy category never mentioned by any literal in "
               "the package"),
)

#: per-code, package-relative path suffixes exempt from that contract
#: (the funnels themselves, mirroring the lint's allow_paths)
ALLOW_PATHS: Dict[str, Tuple[str, ...]] = {
    "RPC002": ("simulator/hostclock.py",),
    "RPC003": ("simulator/rng.py",),
}

#: method names that are callback hooks by convention even without a
#: visible registration site
HOOK_METHOD_NAMES = ("_shares",)


def contract_catalog() -> List[Tuple[str, str]]:
    return list(CONTRACTS)


def _allowed(code: str, path: str) -> bool:
    posix = path.replace("\\", "/")
    return any(posix.endswith(suffix)
               for suffix in ALLOW_PATHS.get(code, ()))


def _snippet(graph: CallGraph, path: str, line: int) -> str:
    for name in sorted(graph.modules):
        mod = graph.modules[name]
        if mod.path == path:
            if 0 < line <= len(mod.lines):
                return mod.lines[line - 1].strip()
            return ""
    return ""


def _violation(graph: CallGraph, path: str, line: int, col: int,
               code: str, message: str) -> Violation:
    return Violation(path=path, line=line, col=col, code=code,
                     message=message,
                     snippet=_snippet(graph, path, line))


# ----------------------------------------------------------------------
# RPC001 — no blocking/yielding reachable from callback contexts
# ----------------------------------------------------------------------
def _callback_roots(graph: CallGraph,
                    ) -> List[Tuple[str, str, str, int]]:
    """(callback qname, how-registered, report path, report line)."""
    roots: List[Tuple[str, str, str, int]] = []
    seen: Set[Tuple[str, str]] = set()
    for reg in graph.registrations:
        key = (reg.callback, reg.via)
        if key in seen:
            continue
        seen.add(key)
        roots.append((reg.callback, f"registered via .{reg.via}()",
                      reg.path, reg.line))
    for name in HOOK_METHOD_NAMES:
        for qname in graph.methods_named(name):
            info = graph.functions[qname]
            roots.append((qname, f"strategy {name} hook",
                          info.path, info.line))
    return roots


def _check_callbacks(graph: CallGraph,
                     analysis: EffectAnalysis) -> Iterator[Violation]:
    for callback, how, path, line in _callback_roots(graph):
        fx = analysis.functions.get(callback)
        if fx is None:
            continue
        for effect, verb in ((BLOCKS, "block the host"),
                             (YIELDS, "yield to the scheduler")):
            if effect not in fx.out:
                continue
            chain = analysis.chain(callback, effect)
            via = " -> ".join(q.rsplit(".", 1)[-1] if "." in q else q
                              for q in chain)
            yield _violation(
                graph, path, line, 0, "RPC001",
                f"callback '{callback}' ({how}) can {verb}: {via}")
            break     # one finding per root is enough


# ----------------------------------------------------------------------
# RPC002 / RPC003 — funnel escapes
# ----------------------------------------------------------------------
def _check_funnels(graph: CallGraph,
                   analysis: EffectAnalysis) -> Iterator[Violation]:
    specs = (("RPC002", RAW_CLOCK,
              "read via the repro.simulator.hostclock.host_clock funnel"),
             ("RPC003", RAW_RNG,
              "draw via repro.simulator.rng.rng_stream(seed, *key)"))
    for qname in sorted(analysis.functions):
        info = graph.functions[qname]
        fx = analysis.functions[qname]
        for code, effect, fix in specs:
            if effect not in fx.local or _allowed(code, info.path):
                continue
            via, line = fx.witness.get(effect, ("", info.line))
            what = via or "a raw call"
            yield _violation(
                graph, info.path, line, 0, code,
                f"'{qname}' calls {what} outside the audited funnel; "
                f"{fix}")


# ----------------------------------------------------------------------
# RPC004 — race-instrumentation coverage
# ----------------------------------------------------------------------
def _race_aware_classes(graph: CallGraph,
                        analysis: EffectAnalysis) -> Set[str]:
    """Classes where at least one own method is race-instrumented."""
    aware: Set[str] = set()
    for cls_qname in sorted(graph.classes):
        for name in sorted(graph.classes[cls_qname].methods):
            method = graph.classes[cls_qname].methods[name]
            fx = analysis.functions.get(method.qname)
            if fx is not None and fx.instrumented:
                aware.add(cls_qname)
                break
    return aware


def _check_shared_writes(graph: CallGraph,
                         analysis: EffectAnalysis) -> Iterator[Violation]:
    aware = _race_aware_classes(graph, analysis)
    for cls_qname in sorted(aware):
        cls = graph.classes[cls_qname]
        for name in sorted(cls.methods):
            method = cls.methods[name]
            if method.is_dunder:
                continue
            fx = analysis.functions.get(method.qname)
            if fx is None or MUTATES_SHARED not in fx.local \
                    or fx.instrumented:
                continue
            callers = [e for e in graph.calls_to(method.qname)
                       if e.kind == "call"]
            if callers and all(
                    analysis.functions[e.caller].instrumented
                    for e in callers
                    if e.caller in analysis.functions):
                continue          # every call site covers the write
            for line, what in fx.mutations:
                yield _violation(
                    graph, method.path, line, 0, "RPC004",
                    f"'{method.qname}' writes shared state ({what}) in "
                    f"race-instrumented class '{cls.name}' with no "
                    f"race_write()/sync_region() in body or callers")


# ----------------------------------------------------------------------
# RPC005 / RPC006 — trace taxonomy contract
# ----------------------------------------------------------------------
def _taxonomy_module(graph: CallGraph) -> Optional[str]:
    target = f"{graph.package}.observability.taxonomy"
    return target if target in graph.modules else None


def _registered_categories(graph: CallGraph,
                           taxonomy: str) -> Dict[str, int]:
    """category -> taxonomy source line, from the CATEGORIES literal."""
    mod = graph.modules[taxonomy]
    out: Dict[str, int] = {}
    for node in mod.tree.body:
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and node.targets[0].id == "CATEGORIES":
            value = node.value
        elif isinstance(node, ast.AnnAssign) \
                and isinstance(node.target, ast.Name) \
                and node.target.id == "CATEGORIES":
            value = node.value
        if isinstance(value, ast.Dict):
            for key in value.keys:
                if isinstance(key, ast.Constant) \
                        and isinstance(key.value, str):
                    out[key.value] = key.lineno
    return out


def _literal_mentions(graph: CallGraph, taxonomy: str) -> Set[str]:
    """Every category-like string literal outside the taxonomy module."""
    mentions: Set[str] = set()
    for name in sorted(graph.modules):
        if name == taxonomy:
            continue
        for node in ast.walk(graph.modules[name].tree):
            if isinstance(node, ast.Constant) \
                    and isinstance(node.value, str) \
                    and _category_like(node.value):
                mentions.add(node.value)
    return mentions


def _check_taxonomy(graph: CallGraph,
                    analysis: EffectAnalysis) -> Iterator[Violation]:
    taxonomy = _taxonomy_module(graph)
    if taxonomy is None:
        return
    registered = _registered_categories(graph, taxonomy)
    tax_mod = graph.modules[taxonomy]

    for qname in sorted(analysis.functions):
        info = graph.functions[qname]
        if info.module == taxonomy:
            continue
        for category, line in analysis.functions[qname].categories:
            root = category.split(".", 1)[0]
            if category in registered:
                continue
            # prefix registration: "nmad.pw_post[mx]" style labels
            if category.split("[", 1)[0] in registered:
                continue
            yield _violation(
                graph, info.path, line, 0, "RPC005",
                f"category '{category}' (root '{root}') is not "
                f"registered in observability/taxonomy.py")

    mentions = _literal_mentions(graph, taxonomy)
    for category in sorted(registered):
        if category in mentions:
            continue
        if any(m.split("[", 1)[0] == category for m in sorted(mentions)):
            continue
        yield _violation(
            graph, tax_mod.path, registered[category], 0, "RPC006",
            f"taxonomy category '{category}' is never mentioned by any "
            f"literal in the package (dead registry entry)")


# ----------------------------------------------------------------------
# Dead-code report (advisory, not part of the exit-status contracts)
# ----------------------------------------------------------------------
def dead_public_functions(graph: CallGraph) -> List[FunctionInfo]:
    """Public functions unreachable from module bodies and exports.

    Roots: every module's top-level code, every ``__all__`` export and
    every dunder.  Methods additionally stay alive when their bare name
    is mentioned as an attribute anywhere (conservative dynamic-dispatch
    evidence), or when their class is named in its module's ``__all__``
    — an exported class's public methods are declared API surface.
    Advisory only — dynamic imports (``importlib``) and out-of-package
    callers (tests, notebooks) are invisible here.
    """
    roots: List[str] = []
    for name in sorted(graph.modules):
        roots.append(graph.module_entry(name))
        mod = graph.modules[name]
        for export in mod.exports:
            candidate = f"{name}.{export}"
            if candidate in graph.functions:
                roots.append(candidate)
            resolved = _export_target(graph, name, export)
            if resolved is not None:
                roots.append(resolved)
    for qname in sorted(graph.functions):
        if graph.functions[qname].is_dunder:
            roots.append(qname)
    live = graph.reachable(roots)
    dead: List[FunctionInfo] = []
    for qname in sorted(graph.functions):
        info = graph.functions[qname]
        if qname in live or not info.is_public or info.is_lambda \
                or info.name == "<module>":
            continue
        if info.name in graph.mentioned_names:
            continue
        if info.cls is not None and _class_exported(graph, info):
            continue
        dead.append(info)
    return dead


def _class_exported(graph: CallGraph, info: FunctionInfo) -> bool:
    mod = graph.modules.get(info.module)
    if mod is None or info.cls is None:
        return False
    return info.cls.rsplit(".", 1)[-1] in mod.exports


def _export_target(graph: CallGraph, module: str,
                   export: str) -> Optional[str]:
    mod = graph.modules[module]
    target = mod.imports.get(export)
    if target is not None and target in graph.functions:
        return target
    if target is not None and target in graph.classes:
        inits = graph.overrides_of(target, "__init__")
        return inits[0] if inits else None
    return None


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def run_contracts(graph: CallGraph,
                  analysis: EffectAnalysis) -> List[Violation]:
    """All contract passes, deterministically ordered."""
    found: List[Violation] = []
    for check in (_check_callbacks, _check_funnels, _check_shared_writes,
                  _check_taxonomy):
        found.extend(check(graph, analysis))
    found.sort(key=lambda v: (normalize_path(v.path), v.line, v.code,
                              v.message))
    return found
