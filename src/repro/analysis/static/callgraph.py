"""Whole-package call-graph construction for the static analyzer.

Parses every module of a package into one :class:`CallGraph`: functions
(module-level defs, methods, named lambdas, nested defs) as nodes, and
resolved call/reference sites as edges.  Resolution is *conservative*:

* direct calls resolve through module scope, imports and re-export
  chains (``from repro.x import y`` in an ``__init__`` forwards);
* ``self.m()`` / ``cls.m()`` resolves through the class hierarchy —
  the defining class, its in-package bases, **and** its subclasses
  (dynamic dispatch may land on any override);
* ``obj.m()`` on an unknown receiver resolves *by name* to every
  in-package method called ``m`` (an over-approximation that keeps
  effect propagation sound at the cost of precision);
* a function name mentioned outside a call position (passed as a
  callback, used as a decorator) becomes a ``ref`` edge, and the
  surrounding registration call is kept so contract passes can find
  subscriber/handler roots.

The graph never imports the analyzed code — everything is AST-only, so
``repro check`` can run on broken or partial trees.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = ["FunctionInfo", "ClassInfo", "ModuleInfo", "Edge", "Registration",
           "CallGraph", "build_package", "iter_package_files",
           "iter_functions"]

#: call-argument attribute names that register a callback to be invoked
#: later from a non-process context (trace subscribers, event handlers)
CALLBACK_REGISTRARS = ("subscribe", "add_done_callback")


@dataclass
class FunctionInfo:
    """One function/method/lambda definition in the package."""

    qname: str                     # repro.nmad.core.NmadCore.post_pw
    module: str                    # repro.nmad.core
    name: str                      # post_pw
    cls: Optional[str]             # enclosing class qname, or None
    path: str
    line: int
    node: ast.AST
    decorators: Tuple[str, ...] = ()
    is_lambda: bool = False

    @property
    def is_method(self) -> bool:
        return self.cls is not None

    @property
    def is_public(self) -> bool:
        return not self.name.startswith("_")

    @property
    def is_dunder(self) -> bool:
        return self.name.startswith("__") and self.name.endswith("__")


@dataclass
class ClassInfo:
    """One class definition with its in-package base links."""

    qname: str
    module: str
    name: str
    path: str
    line: int
    bases: Tuple[str, ...] = ()            # resolved base qnames (in-package)
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One parsed source module."""

    name: str
    path: str
    tree: ast.Module
    lines: List[str]
    imports: Dict[str, str] = field(default_factory=dict)  # alias -> target
    exports: Tuple[str, ...] = ()                          # __all__ names


@dataclass(frozen=True)
class Edge:
    """One resolved call or reference site."""

    caller: str                    # qname of the calling function
    callee: str                    # qname of the target function
    line: int
    kind: str                      # "call" | "ref"


@dataclass(frozen=True)
class Registration:
    """A function passed into a callback-registering call.

    ``via`` is the attribute name of the registering call (e.g.
    ``subscribe``); ``callback`` the resolved function qname.
    """

    via: str
    callback: str
    caller: str
    path: str
    line: int


def iter_package_files(root: str) -> List[Tuple[str, str]]:
    """``(module_name, path)`` for every ``.py`` under package dir ``root``.

    ``root`` is the package directory itself (e.g. ``src/repro``); the
    package name is its basename.
    """
    root = os.path.abspath(root)
    package = os.path.basename(root.rstrip(os.sep))
    out: List[Tuple[str, str]] = []
    for dirpath, dirs, files in os.walk(root):
        dirs.sort()
        rel = os.path.relpath(dirpath, root)
        parts = [] if rel == "." else rel.split(os.sep)
        for fname in sorted(files):
            if not fname.endswith(".py"):
                continue
            path = os.path.join(dirpath, fname)
            if fname == "__init__.py":
                mod = ".".join([package] + parts)
            else:
                mod = ".".join([package] + parts + [fname[:-3]])
            out.append((mod, path))
    return out


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class CallGraph:
    """The package-wide graph; see the module docstring for semantics."""

    def __init__(self, package: str) -> None:
        self.package = package
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.edges: Dict[str, List[Edge]] = {}
        self.callers: Dict[str, List[Edge]] = {}
        self.registrations: List[Registration] = []
        #: attribute / plain names mentioned anywhere (name-based
        #: liveness evidence for the dead-code pass)
        self.mentioned_names: Set[str] = set()
        #: methods by bare name (dynamic-dispatch approximation)
        self._methods_by_name: Dict[str, List[str]] = {}
        #: subclasses per class qname
        self._subclasses: Dict[str, List[str]] = {}

    # -- queries --------------------------------------------------------
    def function(self, qname: str) -> FunctionInfo:
        return self.functions[qname]

    def methods_named(self, name: str) -> List[str]:
        return list(self._methods_by_name.get(name, ()))

    def calls_from(self, qname: str) -> List[Edge]:
        return self.edges.get(qname, [])

    def calls_to(self, qname: str) -> List[Edge]:
        return self.callers.get(qname, [])

    def overrides_of(self, cls_qname: str, method: str) -> List[str]:
        """``method`` resolved over the class, its bases and subclasses."""
        found: List[str] = []
        seen: Set[str] = set()
        frontier = [cls_qname]
        # walk up through bases and down through subclasses
        while frontier:
            cq = frontier.pop()
            if cq in seen:
                continue
            seen.add(cq)
            info = self.classes.get(cq)
            if info is None:
                continue
            fn = info.methods.get(method)
            if fn is not None:
                found.append(fn.qname)
            frontier.extend(info.bases)
            frontier.extend(self._subclasses.get(cq, ()))
        return found

    def reachable(self, roots: Sequence[str],
                  kinds: Tuple[str, ...] = ("call", "ref")) -> Set[str]:
        """Every function reachable from ``roots`` along edge ``kinds``."""
        seen: Set[str] = set()
        frontier = [r for r in roots if r in self.functions]
        while frontier:
            qname = frontier.pop()
            if qname in seen:
                continue
            seen.add(qname)
            for edge in self.edges.get(qname, ()):
                if edge.kind in kinds and edge.callee not in seen:
                    frontier.append(edge.callee)
        return seen

    def module_entry(self, module: str) -> str:
        """qname of the pseudo-function holding module-level code."""
        return f"{module}.<module>"

    # -- construction ---------------------------------------------------
    def _add_edge(self, edge: Edge) -> None:
        self.edges.setdefault(edge.caller, []).append(edge)
        self.callers.setdefault(edge.callee, []).append(edge)

    def _add_function(self, info: FunctionInfo) -> None:
        self.functions[info.qname] = info
        if info.cls is not None:
            self._methods_by_name.setdefault(info.name, []).append(info.qname)


# ----------------------------------------------------------------------
# Builder
# ----------------------------------------------------------------------
class _ModuleCollector:
    """First pass: collect defs, classes, imports of one module."""

    def __init__(self, graph: CallGraph, mod: ModuleInfo) -> None:
        self.graph = graph
        self.mod = mod

    def collect(self) -> None:
        self._imports(self.mod.tree)
        self._exports(self.mod.tree)
        entry = FunctionInfo(
            qname=self.graph.module_entry(self.mod.name),
            module=self.mod.name, name="<module>", cls=None,
            path=self.mod.path, line=1, node=self.mod.tree)
        self.graph._add_function(entry)
        self._scope(self.mod.tree.body, prefix=self.mod.name, cls=None)

    def _imports(self, tree: ast.Module) -> None:
        pkg_parts = self.mod.name.split(".")
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else \
                        alias.name.split(".")[0]
                    self.mod.imports[bound] = target
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    # relative import: resolve against this module's package
                    base_parts = pkg_parts[:-node.level] \
                        if not self.mod.path.endswith("__init__.py") \
                        else pkg_parts[:len(pkg_parts) - node.level + 1]
                    base = ".".join(base_parts)
                    module = f"{base}.{node.module}" if node.module else base
                else:
                    module = node.module or ""
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    self.mod.imports[bound] = f"{module}.{alias.name}"

    def _exports(self, tree: ast.Module) -> None:
        for node in tree.body:
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name) \
                    and node.targets[0].id == "__all__" \
                    and isinstance(node.value, (ast.List, ast.Tuple)):
                names = [elt.value for elt in node.value.elts
                         if isinstance(elt, ast.Constant)
                         and isinstance(elt.value, str)]
                self.mod.exports = tuple(names)

    def _scope(self, body: Sequence[ast.stmt], prefix: str,
               cls: Optional[str]) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._function(stmt, prefix, cls)
            elif isinstance(stmt, ast.ClassDef):
                self._class(stmt, prefix)
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name) \
                    and isinstance(stmt.value, ast.Lambda):
                name = stmt.targets[0].id
                info = FunctionInfo(
                    qname=f"{prefix}.{name}", module=self.mod.name,
                    name=name, cls=cls, path=self.mod.path,
                    line=stmt.lineno, node=stmt.value, is_lambda=True)
                self.graph._add_function(info)
                if cls is not None:
                    self.graph.classes[cls].methods[name] = info

    def _function(self, node: ast.FunctionDef | ast.AsyncFunctionDef,
                  prefix: str, cls: Optional[str]) -> None:
        decorators = tuple(d for d in (_dotted(dec) for dec in
                                       node.decorator_list) if d)
        info = FunctionInfo(
            qname=f"{prefix}.{node.name}", module=self.mod.name,
            name=node.name, cls=cls, path=self.mod.path,
            line=node.lineno, node=node, decorators=decorators)
        self.graph._add_function(info)
        if cls is not None:
            self.graph.classes[cls].methods[node.name] = info
        # nested defs/classes are functions in their own right
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._function(stmt, f"{prefix}.{node.name}", None)
            elif isinstance(stmt, ast.ClassDef):
                self._class(stmt, f"{prefix}.{node.name}")

    def _class(self, node: ast.ClassDef, prefix: str) -> None:
        qname = f"{prefix}.{node.name}"
        bases: List[str] = []
        for base in node.bases:
            d = _dotted(base)
            if d:
                bases.append(d)      # resolved to qnames in a later pass
        self.graph.classes[qname] = ClassInfo(
            qname=qname, module=self.mod.name, name=node.name,
            path=self.mod.path, line=node.lineno, bases=tuple(bases))
        self._scope(node.body, prefix=qname, cls=qname)


class _Resolver:
    """Second pass: resolve names, link bases, emit edges."""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph

    # -- symbol resolution ---------------------------------------------
    def resolve_symbol(self, module: str, name: str,
                       _depth: int = 0) -> Optional[str]:
        """Resolve dotted ``name`` used inside ``module`` to a package
        qname (function, class or module), following import chains."""
        if _depth > 16:           # re-export cycle guard
            return None
        graph = self.graph
        head, _, rest = name.partition(".")
        mod = graph.modules.get(module)
        target: Optional[str] = None
        if mod is not None and head in mod.imports:
            target = mod.imports[head]
        elif f"{module}.{head}" in graph.functions \
                or f"{module}.{head}" in graph.classes:
            target = f"{module}.{head}"
        elif head == graph.package or head in graph.modules:
            target = head
        if target is None:
            return None
        full = f"{target}.{rest}" if rest else target
        return self._canonical(full, _depth)

    def _canonical(self, qname: str, _depth: int) -> Optional[str]:
        """Chase ``qname`` through modules/re-exports to a definition."""
        graph = self.graph
        if qname in graph.functions or qname in graph.classes:
            return qname
        if qname in graph.modules:
            return qname
        # split into the longest known module prefix + remainder
        parts = qname.split(".")
        for i in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:i])
            if prefix in graph.modules:
                rest = ".".join(parts[i:])
                resolved = self.resolve_symbol(prefix, rest,
                                               _depth=_depth + 1)
                if resolved is not None:
                    return resolved
                break
        if not qname.startswith(graph.package + "."):
            return None          # external symbol
        return None

    def link_bases(self) -> None:
        """Rewrite raw base names into class qnames; index subclasses."""
        for qname in sorted(self.graph.classes):
            info = self.graph.classes[qname]
            resolved: List[str] = []
            for base in info.bases:
                target = self.resolve_symbol(info.module, base)
                if target is not None and target in self.graph.classes:
                    resolved.append(target)
                    self.graph._subclasses.setdefault(target, []).append(qname)
            info.bases = tuple(resolved)

    # -- edge emission --------------------------------------------------
    def resolve_all(self) -> None:
        for mod_name in sorted(self.graph.modules):
            mod = self.graph.modules[mod_name]
            self._walk_scope(mod, self.graph.module_entry(mod_name),
                             mod.tree.body, cls=None, locals_=set())

    def _walk_scope(self, mod: ModuleInfo, owner: str,
                    body: Sequence[ast.stmt], cls: Optional[str],
                    locals_: Set[str]) -> None:
        """Emit edges for statements executing in function ``owner``."""
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                inner = self._owner_of(owner, cls, stmt.name, mod)
                for dec in stmt.decorator_list:
                    self._expr(mod, owner, cls, dec, locals_)
                self._walk_scope(mod, inner, stmt.body, cls=None,
                                 locals_=locals_ | self._params(stmt))
            elif isinstance(stmt, ast.ClassDef):
                inner_cls = self._class_qname(owner, cls, stmt.name, mod)
                for dec in stmt.decorator_list:
                    self._expr(mod, owner, cls, dec, locals_)
                self._walk_scope(mod, owner, stmt.body, cls=inner_cls,
                                 locals_=locals_)
            else:
                stack: List[ast.AST] = [stmt]
                while stack:
                    node = stack.pop()
                    if isinstance(node, ast.Lambda):
                        # the lambda body executes later, in its own node
                        lam = self._lambda_owner(owner, cls, stmt, mod, node)
                        self._expr_body(mod, lam, cls, node.body,
                                        locals_ | {a.arg for a in
                                                   node.args.args})
                        continue
                    if isinstance(node, ast.Call):
                        self._call(mod, owner, cls, node, locals_)
                    elif isinstance(node, (ast.Name, ast.Attribute)):
                        self._name_use(mod, owner, cls, node, locals_)
                    stack.extend(ast.iter_child_nodes(node))

    def _params(self, node: ast.FunctionDef | ast.AsyncFunctionDef
                ) -> Set[str]:
        args = node.args
        names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        if args.vararg:
            names.append(args.vararg.arg)
        if args.kwarg:
            names.append(args.kwarg.arg)
        return set(names)

    def _owner_of(self, owner: str, cls: Optional[str], name: str,
                  mod: ModuleInfo) -> str:
        if cls is not None:
            return f"{cls}.{name}"
        if owner.endswith(".<module>"):
            return f"{mod.name}.{name}"
        return f"{owner}.{name}"

    def _class_qname(self, owner: str, cls: Optional[str], name: str,
                     mod: ModuleInfo) -> str:
        if owner.endswith(".<module>"):
            return f"{mod.name}.{name}"
        return f"{owner}.{name}"

    def _lambda_owner(self, owner: str, cls: Optional[str], stmt: ast.stmt,
                      mod: ModuleInfo, node: ast.Lambda) -> str:
        # named module/class-level lambdas were registered in pass one
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name) \
                and stmt.value is node:
            qname = self._owner_of(owner, cls, stmt.targets[0].id, mod)
            if qname in self.graph.functions:
                return qname
        # inline lambda: its body executes later, in its own node
        qname = f"{owner}.<lambda@{node.lineno}>"
        if qname not in self.graph.functions:
            self.graph._add_function(FunctionInfo(
                qname=qname, module=mod.name, name="<lambda>", cls=None,
                path=mod.path, line=node.lineno, node=node, is_lambda=True))
            self.graph._add_edge(Edge(owner, qname, node.lineno, "ref"))
        return qname

    def _expr_body(self, mod: ModuleInfo, owner: str, cls: Optional[str],
                   expr: ast.expr, locals_: Set[str]) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                self._call(mod, owner, cls, node, locals_)
            elif isinstance(node, (ast.Name, ast.Attribute)):
                self._name_use(mod, owner, cls, node, locals_)

    def _expr(self, mod: ModuleInfo, owner: str, cls: Optional[str],
              expr: ast.expr, locals_: Set[str]) -> None:
        self._expr_body(mod, owner, cls, expr, locals_)

    # -- resolution of one call/name ------------------------------------
    def _resolve_callee(self, mod: ModuleInfo, owner: str,
                        cls: Optional[str], func: ast.expr,
                        locals_: Set[str]) -> List[str]:
        """Candidate function qnames for a call's ``func`` expression."""
        graph = self.graph
        owner_info = graph.functions.get(owner)
        enclosing_cls = owner_info.cls if owner_info is not None else cls

        d = _dotted(func)
        if d is not None:
            head = d.split(".", 1)[0]
            # self.m() / cls.m(): hierarchy-aware dispatch
            if head in ("self", "cls") and "." in d:
                parts = d.split(".")
                if len(parts) == 2 and enclosing_cls is not None:
                    candidates = graph.overrides_of(enclosing_cls, parts[1])
                    if candidates:
                        return candidates
                return self._by_name(parts[-1])
            if head in locals_:
                return self._by_name(d.split(".")[-1]) if "." in d else []
            resolved = self.resolve_symbol(mod.name, d)
            if resolved is not None:
                return self._expand(resolved)
            if "." in d:
                # unknown receiver: by-name dynamic dispatch
                return self._by_name(d.split(".")[-1])
            return []
        if isinstance(func, ast.Attribute):
            # computed receiver, e.g. (a or b).m() / chained calls
            return self._by_name(func.attr)
        return []

    def _expand(self, qname: str) -> List[str]:
        """A resolved symbol as callable targets (class -> __init__)."""
        graph = self.graph
        if qname in graph.functions:
            return [qname]
        if qname in graph.classes:
            inits = graph.overrides_of(qname, "__init__")
            return inits
        return []

    def _by_name(self, name: str) -> List[str]:
        return self.graph.methods_named(name)

    def _call(self, mod: ModuleInfo, owner: str, cls: Optional[str],
              node: ast.Call, locals_: Set[str]) -> None:
        graph = self.graph
        for callee in self._resolve_callee(mod, owner, cls, node.func,
                                           locals_):
            graph._add_edge(Edge(owner, callee, node.lineno, "call"))
        # callback registrations: resolved function arguments
        attr = node.func.attr if isinstance(node.func, ast.Attribute) \
            else None
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            targets = self._func_arg_targets(mod, owner, cls, arg, locals_)
            for target in targets:
                graph._add_edge(Edge(owner, target, node.lineno, "ref"))
                if attr in CALLBACK_REGISTRARS:
                    graph.registrations.append(Registration(
                        via=attr, callback=target, caller=owner,
                        path=mod.path, line=node.lineno))

    def _func_arg_targets(self, mod: ModuleInfo, owner: str,
                          cls: Optional[str], arg: ast.expr,
                          locals_: Set[str]) -> List[str]:
        """Functions an argument expression evaluates to (refs)."""
        graph = self.graph
        owner_info = graph.functions.get(owner)
        enclosing_cls = owner_info.cls if owner_info is not None else cls
        d = _dotted(arg)
        if d is None:
            return []
        head = d.split(".", 1)[0]
        if head in ("self", "cls") and "." in d:
            parts = d.split(".")
            if len(parts) == 2 and enclosing_cls is not None:
                found = graph.overrides_of(enclosing_cls, parts[1])
                if found:
                    return found
            by_name = self._by_name(parts[-1])
            return by_name
        if head in locals_:
            return []
        resolved = self.resolve_symbol(mod.name, d)
        if resolved is not None and resolved in graph.functions:
            return [resolved]
        return []

    def _name_use(self, mod: ModuleInfo, owner: str, cls: Optional[str],
                  node: ast.expr, locals_: Set[str]) -> None:
        if isinstance(node, ast.Attribute):
            self.graph.mentioned_names.add(node.attr)
            return
        if isinstance(node, ast.Name):
            self.graph.mentioned_names.add(node.id)
            if node.id in locals_:
                return
            resolved = self.resolve_symbol(mod.name, node.id)
            if resolved is not None and resolved in self.graph.functions:
                self.graph._add_edge(
                    Edge(owner, resolved, node.lineno, "ref"))


def build_package(root: str,
                  files: Optional[Sequence[Tuple[str, str]]] = None,
                  ) -> CallGraph:
    """Parse the package at directory ``root`` into a :class:`CallGraph`.

    ``files`` overrides discovery with explicit ``(module, path)`` pairs
    (used by tests building fixture packages).
    """
    root = os.path.abspath(root)
    package = os.path.basename(root.rstrip(os.sep))
    graph = CallGraph(package)
    for mod_name, path in (files or iter_package_files(root)):
        with open(path, "r", encoding="utf-8") as fh:
            source = fh.read()
        tree = ast.parse(source, filename=path)
        graph.modules[mod_name] = ModuleInfo(
            name=mod_name, path=path, tree=tree,
            lines=source.splitlines())
    for mod_name in sorted(graph.modules):
        _ModuleCollector(graph, graph.modules[mod_name]).collect()
    resolver = _Resolver(graph)
    resolver.link_bases()
    resolver.resolve_all()
    return graph


def iter_functions(graph: CallGraph) -> Iterator[FunctionInfo]:
    """All real (non-pseudo) functions in deterministic order."""
    for qname in sorted(graph.functions):
        info = graph.functions[qname]
        if info.name != "<module>":
            yield info
