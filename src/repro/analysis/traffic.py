"""Trace analysis: summaries and text timelines of simulation traces.

Enable tracing by passing a :class:`~repro.simulator.Trace` to
``run_mpi`` (or a ``Simulator``); this module turns the records into
per-rail traffic summaries and terminal-friendly timelines — the
debugging view of "what actually went over which wire, when".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.simulator import Trace

__all__ = ["RailSummary", "TrafficSummary", "summarize_traffic",
           "format_traffic", "format_timeline"]


@dataclass
class RailSummary:
    frames: int = 0
    bytes: int = 0
    kinds: Dict[str, int] = field(default_factory=dict)
    first_tx: Optional[float] = None
    last_tx: Optional[float] = None

    @property
    def effective_bandwidth(self) -> float:
        """Bytes per second over the rail's active span (0 if trivial)."""
        if self.first_tx is None or self.last_tx is None:
            return 0.0
        span = self.last_tx - self.first_tx
        return self.bytes / span if span > 0 else 0.0


@dataclass
class TrafficSummary:
    rails: Dict[str, RailSummary] = field(default_factory=dict)
    total_frames: int = 0
    total_bytes: int = 0

    def rail(self, name: str) -> RailSummary:
        return self.rails[name]


def summarize_traffic(trace: Trace) -> TrafficSummary:
    """Aggregate ``nic.tx`` records into per-rail statistics."""
    out = TrafficSummary()
    for rec in trace.filter("nic.tx"):
        rail = rec.data["rail"]
        rs = out.rails.setdefault(rail, RailSummary())
        rs.frames += 1
        rs.bytes += rec.data["size"]
        kind = rec.data.get("kind", "?")
        rs.kinds[kind] = rs.kinds.get(kind, 0) + 1
        if rs.first_tx is None:
            rs.first_tx = rec.time
        rs.last_tx = rec.time
        out.total_frames += 1
        out.total_bytes += rec.data["size"]
    return out


def format_traffic(summary: TrafficSummary) -> str:
    """A compact human-readable traffic report."""
    lines = [f"total: {summary.total_frames} frames, "
             f"{summary.total_bytes} bytes"]
    for rail in sorted(summary.rails):
        rs = summary.rails[rail]
        kinds = ", ".join(f"{k}:{n}" for k, n in sorted(rs.kinds.items()))
        lines.append(f"  rail {rail}: {rs.frames} frames, {rs.bytes} bytes "
                     f"({kinds})")
    return "\n".join(lines)


def format_timeline(trace: Trace, category: str = "nic.tx",
                    width: int = 60, buckets: Optional[int] = None) -> str:
    """An ASCII activity histogram of one trace category over time.

    Each row is a time bucket; bar length is proportional to the bytes
    transmitted in that bucket.
    """
    records = trace.filter(category)
    if not records:
        return "(no records)"
    buckets = buckets or 20
    t0 = records[0].time
    t1 = records[-1].time
    span = max(t1 - t0, 1e-12)
    totals = [0] * buckets
    for rec in records:
        i = min(int((rec.time - t0) / span * buckets), buckets - 1)
        totals[i] += rec.data.get("size", 1)
    peak = max(totals) or 1
    lines = []
    for i, total in enumerate(totals):
        t = t0 + span * i / buckets
        bar = "#" * max(1 if total else 0, int(total / peak * width))
        lines.append(f"{t * 1e6:10.1f}us |{bar:<{width}}| {total}B")
    return "\n".join(lines)
