"""Shared finding/suppression/reporter machinery for ``lint`` and ``check``.

Both analysis front-ends — the per-file determinism lint
(:mod:`repro.analysis.lint`) and the whole-package static contract
checker (:mod:`repro.analysis.static`) — produce the same shape of
finding: a :class:`Violation` at one source location with a stable rule
code.  This module owns that shape plus everything downstream of it:

* inline pragma suppression (``# repro-lint: allow[...]`` /
  ``# repro-check: allow[...]``),
* the fingerprint baseline (checked-in JSON of known debt; fingerprints
  hash path + code + offending source text, not line numbers),
* the three output formats: human text, plain JSON, and SARIF 2.1.0
  (uploadable as a CI artifact and ingestible by code-scanning UIs).
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["Violation", "normalize_path", "parse_pragmas", "load_baseline",
           "baseline_counts", "save_baseline", "apply_baseline",
           "format_text", "to_json", "to_sarif", "render", "FORMATS"]

FORMATS = ("text", "json", "sarif")

#: SARIF spec version pinned in the emitted document
_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                 "master/Schemata/sarif-schema-2.1.0.json")


@dataclass(frozen=True)
class Violation:
    """One rule/contract finding at one source location."""

    path: str
    line: int
    col: int
    code: str
    message: str
    snippet: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def fingerprint(self) -> str:
        """Stable identity for the baseline: path + code + source text."""
        key = f"{normalize_path(self.path)}|{self.code}|{self.snippet}"
        return hashlib.sha1(key.encode()).hexdigest()[:16]


def normalize_path(path: str) -> str:
    """Posix path rooted at ``repro/`` so results match from any cwd."""
    posix = path.replace(os.sep, "/")
    marker = posix.rfind("repro/")
    return posix[marker:] if marker >= 0 else posix.rsplit("/", 1)[-1]


# ----------------------------------------------------------------------
# Pragma suppression
# ----------------------------------------------------------------------
def parse_pragmas(lines: Sequence[str],
                  tool: str = "repro-lint") -> Dict[int, Optional[frozenset]]:
    """line number -> allowed codes (None = all codes allowed).

    ``tool`` selects the pragma spelling: ``# repro-lint: allow[...]``
    for the determinism lint, ``# repro-check: allow[...]`` for the
    static contract checker.  A bare ``allow`` silences every code on
    that line; ``allow[C1,C2]`` only the listed ones.  A pragma on a
    comment-only line also covers the *next* line, so justifications
    that do not fit after the code can sit above it.
    """
    pragma = re.compile(
        r"#\s*" + re.escape(tool) + r":\s*allow(?:\[([A-Z0-9, ]+)\])?")
    out: Dict[int, Optional[frozenset]] = {}

    def _merge(line: int, codes: Optional[frozenset]) -> None:
        if line not in out:
            out[line] = codes
            return
        current = out[line]
        out[line] = (None if current is None or codes is None
                     else current | codes)

    for i, text in enumerate(lines, start=1):
        m = pragma.search(text)
        if not m:
            continue
        codes = (frozenset(c.strip() for c in m.group(1).split(","))
                 if m.group(1) else None)
        _merge(i, codes)
        if text.strip().startswith("#"):
            _merge(i + 1, codes)
    return out


def suppressed_by_pragma(pragmas: Dict[int, Optional[frozenset]],
                         line: int, code: str) -> bool:
    """Is ``code`` at ``line`` silenced by an inline pragma?"""
    allowed = pragmas.get(line, False)
    return allowed is None or (bool(allowed) and code in allowed)


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
def load_baseline(path: str) -> Dict[str, int]:
    """fingerprint -> allowed count.  Missing file = empty baseline."""
    if not os.path.exists(path):
        return {}
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    return {str(k): int(v) for k, v in data.get("fingerprints", {}).items()}


def baseline_counts(violations: Iterable[Violation]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for violation in violations:
        fp = violation.fingerprint()
        counts[fp] = counts.get(fp, 0) + 1
    return counts


def save_baseline(path: str, violations: Iterable[Violation],
                  comment: str = "analysis baseline") -> None:
    payload = {
        "comment": comment,
        "version": 1,
        "fingerprints": dict(sorted(baseline_counts(violations).items())),
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")


def apply_baseline(found: Sequence[Violation],
                   baseline: Optional[Dict[str, int]],
                   ) -> Tuple[List[Violation], List[Violation]]:
    """Split findings into (fresh, baselined) against the baseline."""
    remaining = dict(baseline or {})
    fresh: List[Violation] = []
    suppressed: List[Violation] = []
    for violation in found:
        fp = violation.fingerprint()
        if remaining.get(fp, 0) > 0:
            remaining[fp] -= 1
            suppressed.append(violation)
        else:
            fresh.append(violation)
    return fresh, suppressed


# ----------------------------------------------------------------------
# Output formats
# ----------------------------------------------------------------------
def format_text(violations: Sequence[Violation]) -> str:
    return "\n".join(v.format() for v in violations)


def to_json(violations: Sequence[Violation], tool: str) -> Dict[str, object]:
    """A stable, machine-readable dump (the non-SARIF JSON format)."""
    return {
        "tool": tool,
        "findings": [
            {"path": normalize_path(v.path), "line": v.line, "col": v.col,
             "code": v.code, "message": v.message, "snippet": v.snippet,
             "fingerprint": v.fingerprint()}
            for v in violations
        ],
    }


def to_sarif(violations: Sequence[Violation], tool: str,
             rules: Sequence[Tuple[str, str]]) -> Dict[str, object]:
    """A minimal, valid SARIF 2.1.0 run.

    ``rules`` is the full catalog as ``(code, summary)`` pairs — listed
    even when clean, so the consumer can distinguish "rule passed" from
    "rule unknown".  Fingerprints ride along as ``partialFingerprints``
    so code-scanning UIs track findings across line moves exactly like
    the baseline file does.
    """
    results = []
    for v in violations:
        results.append({
            "ruleId": v.code,
            "level": "error",
            "message": {"text": v.message},
            "partialFingerprints": {"reproAnalysis/v1": v.fingerprint()},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": normalize_path(v.path)},
                    "region": {"startLine": v.line,
                               "startColumn": v.col + 1},
                },
            }],
        })
    return {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [{
            "tool": {"driver": {
                "name": tool,
                "informationUri":
                    "https://github.com/paper-repro/newmadeleine-mpich2",
                "rules": [
                    {"id": code,
                     "shortDescription": {"text": summary}}
                    for code, summary in rules
                ],
            }},
            "results": results,
        }],
    }


def render(violations: Sequence[Violation], fmt: str, tool: str,
           rules: Sequence[Tuple[str, str]]) -> str:
    """Render findings in one of :data:`FORMATS`."""
    if fmt == "text":
        return format_text(violations)
    if fmt == "json":
        return json.dumps(to_json(violations, tool), indent=2, sort_keys=True)
    if fmt == "sarif":
        return json.dumps(to_sarif(violations, tool, rules), indent=2)
    raise ValueError(f"unknown format {fmt!r}; expected one of {FORMATS}")
