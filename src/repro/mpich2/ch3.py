"""The CH3 device with the NewMadeleine network integration.

Supports the two inter-node configurations the paper contrasts:

* ``mode="direct"`` — Section 3.1: CH3's send functions are overridden
  per destination (virtual connections) to call NewMadeleine directly;
  NewMadeleine performs tag matching and its internal eager/rendezvous
  protocol; ANY_SOURCE uses the request lists of Fig. 3.
* ``mode="netmod"`` — Section 2.1.2/2.1.3: every CH3 message traverses
  the Nemesis network-module interface, paying queue-cell copies, and
  large messages run CH3's own RTS/CTS *around* NewMadeleine's internal
  rendezvous (the nested handshake of Fig. 2).

Intra-node traffic always uses the Nemesis shared-memory queues.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.mpich2.anysource import AnySourceBook
from repro.mpich2.nemesis.shm import NemesisShm, ShmMessage
from repro.mpich2.queues import ContextAnyTag, Envelope, PostedQueue, UnexpectedQueue
from repro.mpich2.request import ANY_SOURCE, ANY_TAG, MPIRequest
from repro.mpich2.stackbase import BaseStack
from repro.mpich2.nemesis.netmod import NewmadNetmod
from repro.mpich2.vc import VirtualConnection
from repro.nmad.core import ANY as NM_ANY, NmadCore


@dataclass(frozen=True)
class CH3Costs:
    """CH3/ADI3-layer software constants.

    Calibration: the MPICH2 layers add ~300 ns over raw NewMadeleine
    (2.1 us vs 1.8 us, Fig. 4a); ANY_SOURCE adds a constant ~300 ns.
    """

    #: CH3 send path over the network, s
    send_overhead: float = 0.15e-6
    #: CH3 receive-post path over the network, s
    recv_overhead: float = 0.15e-6
    #: Nemesis fast-path overheads (intra-node), s
    shm_send_overhead: float = 0.03e-6
    shm_recv_overhead: float = 0.03e-6
    #: ANY_SOURCE bookkeeping: at post and at resolution, s (Fig. 4a "w/AS")
    anysource_post: float = 0.15e-6
    anysource_complete: float = 0.15e-6
    #: CH3's own rendezvous threshold on the netmod path, bytes
    ch3_eager_threshold: int = 64 * 1024
    #: wire size of CH3 control packets (RTS/CTS), bytes
    ctrl_size: int = 48
    #: CH3 request-completion work on the receive handler path, s
    #: (wired into NewMadeleine's upper_complete_cost by the runtime)
    complete_overhead: float = 0.15e-6
    #: eager sends at or below this size are injected during the isend
    #: call itself (first-fragment inline); larger eager payloads need
    #: library progress to move — the no-overlap behaviour of Fig. 7a
    inline_pump_threshold: int = 1024


class CH3Stack(BaseStack):
    """One MPI process's MPICH2(-NewMadeleine) stack."""

    def __init__(
        self,
        sim,
        rank: int,
        node,
        scheduler,
        core: NmadCore,
        shm: Optional[NemesisShm],
        mode: str = "direct",
        pioman=None,
        costs: CH3Costs = CH3Costs(),
    ):
        super().__init__(sim, rank, node, scheduler, pioman=pioman)
        if mode not in ("direct", "netmod"):
            raise ValueError(f"unknown CH3 mode {mode!r}")
        self.mode = mode
        self.core = core
        self.shm = shm
        self.costs = costs
        self.posted = PostedQueue()
        self.unexpected = UnexpectedQueue()
        self.book = AnySourceBook(self)
        # race-detector names for the shared CH3 state, plus the region
        # labels of the legitimate synchronized entry points
        self._rv_posted = f"mpich2.posted@r{rank}"
        self._rv_unexpected = f"mpich2.unexpected@r{rank}"
        self._rv_ch3rdv = f"mpich2.ch3rdv@r{rank}"
        self._lbl_isend = f"mpich2.isend@r{rank}"
        self._lbl_irecv = f"mpich2.irecv@r{rank}"
        self._lbl_probe = f"mpich2.probe@r{rank}"
        self.vcs: Dict[int, VirtualConnection] = {}
        self._ch3_rdv_ctr = itertools.count()
        self._ch3_rdv_send: Dict[int, MPIRequest] = {}
        self.netmod = None
        if mode == "netmod":
            self.netmod = NewmadNetmod(core)
            self.netmod.net_module_init()
            self.netmod.on_packet = self._handle_ch3_packet
            self.netmod.on_deferred_packet = (
                lambda nm: self.deliver(("ch3pkt", nm)))
        if shm is not None:
            shm.register(rank, self._on_shm_message)

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def setup_vcs(self, n_ranks: int, rank_to_node) -> None:
        """Build virtual connections with per-destination send overrides."""
        my_node = self.node.node_id
        for peer in range(n_ranks):
            if peer == self.rank:
                continue
            vc = VirtualConnection(peer, rank_to_node(peer), my_node)
            if vc.is_local:
                vc.send_fn = self._send_shm
            elif self.mode == "direct":
                vc.send_fn = self._send_direct
            else:
                vc.send_fn = self._send_netmod
            # repro-check: allow[RPC004] build-time wiring, sim not running
            self.vcs[peer] = vc

    def _nm_tag(self, tag: Any):
        return ("mpi", tag)

    def _pioman_sync(self, shm: bool) -> float:
        if self.pioman is None:
            return 0.0
        # engine-dependent: the reference engine charges half the Fig. 6
        # sync overhead per side; manual_poll has no shared state -> 0
        return self.pioman.sync_cost(shm)

    # ------------------------------------------------------------------
    # MPI entry points (generators run on the application thread)
    # ------------------------------------------------------------------
    def isend(self, dst: int, tag: Any, size: int, data: Any = None,
              sync: bool = False):
        """MPID_Send/Isend equivalent; returns the :class:`MPIRequest`.

        ``sync=True`` gives MPI_Ssend semantics: the request completes
        only once the matching receive has started.
        """
        if dst == self.rank:
            raise ValueError("self-sends must be handled above the device layer")
        req = MPIRequest(self.sim, "send", dst, tag, size, data)
        req._sync = sync
        self.messages_sent += 1
        self.bytes_sent += size
        vc = self.vcs[dst]
        if self.sim.tracing:
            self.sim.record(
                "mpich2.send", src=self.rank, dst=dst, tag=tag, size=size,
                path="shm" if vc.is_local else self.mode, sync=sync,
            )
        with self.sim.sync_region(self._region, self._lbl_isend):
            yield from vc.send_fn(req)
        return req

    def irecv(self, src: Any, tag: Any):
        """MPID_Recv/Irecv equivalent; returns the :class:`MPIRequest`."""
        req = MPIRequest(self.sim, "recv", src, tag)
        if self.sim.tracing:
            self.sim.record(
                "mpich2.recv_post", rank=self.rank,
                src="ANY" if src is ANY_SOURCE else src, tag=tag,
            )
        if ((tag is ANY_TAG or isinstance(tag, ContextAnyTag))
                and self.mode == "direct"):
            vc = None if src is ANY_SOURCE else self.vcs[src]
            if vc is None or not vc.is_local:
                raise NotImplementedError(
                    "MPI_ANY_TAG on the CH3-direct network path is not "
                    "supported: NewMadeleine matches on exact tags")
        if src is ANY_SOURCE:
            with self.sim.sync_region(self._region, self._lbl_irecv):
                yield from self._post_any_source(req)
            return req
        vc = self.vcs[src]
        if vc.is_local or self.mode == "netmod":
            overhead = (self.costs.shm_recv_overhead if vc.is_local
                        else self.costs.recv_overhead)
            yield from self.cpu(overhead)
            with self.sim.sync_region(self._region, self._lbl_irecv):
                self.sim.race_write(self._rv_unexpected)
                env = self.unexpected.match(src, tag)
                if env is not None:
                    yield from self._deliver_env(req, env)
                else:
                    self.sim.race_write(self._rv_posted)
                    self.posted.post(req)
        else:
            yield from self.cpu(self.costs.recv_overhead)
            with self.sim.sync_region(self._region, self._lbl_irecv):
                if self.book.has_pending(tag):
                    # preserve matching order behind pending ANY_SOURCE
                    self.book.defer_regular(tag, req)
                else:
                    yield from self._post_remote_recv(req)
        return req

    # ------------------------------------------------------------------
    # send paths (selected through the virtual connection)
    # ------------------------------------------------------------------
    def _send_shm(self, req: MPIRequest):
        yield from self.cpu(self.costs.shm_send_overhead + self._pioman_sync(shm=True))
        env = Envelope(src=self.rank, tag=req.tag, size=req.size, data=req.data,
                       arrival=self.sim.now)
        if getattr(req, "_sync", False):
            env.sync_req = req        # completes when the receiver matches
            yield from self.shm.send(self.rank, req.peer, env, req.size)
        else:
            yield from self.shm.send(self.rank, req.peer, env, req.size)
            # the send buffer is free once copied into the queue cells
            req._finish(self.sim)

    def _send_direct(self, req: MPIRequest):
        yield from self.cpu(self.costs.send_overhead + self._pioman_sync(shm=False))
        nm = yield from self.core.isend(req.peer, self._nm_tag(req.tag),
                                        req.size, req.data,
                                        sync=getattr(req, "_sync", False))
        req.nmad_req = nm
        nm.upper = req
        if nm.complete:
            req._finish(self.sim)
        else:
            nm.on_complete = lambda _n: req._finish(self.sim)
        self._offload_pump(req.size)

    def _send_netmod(self, req: MPIRequest):
        yield from self.cpu(self.costs.send_overhead + self._pioman_sync(shm=False))
        if req.size <= self.costs.ch3_eager_threshold and not getattr(req, "_sync", False):
            # CH3 eager: copy into a Nemesis queue cell (paper 2.1.3),
            # then ship the cell through the network module.
            if self.sim.tracing:
                self.sim.record("mpich2.cell_copy", rank=self.rank, dir="in",
                                size=req.size,
                                dur=self.node.mem.copy_time(req.size))
                self.sim.record("mpich2.netmod_handoff", rank=self.rank,
                                dir="tx", kind="eager", dst=req.peer,
                                size=req.size)
            yield from self.cpu(self.node.mem.copy_time(req.size))
            env = Envelope(src=self.rank, tag=req.tag, size=req.size, data=req.data)
            nm = yield from self.netmod.net_module_send(
                req.peer, req.size + self.costs.ctrl_size, ("eager", env, 0))
            req.nmad_req = nm
            if nm.complete:
                req._finish(self.sim)
            else:
                nm.on_complete = lambda _n: req._finish(self.sim)
        else:
            # CH3 rendezvous: RTS/CTS handshake at the CH3 level; the
            # data message below will trigger NewMadeleine's *own*
            # rendezvous — the nested handshake of Fig. 2.
            rid = next(self._ch3_rdv_ctr)
            self.sim.race_write(self._rv_ch3rdv)
            self._ch3_rdv_send[rid] = req
            env = Envelope(src=self.rank, tag=req.tag, size=req.size)
            if self.sim.tracing:
                self.sim.record("mpich2.netmod_handoff", rank=self.rank,
                                dir="tx", kind="rts", dst=req.peer,
                                size=req.size)
            yield from self.netmod.net_module_send(
                req.peer, self.costs.ctrl_size, ("rts", env, rid))
            self._offload_pump(self.costs.ctrl_size)
            return
        self._offload_pump(req.size)

    # ------------------------------------------------------------------
    # receive helpers
    # ------------------------------------------------------------------
    def _post_remote_recv(self, req: MPIRequest):
        """Hand a known-source remote receive to NewMadeleine."""
        nm = yield from self.core.irecv(req.peer, self._nm_tag(req.tag))
        req.nmad_req = nm
        nm.upper = req
        src = req.peer
        if nm.complete:
            req._finish(self.sim, data=nm.data, size=nm.size, source=src, tag=req.tag)
        else:
            nm.on_complete = lambda n: req._finish(
                self.sim, data=n.data, size=n.size, source=src, tag=req.tag)

    def _post_any_source(self, req: MPIRequest):
        if self.mode == "netmod":
            # the central CH3 queues match wildcards natively
            yield from self.cpu(self.costs.recv_overhead)
            self.sim.race_write(self._rv_unexpected)
            env = self.unexpected.match(ANY_SOURCE, req.tag)
            if env is not None:
                yield from self._deliver_env(req, env)
            else:
                self.sim.race_write(self._rv_posted)
                self.posted.post(req)
            return
        yield from self.cpu(self.costs.recv_overhead + self.costs.anysource_post
                            + self._pioman_sync(shm=False))
        self.sim.race_write(self._rv_unexpected)
        env = self.unexpected.match(ANY_SOURCE, req.tag)
        if env is not None:  # an intra-node message was already waiting
            yield from self._deliver_env(req, env)
            return
        self.sim.race_write(self._rv_posted)
        self.posted.post(req)            # visible to shared-memory matching
        self.book.add_any_source(req.tag, req)
        yield from self.book.poll_tag(req.tag)  # may already sit in nmad buffers

    def _resolve_any_source(self, req: MPIRequest, src: int):
        """Probe hit: create the NewMadeleine request a posteriori."""
        yield from self.cpu(self.costs.anysource_complete)
        self.sim.race_write(self._rv_posted)
        self.posted.remove(req)
        nm = yield from self.core.irecv(src, self._nm_tag(req.tag))
        req.nmad_req = nm
        nm.upper = req
        tag = req.tag
        if nm.complete:
            req._finish(self.sim, data=nm.data, size=nm.size, source=src, tag=tag)
        else:  # a large message: completes when the rendezvous data lands
            nm.on_complete = lambda n: req._finish(
                self.sim, data=n.data, size=n.size, source=src, tag=tag)

    def _deliver_env(self, req: MPIRequest, env: Envelope):
        """Complete a receive from a matched envelope (shm or netmod)."""
        if env.proto is None:
            if self.shm is not None and env.arrival:
                if self.sim.tracing:
                    self.sim.record("mpich2.shm_recv", rank=self.rank,
                                    src=env.src, size=env.size,
                                    dur=self.shm.recv_cost(env.size))
                yield from self.cpu(self.shm.recv_cost(env.size))
            else:
                yield from self.cpu(self.node.mem.copy_time(env.size))
            if env.sync_req is not None and not env.sync_req.complete:
                env.sync_req._finish(self.sim)   # Ssend: matched now
            req._finish(self.sim, data=env.data, size=env.size,
                        source=env.src, tag=env.tag)
        else:
            kind, src, rid = env.proto
            if kind != "rts":
                raise RuntimeError(f"unexpected envelope protocol {env.proto!r}")
            yield from self._ch3_grant(req, src, rid, env)

    # ------------------------------------------------------------------
    # probing
    # ------------------------------------------------------------------
    def probe_unexpected(self, src, tag):
        with self.sim.sync_region(self._region, self._lbl_probe):
            self.sim.race_read(self._rv_unexpected)
            env = self.unexpected.peek(src, tag)
            if env is not None:
                return (env.src, env.size)
            if self.mode == "direct":
                nm_src = NM_ANY if src is ANY_SOURCE else src
                hit = self.core.probe(self._nm_tag(tag), src=nm_src)
                if hit is not None:
                    return hit
            return None

    # ------------------------------------------------------------------
    # progress: incoming items
    # ------------------------------------------------------------------
    def _handle_item(self, item):
        kind, payload = item
        if kind == "net":
            yield from self.cpu(self._pioman_sync(shm=False))
            if self.mode == "netmod":
                # the Nemesis progress engine calls the module's poll
                yield from self.netmod.net_module_poll(payload)
            else:
                yield from self.core.handle_pw(payload.payload, payload.rail)
        elif kind == "shm":
            yield from self.cpu(self._pioman_sync(shm=True))
            yield from self._handle_shm(payload)
        elif kind == "ch3pkt":
            yield from self._handle_ch3_packet(payload)
        else:
            raise RuntimeError(f"unknown progress item {kind!r}")

    def _progress_hook(self):
        # submit whatever accumulated in the strategy while computing
        self.core.strategy.pump()
        if self.mode == "direct" and self.book.pending_tags():
            yield from self.book.poll()

    def _offload_pump(self, size: int = 0) -> None:
        """With PIOMan, submission is offloaded to an idle core (paper
        Section 2.2.3).  Without it, small messages and rendezvous RTS
        control still go out during the call (first-fragment inline),
        but medium eager payloads sit in the strategy until the
        application re-enters the library — Fig. 7a."""
        if self.pioman is not None:
            self.pioman.submit(self._pump_ltask, rank=self.rank)
        elif (size <= self.costs.inline_pump_threshold
              or size > self.core.costs.eager_threshold):
            self.core.strategy.pump()

    def _pump_ltask(self):
        self.core.strategy.pump()
        yield self.sim.timeout(0.0)

    def _on_shm_message(self, msg: ShmMessage) -> None:
        self.deliver(("shm", msg))

    def _handle_shm(self, msg: ShmMessage):
        env = msg.env
        if msg.cells is not None:
            # the receiver's poll copies the message out of the queue
            # cells, which then return to the sender's free queue
            msg.cells.release()
        self.sim.race_write(self._rv_posted)
        req = self.posted.match(env.src, env.tag)
        if req is None:
            self.sim.race_write(self._rv_unexpected)
            self.unexpected.add(env)
            return
        if req.peer is ANY_SOURCE and self.mode == "direct":
            # Fig. 3: an intra-node match removes the pending-AS entry
            yield from self.book.on_local_match(req.tag, req)
        yield from self._deliver_env(req, env)

    # ------------------------------------------------------------------
    # netmod path: CH3 packets delivered by the network module
    # ------------------------------------------------------------------
    def _handle_ch3_packet(self, nm):
        kind, env, rid = nm.data
        if self.sim.tracing:
            self.sim.record("mpich2.netmod_handoff", rank=self.rank,
                            dir="rx", kind=kind,
                            size=env.size if env is not None else 0)
        if kind == "eager":
            # copy out of the queue cell, then CH3 matching
            if self.sim.tracing:
                self.sim.record("mpich2.cell_copy", rank=self.rank, dir="out",
                                size=env.size,
                                dur=self.node.mem.copy_time(env.size))
            yield from self.cpu(self.node.mem.copy_time(env.size))
            self.sim.race_write(self._rv_posted)
            req = self.posted.match(env.src, env.tag)
            if req is None:
                self.sim.race_write(self._rv_unexpected)
                self.unexpected.add(env)
            else:
                req._finish(self.sim, data=env.data, size=env.size,
                            source=env.src, tag=env.tag)
        elif kind == "rts":
            self.sim.race_write(self._rv_posted)
            req = self.posted.match(env.src, env.tag)
            if req is None:
                env.proto = ("rts", env.src, rid)
                self.sim.race_write(self._rv_unexpected)
                self.unexpected.add(env)
            else:
                yield from self._ch3_grant(req, env.src, rid, env)
        elif kind == "cts":
            self.sim.race_write(self._rv_ch3rdv)
            sreq = self._ch3_rdv_send.pop(rid)
            # the data message goes through plain nmad send; being larger
            # than nmad's eager threshold it triggers nmad's *own*
            # rendezvous underneath CH3's — the nested handshake (Fig. 2)
            nm2 = yield from self.core.isend(
                sreq.peer, ("ch3data", rid), sreq.size, sreq.data)
            sreq.nmad_req = nm2
            if nm2.complete:
                sreq._finish(self.sim)
            else:
                nm2.on_complete = lambda _n: sreq._finish(self.sim)
        else:
            raise RuntimeError(f"unknown CH3 packet kind {kind!r}")

    def _ch3_grant(self, req: MPIRequest, src: int, rid: int, env: Envelope):
        """Receiver side of the CH3 rendezvous: post data recv, send CTS."""
        nmr = yield from self.core.irecv(src, ("ch3data", rid))
        req.nmad_req = nmr
        tag, size = env.tag, env.size
        nmr.on_complete = lambda n: req._finish(
            self.sim, data=n.data, size=size, source=src, tag=tag)
        if self.sim.tracing:
            self.sim.record("mpich2.netmod_handoff", rank=self.rank,
                            dir="tx", kind="cts", dst=src, size=size)
        yield from self.netmod.net_module_send(src, self.costs.ctrl_size,
                                               ("cts", None, rid))
