"""ADI3/CH3 request objects and the MPI wildcards."""

from __future__ import annotations

import itertools
from typing import Any, Optional

from repro.simulator import Event, Simulator


class _Wildcard:
    def __init__(self, name: str):
        self._name = name

    def __repr__(self) -> str:
        return self._name


#: match a receive against any source rank
ANY_SOURCE = _Wildcard("MPI_ANY_SOURCE")
#: match a receive against any tag
ANY_TAG = _Wildcard("MPI_ANY_TAG")

_req_ids = itertools.count()


class MPIRequest:
    """One MPI communication operation tracked by the stack.

    The ``nmad_req`` field is the request-association mechanism of paper
    Section 3.1.1: a pointer from the MPICH2 request to the
    corresponding NewMadeleine request.
    """

    __slots__ = (
        "req_id", "kind", "peer", "tag", "size", "data",
        "completion", "nmad_req", "status_source", "status_tag",
        "datatype", "_sync",
    )

    def __init__(self, sim: Simulator, kind: str, peer: Any, tag: Any,
                 size: int = 0, data: Any = None):
        if kind not in ("send", "recv"):
            raise ValueError(f"bad MPI request kind {kind!r}")
        self.req_id = next(_req_ids)
        self.kind = kind
        self.peer = peer
        self.tag = tag
        self.size = size
        self.data = data
        self.completion: Event = sim.event()
        self.nmad_req: Any = None
        # resolved matching info (meaningful after completion of a recv)
        self.status_source: Optional[int] = None
        self.status_tag: Any = None
        #: layout for receive-side unpack costing (set by the MPI layer)
        self.datatype: Any = None
        #: synchronous-send flag (MPI_Ssend semantics)
        self._sync = False

    @property
    def complete(self) -> bool:
        return self.completion.triggered

    def _finish(self, sim: Simulator, *, data: Any = None, size: Optional[int] = None,
                source: Optional[int] = None, tag: Any = None) -> None:
        if self.complete:
            raise RuntimeError(f"MPI request {self.req_id} completed twice")
        if data is not None:
            self.data = data
        if size is not None:
            self.size = size
        if source is not None:
            self.status_source = source
        if tag is not None:
            self.status_tag = tag
        self.completion.succeed(self)

    def __repr__(self) -> str:
        state = "done" if self.complete else "pending"
        return (f"MPIRequest(#{self.req_id} {self.kind} peer={self.peer!r} "
                f"tag={self.tag!r} size={self.size} {state})")
