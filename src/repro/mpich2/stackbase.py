"""Progress-engine machinery shared by every simulated MPI stack.

Two progress disciplines exist, and the difference between them is the
whole point of the paper's Section 3.3 / Fig. 7:

* **Active polling** (plain MPICH2, MVAPICH2, Open MPI): protocol work
  triggered by arriving messages runs only while the application thread
  is *inside* the MPI library (a wait/recv).  Incoming work queues in
  ``inbox`` until then.  Waits hold the core (busy-wait semantics).

* **PIOMan-delegated**: arriving work is submitted to the node's
  PIOMan, which runs it on an idle core in the background; application
  waits block on semaphores and release their core.

Subclasses implement ``_handle_item`` (protocol state machine) and may
override ``_progress_hook`` (e.g. ANY_SOURCE probing).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Iterable, Optional, Union

from repro.mpich2.request import MPIRequest
from repro.pioman import PIOMan, ProgressEngine
from repro.simulator import Simulator
from repro.threads.marcel import MarcelScheduler


@dataclass(frozen=True)
class StackCosts:
    """Software overheads of the layers above the transport."""

    #: per-send CPU time in the stack's upper layers, s
    send_overhead: float = 0.15e-6
    #: per-recv-post CPU time, s
    recv_overhead: float = 0.15e-6


class BaseStack:
    """One MPI process's communication stack."""

    def __init__(self, sim: Simulator, rank: int, node, scheduler: MarcelScheduler,
                 pioman: Optional[Union[PIOMan, ProgressEngine]] = None):
        self.sim = sim
        self.rank = rank
        self.node = node
        self.scheduler = scheduler
        self.pioman = pioman
        self.inbox: Deque[Any] = deque()
        self._signal = None
        # virtual progress-lock region of this stack's node (race detector)
        self._region = ("node", node.node_id)
        self._lbl_progress = f"mpich2.progress@r{rank}"
        # stats
        self.messages_sent = 0
        self.messages_received = 0
        self.bytes_sent = 0

    # ------------------------------------------------------------------
    # transport -> stack (callback context, no CPU charged here)
    # ------------------------------------------------------------------
    def deliver(self, item: Any) -> None:
        """Hand incoming protocol work to the progress engine."""
        if self.pioman is not None:
            self.pioman.submit(lambda: self._progress_item(item),
                               rank=self.rank)
            self._wake()  # probe loops listen for arrivals too
        else:
            self.sim.race_write(f"mpich2.inbox@r{self.rank}", "deliver")
            self.inbox.append(item)
            self._wake()

    def _wake(self) -> None:
        if self._signal is not None and not self._signal.triggered:
            self._signal.succeed()

    def _progress_item(self, item: Any):
        with self.sim.sync_region(self._region, self._lbl_progress):
            yield from self._handle_item(item)
            yield from self._progress_hook()

    # ------------------------------------------------------------------
    # protocol state machine (subclass responsibility)
    # ------------------------------------------------------------------
    def _handle_item(self, item: Any):
        raise NotImplementedError
        yield  # pragma: no cover

    def _progress_hook(self):
        """Extra work after each progress step (default: nothing)."""
        return
        yield  # pragma: no cover

    # ------------------------------------------------------------------
    # application-side waiting
    # ------------------------------------------------------------------
    def wait(self, req: MPIRequest):
        """Block until ``req`` completes, making progress as needed."""
        if self.pioman is not None:
            if not req.complete:
                yield from self.pioman.semaphore_wait(req.completion)
            return req
        yield from self._drain()
        while not req.complete:
            if not self.inbox:
                self._signal = self.sim.event()
                yield self.sim.any_of([req.completion, self._signal])
            yield from self._drain()
        return req

    def waitall(self, reqs: Iterable[MPIRequest]):
        for req in list(reqs):
            yield from self.wait(req)

    def waitany(self, reqs):
        """Block until any request completes; returns its index."""
        reqs = list(reqs)
        if not reqs:
            raise ValueError("waitany needs at least one request")

        def first_done():
            for i, r in enumerate(reqs):
                if r.complete:
                    return i
            return None

        if self.pioman is not None:
            i = first_done()
            if i is None:
                yield from self.pioman.semaphore_wait(
                    self.sim.any_of([r.completion for r in reqs]))
                i = first_done()
            return i
        yield from self._drain()
        while True:
            i = first_done()
            if i is not None:
                return i
            if not self.inbox:
                self._signal = self.sim.event()
                yield self.sim.any_of(
                    [r.completion for r in reqs] + [self._signal])
            yield from self._drain()

    def _drain(self):
        """Process everything pending in the inbox (active mode)."""
        with self.sim.sync_region(self._region, self._lbl_progress):
            while self.inbox:
                item = self.inbox.popleft()
                yield from self._handle_item(item)
            yield from self._progress_hook()

    # ------------------------------------------------------------------
    # probing (MPI_Probe / MPI_Iprobe support)
    # ------------------------------------------------------------------
    def probe_unexpected(self, src: Any, tag: Any):
        """Non-consuming check for a matching arrived message.

        Returns ``(source, size)`` or None.  Subclass responsibility.
        """
        raise NotImplementedError

    def progress_once(self):
        """Run the progress engine once (generator)."""
        if self.pioman is None:
            yield from self._drain()
        else:
            # background engines make this a no-op; manual_poll drains
            # its ltask queue on the calling thread here
            yield from self.pioman.progress()

    def iprobe(self, src: Any, tag: Any):
        """Nonblocking probe; generator returning (source, size) or None."""
        yield from self.progress_once()
        return self.probe_unexpected(src, tag)

    def probe(self, src: Any, tag: Any):
        """Blocking probe; generator returning (source, size)."""
        while True:
            self._signal = self.sim.event()
            yield from self.progress_once()
            hit = self.probe_unexpected(src, tag)
            if hit is not None:
                return hit
            if self.pioman is None or not self.pioman.background:
                # active mode / manual_poll: a new arrival re-enters the
                # drain via the signal, nothing progresses without us
                yield self._signal
            else:
                # background progress: re-check shortly after any arrival
                yield self.sim.any_of([self._signal, self.sim.timeout(2e-6)])

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def cpu(self, duration: float):
        """Charge CPU time to the calling thread."""
        if duration > 0.0:
            yield self.sim.timeout(duration)
