"""Shared-memory queue model of the Nemesis channel.

Cost structure: the sender dequeues a free cell, copies the message in
(one memcpy), and enqueues it on the receiver's single receive queue;
the receiver polls that queue and copies the message out.  Messages
larger than a cell stream through multiple cells, paying a per-cell
overhead.  The model reproduces the two observable properties the
paper relies on:

* very low small-message latency (~0.2 us one-way, Fig. 6a);
* double-copy bandwidth for large messages.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Dict

from repro.hardware.params import MemParams
from repro.mpich2.nemesis.queue import CellPool
from repro.simulator import Simulator


@dataclass(frozen=True)
class ShmCosts:
    """Nemesis shared-memory queue constants (calibrated to Fig. 6a)."""

    #: fixed-size cell payload capacity, bytes
    cell_size: int = 64 * 1024
    #: cells in each process's free queue (finite: senders block when
    #: the pool is exhausted — Nemesis flow control)
    n_cells: int = 64
    #: cost of one cell enqueue (lock-free CAS + bookkeeping), s
    enqueue_cost: float = 0.04e-6
    #: store-buffer/cache-coherence delay before the receiver can see a cell, s
    delivery_latency: float = 0.05e-6
    #: receiver-side dequeue + poll cost per message, s
    dequeue_cost: float = 0.05e-6


@dataclass
class ShmMessage:
    """One message traversing the shared-memory queues."""

    src_rank: int
    dst_rank: int
    env: Any          # upper-layer envelope (matching info + payload)
    size: int
    #: cells this message occupies until the receiver copies it out
    cells: Any = None


class NemesisShm:
    """Per-node shared-memory queue fabric.

    Stacks register a delivery callback per rank; ``send`` charges the
    sender-side costs on the calling thread and schedules delivery into
    the destination stack's progress engine.
    """

    def __init__(self, sim: Simulator, mem: MemParams, costs: ShmCosts = ShmCosts()):
        self.sim = sim
        self.mem = mem
        self.costs = costs
        self._receivers: Dict[int, Callable[[ShmMessage], None]] = {}
        self._pools: Dict[int, CellPool] = {}
        self.messages = 0

    def register(self, rank: int, on_message: Callable[[ShmMessage], None]) -> None:
        if rank in self._receivers:
            raise ValueError(f"rank {rank} already registered on this node's shm")
        self._receivers[rank] = on_message
        self._pools[rank] = CellPool(self.sim, n_cells=self.costs.n_cells,
                                     cell_size=self.costs.cell_size)

    def pool(self, rank: int) -> CellPool:
        """The free-cell queue owned by ``rank``."""
        return self._pools[rank]

    def cells_for(self, size: int) -> int:
        return max(1, math.ceil(size / self.costs.cell_size))

    def send(self, src_rank: int, dst_rank: int, env: Any, size: int):
        """Generator: dequeue free cells (may block when the pool is
        exhausted — Nemesis flow control), copy in, enqueue for delivery."""
        if dst_rank not in self._receivers:
            raise KeyError(f"rank {dst_rank} is not on this node")
        cells = yield from self._pools[src_rank].acquire(size)
        ncells = self.cells_for(size)
        copy_in = self.mem.copy_time(size) + ncells * self.costs.enqueue_cost
        if self.sim.tracing:
            self.sim.record("mpich2.shm_send", src=src_rank, dst=dst_rank,
                            size=size, cells=ncells, dur=copy_in)
        yield self.sim.timeout(copy_in)
        self.messages += 1
        msg = ShmMessage(src_rank, dst_rank, env, size, cells=cells)
        self.sim.schedule(self.costs.delivery_latency, self._receivers[dst_rank], msg)

    def recv_cost(self, size: int) -> float:
        """Receiver-side cost to dequeue and copy out one message."""
        ncells = self.cells_for(size)
        return ncells * self.costs.dequeue_cost + self.mem.copy_time(size)
