"""The Nemesis network-module interface (paper Section 2.1.2).

"A network module implements a relatively small set of routines ...
Basically the four following routines are required to implement a
module: net_module_init, net_module_send, net_module_poll and
net_module_finalize.  There is no net_module_recv routine since the
net_module_poll routine is called by the low-level progress engine in
Nemesis and is actually responsible to retrieve all incoming messages
from the network."

:class:`NewmadNetmod` is the NewMadeleine module: CH3 packets ride a
single shared NewMadeleine tag (no per-MPI-message tag matching — that
is exactly the limitation of Section 2.1.3 that motivates the
CH3-direct bypass).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.nmad.core import NmadCore

__all__ = ["NetworkModule", "NewmadNetmod"]

#: the nmad tag carrying every CH3 packet of the netmod path
CH3_CHANNEL_TAG = "ch3"


class NetworkModule:
    """The four-routine Nemesis module interface."""

    def net_module_init(self) -> None:
        """Bring the module up (connection establishment)."""

    def net_module_send(self, dst_rank: int, size: int, payload: Any):
        """Generator: ship one CH3 packet; returns the transport request."""
        raise NotImplementedError
        yield  # pragma: no cover

    def net_module_poll(self, frame: Any):
        """Generator: retrieve incoming messages from the network.

        Called by the progress engine for each arrived frame; completed
        CH3 packets are handed to ``on_packet`` (set by the channel).
        """
        raise NotImplementedError
        yield  # pragma: no cover

    def net_module_finalize(self) -> dict:
        """Tear the module down; returns transfer statistics."""
        return {}


class NewmadNetmod(NetworkModule):
    """NewMadeleine as a plain Nemesis network module.

    ``on_packet(nm_request)`` is invoked (synchronously, in progress
    context) for each fully received CH3 packet; packets whose payload
    is still in flight (NewMadeleine's internal rendezvous) are handed
    to ``on_deferred_packet`` when they complete — the nesting of
    Fig. 2 in action.
    """

    def __init__(self, core: NmadCore):
        self.core = core
        self.on_packet: Optional[Callable] = None
        self.on_deferred_packet: Optional[Callable] = None
        self.packets_sent = 0
        self.packets_received = 0
        self._initialized = False

    def net_module_init(self) -> None:
        self._initialized = True

    def net_module_send(self, dst_rank: int, size: int, payload: Any):
        if not self._initialized:
            raise RuntimeError("network module used before net_module_init")
        self.packets_sent += 1
        nm = yield from self.core.isend(dst_rank, CH3_CHANNEL_TAG, size, payload)
        return nm

    def net_module_poll(self, frame: Any):
        if not self._initialized:
            raise RuntimeError("network module used before net_module_init")
        if self.core.sim.tracing:
            self.core.sim.record("mpich2.netmod_poll", rank=self.core.rank,
                                 rail=frame.rail, size=frame.size)
        yield from self.core.handle_pw(frame.payload, frame.rail)
        # drain every CH3 packet NewMadeleine has buffered
        while True:
            hit = self.core.probe(CH3_CHANNEL_TAG)
            if hit is None:
                return
            src, _size = hit
            nm = yield from self.core.irecv(src, CH3_CHANNEL_TAG)
            if nm.complete:
                self.packets_received += 1
                yield from self.on_packet(nm)
            else:
                nm.on_complete = self._deferred

    def _deferred(self, nm) -> None:
        self.packets_received += 1
        self.on_deferred_packet(nm)

    def net_module_finalize(self) -> dict:
        self._initialized = False
        return {"sent": self.packets_sent, "received": self.packets_received}
