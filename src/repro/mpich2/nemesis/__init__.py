"""The Nemesis communication channel (paper Section 2.1.1).

Nemesis provides lock-free shared-memory queues of fixed-size cells for
intra-node communication; network traffic goes through network modules
(or, in the CH3-direct configuration, bypasses the channel entirely).
"""

from repro.mpich2.nemesis.shm import NemesisShm, ShmCosts, ShmMessage

__all__ = ["NemesisShm", "ShmCosts", "ShmMessage"]
