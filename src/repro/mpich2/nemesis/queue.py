"""Nemesis lock-free cell queues (paper Section 2.1.1).

"The Nemesis channel uses shared-memory message queues of fixed-size
message cells ...  Each process owns one free queue and one receive
queue.  The free queue holds free cells which the process dequeues and
fills with a message (or message fragment when the message is larger
than a single cell)."

The model keeps what is observable: a finite per-process cell pool.  A
sender dequeues cells from **its own** free queue, fills them, and
enqueues them on the receiver's receive queue; when the receiver has
copied a message out, the cells return to their owner's free queue.
Running out of cells *blocks the sender* — the flow-control/backpressure
behaviour of the real channel.

Streaming reuse within one very large message (the real channel
recycles cells as the receiver drains them mid-message) is abstracted
by capping a single message's footprint at half the pool; see
:meth:`CellPool.cells_needed`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.simulator import Semaphore, Simulator

__all__ = ["CellAllocation", "CellPool"]


@dataclass
class CellAllocation:
    """Cells held by one in-flight message (returned on receive)."""

    pool: "CellPool"
    count: int
    released: bool = False

    def release(self) -> None:
        """Return the cells to the owner's free queue.  Idempotent."""
        if not self.released:
            self.released = True
            self.pool._free.release(self.count)


class CellPool:
    """One process's free queue of fixed-size cells."""

    def __init__(self, sim: Simulator, n_cells: int = 64,
                 cell_size: int = 64 * 1024):
        if n_cells < 2:
            raise ValueError("cell pool needs at least 2 cells")
        if cell_size < 1:
            raise ValueError("cell size must be positive")
        self.sim = sim
        self.n_cells = n_cells
        self.cell_size = cell_size
        self._free = Semaphore(sim, value=n_cells)
        self.exhaustion_stalls = 0

    @property
    def free_cells(self) -> int:
        return self._free.value

    def cells_needed(self, size: int) -> int:
        """Cells one message occupies at once (streaming cap at pool/2)."""
        import math
        raw = max(1, math.ceil(size / self.cell_size))
        return min(raw, self.n_cells // 2)

    def acquire(self, size: int):
        """Generator: dequeue cells for a message, blocking if exhausted.

        Returns a :class:`CellAllocation` to release at the receiver.
        """
        count = self.cells_needed(size)
        for _ in range(count):
            if not self._free.try_acquire():
                self.exhaustion_stalls += 1
                yield self._free.acquire()
        return CellAllocation(self, count)
