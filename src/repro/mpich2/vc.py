"""Virtual connections: per-destination send-path dispatch.

Paper Section 3.1.2: "function pointers were added to MPICH2's
per-connection virtual connection (VC) structure to allow the various
CH3 send functions to be overridden on a per-destination basis" — a
send to a process on the same node goes through Nemesis shared memory,
a send to a remote node calls NewMadeleine directly.
"""

from __future__ import annotations

from typing import Any, Callable


class VirtualConnection:
    """Connection state for one peer rank."""

    def __init__(self, peer_rank: int, peer_node: int, local_node: int):
        self.peer_rank = peer_rank
        self.peer_node = peer_node
        self.is_local = peer_node == local_node
        #: overridable send entry point; signature (tag, size, data) -> generator
        self.send_fn: Callable[..., Any] = None

    def __repr__(self) -> str:
        where = "local" if self.is_local else f"node{self.peer_node}"
        return f"VC(peer={self.peer_rank}, {where})"
