"""MPICH2's posted-receive and unexpected-message queues.

"This pair of queues forms the core of the message passing management
in MPICH2" (paper Section 3.1.1).  Matching is first-posted /
first-arrived with MPI wildcard semantics (ANY_SOURCE, ANY_TAG).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

from repro.mpich2.request import ANY_SOURCE, ANY_TAG, MPIRequest


@dataclass
class Envelope:
    """Matching metadata (plus payload) of an arrived message."""

    src: int
    tag: Any
    size: int
    data: Any = None
    seq: int = 0
    arrival: float = 0.0
    #: opaque channel info (e.g. rendezvous state for large messages)
    proto: Any = None
    #: sender request to complete at match time (synchronous sends)
    sync_req: Any = None


class ContextAnyTag:
    """ANY_TAG scoped to one communicator context.

    Matches any message whose (context, tag) pair carries the same
    context — MPI_ANY_TAG semantics that cannot leak across
    communicators.
    """

    __slots__ = ("context",)

    def __init__(self, context: Any):
        self.context = context

    def __repr__(self) -> str:
        return f"ContextAnyTag({self.context!r})"

    def __eq__(self, other) -> bool:
        return isinstance(other, ContextAnyTag) and other.context == self.context

    def __hash__(self) -> int:
        return hash(("ContextAnyTag", self.context))


def _tags_match(posted_tag: Any, msg_tag: Any) -> bool:
    if posted_tag is ANY_TAG:
        return True
    if isinstance(posted_tag, ContextAnyTag):
        return (isinstance(msg_tag, tuple) and len(msg_tag) == 2
                and msg_tag[0] == posted_tag.context)
    return posted_tag == msg_tag


def _sources_match(posted_src: Any, msg_src: int) -> bool:
    return posted_src is ANY_SOURCE or posted_src == msg_src


class PostedQueue:
    """FIFO of posted receive requests."""

    def __init__(self):
        self._reqs: List[MPIRequest] = []

    def __len__(self) -> int:
        return len(self._reqs)

    def post(self, req: MPIRequest) -> None:
        if req.kind != "recv":
            raise ValueError("only receive requests are posted")
        self._reqs.append(req)

    def match(self, src: int, tag: Any) -> Optional[MPIRequest]:
        """Pop the first posted request matching an arrived (src, tag)."""
        for i, req in enumerate(self._reqs):
            if _sources_match(req.peer, src) and _tags_match(req.tag, tag):
                return self._reqs.pop(i)
        return None

    def remove(self, req: MPIRequest) -> bool:
        """Withdraw a specific request (ANY_SOURCE resolution path)."""
        try:
            self._reqs.remove(req)
            return True
        except ValueError:
            return False

    def __iter__(self):
        return iter(self._reqs)


class UnexpectedQueue:
    """FIFO of arrived-but-unmatched message envelopes."""

    def __init__(self):
        self._envs: List[Envelope] = []

    def __len__(self) -> int:
        return len(self._envs)

    def add(self, env: Envelope) -> None:
        self._envs.append(env)

    def match(self, src: Any, tag: Any) -> Optional[Envelope]:
        """Pop the first envelope a posted (src, tag) would match."""
        for i, env in enumerate(self._envs):
            if _sources_match(src, env.src) and _tags_match(tag, env.tag):
                return self._envs.pop(i)
        return None

    def peek(self, src: Any, tag: Any) -> Optional[Envelope]:
        """Like :meth:`match` but non-destructive (MPI_Probe)."""
        for env in self._envs:
            if _sources_match(src, env.src) and _tags_match(tag, env.tag):
                return env
        return None

    def __iter__(self):
        return iter(self._envs)
