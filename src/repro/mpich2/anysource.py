"""MPI_ANY_SOURCE management for the CH3-direct path (paper Fig. 3).

NewMadeleine cannot match wildcard-source receives and cannot cancel a
posted request, so the module keeps, per MPI tag, a list containing the
pending ANY_SOURCE requests and any regular (known-source) receives
posted after them.  On every progress step the head ANY_SOURCE entry
probes NewMadeleine; when a matching message has arrived (it then sits
in NewMadeleine's buffers), a NewMadeleine request is created *a
posteriori* and completes immediately.  Regular receives queued behind
an ANY_SOURCE entry are only handed to NewMadeleine once the entry is
resolved, preserving MPI matching order.  An intra-node (shared-memory)
match simply removes the entry.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Tuple

from repro.mpich2.request import MPIRequest

_AS = "as"
_REGULAR = "regular"


class AnySourceBook:
    """The per-tag request lists of Fig. 3."""

    def __init__(self, stack):
        self.stack = stack
        self._lists: Dict[Any, Deque[Tuple[str, MPIRequest]]] = {}
        # race-detector name of the shared request lists (Fig. 3)
        self._rv = f"mpich2.anysource@r{stack.rank}"

    # -- bookkeeping -----------------------------------------------------
    def has_pending(self, tag: Any) -> bool:
        """True when an ANY_SOURCE entry exists for ``tag``."""
        self.stack.sim.race_read(self._rv)
        sub = self._lists.get(tag)
        return bool(sub) and any(kind == _AS for kind, _ in sub)

    def add_any_source(self, tag: Any, req: MPIRequest) -> None:
        self.stack.sim.race_write(self._rv)
        self._lists.setdefault(tag, deque()).append((_AS, req))

    def defer_regular(self, tag: Any, req: MPIRequest) -> None:
        """Queue a known-source receive behind pending ANY_SOURCE entries."""
        if not self.has_pending(tag):
            raise RuntimeError("defer_regular without a pending ANY_SOURCE")
        self.stack.sim.race_write(self._rv)
        self._lists[tag].append((_REGULAR, req))

    def pending_tags(self):
        return list(self._lists)

    # -- resolution --------------------------------------------------------
    def poll(self):
        """Probe NewMadeleine for every tag with pending entries."""
        for tag in list(self._lists):
            yield from self.poll_tag(tag)

    def poll_tag(self, tag: Any):
        """Advance one tag's sublist as far as possible."""
        self.stack.sim.race_write(self._rv)
        sub = self._lists.get(tag)
        while sub:
            kind, req = sub[0]
            if kind == _REGULAR:
                # the ANY_SOURCE ahead of it was resolved: hand to nmad now
                sub.popleft()
                yield from self.stack._post_remote_recv(req)
                continue
            hit = self.stack.core.probe(self.stack._nm_tag(tag))
            if self.stack.sim.tracing:
                self.stack.sim.record(
                    "mpich2.anysource_scan", rank=self.stack.rank, tag=tag,
                    hit=hit is not None, pending=len(sub),
                )
            if hit is None:
                break
            src, _size = hit
            sub.popleft()
            yield from self.stack._resolve_any_source(req, src)
        if sub is not None and not sub:
            self._lists.pop(tag, None)

    def on_local_match(self, tag: Any, req: MPIRequest):
        """An intra-node message matched ``req``: drop its entry (Fig. 3).

        Generator: flushing deferred regular receives posts them to
        NewMadeleine, which costs CPU.
        """
        self.stack.sim.race_write(self._rv)
        sub = self._lists.get(tag)
        if sub is not None:
            try:
                sub.remove((_AS, req))
            except ValueError:
                pass
        yield from self.poll_tag(tag)
