"""The MPICH2 software stack model (ADI3 / CH3 / Nemesis layers).

Two inter-node paths exist, mirroring the paper:

* the **netmod** path (Section 2.1.3): every CH3 message crosses the
  Nemesis queue-cell machinery (extra copies) and large messages suffer
  *nested* handshakes — CH3's RTS/CTS around NewMadeleine's own
  rendezvous (Fig. 2);
* the **CH3-direct** path (Section 3.1): CH3 calls NewMadeleine
  directly through per-destination function-pointer overrides in the
  virtual connection, NewMadeleine does the tag matching, and
  ANY_SOURCE is handled with the request-list system of Fig. 3.

Intra-node communication always uses the Nemesis shared-memory queues.
"""

from repro.mpich2.request import MPIRequest, ANY_SOURCE, ANY_TAG
from repro.mpich2.queues import PostedQueue, UnexpectedQueue, Envelope
from repro.mpich2.stackbase import BaseStack, StackCosts
from repro.mpich2.ch3 import CH3Stack, CH3Costs
from repro.mpich2.anysource import AnySourceBook
from repro.mpich2.vc import VirtualConnection

__all__ = [
    "MPIRequest",
    "ANY_SOURCE",
    "ANY_TAG",
    "PostedQueue",
    "UnexpectedQueue",
    "Envelope",
    "BaseStack",
    "StackCosts",
    "CH3Stack",
    "CH3Costs",
    "AnySourceBook",
    "VirtualConnection",
]
