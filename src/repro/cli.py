"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``experiments``   run paper-figure reproductions (all or by name)
``netpipe``       latency/bandwidth sweep for one stack
``overlap``       the Fig. 7 isend/compute/wait measurement
``nas``           one NAS kernel run
``stacks``        list available stack presets
``trace``         run a workload fully traced; export Perfetto JSON +
                  metrics summary + per-layer latency breakdown
``profile``       sim-time span profiler: run a workload under the
                  SpanProfiler and emit a top-N table, a folded-stack
                  flame graph and an enriched Perfetto trace
``perf``          render the perf-telemetry trajectory: benchmark
                  history + campaign run telemetry across runs
``faults``        chaos run: a streaming workload under a named fault
                  plan, with goodput-degradation and recovery report
``lint``          determinism lint: AST rules RPR001.. over the package
                  (wall-clock, RNG, iteration-order, taxonomy hygiene)
``check``         whole-package static contract checker: call-graph +
                  effect propagation enforcing RPC001.. (no blocking in
                  callbacks, audited clock/RNG funnels, race coverage,
                  taxonomy round-trip), plus a dead-code report
``race``          simulated-concurrency race detector: run a preset
                  under happens-before tracking and report conflicts
``campaign``      parallel experiment campaign: decompose experiments
                  into points, execute across a process pool, memoize
                  in a content-addressed result cache
``coll-tune``     collective-algorithm autotuner: sweep every registered
                  algorithm over a (p x size) grid through the campaign
                  cache and emit a tuned selection table
``topo``          routed network topologies: list presets, describe and
                  visualize a link/switch graph, or sweep one collective
                  across topologies and report per-link hot spots
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import config

_STACKS = {
    "mpich2_nmad": config.mpich2_nmad,
    "mpich2_nmad_pioman": config.mpich2_nmad_pioman,
    "mpich2_nmad_netmod": config.mpich2_nmad_netmod,
    "mpich2_nmad_multirail": lambda: config.mpich2_nmad(rails=("ib", "mx")),
    "mpich2_nmad_reliable": config.mpich2_nmad_reliable,
    # progress-engine / registration-cache variants (docs/PROGRESS.md)
    "mpich2_nmad_manual_poll":
        lambda: config.mpich2_nmad_pioman(progress="manual_poll"),
    "mpich2_nmad_dedicated":
        lambda: config.mpich2_nmad_pioman(progress="dedicated_thread"),
    "mpich2_nmad_regcache": lambda: config.mpich2_nmad(ib_reg_cache=8 << 20),
    "mvapich2": config.mvapich2,
    "openmpi_ib": config.openmpi_ib,
    "openmpi_pml_mx": config.openmpi_pml_mx,
    "openmpi_btl_mx": config.openmpi_btl_mx,
}


def _parse_size(text: str) -> int:
    """'4', '64K', '1M' -> bytes."""
    text = text.strip().upper()
    mult = 1
    if text.endswith("K"):
        mult, text = 1024, text[:-1]
    elif text.endswith("M"):
        mult, text = 1 << 20, text[:-1]
    return int(text) * mult


def _stack(name: str):
    try:
        return _STACKS[name]()
    except KeyError:
        raise SystemExit(
            f"unknown stack {name!r}; available: {', '.join(sorted(_STACKS))}")


def _make_sink(args):
    """Build the trace sink selected by ``--sink`` (trace/profile share it).

    ``full`` retains every record in memory, ``ring`` keeps a bounded
    window (``--ring-capacity``), ``jsonl`` spills each record to disk
    (``--jsonl``).  ``--sample`` / ``--sample-entities`` attach a
    deterministic :class:`~repro.simulator.tracing.TraceSampler`.
    """
    from repro.simulator import JsonlTrace, RingTrace, Trace, TraceSampler

    strides = {}
    for item in getattr(args, "sample", None) or []:
        name, sep, n = item.partition("=")
        if not sep or not name:
            raise SystemExit(f"bad --sample {item!r}; "
                             "expected LAYER_OR_CATEGORY=N")
        try:
            strides[name] = int(n)
        except ValueError:
            raise SystemExit(f"bad --sample stride {n!r}; expected an int")
    entities = None
    if getattr(args, "sample_entities", None):
        entities = [int(e) for e in args.sample_entities.split(",")]
    sampler = TraceSampler(strides=strides or None, entities=entities) \
        if (strides or entities is not None) else None
    if args.sink == "ring":
        return RingTrace(args.ring_capacity, sampler=sampler)
    if args.sink == "jsonl":
        return JsonlTrace(args.jsonl, sampler=sampler)
    return Trace(sampler=sampler)


def _sink_summary(trace) -> str:
    """One line describing what the sink kept/dropped."""
    from repro.simulator import JsonlTrace, RingTrace

    sampled = (f", {trace.sampled_out} sampled out"
               if trace.sampled_out else "")
    if isinstance(trace, RingTrace):
        return (f"ring sink: {len(trace)} retained of {trace.seen} admitted "
                f"(capacity {trace.capacity}, {trace.evicted} "
                f"evicted{sampled})")
    if isinstance(trace, JsonlTrace):
        return (f"jsonl sink: {trace.seen} record(s) spilled to "
                f"{trace.path}{sampled}")
    return f"full sink: {trace.seen} record(s) retained{sampled}"


def cmd_stacks(_args) -> int:
    for name in sorted(_STACKS):
        print(f"  {name:24s} -> {_STACKS[name]().name}")
    return 0


def cmd_experiments(args) -> int:
    from repro.experiments import (EXPERIMENTS, fig4_infiniband,
                                   fig5_multirail, fig6_pioman_overhead,
                                   fig7_overlap, fig8_nas)

    modules = {
        "fig4_infiniband": fig4_infiniband,
        "fig5_multirail": fig5_multirail,
        "fig6_pioman_overhead": fig6_pioman_overhead,
        "fig7_overlap": fig7_overlap,
        "fig8_nas": fig8_nas,
    }
    names = args.names or EXPERIMENTS
    for name in names:
        if name not in modules:
            raise SystemExit(f"unknown experiment {name!r}; "
                             f"available: {', '.join(EXPERIMENTS)}")
        modules[name].main(fast=args.fast)
    return 0


def cmd_netpipe(args) -> int:
    from repro.workloads.netpipe import run_netpipe

    sizes = [_parse_size(s) for s in args.sizes.split(",")]
    spec = _stack(args.stack)
    cluster = config.xeon_pair()
    res = run_netpipe(spec, cluster, sizes, reps=args.reps,
                      anysource=args.anysource, intra_node=args.intra)
    print(f"# {spec.name}" + (" (intra-node)" if args.intra else ""))
    print(f"{'size':>10} {'latency_us':>12} {'MiB/s':>10}")
    for i, size in enumerate(res.sizes):
        print(f"{size:>10} {res.latencies[i] * 1e6:>12.2f} "
              f"{res.bandwidths[i]:>10.0f}")
    return 0


def cmd_overlap(args) -> int:
    from repro.workloads.overlap import run_overlap

    spec = _stack(args.stack)
    size = _parse_size(args.size)
    compute = float(args.compute) * 1e-6
    ref = run_overlap(spec, config.xeon_pair(), [size], 0.0, reps=args.reps)
    res = run_overlap(spec, config.xeon_pair(), [size], compute,
                      reps=args.reps)
    print(f"# {spec.name}, {size} B, compute {compute * 1e6:.0f} us")
    print(f"communication alone : {ref.at(size) * 1e6:9.1f} us")
    print(f"sending time        : {res.at(size) * 1e6:9.1f} us")
    print(f"sum / max reference : {(ref.at(size) + compute) * 1e6:9.1f} / "
          f"{max(ref.at(size), compute) * 1e6:.1f} us")
    return 0


def cmd_nas(args) -> int:
    from repro.workloads.nas import adjust_procs, run_kernel

    spec = _stack(args.stack)
    procs = adjust_procs(args.kernel, args.procs)
    res = run_kernel(args.kernel, args.cls, procs, spec,
                     sim_iters=args.sim_iters)
    print(f"{args.kernel.upper()} class {args.cls}, {procs} processes, "
          f"{spec.name}")
    print(f"projected execution time: {res.time_seconds:.1f} s "
          f"({res.simulated_iters}/{res.total_iters} iterations simulated)")
    return 0


def cmd_trace(args) -> int:
    from repro.observability import (attach_metrics, format_breakdown,
                                     layer_of, message_lives, write_perfetto)
    from repro.runtime import run_mpi
    from repro.simulator import JsonlTrace, load_trace_jsonl
    from repro.workloads.netpipe import pingpong

    if args.reps < 1:
        raise SystemExit("--reps must be >= 1")
    spec = _stack(args.stack)
    size = _parse_size(args.size)
    trace = _make_sink(args)
    metrics = attach_metrics(trace)

    if args.workload == "netpipe":
        program = pingpong(size, reps=args.reps, warmup=0)
    else:  # overlap
        from repro.workloads.overlap import overlap_program
        program = overlap_program(size, compute=400e-6, reps=args.reps,
                                  warmup=0)

    result = run_mpi(program, 2, spec, cluster=config.xeon_pair(),
                     trace=trace)
    sink_line = _sink_summary(trace)
    partial = ""
    if isinstance(trace, JsonlTrace):
        # round-trip through the spill file: the reloaded trace is the
        # full record stream, so breakdown/export work as with a full sink
        trace.close()
        trace = load_trace_jsonl(trace.path)
    elif args.sink == "ring" and trace.evicted:
        partial = (f" (ring window: oldest {trace.evicted} record(s) "
                   "evicted, breakdown is partial)")
    write_perfetto(trace, args.out)

    layers = sorted({layer_of(c) for c in trace.categories_seen()})
    print(f"# {spec.name}, {args.workload}, {size} B "
          f"(done at {result.elapsed * 1e6:.1f} us)")
    print(f"{len(trace)} trace records across layers: {', '.join(layers)}")
    print(sink_line)
    print(f"Perfetto trace written to {args.out} "
          f"(open at https://ui.perfetto.dev)")
    print()
    print(f"== per-layer latency breakdown =={partial}")
    print(format_breakdown(message_lives(trace)))
    print()
    print("== metrics ==")
    print(metrics.format_summary())
    return 0


def cmd_profile(args) -> int:
    from repro.observability import (SpanProfiler, attach_metrics,
                                     format_engine_stats,
                                     record_engine_metrics, write_perfetto)
    from repro.runtime.builder import MPIRuntime
    from repro.simulator import JsonlTrace

    if args.reps < 1:
        raise SystemExit("--reps must be >= 1")
    spec = _stack(args.stack)
    size = _parse_size(args.size)
    trace = _make_sink(args)
    metrics = attach_metrics(trace)
    prof = SpanProfiler().attach(trace)

    if args.workload == "pingpong":
        from repro.workloads.netpipe import pingpong
        nprocs, cluster = 2, config.xeon_pair()
        program = pingpong(size, reps=args.reps, warmup=0)
    elif args.workload == "overlap":
        from repro.workloads.overlap import overlap_program
        nprocs, cluster = 2, config.xeon_pair()
        program = overlap_program(size, compute=400e-6, reps=args.reps,
                                  warmup=0)
    else:  # collbench
        from repro.workloads.collbench import BENCHABLE, collbench
        if args.coll not in BENCHABLE:
            raise SystemExit(f"unknown collective {args.coll!r}; "
                             f"benchable: {', '.join(BENCHABLE)}")
        nprocs, cluster = args.np, None   # one rank per node by default
        program = collbench(args.coll, size, reps=args.reps, warmup=1)

    runtime = MPIRuntime(nprocs, spec, cluster=cluster, trace=trace)
    result = runtime.run(program)
    prof.finalize(runtime.sim.now)
    stats = record_engine_metrics(runtime.sim, metrics.registry)

    folded_path = prof.write_folded(args.folded)
    write_perfetto(trace, args.perfetto, spans=prof.all_spans())
    if isinstance(trace, JsonlTrace):
        trace.close()

    workload = args.workload if args.workload != "collbench" \
        else f"collbench/{args.coll} p={nprocs}"
    print(f"# {spec.name}, {workload}, {size} B "
          f"(done at {result.elapsed * 1e6:.1f} us)")
    print(_sink_summary(trace))
    print()
    print(prof.report(args.top))
    print()
    print("== engine ==")
    print(format_engine_stats(stats))
    print()
    print(f"folded flame graph written to {folded_path} "
          "(flamegraph.pl / speedscope)")
    print(f"Perfetto trace with spans written to {args.perfetto} "
          "(open at https://ui.perfetto.dev)")
    return 0


def cmd_perf(args) -> int:
    import json
    import os

    def read_jsonl(path):
        rows = []
        if not os.path.exists(path):
            return rows
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if line:
                    try:
                        rows.append(json.loads(line))
                    except ValueError:
                        continue   # tolerate a torn tail line
        return rows

    bench_runs = read_jsonl(args.history)
    telemetry_path = os.path.join(args.cache_dir, "telemetry.jsonl")
    campaign_runs = read_jsonl(telemetry_path)
    if not bench_runs and not campaign_runs:
        print(f"no perf telemetry found ({args.history} and "
              f"{telemetry_path} are both absent or empty);\n"
              "run benchmarks/check_simulator_regression.py or a cached "
              "`repro campaign` first")
        return 1

    if bench_runs:
        runs = bench_runs[-args.last:]
        print(f"== benchmark guard history ({len(runs)} of "
              f"{len(bench_runs)} run(s), {args.history}) ==")
        print(f"{'run':>4} {'benches':>8} {'worst_ratio':>12} "
              f"{'best_ratio':>11} {'reg':>4} {'imp':>4} {'new':>4}")
        for i, run in enumerate(runs, len(bench_runs) - len(runs) + 1):
            ratios = [row.get("ratio") for row in
                      run.get("benches", {}).values()
                      if row.get("ratio") is not None]
            worst = f"{min(ratios):.3f}" if ratios else "n/a"
            best = f"{max(ratios):.3f}" if ratios else "n/a"
            print(f"{i:>4} {len(run.get('benches', {})):>8} {worst:>12} "
                  f"{best:>11} {len(run.get('regressions', [])):>4} "
                  f"{len(run.get('improvements', [])):>4} "
                  f"{len(run.get('new', [])):>4}")
        latest = runs[-1].get("benches", {})
        if latest:
            print()
            print("latest per-benchmark ratios (vs baseline, >1 = faster):")
            for name in sorted(latest):
                row = latest[name]
                ratio = row.get("ratio")
                mark = "  new" if ratio is None else f"{ratio:5.3f}"
                mean = row.get("mean")
                mean_text = f"{mean * 1e3:8.3f} ms" if mean is not None \
                    else "  missing"
                print(f"  {name.split('::')[-1]:<40} "
                      f"mean {mean_text}  {mark}")

    if campaign_runs:
        if bench_runs:
            print()
        runs = campaign_runs[-args.last:]
        print(f"== campaign telemetry ({len(runs)} of {len(campaign_runs)} "
              f"run(s), {telemetry_path}) ==")
        print(f"{'run':>4} {'points':>7} {'hits':>6} {'misses':>7} "
              f"{'wall_s':>8} {'executed_s':>11} {'workers':>8}")
        for i, run in enumerate(runs, len(campaign_runs) - len(runs) + 1):
            print(f"{i:>4} {run.get('points', 0):>7} "
                  f"{run.get('cache_hits', 0):>6} "
                  f"{run.get('cache_misses', 0):>7} "
                  f"{run.get('wall_seconds', 0.0):>8.2f} "
                  f"{run.get('executed_seconds', 0.0):>11.2f} "
                  f"{run.get('workers', 1):>8}")
    return 0


def cmd_faults(args) -> int:
    import json

    from repro.faults import run_chaos

    spec = _stack(args.stack)
    if spec.reliability is None:
        raise SystemExit(f"stack {args.stack!r} has no reliability layer; "
                         "use mpich2_nmad_reliable (or a spec with "
                         "reliability set)")
    report = run_chaos(plan_name=args.plan, messages=args.messages,
                       size=_parse_size(args.size), seed=args.seed,
                       spec=spec, drop_prob=args.drop_prob)
    print(report.format_text())
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2)
        print(f"metrics JSON written to {args.out}")
    return 0 if report.exactly_once else 1


def _emit_findings(violations, fmt: str, tool: str, rules,
                   output: Optional[str]) -> None:
    """Render findings in ``fmt``; text goes line-by-line to stdout."""
    from repro.analysis.reporting import render

    if fmt == "text" and output is None:
        for violation in violations:
            print(violation.format())
        return
    document = render(violations, fmt, tool, rules)
    if output is None:
        print(document)
    else:
        with open(output, "w", encoding="utf-8") as fh:
            fh.write(document + "\n")
        print(f"{fmt} report ({len(violations)} finding(s)) written "
              f"to {output}")


def cmd_lint(args) -> int:
    import os

    from repro.analysis.lint import (RULES, load_baseline, rule_catalog,
                                     run_lint, save_baseline)

    if args.list_rules:
        for rule in RULES:
            print(f"  {rule.code}  {rule.name:18s} {rule.summary}")
        return 0
    paths = args.paths or None
    if args.update_baseline:
        result = run_lint(paths)
        save_baseline(args.update_baseline, result.violations)
        print(f"baseline of {len(result.violations)} finding(s) written "
              f"to {args.update_baseline}")
        return 0
    baseline_path = args.baseline
    if baseline_path is None and os.path.exists(".repro-lint-baseline.json"):
        baseline_path = ".repro-lint-baseline.json"
    baseline = load_baseline(baseline_path) if baseline_path else None
    result = run_lint(paths, baseline=baseline)
    _emit_findings(result.violations, args.format, "repro-lint",
                   rule_catalog(), args.output)
    status = "clean" if result.clean else \
        f"{len(result.violations)} violation(s)"
    suppressed = f", {len(result.baselined)} baselined" if result.baselined \
        else ""
    print(f"repro lint: {result.files} file(s), {status}{suppressed}")
    return 0 if result.clean else 1


def cmd_check(args) -> int:
    import os

    from repro.analysis.reporting import load_baseline
    from repro.analysis.static import (check_package, contract_catalog,
                                       default_target, run_check,
                                       save_baseline)

    if args.list_contracts:
        for code, summary in contract_catalog():
            print(f"  {code}  {summary}")
        return 0
    root = args.root or default_target()
    if args.update_baseline:
        found, _graph, _analysis, _dead = check_package(root)
        save_baseline(args.update_baseline, found)
        print(f"baseline of {len(found)} finding(s) written "
              f"to {args.update_baseline}")
        return 0
    baseline_path = args.baseline
    if baseline_path is None and os.path.exists(".repro-check-baseline.json"):
        baseline_path = ".repro-check-baseline.json"
    baseline = load_baseline(baseline_path) if baseline_path else None
    result = run_check(root, baseline=baseline, dead_code=args.dead_code)
    _emit_findings(result.violations, args.format, "repro-check",
                   contract_catalog(), args.output)
    if args.dead_code:
        for info in result.dead:
            kind = "method" if info.is_method else "function"
            print(f"dead: {info.qname} ({kind}, {info.path}:{info.line})")
        print(f"dead-code report: {len(result.dead)} unreachable public "
              f"function(s)")
    if args.stats:
        analysis = result.analysis
        edges = sum(len(result.graph.edges[k])
                    for k in sorted(result.graph.edges))
        print(f"call graph: {len(result.graph.functions)} function(s), "
              f"{edges} edge(s), "
              f"{len(result.graph.registrations)} callback "
              f"registration(s) across {result.files} module(s)")
        blocking = sum(1 for q in sorted(analysis.functions)
                       if "BLOCKS" in analysis.functions[q].out)
        generators = sum(1 for q in sorted(analysis.functions)
                         if analysis.functions[q].is_generator)
        print(f"effects: {generators} generator(s), {blocking} "
              f"host-blocking function(s)")
    status = "clean" if result.clean else \
        f"{len(result.violations)} violation(s)"
    suppressed = f", {len(result.baselined)} baselined" if result.baselined \
        else ""
    print(f"repro check: {result.files} module(s), {status}{suppressed}")
    return 0 if result.clean else 1


def cmd_race(args) -> int:
    from repro.analysis.race import run_race, run_racy_demo

    if args.demo_racy:
        report = run_racy_demo(seed=args.seed)
        print(report.format_text())
        return 1 if report.races else 0
    spec = _stack(args.preset)
    cluster = None
    if args.topo:
        from repro.hardware import presets as hw
        from repro.hardware.netgraph import parse_topology

        topo = parse_topology(args.topo)
        if topo is None:
            raise SystemExit(f"--topo {args.topo!r} is the flat fabric; "
                             "pass e.g. torus2d:2x2 or omit the flag")
        cluster = config.ClusterSpec(
            n_nodes=topo.capacity, node=hw.XEON_NODE,
            rails=(hw.IB_CONNECTX, hw.MX_MYRI10G), topology=topo)
    report = run_race(spec, size=_parse_size(args.size), reps=args.reps,
                      seed=args.seed, cluster=cluster)
    print(report.format_text())
    return 1 if report.races else 0


def cmd_topo(args) -> int:
    from repro.hardware import presets as hw
    from repro.hardware.netgraph import PRESETS, NetGraph, parse_topology

    rail = {"ib": hw.IB_CONNECTX, "mx": hw.MX_MYRI10G}[args.rail]
    if args.action == "list":
        for name in sorted(PRESETS):
            d = NetGraph(PRESETS[name], rail).describe()
            print(f"{name:<12} {d['nodes']:>3} nodes, "
                  f"{d['switches']:>2} switches, {d['links']:>3} links, "
                  f"diameter {d['diameter_hops']} hop(s), "
                  f"mean {d['mean_hops']:.2f}")
        return 0
    if not args.topology:
        raise SystemExit(f"topo {args.action} needs a topology argument "
                         "(e.g. torus2d:4x4; `repro topo list` for presets)")
    if args.action == "describe":
        spec = parse_topology(args.topology)
        if spec is None:
            raise SystemExit("the flat fabric has no graph to describe")
        graph = NetGraph(spec, rail)
        for key, value in graph.describe().items():
            print(f"{key:<16} {value}")
        art = graph.ascii_art()
        if art:
            print()
            print(art)
        return 0
    # sweep: one collective cell per topology, with link hot spots
    from repro.observability.metrics import attach_metrics
    from repro.simulator import Trace
    from repro.workloads.collbench import run_collbench

    spec_stack = _stack(args.stack)
    size = _parse_size(args.size)
    for text in args.topology.split(","):
        topo = parse_topology(text)
        cluster = None
        if topo is not None:
            if topo.capacity < args.nprocs:
                raise SystemExit(f"{topo.name} holds {topo.capacity} "
                                 f"node(s) < --nprocs {args.nprocs}")
            cluster = config.ClusterSpec(n_nodes=args.nprocs, topology=topo)
        trace = Trace()
        metrics = attach_metrics(trace)
        res = run_collbench(spec_stack, args.nprocs, args.coll, size,
                            algorithm=args.algo, reps=args.reps,
                            cluster=cluster, trace=trace)
        label = topo.name if topo is not None else "flat"
        print(f"{label:<14} {args.coll}/{res.algorithm} p={args.nprocs} "
              f"{size} B: {res.per_op * 1e6:.1f} us/op")
        for link, row in metrics.hottest_links(args.links).items():
            print(f"    {link:<20} busy {row['busy_time'] * 1e6:8.1f} us  "
                  f"queued {row['queue_delay'] * 1e6:8.1f} us  "
                  f"max depth {int(row['max_depth'])}")
    return 0


def cmd_campaign(args) -> int:
    import importlib
    import json

    from repro.campaign import ResultCache, run_campaign
    from repro.campaign.runner import ALL_MODULES

    names = args.names or None
    for name in args.names:
        if name not in ALL_MODULES:
            raise SystemExit(f"unknown experiment module {name!r}; "
                             f"available: {', '.join(ALL_MODULES)}")
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    report = run_campaign(modules=names, fast=args.fast,
                          workers=args.workers, cache=cache,
                          force=args.force)
    if not args.quiet:
        for name, data in report.modules.items():
            importlib.import_module(f"repro.experiments.{name}").render(data)
            print()
    print(report.format_summary())
    if args.report:
        with open(args.report, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
        print(f"campaign report written to {args.report}")
    return 0


def cmd_coll_tune(args) -> int:
    import json

    from repro.campaign import ResultCache
    from repro.coll.tuning import tune

    if args.stack not in _STACKS:
        raise SystemExit(f"unknown stack {args.stack!r}; "
                         f"available: {', '.join(sorted(_STACKS))}")
    procs = ([int(p) for p in args.procs.split(",")]
             if args.procs else None)
    sizes = ([_parse_size(s) for s in args.sizes.split(",")]
             if args.sizes else None)
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    report = tune(stack_preset=args.stack, procs=procs, sizes=sizes,
                  reps=args.reps, fast=args.fast, workers=args.workers,
                  cache=cache, force=args.force)
    # artifacts land before the summary so a closed stdout can't lose them
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(report.table.dumps())
    if args.report:
        with open(args.report, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
    print(report.format_summary())
    if args.out:
        print(f"tuned selection table written to {args.out}")
    if args.report:
        print(f"tuning report written to {args.report}")
    return 0


def _add_sink_options(p: argparse.ArgumentParser) -> None:
    """The shared trace-sink/sampling option block (trace + profile)."""
    p.add_argument("--sink", default="full",
                   choices=["full", "ring", "jsonl"],
                   help="trace sink: full in-memory log, bounded ring "
                        "buffer, or JSONL spill-to-disk")
    p.add_argument("--ring-capacity", type=int, default=4096,
                   help="retained records for --sink ring")
    p.add_argument("--jsonl", default="trace_records.jsonl",
                   help="spill path for --sink jsonl")
    p.add_argument("--sample", action="append", metavar="LAYER_OR_CAT=N",
                   help="admit every Nth record of a category or layer "
                        "(repeatable; begin/end pairs are never sampled)")
    p.add_argument("--sample-entities", default=None, metavar="IDS",
                   help="comma list of rank/node ids to record "
                        "(others dropped)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NewMadeleine-in-MPICH2 reproduction (IPDPS 2009)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("stacks", help="list stack presets")
    p.set_defaults(fn=cmd_stacks)

    p = sub.add_parser("experiments", help="run paper-figure reproductions")
    p.add_argument("names", nargs="*", help="figure modules (default: all)")
    p.add_argument("--fast", action="store_true", help="reduced sweeps")
    p.set_defaults(fn=cmd_experiments)

    p = sub.add_parser("netpipe", help="latency/bandwidth sweep")
    p.add_argument("--stack", default="mpich2_nmad")
    p.add_argument("--sizes", default="4,1K,64K,1M",
                   help="comma list, K/M suffixes allowed")
    p.add_argument("--reps", type=int, default=5)
    p.add_argument("--anysource", action="store_true")
    p.add_argument("--intra", action="store_true",
                   help="both ranks on one node (shared memory)")
    p.set_defaults(fn=cmd_netpipe)

    p = sub.add_parser("overlap", help="isend/compute/wait measurement")
    p.add_argument("--stack", default="mpich2_nmad_pioman")
    p.add_argument("--size", default="256K")
    p.add_argument("--compute", default="400", help="microseconds")
    p.add_argument("--reps", type=int, default=3)
    p.set_defaults(fn=cmd_overlap)

    p = sub.add_parser("nas", help="run one NAS kernel")
    p.add_argument("--kernel", default="cg",
                   choices=["bt", "cg", "ep", "ft", "sp", "mg", "lu", "is"])
    p.add_argument("--cls", default="A", choices=["A", "B", "C"])
    p.add_argument("--procs", type=int, default=8)
    p.add_argument("--stack", default="mpich2_nmad")
    p.add_argument("--sim-iters", type=int, default=None)
    p.set_defaults(fn=cmd_nas)

    p = sub.add_parser("trace", help="trace a workload; export Perfetto "
                                     "JSON + metrics + latency breakdown")
    p.add_argument("--stack", default="mpich2_nmad_pioman")
    p.add_argument("--workload", default="netpipe",
                   choices=["netpipe", "overlap"])
    p.add_argument("--size", default="64K",
                   help="message size, K/M suffixes allowed")
    p.add_argument("--reps", type=int, default=3)
    p.add_argument("--out", default="trace.json",
                   help="Perfetto JSON output path")
    _add_sink_options(p)
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser("profile", help="sim-time span profiler: top-N "
                                       "table, folded flame graph, "
                                       "Perfetto spans")
    p.add_argument("stack", nargs="?", default="mpich2_nmad",
                   help="stack preset (see `repro stacks`)")
    p.add_argument("workload", nargs="?", default="pingpong",
                   choices=["pingpong", "overlap", "collbench"])
    p.add_argument("--size", default="64K",
                   help="message size, K/M suffixes allowed")
    p.add_argument("--reps", type=int, default=3)
    p.add_argument("--np", type=int, default=8,
                   help="process count (collbench only)")
    p.add_argument("--coll", default="allreduce",
                   help="collective to profile (collbench only)")
    p.add_argument("--top", type=int, default=15,
                   help="rows in the top-span table")
    p.add_argument("--folded", default="profile.folded",
                   help="folded-stack flame graph output path")
    p.add_argument("--perfetto", default="profile.json",
                   help="Perfetto JSON (with span slices) output path")
    _add_sink_options(p)
    p.set_defaults(fn=cmd_profile)

    p = sub.add_parser("perf", help="render perf-telemetry trajectories: "
                                    "benchmark history + campaign runs")
    p.add_argument("--history", default="benchmarks/bench_history.jsonl",
                   help="benchmark guard history JSONL")
    p.add_argument("--cache-dir", default=".repro-cache",
                   help="campaign cache dir (telemetry.jsonl lives beside "
                        "the store)")
    p.add_argument("--last", type=int, default=10,
                   help="show at most the last N runs of each trajectory")
    p.set_defaults(fn=cmd_perf)

    p = sub.add_parser("faults", help="chaos run under a named fault plan")
    p.add_argument("--plan", default="drop+outage",
                   help="clean, drop, corrupt, outage, drop+outage, stall")
    p.add_argument("--stack", default="mpich2_nmad_reliable")
    p.add_argument("--size", default="512K",
                   help="message size, K/M suffixes allowed")
    p.add_argument("--messages", type=int, default=16)
    p.add_argument("--seed", type=int, default=1234)
    p.add_argument("--drop-prob", type=float, default=0.01)
    p.add_argument("--out", default=None,
                   help="write the full report as JSON to this path")
    p.set_defaults(fn=cmd_faults)

    p = sub.add_parser("lint", help="determinism lint over the package")
    p.add_argument("paths", nargs="*",
                   help="files/dirs to lint (default: the repro package)")
    p.add_argument("--baseline", default=None,
                   help="baseline JSON (default: .repro-lint-baseline.json "
                        "in the cwd when present)")
    p.add_argument("--update-baseline", metavar="PATH", default=None,
                   help="write current findings as the new baseline and exit")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule catalog and exit")
    p.add_argument("--format", choices=("text", "json", "sarif"),
                   default="text", help="findings output format")
    p.add_argument("--output", metavar="PATH", default=None,
                   help="write the findings report to a file instead of "
                        "stdout")
    p.set_defaults(fn=cmd_lint)

    p = sub.add_parser("check", help="whole-package static contract "
                                     "checker (call graph + effects)")
    p.add_argument("root", nargs="?", default=None,
                   help="package directory to analyze (default: the "
                        "installed repro package)")
    p.add_argument("--baseline", default=None,
                   help="baseline JSON (default: .repro-check-baseline.json "
                        "in the cwd when present)")
    p.add_argument("--update-baseline", metavar="PATH", default=None,
                   help="write current findings as the new baseline and exit")
    p.add_argument("--list-contracts", action="store_true",
                   help="print the contract catalog and exit")
    p.add_argument("--format", choices=("text", "json", "sarif"),
                   default="text", help="findings output format")
    p.add_argument("--output", metavar="PATH", default=None,
                   help="write the findings report to a file instead of "
                        "stdout")
    p.add_argument("--dead-code", action="store_true",
                   help="also report unreachable public functions "
                        "(advisory; does not affect the exit status)")
    p.add_argument("--stats", action="store_true",
                   help="print call-graph and effect statistics")
    p.set_defaults(fn=cmd_check)

    p = sub.add_parser("race", help="happens-before race detector run")
    p.add_argument("--preset", "--stack", dest="preset",
                   default="mpich2_nmad_reliable",
                   help="stack preset to run under the detector")
    p.add_argument("--size", default="64K",
                   help="message size, K/M suffixes allowed")
    p.add_argument("--reps", type=int, default=3)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--demo-racy", action="store_true",
                   help="run the deliberately racy scenario instead "
                        "(must report a race; exercises the detector)")
    p.add_argument("--topo", default=None,
                   help="run on a routed topology (e.g. torus2d:2x2) so "
                        "link traversal is under the detector too")
    p.set_defaults(fn=cmd_race)

    p = sub.add_parser("topo", help="routed network topologies: describe/"
                                    "visualize a graph, sweep a collective "
                                    "across topologies with link hot spots")
    p.add_argument("action", choices=["list", "describe", "sweep"])
    p.add_argument("topology", nargs="?", default=None,
                   help="topology string, e.g. torus2d:4x4 or fattree:4 "
                        "(sweep takes a comma list; 'flat' allowed)")
    p.add_argument("--rail", choices=["ib", "mx"], default="ib",
                   help="NIC parameters the links inherit")
    p.add_argument("--stack", default="mpich2_nmad")
    p.add_argument("--coll", default="allreduce")
    p.add_argument("--algo", default=None,
                   help="force one algorithm (default: selection table)")
    p.add_argument("--nprocs", type=int, default=8)
    p.add_argument("--size", default="64K",
                   help="message size, K/M suffixes allowed")
    p.add_argument("--reps", type=int, default=2)
    p.add_argument("--links", type=int, default=5,
                   help="hottest links to print per topology")
    p.set_defaults(fn=cmd_topo)

    p = sub.add_parser("campaign", help="parallel, cached experiment "
                                        "campaign over the paper figures")
    p.add_argument("names", nargs="*",
                   help="experiment modules (default: all of run_all)")
    p.add_argument("--workers", type=int, default=1,
                   help="process-pool width (1 = in-process)")
    p.add_argument("--fast", action="store_true", help="reduced sweeps")
    p.add_argument("--cache-dir", default=".repro-cache",
                   help="content-addressed result cache directory")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the result cache entirely")
    p.add_argument("--force", action="store_true",
                   help="recompute every point even on a cache hit")
    p.add_argument("--quiet", action="store_true",
                   help="only print the campaign summary, not the tables")
    p.add_argument("--report", default=None, metavar="PATH",
                   help="write merged results + stats as JSON to PATH")
    p.set_defaults(fn=cmd_campaign)

    p = sub.add_parser("coll-tune", help="autotune collective-algorithm "
                                         "selection over a (p x size) grid")
    p.add_argument("--stack", default="mpich2_nmad")
    p.add_argument("--procs", default=None,
                   help="comma list of process counts (default 4,8,16)")
    p.add_argument("--sizes", default=None,
                   help="comma list of sizes, K/M suffixes allowed")
    p.add_argument("--reps", type=int, default=3)
    p.add_argument("--fast", action="store_true",
                   help="shrunken grid (one p, two sizes) for smoke runs")
    p.add_argument("--workers", type=int, default=1,
                   help="process-pool width (1 = in-process)")
    p.add_argument("--cache-dir", default=".repro-cache",
                   help="content-addressed result cache directory")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the result cache entirely")
    p.add_argument("--force", action="store_true",
                   help="recompute every cell even on a cache hit")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="write the tuned selection table JSON to PATH")
    p.add_argument("--report", default=None, metavar="PATH",
                   help="write winners + measurements as JSON to PATH")
    p.set_defaults(fn=cmd_coll_tune)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # stdout went away (e.g. piped to `head`): exit quietly, and
        # hand the interpreter a dead-end stdout so its shutdown-time
        # flush cannot raise again
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
