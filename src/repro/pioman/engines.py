"""Pluggable progress engines: the Zhou et al. 2024 design space.

The paper's claim (Section 3.3) is that PIOMan's *threaded* progress —
a per-node worker that opportunistically grabs idle cores — wins
communication/computation overlap.  "MPI Progress For All" (Zhou et
al. 2024, arXiv 2405.13807) catalogs the modern alternatives; this
module turns :mod:`repro.pioman.manager` into one implementation of a
pluggable :class:`ProgressEngine` contract and adds two of them:

``pioman`` (reference)
    The 2009 threaded engine from :class:`repro.pioman.manager.PIOMan`,
    byte-identical to the pre-refactor behaviour.  Background progress,
    per-message sync overhead, ``poll_period`` detection latency.

``manual_poll``
    No progress thread at all: ltasks only run when a rank is *inside*
    an MPI call (``wait``/``probe``/``progress_once``).  Zero per-message
    synchronization cost (``sync_cost`` is 0) and zero detection latency
    once inside the library — but no overlap: progress stops dead while
    the application computes.

``dedicated_thread``
    One dedicated progress task per node serving per-rank ltask queues,
    stealing work across ranks' queues round-robin.  Always polling, so
    newly submitted work is picked up without the ``poll_period`` delay;
    pays the same per-message synchronization as PIOMan (the queues are
    still shared with the application threads).

Selection mirrors the scheduler layer (:mod:`repro.simulator.schedulers`):
an explicit ``StackSpec.progress`` kind wins, else the ``REPRO_PROGRESS``
environment variable, else the reference engine.  Campaign executors
*pin* the engine into the point config (see ``campaign.executors``):
campaign results are content-addressed by the point alone, so an ambient
env knob must never change them.

Engine contract (duck-typed; ``PIOMan`` is the reference implementation):

* ``kind`` — registry name; ``params`` — :class:`PIOManParams`;
  ``ltasks_run`` — dispatch counter.
* ``background`` — True if progress happens without application
  involvement (drives the stack's probe/wait strategy).
* ``submit(work, rank=0)`` — queue an ltask (generator factory).
* ``semaphore_wait(event)`` — generator: block the caller on ``event``
  (core held on entry and on return).
* ``progress()`` — generator: make progress on the *calling* thread
  (no-op for background engines).
* ``sync_cost(shm)`` — per-message synchronization overhead charged by
  the stack on each send/recv half.
* ``teardown()`` — drop pending ltasks and stop background work.
"""

from __future__ import annotations

import os
from collections import deque
from typing import Callable, Deque, Dict, Generator, List, Optional, Type

from repro.pioman.manager import PIOMan, PIOManParams
from repro.simulator import Event, Simulator
from repro.threads.marcel import MarcelScheduler

#: environment knob mirroring ``REPRO_SCHEDULER``
PROGRESS_ENV = "REPRO_PROGRESS"

_DEFAULT_KIND = "pioman"


class ProgressEngine:
    """Base for the alternative engines (PIOMan predates it, duck-typed).

    Subclasses must set :attr:`kind`/:attr:`background` and implement
    :meth:`submit`, :meth:`semaphore_wait` and :meth:`progress`.
    """

    kind = "abstract"
    background = True

    def __init__(self, sim: Simulator, scheduler: MarcelScheduler,
                 params: PIOManParams = PIOManParams()):
        self.sim = sim
        self.scheduler = scheduler
        self.params = params
        self.ltasks_run = 0

    # -- contract --------------------------------------------------------
    def submit(self, work: Callable[[], Generator], rank: int = 0) -> None:
        raise NotImplementedError

    def semaphore_wait(self, event: Event) -> Generator:
        raise NotImplementedError

    def progress(self) -> Generator:
        """Run queued ltasks on the calling thread; no-op if background."""
        return
        yield  # pragma: no cover - makes this a generator

    def sync_cost(self, shm: bool) -> float:
        """Per-message synchronization overhead (one half, send or recv)."""
        p = self.params
        return (p.sync_shm if shm else p.sync_net) / 2.0

    def teardown(self) -> None:
        """Drop pending ltasks and stop background work."""

    # -- shared machinery ------------------------------------------------
    def _run_ltask(self, work: Callable[[], Generator],
                   pending: int) -> Generator:
        """Charge dispatch cost and run one ltask under the node lock."""
        self.ltasks_run += 1
        node = self.scheduler.node_id
        span_start = None
        if self.sim.tracing:
            span_start = self.sim.now
            self.sim.record("pioman.ltask.begin", node=node, pending=pending)
            self.sim.record("pioman.ltask", node=node, pending=pending,
                            dur=self.params.ltask_cost)
            self.sim.record("pioman.engine.ltask", node=node,
                            engine=self.kind, pending=pending,
                            dur=self.params.ltask_cost)
        yield self.sim.timeout(self.params.ltask_cost)
        # same progression lock as the reference engine (piom_lock, §3.3)
        with self.sim.sync_region(("node", node), "pioman.ltask"):
            yield from work()
        if span_start is not None:
            self.sim.record("pioman.ltask.end", node=node,
                            dur=self.sim.now - span_start)


class ManualPollEngine(ProgressEngine):
    """Progress only inside MPI calls (Zhou et al.'s *manual* mode).

    The application thread itself drains the ltask queue whenever it
    enters the library, holding its own core the whole time (spin
    semantics).  There is no shared progress state to lock, so
    :meth:`sync_cost` is zero — the engine trades all overlap away for
    the lowest possible per-message overhead.
    """

    kind = "manual_poll"
    background = False

    def __init__(self, sim: Simulator, scheduler: MarcelScheduler,
                 params: PIOManParams = PIOManParams()):
        super().__init__(sim, scheduler, params)
        self._queue: Deque[Callable[[], Generator]] = deque()
        self._signal: Optional[Event] = None
        self._torn_down = False

    def submit(self, work: Callable[[], Generator], rank: int = 0) -> None:
        self.sim.race_write(f"pioman.queue@n{self.scheduler.node_id}",
                            "submit")
        if self._torn_down:
            return
        self._queue.append(work)
        if self._signal is not None and not self._signal.triggered:
            self._signal.succeed()

    def progress(self) -> Generator:
        """Drain every queued ltask on the calling thread."""
        if self._queue and self.sim.tracing:
            self.sim.record("pioman.engine.poll",
                            node=self.scheduler.node_id,
                            engine=self.kind, pending=len(self._queue))
        while self._queue:
            # drain runs on the calling thread; each pop is serialized
            # by _run_ltask's progression lock
            # repro-check: allow[RPC004] calling-thread drain under piom_lock
            work = self._queue.popleft()
            yield from self._run_ltask(work, pending=len(self._queue))

    def _arrival_signal(self) -> Event:
        # one shared event, re-armed only once it has fired: with several
        # ranks' threads parked on the same node engine, a fresh event per
        # waiter would orphan all but the newest
        if self._signal is None or self._signal.triggered:
            self._signal = self.sim.event()
        return self._signal

    def semaphore_wait(self, event: Event) -> Generator:
        """Poll for progress until ``event`` triggers (core held)."""
        while not event.triggered:
            yield from self.progress()
            if event.triggered:
                return
            if not self._queue:
                yield self.sim.any_of([event, self._arrival_signal()])

    def sync_cost(self, shm: bool) -> float:
        return 0.0

    def teardown(self) -> None:
        self._torn_down = True
        # repro-check: allow[RPC004] shutdown path, no tasks are active
        self._queue.clear()


class DedicatedThreadEngine(ProgressEngine):
    """One dedicated progress task per node, stealing across rank queues.

    Each rank submits into its own queue; a single persistent worker
    serves the queues round-robin, *stealing* from another rank's queue
    whenever its current one is empty.  The worker is modeled as always
    polling: newly submitted work is dispatched without PIOMan's
    ``poll_period`` detection delay.  The queues are still shared with
    the application threads, so the per-message ``sync_cost`` is the
    same as the reference engine's.
    """

    kind = "dedicated_thread"
    background = True

    def __init__(self, sim: Simulator, scheduler: MarcelScheduler,
                 params: PIOManParams = PIOManParams()):
        super().__init__(sim, scheduler, params)
        self._queues: Dict[int, Deque[Callable[[], Generator]]] = {}
        self._order: List[int] = []   # ranks in first-submit order
        self._serving = 0             # index into _order: current queue
        self._pending = 0
        self._wake: Optional[Event] = None
        self._worker_spawned = False
        self._stopped = False
        self.steals = 0

    def submit(self, work: Callable[[], Generator], rank: int = 0) -> None:
        self.sim.race_write(f"pioman.queue@n{self.scheduler.node_id}",
                            "submit")
        if self._stopped:
            return
        queue = self._queues.get(rank)
        if queue is None:
            queue = self._queues[rank] = deque()
            self._order.append(rank)
        queue.append(work)
        self._pending += 1
        if not self._worker_spawned:
            self._worker_spawned = True
            self.scheduler.spawn(
                self._worker(),
                name=f"progress-{self.scheduler.node_id}")
        elif self._wake is not None and not self._wake.triggered:
            self._wake.succeed()

    def _take(self):
        """Pop the next ltask, round-robin with stealing; None if empty."""
        n = len(self._order)
        for i in range(n):
            idx = (self._serving + i) % n
            queue = self._queues[self._order[idx]]
            if queue:
                stolen = idx != self._serving
                self._serving = idx
                self._pending -= 1
                return self._order[idx], queue.popleft(), stolen
        return None

    def _worker(self) -> Generator:
        node = self.scheduler.node_id
        while not self._stopped:
            if not self._pending:
                self._wake = self.sim.event()
                yield self._wake
                if self._stopped:
                    break
            # Dedicated thread: it is always polling, so work is noticed
            # immediately — no poll_period charge, unlike the reference.
            if not self.scheduler.try_acquire_core():
                if self.sim.tracing:
                    self.sim.record("pioman.poll", node=node,
                                    mode="wait_core", pending=self._pending)
                yield self.scheduler.acquire_core()
            elif self.sim.tracing:
                self.sim.record("pioman.poll", node=node,
                                mode="idle_core", pending=self._pending)
            while self._pending and not self._stopped:
                rank, work, stolen = self._take()
                if stolen:
                    self.steals += 1
                    if self.sim.tracing:
                        self.sim.record("pioman.engine.steal", node=node,
                                        victim=rank, pending=self._pending)
                yield from self._run_ltask(work, pending=self._pending)
            self.scheduler.release_core()

    def semaphore_wait(self, event: Event) -> Generator:
        """Identical blocking-wait model to the reference engine."""
        if event.triggered:
            return
        if self.sim.tracing:
            self.sim.record("pioman.sem_wait", node=self.scheduler.node_id)
        self.scheduler.release_core()
        blocked_at = self.sim.now
        yield event
        if self.sim.tracing:
            self.sim.record("pioman.sem_wake", node=self.scheduler.node_id,
                            waited=self.sim.now - blocked_at,
                            dur=self.params.wakeup_cost)
        yield self.sim.timeout(self.params.wakeup_cost)
        yield self.scheduler.acquire_core()

    def teardown(self) -> None:
        self._stopped = True
        for queue in self._queues.values():
            queue.clear()
        self._pending = 0
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()


#: registry: kind name -> engine class (PIOMan is the reference)
ENGINE_KINDS: Dict[str, Type] = {
    "pioman": PIOMan,
    "manual_poll": ManualPollEngine,
    "dedicated_thread": DedicatedThreadEngine,
}


def make_engine(kind: Optional[str], sim: Simulator,
                scheduler: MarcelScheduler,
                params: PIOManParams = PIOManParams()):
    """Build a progress engine.

    ``kind`` may be a registry name or ``None`` — in which case the
    ``REPRO_PROGRESS`` environment variable decides, defaulting to the
    reference ``pioman`` engine.
    """
    if kind is None:
        kind = os.environ.get(PROGRESS_ENV) or _DEFAULT_KIND
    try:
        cls = ENGINE_KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown progress engine {kind!r}; "
            f"expected one of {sorted(ENGINE_KINDS)}") from None
    return cls(sim, scheduler, params)
