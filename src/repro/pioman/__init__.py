"""PIOMan: the I/O event manager providing background progress.

PIOMan centralizes the detection of communication events (network and
shared-memory) and runs protocol work on idle cores, in the background
of application computation.  Application waits become semaphore-style
blocks instead of busy-wait loops; the price is extra synchronization
(~450 ns intra-node, ~2 us on the network path, per the paper's Fig. 6),
the gain is communication/computation overlap (Fig. 7).

The 2009 threaded design is one point in a wider design space: the
pluggable progress-engine layer in :mod:`repro.pioman.engines` offers
``manual_poll`` and ``dedicated_thread`` alternatives (Zhou et al.
2024), selectable per stack or via the ``REPRO_PROGRESS`` env knob.
See ``docs/PROGRESS.md``.
"""

from repro.pioman.engines import (
    ENGINE_KINDS,
    PROGRESS_ENV,
    DedicatedThreadEngine,
    ManualPollEngine,
    ProgressEngine,
    make_engine,
)
from repro.pioman.manager import PIOMan, PIOManParams

__all__ = [
    "ENGINE_KINDS",
    "PROGRESS_ENV",
    "DedicatedThreadEngine",
    "ManualPollEngine",
    "PIOMan",
    "PIOManParams",
    "ProgressEngine",
    "make_engine",
]
