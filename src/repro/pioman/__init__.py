"""PIOMan: the I/O event manager providing background progress.

PIOMan centralizes the detection of communication events (network and
shared-memory) and runs protocol work on idle cores, in the background
of application computation.  Application waits become semaphore-style
blocks instead of busy-wait loops; the price is extra synchronization
(~450 ns intra-node, ~2 us on the network path, per the paper's Fig. 6),
the gain is communication/computation overlap (Fig. 7).
"""

from repro.pioman.manager import PIOMan, PIOManParams

__all__ = ["PIOMan", "PIOManParams"]
