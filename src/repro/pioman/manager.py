"""The PIOMan manager: background ltask execution + semaphore waits.

Model
-----
Progress work (an "ltask": process an arrived frame, advance a
rendezvous handshake, submit the next packet) is submitted as a
generator factory.  A single per-node worker thread drains the ltask
queue, holding a core while it runs.  Detection latency emerges from
the model:

* an idle core exists → the worker starts after ``poll_period`` (the
  polling granularity of the real PIOMan);
* all cores busy → the worker waits for a core, i.e. until some thread
  blocks or finishes — the paper's "progress at context switches /
  on idle CPUs".

``semaphore_wait`` is the replacement for busy-wait loops: the calling
thread gives up its core while blocked and reacquires it on wake-up.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Generator

from repro.simulator import Event, Simulator
from repro.threads.marcel import MarcelScheduler


@dataclass(frozen=True)
class PIOManParams:
    """PIOMan cost constants (calibrated to Fig. 6)."""

    #: polling granularity — mean delay before an idle-core worker
    #: notices newly submitted work (s)
    poll_period: float = 0.1e-6
    #: CPU cost of dispatching one ltask (queue + lock handling), s
    ltask_cost: float = 0.05e-6
    #: added per-message synchronization on the shared-memory path, s
    #: (charged by the stack, split across send/recv: Fig. 6a ≈ +450 ns)
    sync_shm: float = 0.20e-6
    #: added per-message synchronization on the network path, s
    #: (request-list and driver locking: Fig. 6b ≈ +2 us)
    sync_net: float = 1.55e-6
    #: cost to unblock a semaphore-waiting thread, s
    wakeup_cost: float = 0.05e-6
    #: CPU cost of one rail health-check ltask (reliability layer:
    #: inspecting consecutive-timeout counters and flipping rail state), s
    health_check_cost: float = 0.10e-6


class PIOMan:
    """Per-node I/O manager — the *reference* progress engine.

    The pluggable layer lives in :mod:`repro.pioman.engines`; PIOMan is
    registered there under kind ``"pioman"`` and its behaviour is pinned
    byte-identical to the pre-refactor goldens by the cross-engine
    differential suite (``tests/pioman/test_engine_differential.py``).
    """

    #: registry name in :data:`repro.pioman.engines.ENGINE_KINDS`
    kind = "pioman"
    #: progress happens on a background worker, without the application
    background = True

    def __init__(self, sim: Simulator, scheduler: MarcelScheduler,
                 params: PIOManParams = PIOManParams()):
        self.sim = sim
        self.scheduler = scheduler
        self.params = params
        self._queue: Deque[Callable[[], Generator]] = deque()
        self._worker_running = False
        self.ltasks_run = 0

    # -- background work -------------------------------------------------
    def submit(self, work: Callable[[], Generator],
               rank: int = 0) -> None:
        """Queue an ltask: ``work()`` must return a generator to run.

        The generator executes on the PIOMan worker thread while it
        holds a core; its simulated duration is whatever it yields.
        ``rank`` is accepted for engine-contract compatibility and
        ignored: the reference engine keeps one shared per-node queue.
        """
        self.sim.race_write(f"pioman.queue@n{self.scheduler.node_id}",
                            "submit")
        self._queue.append(work)
        if not self._worker_running:
            self._worker_running = True
            self.scheduler.spawn(self._worker(), name=f"pioman-{self.scheduler.node_id}")

    def _worker(self) -> Generator:
        while self._queue:
            if not self.scheduler.try_acquire_core():
                # Fully loaded node: wait until a core frees up
                # (a thread blocked or finished) — "context switch" progression.
                if self.sim.tracing:
                    self.sim.record("pioman.poll", node=self.scheduler.node_id,
                                    mode="wait_core", pending=len(self._queue))
                yield self.scheduler.acquire_core()
            else:
                # Idle core available: model the polling granularity.
                if self.sim.tracing:
                    self.sim.record("pioman.poll", node=self.scheduler.node_id,
                                    mode="idle_core", pending=len(self._queue))
                yield self.sim.timeout(self.params.poll_period)
            # Drain everything currently queued in one core acquisition.
            while self._queue:
                work = self._queue.popleft()
                self.ltasks_run += 1
                span_start = None
                if self.sim.tracing:
                    span_start = self.sim.now
                    self.sim.record("pioman.ltask.begin",
                                    node=self.scheduler.node_id,
                                    pending=len(self._queue))
                    self.sim.record("pioman.ltask", node=self.scheduler.node_id,
                                    pending=len(self._queue),
                                    dur=self.params.ltask_cost)
                yield self.sim.timeout(self.params.ltask_cost)
                # the ltask runs under the node's progression lock (the
                # piom_lock of Section 3.3); the race detector serializes
                # every region sharing this key
                with self.sim.sync_region(("node", self.scheduler.node_id),
                                          "pioman.ltask"):
                    yield from work()
                if span_start is not None:
                    self.sim.record("pioman.ltask.end",
                                    node=self.scheduler.node_id,
                                    dur=self.sim.now - span_start)
            self.scheduler.release_core()
        self._worker_running = False

    # -- blocking waits ----------------------------------------------------
    def semaphore_wait(self, event: Event) -> Generator:
        """Block the calling thread on ``event`` without holding its core.

        The caller must hold a core on entry; it holds one again on
        return.  This is the paper's replacement of busy-waiting with
        semaphore-like primitives (Section 3.3.2).
        """
        if event.triggered:
            return
        if self.sim.tracing:
            self.sim.record("pioman.sem_wait", node=self.scheduler.node_id)
        self.scheduler.release_core()
        blocked_at = self.sim.now
        yield event
        if self.sim.tracing:
            self.sim.record("pioman.sem_wake", node=self.scheduler.node_id,
                            waited=self.sim.now - blocked_at,
                            dur=self.params.wakeup_cost)
        yield self.sim.timeout(self.params.wakeup_cost)
        yield self.scheduler.acquire_core()

    # -- engine contract (see repro.pioman.engines) ------------------------
    def progress(self) -> Generator:
        """Background engine: application-side progress is a no-op."""
        return
        yield  # pragma: no cover - makes this a generator

    def sync_cost(self, shm: bool) -> float:
        """Per-message synchronization overhead (one half, send or recv)."""
        return (self.params.sync_shm if shm else self.params.sync_net) / 2.0

    def teardown(self) -> None:
        """Drop pending ltasks; the worker exits at its next queue check."""
        # repro-check: allow[RPC004] shutdown path, no tasks are active
        self._queue.clear()
