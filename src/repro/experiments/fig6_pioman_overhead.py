"""Fig. 6 — raw overhead of PIOMan's centralized progression.

Paper reference: PIOMan adds ~450 ns to intra-node latency (thread-safe
synchronization) and ~2 us on the network path (request lists and
drivers must be protected from concurrent access); both overheads are
constant in message size.
"""

from __future__ import annotations

from typing import Dict, List

from repro.campaign.executors import execute_point
from repro.campaign.points import Point, stack_ref
from repro.experiments.common import print_series_table
from repro.workloads.netpipe import LATENCY_SIZES

MODULE = "fig6_pioman_overhead"

PAPER = {
    "shm_overhead_us": 0.45,
    "network_overhead_us": 2.0,
}

SHM_STACKS = [
    ("MPICH2:Nemesis", stack_ref("mpich2_nmad")),
    ("MPICH2:Nemesis:PIOMan", stack_ref("mpich2_nmad_pioman")),
    ("Open MPI", stack_ref("openmpi_ib")),
]

MX_STACKS = [
    ("Open MPI:PML:MX", stack_ref("openmpi_pml_mx")),
    ("Open MPI:BTL:MX", stack_ref("openmpi_btl_mx")),
    ("MPICH2:Nem:Nmad:MX", stack_ref("mpich2_nmad", rails=["mx"])),
    ("MPICH2:Nem:Nmad:PIOM:MX", stack_ref("mpich2_nmad_pioman",
                                          rails=["mx"])),
]


def _sweeps(fast: bool):
    sizes = LATENCY_SIZES[:6] if fast else LATENCY_SIZES
    reps = 3 if fast else 10
    return sizes, reps


def points(fast: bool = False) -> List[Point]:
    """One netpipe point per (panel, stack, size)."""
    sizes, reps = _sweeps(fast)
    pts = []
    for name, ref in SHM_STACKS:
        for size in sizes:
            pts.append(Point(MODULE, f"shm/{name}/{size}", "netpipe",
                             {"stack": ref, "size": size, "reps": reps,
                              "intra_node": True}))
    for name, ref in MX_STACKS:
        for size in sizes:
            pts.append(Point(MODULE, f"mx/{name}/{size}", "netpipe",
                             {"stack": ref, "size": size, "reps": reps}))
    return pts


def merge(results: Dict[str, dict], fast: bool = False) -> Dict:
    sizes, _reps = _sweeps(fast)
    shm = {name: [results[f"shm/{name}/{s}"]["latency"] for s in sizes]
           for name, _ref in SHM_STACKS}
    mx = {name: [results[f"mx/{name}/{s}"]["latency"] for s in sizes]
          for name, _ref in MX_STACKS}
    return {"sizes": sizes, "shm": shm, "mx": mx}


def run(fast: bool = False) -> Dict:
    return merge({p.key: execute_point(p.config()) for p in points(fast)},
                 fast=fast)


def render(data: Dict) -> None:
    print_series_table("Fig 6(a): latency over shared memory", data["sizes"],
                       data["shm"], "us one-way", scale=1e6, fmt="8.2f")
    print_series_table("Fig 6(b): latency over Myrinet MX", data["sizes"],
                       data["mx"], "us one-way", scale=1e6, fmt="8.2f")
    print("\npaper reference:", PAPER)


def main(fast: bool = False) -> Dict:
    data = run(fast=fast)
    render(data)
    return data


if __name__ == "__main__":
    main()
