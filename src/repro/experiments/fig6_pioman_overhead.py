"""Fig. 6 — raw overhead of PIOMan's centralized progression.

Paper reference: PIOMan adds ~450 ns to intra-node latency (thread-safe
synchronization) and ~2 us on the network path (request lists and
drivers must be protected from concurrent access); both overheads are
constant in message size.
"""

from __future__ import annotations

from typing import Dict

from repro import config
from repro.experiments.common import print_series_table
from repro.workloads.netpipe import LATENCY_SIZES, run_netpipe

PAPER = {
    "shm_overhead_us": 0.45,
    "network_overhead_us": 2.0,
}


def run(fast: bool = False) -> Dict:
    sizes = LATENCY_SIZES[:6] if fast else LATENCY_SIZES
    reps = 3 if fast else 10
    cluster = config.xeon_pair()

    shm: Dict[str, list] = {}
    for name, spec in [
        ("MPICH2:Nemesis", config.mpich2_nmad()),
        ("MPICH2:Nemesis:PIOMan", config.mpich2_nmad_pioman()),
        ("Open MPI", config.openmpi_ib()),
    ]:
        res = run_netpipe(spec, cluster, sizes, reps=reps, intra_node=True)
        shm[name] = res.latencies

    mx: Dict[str, list] = {}
    for name, spec in [
        ("Open MPI:PML:MX", config.openmpi_pml_mx()),
        ("Open MPI:BTL:MX", config.openmpi_btl_mx()),
        ("MPICH2:Nem:Nmad:MX", config.mpich2_nmad(rails=("mx",))),
        ("MPICH2:Nem:Nmad:PIOM:MX", config.mpich2_nmad_pioman(rails=("mx",))),
    ]:
        res = run_netpipe(spec, cluster, sizes, reps=reps)
        mx[name] = res.latencies

    return {"sizes": sizes, "shm": shm, "mx": mx}


def main(fast: bool = False) -> Dict:
    data = run(fast=fast)
    print_series_table("Fig 6(a): latency over shared memory", data["sizes"],
                       data["shm"], "us one-way", scale=1e6, fmt="8.2f")
    print_series_table("Fig 6(b): latency over Myrinet MX", data["sizes"],
                       data["mx"], "us one-way", scale=1e6, fmt="8.2f")
    print("\npaper reference:", PAPER)
    return data


if __name__ == "__main__":
    main()
