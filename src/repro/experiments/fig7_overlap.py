"""Fig. 7 — asynchronous progression (communication/computation overlap).

Paper reference: only the PIOMan-backed stack overlaps; its sending
time is ``max(computation, communication)`` while every other stack
measures the sum.  Fig. 7(a): eager messages over MX with 20 us of
computation; Fig. 7(b): rendezvous progression over IB with 400 us.
"""

from __future__ import annotations

from typing import Dict

from repro import config
from repro.experiments.common import print_series_table
from repro.workloads.overlap import run_overlap

EAGER_SIZES = [4 << 10, 16 << 10]
EAGER_COMPUTE = 20e-6
RDV_SIZES = [16 << 10, 64 << 10, 256 << 10, 1 << 20]
RDV_COMPUTE = 400e-6

PAPER = {
    "eager": "PIOMan -> max(comp, comm); MPICH2/Open MPI -> sum",
    "rendezvous": "PIOMan detects the handshake during computation; "
                  "Open MPI, MVAPICH2 and plain MPICH2 do not",
}


def run(fast: bool = False) -> Dict:
    cluster = config.xeon_pair()
    reps = 2 if fast else 5

    eager: Dict[str, list] = {}
    for name, spec, comp in [
        ("Reference (no computation)", config.mpich2_nmad(rails=("mx",)), 0.0),
        ("MPICH2:Nem:NMad:MX", config.mpich2_nmad(rails=("mx",)), EAGER_COMPUTE),
        ("MPICH2:Nem:Nmad:PIOMan:MX", config.mpich2_nmad_pioman(rails=("mx",)),
         EAGER_COMPUTE),
        ("Open MPI:BTL:MX", config.openmpi_btl_mx(), EAGER_COMPUTE),
        ("Open MPI:PML:MX", config.openmpi_pml_mx(), EAGER_COMPUTE),
    ]:
        eager[name] = run_overlap(spec, cluster, EAGER_SIZES, comp,
                                  reps=reps).sending_times

    rdv: Dict[str, list] = {}
    for name, spec, comp in [
        ("Reference (no computation)", config.mpich2_nmad(), 0.0),
        ("MPICH2:Nem:NMad:IB", config.mpich2_nmad(), RDV_COMPUTE),
        ("MPICH2:Nem:Nmad:PIOMan:IB", config.mpich2_nmad_pioman(), RDV_COMPUTE),
        ("Open MPI", config.openmpi_ib(), RDV_COMPUTE),
        ("MVAPICH2", config.mvapich2(), RDV_COMPUTE),
    ]:
        rdv[name] = run_overlap(spec, cluster, RDV_SIZES, comp,
                                reps=reps).sending_times

    return {"eager_sizes": EAGER_SIZES, "eager": eager,
            "rdv_sizes": RDV_SIZES, "rdv": rdv}


def main(fast: bool = False) -> Dict:
    data = run(fast=fast)
    print_series_table("Fig 7(a): overlapping eager messages over MX "
                       f"(compute = {EAGER_COMPUTE*1e6:.0f} us)",
                       data["eager_sizes"], data["eager"],
                       "us sending time", scale=1e6, fmt="8.1f")
    print_series_table("Fig 7(b): rendezvous progress over IB "
                       f"(compute = {RDV_COMPUTE*1e6:.0f} us)",
                       data["rdv_sizes"], data["rdv"],
                       "us sending time", scale=1e6, fmt="8.0f")
    print("\npaper reference:", PAPER)
    return data


if __name__ == "__main__":
    main()
