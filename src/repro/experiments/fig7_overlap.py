"""Fig. 7 — asynchronous progression (communication/computation overlap).

Paper reference: only the PIOMan-backed stack overlaps; its sending
time is ``max(computation, communication)`` while every other stack
measures the sum.  Fig. 7(a): eager messages over MX with 20 us of
computation; Fig. 7(b): rendezvous progression over IB with 400 us.
"""

from __future__ import annotations

from typing import Dict, List

from repro.campaign.executors import execute_point
from repro.campaign.points import Point, stack_ref
from repro.experiments.common import print_series_table

MODULE = "fig7_overlap"

EAGER_SIZES = [4 << 10, 16 << 10]
EAGER_COMPUTE = 20e-6
RDV_SIZES = [16 << 10, 64 << 10, 256 << 10, 1 << 20]
RDV_COMPUTE = 400e-6

PAPER = {
    "eager": "PIOMan -> max(comp, comm); MPICH2/Open MPI -> sum",
    "rendezvous": "PIOMan detects the handshake during computation; "
                  "Open MPI, MVAPICH2 and plain MPICH2 do not",
}

EAGER_STACKS = [
    ("Reference (no computation)", stack_ref("mpich2_nmad", rails=["mx"]),
     0.0),
    ("MPICH2:Nem:NMad:MX", stack_ref("mpich2_nmad", rails=["mx"]),
     EAGER_COMPUTE),
    ("MPICH2:Nem:Nmad:PIOMan:MX", stack_ref("mpich2_nmad_pioman",
                                            rails=["mx"]), EAGER_COMPUTE),
    ("Open MPI:BTL:MX", stack_ref("openmpi_btl_mx"), EAGER_COMPUTE),
    ("Open MPI:PML:MX", stack_ref("openmpi_pml_mx"), EAGER_COMPUTE),
]

RDV_STACKS = [
    ("Reference (no computation)", stack_ref("mpich2_nmad"), 0.0),
    ("MPICH2:Nem:NMad:IB", stack_ref("mpich2_nmad"), RDV_COMPUTE),
    ("MPICH2:Nem:Nmad:PIOMan:IB", stack_ref("mpich2_nmad_pioman"),
     RDV_COMPUTE),
    ("Open MPI", stack_ref("openmpi_ib"), RDV_COMPUTE),
    ("MVAPICH2", stack_ref("mvapich2"), RDV_COMPUTE),
]


def _reps(fast: bool) -> int:
    return 2 if fast else 5


def points(fast: bool = False) -> List[Point]:
    """One overlap point per (panel, stack, size)."""
    reps = _reps(fast)
    pts = []
    for name, ref, comp in EAGER_STACKS:
        for size in EAGER_SIZES:
            pts.append(Point(MODULE, f"eager/{name}/{size}", "overlap",
                             {"stack": ref, "size": size, "compute": comp,
                              "reps": reps}))
    for name, ref, comp in RDV_STACKS:
        for size in RDV_SIZES:
            pts.append(Point(MODULE, f"rdv/{name}/{size}", "overlap",
                             {"stack": ref, "size": size, "compute": comp,
                              "reps": reps}))
    return pts


def merge(results: Dict[str, dict], fast: bool = False) -> Dict:
    eager = {name: [results[f"eager/{name}/{s}"]["sending_time"]
                    for s in EAGER_SIZES]
             for name, _ref, _c in EAGER_STACKS}
    rdv = {name: [results[f"rdv/{name}/{s}"]["sending_time"]
                  for s in RDV_SIZES]
           for name, _ref, _c in RDV_STACKS}
    return {"eager_sizes": EAGER_SIZES, "eager": eager,
            "rdv_sizes": RDV_SIZES, "rdv": rdv}


def run(fast: bool = False) -> Dict:
    return merge({p.key: execute_point(p.config()) for p in points(fast)},
                 fast=fast)


def render(data: Dict) -> None:
    print_series_table("Fig 7(a): overlapping eager messages over MX "
                       f"(compute = {EAGER_COMPUTE*1e6:.0f} us)",
                       data["eager_sizes"], data["eager"],
                       "us sending time", scale=1e6, fmt="8.1f")
    print_series_table("Fig 7(b): rendezvous progress over IB "
                       f"(compute = {RDV_COMPUTE*1e6:.0f} us)",
                       data["rdv_sizes"], data["rdv"],
                       "us sending time", scale=1e6, fmt="8.0f")
    print("\npaper reference:", PAPER)


def main(fast: bool = False) -> Dict:
    data = run(fast=fast)
    render(data)
    return data


if __name__ == "__main__":
    main()
