"""Fig. 5 — heterogeneous multirail (Myri-10G + ConnectX IB).

Paper reference: the split_balance strategy routes small messages on the
fastest rail (latency equals the IB-only curve) and stripes large
payloads across both rails by sampled bandwidth, aggregating to nearly
the sum of the individual rails (~2250 MiB/s with equal halves when the
rails perform equally).
"""

from __future__ import annotations

from typing import Dict, List

from repro.campaign.executors import execute_point
from repro.campaign.points import Point, stack_ref
from repro.experiments.common import print_series_table
from repro.workloads.netpipe import BANDWIDTH_SIZES, LATENCY_SIZES

MODULE = "fig5_multirail"

PAPER = {
    "small_message_rail": "ib (fastest)",
    "aggregate_bandwidth_MiBs": 2250,
}

STACKS = [
    ("MPICH2:Nmad:MX", stack_ref("mpich2_nmad", rails=["mx"])),
    ("MPICH2:Nmad:IB", stack_ref("mpich2_nmad", rails=["ib"])),
    ("MPICH2:Nmad:Multi-MX-IB", stack_ref("mpich2_nmad", rails=["ib", "mx"])),
]


def _sweeps(fast: bool):
    lat_sizes = LATENCY_SIZES[:6] if fast else LATENCY_SIZES
    bw_sizes = BANDWIDTH_SIZES[::2] if fast else BANDWIDTH_SIZES
    reps = 3 if fast else 10
    return lat_sizes, bw_sizes, reps


def points(fast: bool = False) -> List[Point]:
    """One netpipe point per (panel, stack, size)."""
    lat_sizes, bw_sizes, reps = _sweeps(fast)
    pts = []
    for name, ref in STACKS:
        for size in lat_sizes:
            pts.append(Point(MODULE, f"lat/{name}/{size}", "netpipe",
                             {"stack": ref, "size": size, "reps": reps}))
        for size in bw_sizes:
            pts.append(Point(MODULE, f"bw/{name}/{size}", "netpipe",
                             {"stack": ref, "size": size,
                              "reps": max(3, reps // 2)}))
    return pts


def merge(results: Dict[str, dict], fast: bool = False) -> Dict:
    lat_sizes, bw_sizes, _reps = _sweeps(fast)
    latency = {name: [results[f"lat/{name}/{s}"]["latency"]
                      for s in lat_sizes] for name, _ref in STACKS}
    bandwidth = {name: [results[f"bw/{name}/{s}"]["bandwidth"]
                        for s in bw_sizes] for name, _ref in STACKS}
    return {"lat_sizes": lat_sizes, "latency": latency,
            "bw_sizes": bw_sizes, "bandwidth": bandwidth}


def run(fast: bool = False) -> Dict:
    return merge({p.key: execute_point(p.config()) for p in points(fast)},
                 fast=fast)


def render(data: Dict) -> None:
    print_series_table("Fig 5(a): multirail latency", data["lat_sizes"],
                       data["latency"], "us one-way", scale=1e6, fmt="8.2f")
    print_series_table("Fig 5(b): multirail bandwidth", data["bw_sizes"],
                       data["bandwidth"], "MiB/s", fmt="8.0f")
    print("\npaper reference:", PAPER)


def main(fast: bool = False) -> Dict:
    data = run(fast=fast)
    render(data)
    return data


if __name__ == "__main__":
    main()
