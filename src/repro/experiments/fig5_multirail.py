"""Fig. 5 — heterogeneous multirail (Myri-10G + ConnectX IB).

Paper reference: the split_balance strategy routes small messages on the
fastest rail (latency equals the IB-only curve) and stripes large
payloads across both rails by sampled bandwidth, aggregating to nearly
the sum of the individual rails (~2250 MiB/s with equal halves when the
rails perform equally).
"""

from __future__ import annotations

from typing import Dict

from repro import config
from repro.experiments.common import print_series_table
from repro.workloads.netpipe import (
    BANDWIDTH_SIZES,
    LATENCY_SIZES,
    run_netpipe,
)

PAPER = {
    "small_message_rail": "ib (fastest)",
    "aggregate_bandwidth_MiBs": 2250,
}

STACKS = [
    ("MPICH2:Nmad:MX", ("mx",)),
    ("MPICH2:Nmad:IB", ("ib",)),
    ("MPICH2:Nmad:Multi-MX-IB", ("ib", "mx")),
]


def run(fast: bool = False) -> Dict:
    cluster = config.xeon_pair()
    lat_sizes = LATENCY_SIZES[:6] if fast else LATENCY_SIZES
    bw_sizes = BANDWIDTH_SIZES[::2] if fast else BANDWIDTH_SIZES
    reps = 3 if fast else 10

    latency: Dict[str, list] = {}
    bandwidth: Dict[str, list] = {}
    for name, rails in STACKS:
        spec = config.mpich2_nmad(rails=rails)
        latency[name] = run_netpipe(spec, cluster, lat_sizes, reps=reps).latencies
        bandwidth[name] = run_netpipe(spec, cluster, bw_sizes,
                                      reps=max(3, reps // 2)).bandwidths
    return {"lat_sizes": lat_sizes, "latency": latency,
            "bw_sizes": bw_sizes, "bandwidth": bandwidth}


def main(fast: bool = False) -> Dict:
    data = run(fast=fast)
    print_series_table("Fig 5(a): multirail latency", data["lat_sizes"],
                       data["latency"], "us one-way", scale=1e6, fmt="8.2f")
    print_series_table("Fig 5(b): multirail bandwidth", data["bw_sizes"],
                       data["bandwidth"], "MiB/s", fmt="8.0f")
    print("\npaper reference:", PAPER)
    return data


if __name__ == "__main__":
    main()
