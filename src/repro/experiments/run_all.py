"""Run every experiment and print every table/figure reproduction.

::

    python -m repro.experiments.run_all [--fast]
"""

from __future__ import annotations

import sys

from repro.experiments.common import host_clock
from repro.experiments import (
    ext_collectives,
    ext_is_datatypes,
    ext_progress,
    ext_stencil_overlap,
    ext_topology,
    fig4_infiniband,
    fig5_multirail,
    fig6_pioman_overhead,
    fig7_overlap,
    fig8_nas,
)


def main(fast: bool = False) -> None:
    modules = [fig4_infiniband, fig5_multirail, fig6_pioman_overhead,
               fig7_overlap, fig8_nas, ext_is_datatypes, ext_stencil_overlap,
               ext_collectives, ext_topology, ext_progress]
    for mod in modules:
        t0 = host_clock()
        print("\n" + "=" * 72)
        print(f"# {mod.__name__}")
        print("=" * 72)
        mod.main(fast=fast)
        print(f"\n[{mod.__name__} done in {host_clock()-t0:.1f}s wall]")


if __name__ == "__main__":
    main(fast="--fast" in sys.argv[1:])
