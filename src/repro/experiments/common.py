"""Shared table formatting (and the audited host clock) for experiments."""

from __future__ import annotations

from typing import Dict, List, Sequence

# the audited wall-clock entry point lives with the engine now (the
# simulator's own telemetry needs it too); re-exported here because
# every experiment imports it from this module
from repro.simulator.hostclock import host_clock

__all__ = ["host_clock", "human_size", "print_series_table"]


def human_size(size: int) -> str:
    if size >= 1 << 20:
        return f"{size >> 20}M"
    if size >= 1024:
        return f"{size >> 10}K"
    return str(size)


def print_series_table(title: str, sizes: Sequence[int],
                       series: Dict[str, List[float]],
                       unit: str, scale: float = 1.0,
                       fmt: str = "8.2f") -> None:
    """Print one curve family as an aligned table (sizes as rows)."""
    print(f"\n== {title} ({unit}) ==")
    names = list(series)
    width = max(len(n) for n in names) + 2
    header = f"{'size':>8} " + "".join(f"{n:>{max(width, 10)}}" for n in names)
    print(header)
    for i, size in enumerate(sizes):
        row = f"{human_size(size):>8} "
        for n in names:
            row += f"{format(series[n][i] * scale, fmt):>{max(width, 10)}}"
        print(row)


def print_grouped_table(title: str, row_labels: Sequence[str],
                        series: Dict[str, List[float]], unit: str,
                        fmt: str = "9.1f") -> None:
    """Print rows labelled by arbitrary strings (NAS kernels, etc.)."""
    print(f"\n== {title} ({unit}) ==")
    names = list(series)
    width = max(10, max(len(n) for n in names) + 2)
    print(f"{'':>10} " + "".join(f"{n:>{width}}" for n in names))
    for i, label in enumerate(row_labels):
        row = f"{label:>10} "
        for n in names:
            value = series[n][i]
            row += f"{'-':>{width}}" if value is None else f"{format(value, fmt):>{width}}"
        print(row)
