"""One experiment module per figure of the paper's evaluation section.

Run any module directly::

    python -m repro.experiments.fig4_infiniband
    python -m repro.experiments.fig5_multirail
    python -m repro.experiments.fig6_pioman_overhead
    python -m repro.experiments.fig7_overlap
    python -m repro.experiments.fig8_nas
    python -m repro.experiments.run_all        # everything, with summaries

Each module exposes ``run(fast=False)`` returning the measured series
and ``main()`` printing them in the paper's layout.  ``fast=True``
shrinks sweeps/classes for quick checks (used by the benchmarks).
"""

EXPERIMENTS = [
    "fig4_infiniband",
    "fig5_multirail",
    "fig6_pioman_overhead",
    "fig7_overlap",
    "fig8_nas",
]

__all__ = ["EXPERIMENTS"]
