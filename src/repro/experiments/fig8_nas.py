"""Fig. 8 — NAS parallel benchmarks, class C, on the Grid'5000 testbed.

Paper reference: all implementations scale well (exception: SP at 36
processes is poor for everyone — unexplained in the paper and not
reproduced here, see EXPERIMENTS.md); Open MPI lags on EP and LU at
every process count; MPICH2-NewMadeleine is on par with the
network-tailored implementations; the PIOMan variant costs under 3 %
and slightly helps FT and SP.  As in the paper, PIOMan rows are omitted
at 64 processes and for MG/LU (their implementation deadlocked there;
our simulation notes this rather than inventing numbers).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.campaign.executors import execute_point
from repro.campaign.points import Point, stack_ref
from repro.experiments.common import print_grouped_table
from repro.workloads.nas import adjust_procs

MODULE = "fig8_nas"

KERNELS = ["bt", "cg", "ep", "ft", "sp", "mg", "lu"]
PROC_COUNTS = [8, 16, 32, 64]

#: configurations in the paper's legend order
STACKS = [
    ("MVAPICH2", stack_ref("mvapich2")),
    ("Open_MPI", stack_ref("openmpi_ib")),
    ("MPICH2-NMad_NO_PIOMan", stack_ref("mpich2_nmad")),
    ("MPICH2-NMad_with_PIOMan", stack_ref("mpich2_nmad_pioman")),
]

#: cases the paper reports as unavailable (deadlocks in their prototype)
PIOMAN_UNAVAILABLE = {("mg",), ("lu",), (64,)}


def _pioman_available(kernel: str, procs: int) -> bool:
    return (kernel,) not in PIOMAN_UNAVAILABLE and (procs,) not in PIOMAN_UNAVAILABLE


def _shape(fast: bool, cls: Optional[str]):
    return cls or ("A" if fast else "C"), ([8, 16] if fast else PROC_COUNTS)


def points(fast: bool = False, cls: Optional[str] = None) -> List[Point]:
    """One NAS point per (process count, stack, kernel)."""
    cls, procs = _shape(fast, cls)
    pts = []
    for p in procs:
        for stack_name, ref in STACKS:
            for kernel in KERNELS:
                if (stack_name.endswith("with_PIOMan")
                        and not _pioman_available(kernel, p)):
                    continue
                pts.append(Point(
                    MODULE, f"{p}/{stack_name}/{kernel}", "nas",
                    {"stack": ref, "kernel": kernel, "cls": cls,
                     "procs": adjust_procs(kernel, p)}))
    return pts


def merge(results: Dict[str, dict], fast: bool = False,
          cls: Optional[str] = None) -> Dict:
    cls, procs = _shape(fast, cls)
    out: Dict[int, Dict[str, List[Optional[float]]]] = {}
    for p in procs:
        table: Dict[str, List[Optional[float]]] = {}
        for stack_name, _ref in STACKS:
            row: List[Optional[float]] = []
            for kernel in KERNELS:
                if (stack_name.endswith("with_PIOMan")
                        and not _pioman_available(kernel, p)):
                    row.append(None)
                    continue
                row.append(results[f"{p}/{stack_name}/{kernel}"]
                           ["time_seconds"])
            table[stack_name] = row
        out[p] = table
    return {"class": cls, "procs": procs, "kernels": KERNELS, "tables": out}


def run(fast: bool = False, cls: Optional[str] = None) -> Dict:
    return merge({p.key: execute_point(p.config())
                  for p in points(fast, cls=cls)}, fast=fast, cls=cls)


def render(data: Dict) -> None:
    for p in data["procs"]:
        label = {8: "8/9", 32: "32/36"}.get(p, str(p))
        print_grouped_table(
            f"Fig 8: NAS class {data['class']} execution time, "
            f"{label} processes",
            [k.upper() for k in data["kernels"]],
            data["tables"][p], "seconds")


def main(fast: bool = False, cls: Optional[str] = None) -> Dict:
    data = run(fast=fast, cls=cls)
    render(data)
    return data


if __name__ == "__main__":
    main()
