"""Extension experiment: the IS kernel the paper could not run.

The paper excluded NAS IS because "IS needs datatypes support and
MPICH2-NewMadeleine does not handle yet this functionality", and its
conclusion suggests NewMadeleine's optimization schemes could improve
non-contiguous datatype performance.  This reproduction includes a
datatype model (pack/unpack costs for strided layouts), so IS runs —
and we can quantify how much of its time the datatype handling costs by
comparing against a contiguous-layout variant of the same skeleton.

Run: ``python -m repro.experiments.ext_is_datatypes``
"""

from __future__ import annotations

from typing import Dict

from repro import config
from repro.experiments.common import print_grouped_table
from repro.workloads.nas import run_kernel
from repro.workloads.nas.base import KERNELS, KernelSpec

PROCS = [4, 8, 16]


def _contiguous_is() -> KernelSpec:
    """The IS skeleton with the strided key exchange made contiguous."""
    from repro.workloads.nas import is_ as is_module

    def iteration(comm, ctx, i):
        nkeys = ctx.cls.grid[0]
        p = ctx.p
        yield from comm.compute(ctx.compute_per_iter)
        if p > 1:
            yield from comm.allreduce(size=4 * 1024)
            pair = max(64, 4 * nkeys // (p * p))
            yield from comm.alltoall(size=pair)

    spec = KERNELS["is"]
    return KernelSpec(
        name="is-contig", rate_gflops=spec.rate_gflops,
        classes=spec.classes, iteration=iteration,
        proc_rule=spec.proc_rule, default_sim_iters=spec.default_sim_iters)


def run(fast: bool = False, cls: str = None) -> Dict:
    cls = cls or ("A" if fast else "B")
    procs = PROCS[:2] if fast else PROCS

    contig = _contiguous_is()
    KERNELS["is-contig"] = contig
    try:
        tables: Dict[str, list] = {
            "strided (datatypes)": [], "contiguous": [],
            "strided, MVAPICH2": [],
        }
        for p in procs:
            tables["strided (datatypes)"].append(
                run_kernel("is", cls, p, config.mpich2_nmad()).time_seconds)
            tables["contiguous"].append(
                run_kernel("is-contig", cls, p,
                           config.mpich2_nmad()).time_seconds)
            tables["strided, MVAPICH2"].append(
                run_kernel("is", cls, p, config.mvapich2()).time_seconds)
    finally:
        KERNELS.pop("is-contig", None)
    return {"class": cls, "procs": procs, "tables": tables}


def main(fast: bool = False) -> Dict:
    data = run(fast=fast)
    print_grouped_table(
        f"Extension: NAS IS class {data['class']} "
        "(excluded from the paper's runs)",
        [f"p={p}" for p in data["procs"]], data["tables"],
        "seconds", fmt="9.2f")
    print("\nThe strided/contiguous gap is the datatype pack/unpack cost —")
    print("the overhead the paper hoped NewMadeleine's optimization schemes")
    print("could attack (conclusion, future work).")
    return data


if __name__ == "__main__":
    main()
