"""Extension experiment: the IS kernel the paper could not run.

The paper excluded NAS IS because "IS needs datatypes support and
MPICH2-NewMadeleine does not handle yet this functionality", and its
conclusion suggests NewMadeleine's optimization schemes could improve
non-contiguous datatype performance.  This reproduction includes a
datatype model (pack/unpack costs for strided layouts), so IS runs —
and we can quantify how much of its time the datatype handling costs by
comparing against a contiguous-layout variant of the same skeleton.

Run: ``python -m repro.experiments.ext_is_datatypes``
"""

from __future__ import annotations

from typing import Dict, List

from repro.campaign.executors import execute_point
from repro.campaign.points import Point, stack_ref
from repro.experiments.common import print_grouped_table
from repro.workloads.nas.base import KERNELS, KernelSpec

MODULE = "ext_is_datatypes"

PROCS = [4, 8, 16]

#: (series label, stack reference, kernel name)
SERIES = [
    ("strided (datatypes)", stack_ref("mpich2_nmad"), "is"),
    ("contiguous", stack_ref("mpich2_nmad"), "is-contig"),
    ("strided, MVAPICH2", stack_ref("mvapich2"), "is"),
]


def _contiguous_is() -> KernelSpec:
    """The IS skeleton with the strided key exchange made contiguous."""

    def iteration(comm, ctx, i):
        nkeys = ctx.cls.grid[0]
        p = ctx.p
        yield from comm.compute(ctx.compute_per_iter)
        if p > 1:
            yield from comm.allreduce(size=4 * 1024)
            pair = max(64, 4 * nkeys // (p * p))
            yield from comm.alltoall(size=pair)

    spec = KERNELS["is"]
    return KernelSpec(
        name="is-contig", rate_gflops=spec.rate_gflops,
        classes=spec.classes, iteration=iteration,
        proc_rule=spec.proc_rule, default_sim_iters=spec.default_sim_iters)


def _shape(fast: bool):
    return "A" if fast else "B", (PROCS[:2] if fast else PROCS)


def points(fast: bool = False) -> List[Point]:
    """One NAS point per (series, process count)."""
    cls, procs = _shape(fast)
    pts = []
    for label, ref, kernel in SERIES:
        for p in procs:
            pts.append(Point(MODULE, f"{label}/{p}", "nas",
                             {"stack": ref, "kernel": kernel, "cls": cls,
                              "procs": p}))
    return pts


def merge(results: Dict[str, dict], fast: bool = False) -> Dict:
    cls, procs = _shape(fast)
    tables = {label: [results[f"{label}/{p}"]["time_seconds"]
                      for p in procs] for label, _ref, _k in SERIES}
    return {"class": cls, "procs": procs, "tables": tables}


def run(fast: bool = False) -> Dict:
    return merge({p.key: execute_point(p.config()) for p in points(fast)},
                 fast=fast)


def render(data: Dict) -> None:
    print_grouped_table(
        f"Extension: NAS IS class {data['class']} "
        "(excluded from the paper's runs)",
        [f"p={p}" for p in data["procs"]], data["tables"],
        "seconds", fmt="9.2f")
    print("\nThe strided/contiguous gap is the datatype pack/unpack cost —")
    print("the overhead the paper hoped NewMadeleine's optimization schemes")
    print("could attack (conclusion, future work).")


def main(fast: bool = False) -> Dict:
    data = run(fast=fast)
    render(data)
    return data


if __name__ == "__main__":
    main()
