"""Fig. 4 — InfiniBand performance comparisons (latency and bandwidth).

Paper reference points (Section 4.1.1):

* latency at small sizes: MVAPICH2 1.5 us, Open MPI 1.6 us,
  MPICH2:Nem:Nmad 2.1 us, +300 ns constant with MPI_ANY_SOURCE;
* bandwidth: MVAPICH2 peaks highest (~1400 MiB/s); MPICH2-NewMadeleine
  beats Open MPI at medium sizes despite registering memory on the fly.
"""

from __future__ import annotations

from typing import Dict

from repro import config
from repro.experiments.common import print_series_table
from repro.workloads.netpipe import (
    BANDWIDTH_SIZES,
    LATENCY_SIZES,
    run_netpipe,
)

PAPER = {
    "latency_us": {"MVAPICH2": 1.5, "Open MPI": 1.6,
                   "MPICH2:Nem:Nmad:IB": 2.1, "MPICH2:Nem:Nmad:IB w/AS": 2.4},
    "peak_bandwidth_MiBs": {"MVAPICH2": 1400, "MPICH2:Nem:Nmad:IB": 1300,
                            "Open MPI": 1150},
}


def run(fast: bool = False) -> Dict:
    cluster = config.xeon_pair()
    lat_sizes = LATENCY_SIZES[:6] if fast else LATENCY_SIZES
    bw_sizes = BANDWIDTH_SIZES[::2] if fast else BANDWIDTH_SIZES
    reps = 3 if fast else 10

    stacks = [
        ("MVAPICH2", config.mvapich2(), False),
        ("Open MPI", config.openmpi_ib(), False),
        ("MPICH2:Nem:Nmad:IB", config.mpich2_nmad(rails=("ib",)), False),
        ("MPICH2:Nem:Nmad:IB w/AS", config.mpich2_nmad(rails=("ib",)), True),
    ]
    latency: Dict[str, list] = {}
    for name, spec, anysrc in stacks:
        res = run_netpipe(spec, cluster, lat_sizes, reps=reps, anysource=anysrc)
        latency[name] = res.latencies

    bandwidth: Dict[str, list] = {}
    for name, spec, _ in stacks[:3]:
        res = run_netpipe(spec, cluster, bw_sizes, reps=max(3, reps // 2))
        bandwidth[name] = res.bandwidths

    return {"lat_sizes": lat_sizes, "latency": latency,
            "bw_sizes": bw_sizes, "bandwidth": bandwidth}


def main(fast: bool = False) -> Dict:
    data = run(fast=fast)
    print_series_table("Fig 4(a): IB latency", data["lat_sizes"],
                       data["latency"], "us one-way", scale=1e6, fmt="8.2f")
    print_series_table("Fig 4(b): IB bandwidth", data["bw_sizes"],
                       data["bandwidth"], "MiB/s", fmt="8.0f")
    print("\npaper reference:", PAPER)
    return data


if __name__ == "__main__":
    main()
