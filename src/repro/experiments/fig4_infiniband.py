"""Fig. 4 — InfiniBand performance comparisons (latency and bandwidth).

Paper reference points (Section 4.1.1):

* latency at small sizes: MVAPICH2 1.5 us, Open MPI 1.6 us,
  MPICH2:Nem:Nmad 2.1 us, +300 ns constant with MPI_ANY_SOURCE;
* bandwidth: MVAPICH2 peaks highest (~1400 MiB/s); MPICH2-NewMadeleine
  beats Open MPI at medium sizes despite registering memory on the fly.
"""

from __future__ import annotations

from typing import Dict, List

from repro.campaign.executors import execute_point
from repro.campaign.points import Point, stack_ref
from repro.experiments.common import print_series_table
from repro.workloads.netpipe import BANDWIDTH_SIZES, LATENCY_SIZES

MODULE = "fig4_infiniband"

PAPER = {
    "latency_us": {"MVAPICH2": 1.5, "Open MPI": 1.6,
                   "MPICH2:Nem:Nmad:IB": 2.1, "MPICH2:Nem:Nmad:IB w/AS": 2.4},
    "peak_bandwidth_MiBs": {"MVAPICH2": 1400, "MPICH2:Nem:Nmad:IB": 1300,
                            "Open MPI": 1150},
}

#: (series name, stack reference, MPI_ANY_SOURCE receives)
STACKS = [
    ("MVAPICH2", stack_ref("mvapich2"), False),
    ("Open MPI", stack_ref("openmpi_ib"), False),
    ("MPICH2:Nem:Nmad:IB", stack_ref("mpich2_nmad", rails=["ib"]), False),
    ("MPICH2:Nem:Nmad:IB w/AS", stack_ref("mpich2_nmad", rails=["ib"]), True),
]


def _sweeps(fast: bool):
    lat_sizes = LATENCY_SIZES[:6] if fast else LATENCY_SIZES
    bw_sizes = BANDWIDTH_SIZES[::2] if fast else BANDWIDTH_SIZES
    reps = 3 if fast else 10
    return lat_sizes, bw_sizes, reps


def points(fast: bool = False) -> List[Point]:
    """One netpipe point per (panel, stack, size)."""
    lat_sizes, bw_sizes, reps = _sweeps(fast)
    pts = []
    for name, ref, anysrc in STACKS:
        for size in lat_sizes:
            pts.append(Point(MODULE, f"lat/{name}/{size}", "netpipe",
                             {"stack": ref, "size": size, "reps": reps,
                              "anysource": anysrc}))
    for name, ref, _anysrc in STACKS[:3]:
        for size in bw_sizes:
            pts.append(Point(MODULE, f"bw/{name}/{size}", "netpipe",
                             {"stack": ref, "size": size,
                              "reps": max(3, reps // 2)}))
    return pts


def merge(results: Dict[str, dict], fast: bool = False) -> Dict:
    """Rebuild the figure data from ``{point.key: result}``."""
    lat_sizes, bw_sizes, _reps = _sweeps(fast)
    latency = {name: [results[f"lat/{name}/{s}"]["latency"]
                      for s in lat_sizes] for name, _ref, _a in STACKS}
    bandwidth = {name: [results[f"bw/{name}/{s}"]["bandwidth"]
                        for s in bw_sizes] for name, _ref, _a in STACKS[:3]}
    return {"lat_sizes": lat_sizes, "latency": latency,
            "bw_sizes": bw_sizes, "bandwidth": bandwidth}


def run(fast: bool = False) -> Dict:
    return merge({p.key: execute_point(p.config()) for p in points(fast)},
                 fast=fast)


def render(data: Dict) -> None:
    print_series_table("Fig 4(a): IB latency", data["lat_sizes"],
                       data["latency"], "us one-way", scale=1e6, fmt="8.2f")
    print_series_table("Fig 4(b): IB bandwidth", data["bw_sizes"],
                       data["bandwidth"], "MiB/s", fmt="8.0f")
    print("\npaper reference:", PAPER)


def main(fast: bool = False) -> Dict:
    data = run(fast=fast)
    render(data)
    return data


if __name__ == "__main__":
    main()
