"""Extension experiment: PIOMan's benefit on an overlapping application.

The paper's conclusion: "We also intend to exhibit the benefits of
PIOMan on real applications, especially in the overlapping department."
The NAS kernels barely use the post/compute/wait idiom (Section 4.2);
a halo-exchange stencil is the textbook application that does.  This
experiment measures it: per-stack, overlapped vs non-overlapped halo
exchange.

Run: ``python -m repro.experiments.ext_stencil_overlap``
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Dict, List

from repro.campaign.executors import execute_point
from repro.campaign.points import Point, stack_ref
from repro.experiments.common import print_grouped_table
from repro.workloads.stencil import StencilConfig

MODULE = "ext_stencil_overlap"

STACKS = [
    ("MVAPICH2", stack_ref("mvapich2")),
    ("Open MPI", stack_ref("openmpi_ib")),
    ("MPICH2-Nmad", stack_ref("mpich2_nmad")),
    ("MPICH2-Nmad+PIOMan", stack_ref("mpich2_nmad_pioman")),
]


def _cfg(fast: bool) -> StencilConfig:
    return StencilConfig(n=4096 if fast else 8192, iters=4 if fast else 10)


def points(fast: bool = False, nprocs: int = 16) -> List[Point]:
    """One stencil point per (stack, overlap mode)."""
    cfg = asdict(_cfg(fast))
    pts = []
    for name, ref in STACKS:
        for mode, overlap in (("plain", False), ("overlap", True)):
            pts.append(Point(MODULE, f"{name}/{mode}", "stencil",
                             {"stack": ref, "nprocs": nprocs, "cfg": cfg,
                              "overlap": overlap}))
    return pts


def merge(results: Dict[str, dict], fast: bool = False,
          nprocs: int = 16) -> Dict:
    cfg = _cfg(fast)
    tables: Dict[str, list] = {"no overlap": [], "overlapped": [],
                               "speedup %": []}
    rows = []
    for name, _ref in STACKS:
        rows.append(name)
        plain = results[f"{name}/plain"]["per_iter"]
        over = results[f"{name}/overlap"]["per_iter"]
        tables["no overlap"].append(plain * 1e3)
        tables["overlapped"].append(over * 1e3)
        tables["speedup %"].append(100.0 * (plain - over) / plain)
    return {"rows": rows, "tables": tables, "nprocs": nprocs, "cfg": cfg}


def run(fast: bool = False, nprocs: int = 16) -> Dict:
    return merge({p.key: execute_point(p.config())
                  for p in points(fast, nprocs=nprocs)},
                 fast=fast, nprocs=nprocs)


def render(data: Dict) -> None:
    print_grouped_table(
        f"Extension: 2D stencil halo exchange, {data['nprocs']} processes "
        f"(n={data['cfg'].n})",
        data["rows"], data["tables"], "ms/iteration | %", fmt="9.3f")
    print("\nOnly the PIOMan-backed stack converts the nonblocking halo")
    print("idiom into actual overlap — the application-level payoff the")
    print("paper's conclusion anticipates.")


def main(fast: bool = False) -> Dict:
    data = run(fast=fast)
    render(data)
    return data


if __name__ == "__main__":
    main()
