"""Extension experiment: PIOMan's benefit on an overlapping application.

The paper's conclusion: "We also intend to exhibit the benefits of
PIOMan on real applications, especially in the overlapping department."
The NAS kernels barely use the post/compute/wait idiom (Section 4.2);
a halo-exchange stencil is the textbook application that does.  This
experiment measures it: per-stack, overlapped vs non-overlapped halo
exchange.

Run: ``python -m repro.experiments.ext_stencil_overlap``
"""

from __future__ import annotations

from typing import Dict

from repro import config
from repro.experiments.common import print_grouped_table
from repro.workloads.stencil import StencilConfig, run_stencil

STACKS = [
    ("MVAPICH2", config.mvapich2),
    ("Open MPI", config.openmpi_ib),
    ("MPICH2-Nmad", config.mpich2_nmad),
    ("MPICH2-Nmad+PIOMan", config.mpich2_nmad_pioman),
]


def run(fast: bool = False, nprocs: int = 16) -> Dict:
    cfg = StencilConfig(n=4096 if fast else 8192, iters=4 if fast else 10)
    tables: Dict[str, list] = {"no overlap": [], "overlapped": [],
                               "speedup %": []}
    rows = []
    for name, factory in STACKS:
        rows.append(name)
        plain = run_stencil(factory(), nprocs, cfg, overlap=False)
        over = run_stencil(factory(), nprocs, cfg, overlap=True)
        tables["no overlap"].append(plain.per_iter * 1e3)
        tables["overlapped"].append(over.per_iter * 1e3)
        tables["speedup %"].append(
            100.0 * (plain.per_iter - over.per_iter) / plain.per_iter)
    return {"rows": rows, "tables": tables, "nprocs": nprocs, "cfg": cfg}


def main(fast: bool = False) -> Dict:
    data = run(fast=fast)
    print_grouped_table(
        f"Extension: 2D stencil halo exchange, {data['nprocs']} processes "
        f"(n={data['cfg'].n})",
        data["rows"], data["tables"], "ms/iteration | %", fmt="9.3f")
    print("\nOnly the PIOMan-backed stack converts the nonblocking halo")
    print("idiom into actual overlap — the application-level payoff the")
    print("paper's conclusion anticipates.")
    return data


if __name__ == "__main__":
    main()
