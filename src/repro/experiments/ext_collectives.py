"""Extension experiment: collective-algorithm latency/bandwidth crossovers.

The motivation for size-aware algorithm selection (MPICH's cutoff
tables, Liu et al.'s size-dependent RDMA protocols) is that the winning
collective algorithm *flips* with message size: latency-optimized
algorithms (recursive doubling, binomial tree, Bruck) win small
messages on round count, bandwidth-optimized ones (ring/Rabenseifner
reduce-scatter pipelines, scatter-allgather) win large messages on
bytes moved per link.  This sweep forces every registered algorithm of
each multi-algorithm collective across a (p x size) grid on the
MPICH2-Nmad stack and pins the crossovers the
:mod:`repro.coll.selector` default table encodes.

Run: ``python -m repro.experiments.ext_collectives``
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.campaign.executors import execute_point
from repro.campaign.points import Point, stack_ref

MODULE = "ext_collectives"

STACK = stack_ref("mpich2_nmad")

#: algorithms per collective, registry order (ties break to the first)
ALGOS: Dict[str, Tuple[str, ...]] = {
    "allreduce": ("recursive_doubling", "rabenseifner", "ring"),
    "bcast": ("binomial", "scatter_allgather"),
    "allgather": ("bruck", "ring"),
    "alltoall": ("bruck", "pairwise"),
}

FULL_PROCS: Tuple[int, ...] = (8, 16)
FULL_SIZES: Tuple[int, ...] = (64, 4096, 65536, 2097152)
#: fast grid still straddles every crossover (64 B vs 2 MiB at p=8)
FAST_PROCS: Tuple[int, ...] = (8,)
FAST_SIZES: Tuple[int, ...] = (64, 2097152)

REPS, WARMUP = 3, 1


def _grid(fast: bool) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    return (FAST_PROCS, FAST_SIZES) if fast else (FULL_PROCS, FULL_SIZES)


def points(fast: bool = False) -> List[Point]:
    """One forced-algorithm collbench point per grid cell."""
    procs, sizes = _grid(fast)
    pts = []
    for coll, algos in ALGOS.items():
        for algo in algos:
            for p in procs:
                for size in sizes:
                    pts.append(Point(
                        MODULE, f"{coll}/{algo}/p{p}/{size}", "coll",
                        {"stack": STACK, "nprocs": p, "collective": coll,
                         "algorithm": algo, "size": size,
                         "reps": REPS, "warmup": WARMUP}))
    return pts


def merge(results: Dict[str, dict], fast: bool = False) -> Dict:
    """Per-cell winners + per-(collective, p) crossover flags."""
    from repro.coll.selector import default_table

    procs, sizes = _grid(fast)
    table = default_table()
    per_op = {key: results[key]["per_op"] for key in sorted(results)}
    winners: Dict[str, str] = {}
    selected: Dict[str, str] = {}
    crossover: Dict[str, bool] = {}
    for coll, algos in ALGOS.items():
        for p in procs:
            for size in sizes:
                cell = min(
                    algos,
                    key=lambda a: (results[f"{coll}/{a}/p{p}/{size}"]["per_op"],
                                   algos.index(a)))
                winners[f"{coll}/p{p}/{size}"] = cell
                selected[f"{coll}/p{p}/{size}"] = table.choose(coll, p, size)
            crossover[f"{coll}/p{p}"] = (
                winners[f"{coll}/p{p}/{sizes[0]}"]
                != winners[f"{coll}/p{p}/{sizes[-1]}"])
    return {"procs": list(procs), "sizes": list(sizes),
            "algorithms": {coll: list(a) for coll, a in ALGOS.items()},
            "per_op": per_op, "winners": winners, "selected": selected,
            "crossover": crossover}


def run(fast: bool = False) -> Dict:
    return merge({p.key: execute_point(p.config()) for p in points(fast)},
                 fast=fast)


def render(data: Dict) -> None:
    sizes = data["sizes"]
    for coll, algos in data["algorithms"].items():
        for p in data["procs"]:
            print(f"\n{coll} at p={p} (us/op; * = cell winner, "
                  f"s = default-table pick)")
            header = f"  {'algorithm':<20}" + "".join(
                f"{s:>14}" for s in sizes)
            print(header)
            for algo in algos:
                cells = []
                for size in sizes:
                    us = data["per_op"][f"{coll}/{algo}/p{p}/{size}"] * 1e6
                    mark = "*" if data["winners"][
                        f"{coll}/p{p}/{size}"] == algo else " "
                    mark += "s" if data["selected"][
                        f"{coll}/p{p}/{size}"] == algo else " "
                    cells.append(f"{us:>11.1f}{mark}")
                print(f"  {algo:<20}" + "".join(f"{c:>14}" for c in cells))
            flips = data["crossover"][f"{coll}/p{p}"]
            print(f"  crossover (small winner != large winner): "
                  f"{'YES' if flips else 'no'}")
    print("\nLatency-optimized algorithms (recursive doubling, binomial,")
    print("Bruck) take the small-message cells; bandwidth-optimized ones")
    print("(Rabenseifner, scatter-allgather, ring, pairwise) take the")
    print("large-message cells — the crossovers the selection table pins.")


def main(fast: bool = False) -> Dict:
    data = run(fast=fast)
    render(data)
    return data


if __name__ == "__main__":
    import sys

    main(fast="--fast" in sys.argv[1:])
