"""Extension experiment: where the 2009 threaded progress stops winning.

The paper argues PIOMan's threaded progress engine is worth its
synchronization overhead because it buys communication/computation
overlap (Fig. 6 vs Fig. 7).  Zhou et al. 2024 ("MPI Progress For All")
catalogs the wider design space; with the pluggable engine layer
(:mod:`repro.pioman.engines`) this experiment re-runs both sweeps
across three engines and two registration modes, pinning the
crossovers:

* **latency** (Fig. 6 axis, mx rail): ``manual_poll`` pays *no*
  per-message synchronization, so it beats the threaded engine on raw
  ping-pong latency at every size — the threaded design loses the
  latency axis outright.  ``dedicated_thread`` shaves the
  ``poll_period`` detection delay and sits between the two.
* **overlap** (Fig. 7 axis, ib rendezvous): ``manual_poll`` cannot
  progress the rendezvous while the application computes, so its
  sending time collapses to the no-overlap case; the threaded and
  dedicated engines both hide the transfer (the 2009 claim survives,
  but a dedicated progress thread matches it without losing latency).
* **registration** (Liu et al. pin-down cache in the IB driver):
  cached registration beats the paper's on-the-fly mode as soon as
  buffers are reused, and a churn workload whose working set exceeds
  the cache capacity exposes the LRU eviction cost.

Run: ``python -m repro.experiments.ext_progress``
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.campaign.executors import execute_point
from repro.campaign.points import Point, stack_ref

MODULE = "ext_progress"

#: every engine in repro.pioman.engines.ENGINE_KINDS, reference first
ENGINES: Tuple[str, ...] = ("pioman", "manual_poll", "dedicated_thread")

#: latency part (Fig. 6 axis): inter-node ping-pong over mx
FULL_LAT_SIZES: Tuple[int, ...] = (4, 1024, 16384)
FAST_LAT_SIZES: Tuple[int, ...] = (4, 16384)

#: overlap part (Fig. 7 axis): ib rendezvous with computation posted
#: between isend and wait
FULL_OVERLAP_SIZES: Tuple[int, ...] = (65536, 262144, 1048576)
FAST_OVERLAP_SIZES: Tuple[int, ...] = (262144,)
OVERLAP_COMPUTE = 400e-6

#: registration part: rendezvous ping-pong, cache off vs 8 MiB
FULL_REG_SIZES: Tuple[int, ...] = (262144, 1048576)
FAST_REG_SIZES: Tuple[int, ...] = (1048576,)
REG_CAPACITY = 8 << 20

#: churn part: cycled working set (1.75 MiB) > 1 MiB cache capacity
CHURN_CAPACITY = 1 << 20
CHURN_SIZES: Tuple[int, ...] = (262144, 524288, 1048576)
CHURN_ROUNDS = 3


def _sweeps(fast: bool):
    if fast:
        return FAST_LAT_SIZES, FAST_OVERLAP_SIZES, FAST_REG_SIZES, 3, 2
    return FULL_LAT_SIZES, FULL_OVERLAP_SIZES, FULL_REG_SIZES, 10, 5


def _lat_stack(engine: str) -> dict:
    if engine == "none":
        return stack_ref("mpich2_nmad", rails=["mx"])
    return stack_ref("mpich2_nmad_pioman", rails=["mx"], progress=engine)


def _overlap_stack(engine: str) -> dict:
    if engine == "none":
        return stack_ref("mpich2_nmad")
    return stack_ref("mpich2_nmad_pioman", progress=engine)


def points(fast: bool = False) -> List[Point]:
    lat_sizes, overlap_sizes, reg_sizes, lat_reps, ov_reps = _sweeps(fast)
    pts = []
    for engine in ("none",) + ENGINES:
        for size in lat_sizes:
            pts.append(Point(MODULE, f"lat/{engine}/{size}", "netpipe",
                             {"stack": _lat_stack(engine), "size": size,
                              "reps": lat_reps}))
        for size in overlap_sizes:
            pts.append(Point(MODULE, f"overlap/{engine}/{size}", "overlap",
                             {"stack": _overlap_stack(engine), "size": size,
                              "compute": OVERLAP_COMPUTE, "reps": ov_reps}))
    for mode, cap in (("off", 0), ("on", REG_CAPACITY)):
        for size in reg_sizes:
            pts.append(Point(MODULE, f"regcache/{mode}/{size}", "netpipe",
                             {"stack": stack_ref("mpich2_nmad",
                                                 ib_reg_cache=cap),
                              "size": size, "reps": ov_reps}))
    for mode, cap in (("off", 0), ("on", CHURN_CAPACITY)):
        pts.append(Point(MODULE, f"churn/{mode}", "reg_churn",
                         {"stack": stack_ref("mpich2_nmad",
                                             ib_reg_cache=cap),
                          "sizes": list(CHURN_SIZES),
                          "rounds": CHURN_ROUNDS}))
    return pts


def merge(results: Dict[str, dict], fast: bool = False) -> Dict:
    """Per-axis series, winners, and the crossover verdicts."""
    lat_sizes, overlap_sizes, reg_sizes, _, _ = _sweeps(fast)
    labels = ("none",) + ENGINES
    lat = {f"{e}/{s}": results[f"lat/{e}/{s}"]["latency"]
           for e in labels for s in lat_sizes}
    overlap = {f"{e}/{s}": results[f"overlap/{e}/{s}"]["sending_time"]
               for e in labels for s in overlap_sizes}
    regcache = {f"{m}/{s}": results[f"regcache/{m}/{s}"]["latency"]
                for m in ("off", "on") for s in reg_sizes}
    churn = {m: results[f"churn/{m}"] for m in ("off", "on")}

    winners: Dict[str, str] = {}
    for size in lat_sizes:
        winners[f"lat/{size}"] = min(
            ENGINES, key=lambda e: (lat[f"{e}/{size}"], ENGINES.index(e)))
    for size in overlap_sizes:
        winners[f"overlap/{size}"] = min(
            ENGINES, key=lambda e: (overlap[f"{e}/{size}"],
                                    ENGINES.index(e)))

    crossover = {
        # the 2009 threaded design loses the latency axis outright
        "manual_poll_beats_threaded_lat": all(
            lat[f"manual_poll/{s}"] < lat[f"pioman/{s}"]
            for s in lat_sizes),
        "dedicated_beats_threaded_lat": all(
            lat[f"dedicated_thread/{s}"] < lat[f"pioman/{s}"]
            for s in lat_sizes),
        # ...but keeps the overlap axis against manual polling
        "manual_poll_loses_overlap": all(
            overlap[f"manual_poll/{s}"] > overlap[f"pioman/{s}"]
            for s in overlap_sizes),
        # a dedicated progress thread overlaps at least as well
        "dedicated_matches_overlap": all(
            overlap[f"dedicated_thread/{s}"] <= overlap[f"pioman/{s}"]
            for s in overlap_sizes),
        # cached registration beats on-the-fly once buffers are reused
        "cache_beats_onthefly": all(
            regcache[f"on/{s}"] < regcache[f"off/{s}"] for s in reg_sizes),
        # the churn working set (1.75 MiB) overflows the 1 MiB cache
        "churn_evicts": churn["on"]["evictions"] > 0,
        # ...and with zero reuse the cache *loses*: every lookup pays
        # the full pin cost plus the LRU deregistrations
        "cache_loses_under_churn": (churn["on"]["elapsed"]
                                    > churn["off"]["elapsed"]),
    }
    return {"engines": list(labels),
            "lat_sizes": list(lat_sizes),
            "overlap_sizes": list(overlap_sizes),
            "reg_sizes": list(reg_sizes),
            "lat": lat, "overlap": overlap, "regcache": regcache,
            "churn": churn, "winners": winners, "crossover": crossover}


def run(fast: bool = False) -> Dict:
    return merge({p.key: execute_point(p.config()) for p in points(fast)},
                 fast=fast)


def render(data: Dict) -> None:
    print("ping-pong latency over mx (Fig. 6 axis), us")
    print(f"  {'engine':<18}"
          + "".join(f"{s:>12}" for s in data["lat_sizes"]))
    for engine in data["engines"]:
        row = "".join(f"{data['lat'][f'{engine}/{s}'] * 1e6:>12.3f}"
                      for s in data["lat_sizes"])
        print(f"  {engine:<18}{row}")
    for size in data["lat_sizes"]:
        print(f"  -> winner at {size} B: {data['winners'][f'lat/{size}']}")

    print(f"\nsender-side time with {OVERLAP_COMPUTE * 1e6:.0f} us of "
          "computation posted (Fig. 7 axis, ib rendezvous), us")
    print(f"  {'engine':<18}"
          + "".join(f"{s:>12}" for s in data["overlap_sizes"]))
    for engine in data["engines"]:
        row = "".join(f"{data['overlap'][f'{engine}/{s}'] * 1e6:>12.1f}"
                      for s in data["overlap_sizes"])
        print(f"  {engine:<18}{row}")

    print("\nib registration: on-the-fly vs pin-down cache, "
          "rendezvous ping-pong latency, us")
    for size in data["reg_sizes"]:
        off, on = (data["regcache"][f"off/{size}"],
                   data["regcache"][f"on/{size}"])
        print(f"  {size:>8} B: {off * 1e6:9.1f} -> {on * 1e6:9.1f} "
              f"({off / on:.3f}x)")
    churn = data["churn"]
    print(f"\nchurn (working set {sum(CHURN_SIZES) >> 10} KiB vs "
          f"{CHURN_CAPACITY >> 10} KiB cache): "
          f"{churn['on']['hits']} hits, {churn['on']['misses']} misses, "
          f"{churn['on']['evictions']} evictions; elapsed "
          f"{churn['off']['elapsed'] * 1e3:.3f} -> "
          f"{churn['on']['elapsed'] * 1e3:.3f} ms")
    print("\ncrossovers:")
    for name, value in data["crossover"].items():
        print(f"  {name}: {'YES' if value else 'no'}")


def main(fast: bool = False) -> Dict:
    data = run(fast=fast)
    render(data)
    return data


if __name__ == "__main__":
    import sys

    main(fast="--fast" in sys.argv[1:])
