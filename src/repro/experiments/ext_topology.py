"""Extension experiment: topology shifts the collective crossovers.

The :mod:`ext_collectives` sweep ran on the flat full-bisection fabric,
where every pair of nodes is one wire apart and the only contention is
at the NICs.  Real interconnects are link/switch graphs: a 2-D torus
reaches distant nodes over several store-and-forward hops, a k-ary
fat-tree funnels traffic through shared up-links.  Re-running the
crossover grid on routed fabrics (:mod:`repro.hardware.netgraph`)
shows the *winning algorithm itself moves with the topology*:
neighbor-exchange algorithms (ring, Rabenseifner's reduce-scatter
pipeline) keep their traffic on short routes, while
distance-p/2 exchanges (recursive doubling, Bruck) pay full-diameter
routes and collide on shared links.

A second part exercises the contention-aware multirail split
(``split_contention``): rank 0 stripes rendezvous payloads over a flat
ib rail and a ring-routed mx rail while background interference frames
congest the mx route; the mx split share visibly decays as the fabric's
congestion estimate rises, where the static ``split_balance`` profile
would keep overfeeding the congested rail.

Run: ``python -m repro.experiments.ext_topology``
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.campaign.executors import execute_point
from repro.campaign.points import Point, stack_ref

MODULE = "ext_topology"

STACK = stack_ref("mpich2_nmad")

#: algorithms per collective, registry order (ties break to the first)
ALGOS: Dict[str, Tuple[str, ...]] = {
    "allreduce": ("recursive_doubling", "rabenseifner", "ring"),
    "allgather": ("bruck", "ring"),
}

#: topology preset string per (kind, nprocs); None = flat fabric
TOPOS: Dict[str, Dict[int, Optional[str]]] = {
    "flat": {8: None, 16: None},
    "torus": {8: "torus2d:2x4", 16: "torus2d:4x4"},
    "fattree": {8: "fattree:4", 16: "fattree:4"},
}
TOPO_ORDER: Tuple[str, ...] = ("flat", "torus", "fattree")

FULL_PROCS: Tuple[int, ...] = (8, 16)
FULL_SIZES: Tuple[int, ...] = (4096, 65536, 2097152)
#: the fast grid keeps both observed flips: allreduce@4 KiB flips
#: flat->torus, allreduce@64 KiB flips flat->fattree
FAST_PROCS: Tuple[int, ...] = (8,)
FAST_SIZES: Tuple[int, ...] = (4096, 65536)

REPS, WARMUP = 2, 1

#: the multirail part: 4 nodes, ib flat + mx routed as a 4-ring; the
#: measured flow is node0 -> node1, the interference flow node3 ->
#: node1 shares the directed mx link n0>n1 (ring ties break clockwise)
MR_TOPOLOGY = "ring:4"
MR_SIZE = 1 << 20
MR_MSGS = 8
MR_BG = {"src": 3, "dst": 1, "size": 1 << 20, "period": 2e-05, "count": 400}


def _grid(fast: bool) -> Tuple[Dict[str, Tuple[str, ...]],
                               Tuple[int, ...], Tuple[int, ...]]:
    if fast:
        return {"allreduce": ALGOS["allreduce"]}, FAST_PROCS, FAST_SIZES
    return ALGOS, FULL_PROCS, FULL_SIZES


def points(fast: bool = False) -> List[Point]:
    """Forced-algorithm collbench cells per topology + multirail runs."""
    algos_by_coll, procs, sizes = _grid(fast)
    pts = []
    for coll, algos in algos_by_coll.items():
        for algo in algos:
            for topo in TOPO_ORDER:
                for p in procs:
                    for size in sizes:
                        params = {"stack": STACK, "nprocs": p,
                                  "collective": coll, "algorithm": algo,
                                  "size": size, "reps": REPS,
                                  "warmup": WARMUP}
                        spec = TOPOS[topo][p]
                        if spec is not None:
                            params["topology"] = spec
                        pts.append(Point(
                            MODULE, f"{coll}/{algo}/{topo}/p{p}/{size}",
                            "coll", params))
    mr_stack = stack_ref("mpich2_nmad", rails=["ib", "mx"],
                         strategy="split_contention")
    base = {"stack": mr_stack, "topology": MR_TOPOLOGY, "n_nodes": 4,
            "size": MR_SIZE, "n_msgs": MR_MSGS}
    pts.append(Point(MODULE, "multirail/bg_off", "topo_multirail",
                     dict(base)))
    pts.append(Point(MODULE, "multirail/bg_on", "topo_multirail",
                     dict(base, bg=dict(MR_BG))))
    return pts


def merge(results: Dict[str, dict], fast: bool = False) -> Dict:
    """Per-topology winners, flip flags, and the split-share response."""
    algos_by_coll, procs, sizes = _grid(fast)
    per_op = {key: res["per_op"] for key, res in sorted(results.items())
              if "per_op" in res}
    winners: Dict[str, str] = {}
    topo_flip: Dict[str, bool] = {}
    for coll, algos in algos_by_coll.items():
        for p in procs:
            for size in sizes:
                for topo in TOPO_ORDER:
                    cell = min(algos, key=lambda a: (
                        results[f"{coll}/{a}/{topo}/p{p}/{size}"]["per_op"],
                        algos.index(a)))
                    winners[f"{coll}/{topo}/p{p}/{size}"] = cell
                flat = winners[f"{coll}/flat/p{p}/{size}"]
                topo_flip[f"{coll}/p{p}/{size}"] = any(
                    winners[f"{coll}/{t}/p{p}/{size}"] != flat
                    for t in TOPO_ORDER[1:])
    mr_off = results["multirail/bg_off"]
    mr_on = results["multirail/bg_on"]
    multirail = {
        "bg_off": mr_off, "bg_on": mr_on,
        # did the split move away from the congested rail?
        "responds": (mr_on["mx_share_last"] < mr_on["mx_share_first"]
                     and mr_on["mx_share_last"] < mr_off["mx_share_last"]),
    }
    return {"procs": list(procs), "sizes": list(sizes),
            "topologies": list(TOPO_ORDER),
            "algorithms": {c: list(a) for c, a in algos_by_coll.items()},
            "per_op": per_op, "winners": winners, "topo_flip": topo_flip,
            "multirail": multirail}


def run(fast: bool = False) -> Dict:
    return merge({p.key: execute_point(p.config()) for p in points(fast)},
                 fast=fast)


def render(data: Dict) -> None:
    sizes = data["sizes"]
    for coll, algos in data["algorithms"].items():
        for p in data["procs"]:
            print(f"\n{coll} at p={p} — winner per (topology, size), us/op")
            print(f"  {'topology':<10}" + "".join(f"{s:>24}" for s in sizes))
            for topo in data["topologies"]:
                cells = []
                for size in sizes:
                    win = data["winners"][f"{coll}/{topo}/p{p}/{size}"]
                    us = data["per_op"][f"{coll}/{win}/{topo}/p{p}/{size}"]
                    cells.append(f"{win} {us * 1e6:.1f}")
                print(f"  {topo:<10}" + "".join(f"{c:>24}" for c in cells))
            for size in sizes:
                if data["topo_flip"][f"{coll}/p{p}/{size}"]:
                    print(f"  -> winner flips with topology at {size} B")
    mr = data["multirail"]
    print("\nmultirail split over ib(flat) + mx(ring:4), "
          f"{MR_MSGS} x {MR_SIZE} B rendezvous:")
    for label in ("bg_off", "bg_on"):
        r = mr[label]
        print(f"  {label:<7} mx share {r['mx_share_first']:.3f} -> "
              f"{r['mx_share_last']:.3f} "
              f"(observed delay {r['observed_delay'] * 1e6:.1f} us)")
    print(f"  split responds to congestion: "
          f"{'YES' if mr['responds'] else 'no'}")


def main(fast: bool = False) -> Dict:
    data = run(fast=fast)
    render(data)
    return data


if __name__ == "__main__":
    import sys

    main(fast="--fast" in sys.argv[1:])
