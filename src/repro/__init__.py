"""Simulation-based reproduction of *NewMadeleine: An Efficient Support
for High-Performance Networks in MPICH2* (Mercier, Trahay, Buntinas,
Brunet -- IPDPS 2009).

Public surface:

* :func:`repro.runtime.run_mpi` -- run a rank program on a simulated
  cluster under one of the paper's stack configurations.
* :mod:`repro.config` -- stack and cluster presets (MPICH2-NewMadeleine
  with/without PIOMan, MVAPICH2, Open MPI, the paper's testbeds).
* :mod:`repro.workloads` -- Netpipe, the overlap benchmark, NAS skeletons.
* :mod:`repro.experiments` -- one module per paper figure.
"""

from repro import config
from repro.runtime import MPIRuntime, RunResult, run_mpi

__version__ = "1.0.0"

__all__ = ["config", "run_mpi", "MPIRuntime", "RunResult", "__version__"]
