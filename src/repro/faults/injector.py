"""The fault injector: applies a :class:`~repro.faults.plan.FaultPlan`.

One injector is attached to every :class:`~repro.hardware.nic.Fabric`
of a cluster (``fabric.injector``).  The hardware consults it at two
choke points:

* :meth:`on_deliver` — at frame arrival, deciding delivered / dropped /
  delivered-corrupt (the corrupt flag models a CRC failure: the
  receiving NIC counts the frame, then silently discards it);
* :meth:`tx_stall` — at injection, adding NIC serialization time during
  stall windows.

Random draws come from one :func:`~repro.simulator.rng.rng_stream` per
rail keyed on ``(seed, "fault", plan.name, rail)``; draw order equals
delivery order, which the simulator makes deterministic, so a chaos run
is exactly reproducible from ``(plan, seed)``.
"""

from __future__ import annotations

from functools import partial
from typing import Dict, Optional

from repro.faults.plan import FaultPlan, RailFaults
from repro.simulator import Simulator
from repro.simulator.rng import rng_stream


class FaultInjector:
    """Applies one fault plan to a live simulation, deterministically."""

    def __init__(self, sim: Simulator, plan: FaultPlan, seed: int = 0):
        self.sim = sim
        self.plan = plan
        self.seed = seed
        self._rng: Dict[str, object] = {}
        # running stats (also available as fault.* trace records / metrics)
        self.dropped = 0
        self.corrupted = 0
        self.outage_dropped = 0
        self.stalled_frames = 0
        self.stall_time = 0.0

    # -- wiring ----------------------------------------------------------
    def attach(self, fabrics) -> "FaultInjector":
        """Hook this injector into every fabric in ``fabrics``."""
        for fabric in fabrics:
            fabric.injector = self
        return self

    def schedule_markers(self) -> None:
        """Emit ``fault.outage``/``fault.stall_window`` edge records.

        Scheduled as simulator events so the windows show up as instants
        on the fault track of a Perfetto export.
        """
        if self.sim.trace is None:
            return
        mark = partial(partial, self.sim.record)
        for rf in self.plan.rails:
            for w in rf.outages:
                self.sim.at(w.start, mark("fault.outage", rail=rf.rail,
                                          state="down", until=w.end))
                self.sim.at(w.end, mark("fault.outage", rail=rf.rail,
                                        state="up"))
            for w in rf.stalls:
                self.sim.at(w.start, mark("fault.stall_window", rail=rf.rail,
                                          state="on", factor=w.factor,
                                          until=w.end))
                self.sim.at(w.end, mark("fault.stall_window", rail=rf.rail,
                                        state="off"))

    def _stream(self, rail: str):
        rng = self._rng.get(rail)
        if rng is None:
            rng = self._rng[rail] = rng_stream(
                self.seed, "fault", self.plan.name, rail)
        return rng

    # -- hardware hooks --------------------------------------------------
    def on_deliver(self, fabric, frame) -> bool:
        """Fault verdict at delivery time.  Returns False to drop.

        May set ``frame.corrupt`` and still return True: the frame
        reaches the destination NIC but fails its CRC there.
        """
        rf: Optional[RailFaults] = self.plan.for_rail(fabric.name)
        if rf is None:
            return True
        now = self.sim.now
        if rf.in_outage(now):
            self.outage_dropped += 1
            if self.sim.tracing:
                self.sim.record("fault.drop", rail=fabric.name, reason="outage",
                                frame=frame.frame_id, kind=frame.kind,
                                size=frame.size, src=frame.src, dst=frame.dst)
            return False
        if rf.stochastic:
            u = float(self._stream(fabric.name).random())
            if u < rf.drop_prob:
                self.dropped += 1
                if self.sim.tracing:
                    self.sim.record("fault.drop", rail=fabric.name,
                                    reason="random", frame=frame.frame_id,
                                    kind=frame.kind, size=frame.size,
                                    src=frame.src, dst=frame.dst)
                return False
            if u < rf.drop_prob + rf.corrupt_prob:
                frame.corrupt = True
                self.corrupted += 1
                if self.sim.tracing:
                    self.sim.record("fault.corrupt", rail=fabric.name,
                                    frame=frame.frame_id, kind=frame.kind,
                                    size=frame.size, src=frame.src,
                                    dst=frame.dst)
                # delivered anyway; the receiving side discards on CRC fail
        return True

    def tx_stall(self, nic, frame, injection: float) -> float:
        """Extra NIC serialization time for ``frame`` (0 outside stalls)."""
        rf = self.plan.for_rail(nic.params.name)
        if rf is None or not rf.stalls:
            return 0.0
        factor = rf.stall_factor(self.sim.now)
        if factor <= 1.0:
            return 0.0
        extra = injection * (factor - 1.0)
        self.stalled_frames += 1
        self.stall_time += extra
        if self.sim.tracing:
            self.sim.record("fault.stall", rail=nic.params.name,
                            node=nic.node_id, frame=frame.frame_id,
                            size=frame.size, dur=extra, factor=factor)
        return extra
