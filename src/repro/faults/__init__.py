"""Fault injection and chaos tooling for the simulated stack.

* :mod:`~repro.faults.plan` — declarative, seeded fault plans
  (drop/corrupt probability, outage windows, injection stalls);
* :mod:`~repro.faults.injector` — applies a plan to live fabrics;
* :mod:`~repro.faults.determinism` — id-space resets and trace
  fingerprints for byte-identical-replay regression tests;
* :mod:`~repro.faults.report` — the ``repro faults`` chaos run:
  workload under a plan, goodput/recovery report.

The reliability mechanisms that *survive* these faults (ack/retransmit,
rendezvous timers, multirail failover) live with the protocols they
protect, in :mod:`repro.nmad.reliability`.
"""

from repro.faults.determinism import (
    canonical_records,
    fresh_id_space,
    trace_fingerprint,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    PLAN_NAMES,
    FaultPlan,
    OutageWindow,
    RailFaults,
    StallWindow,
    named_plan,
)
from repro.faults.report import ChaosReport, run_chaos, stream_program

__all__ = [
    "canonical_records",
    "fresh_id_space",
    "trace_fingerprint",
    "FaultInjector",
    "PLAN_NAMES",
    "FaultPlan",
    "OutageWindow",
    "RailFaults",
    "StallWindow",
    "named_plan",
    "ChaosReport",
    "run_chaos",
    "stream_program",
]
