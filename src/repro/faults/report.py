"""Chaos runs: a workload under a fault plan, with a degradation report.

:func:`run_chaos` runs the same two-rank streaming workload twice on a
reliability-armed multirail stack — once fault-free to calibrate, once
under a named :class:`~repro.faults.plan.FaultPlan` scaled to the
calibrated duration — and compares: goodput degradation, retransmission
and failover activity, recovery time, and the exactly-once delivery
check.  This is what the ``repro faults`` CLI subcommand and the CI
chaos smoke job execute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro import config
from repro.faults.determinism import fresh_id_space, trace_fingerprint
from repro.faults.plan import FaultPlan, named_plan
from repro.observability.metrics import TraceMetrics, attach_metrics
from repro.runtime.builder import run_mpi
from repro.simulator import Trace


def stream_program(messages: int, size: int, window: int = 4):
    """Rank 0 streams ``messages`` payloads of ``size`` bytes to rank 1.

    The sender keeps ``window`` sends in flight (so multirail striping
    and failover have work to re-route); the receiver returns the list
    of received payloads, in order — the exactly-once evidence.
    """

    def program(comm):
        if comm.rank == 0:
            pending = []
            for i in range(messages):
                req = yield from comm.isend(1, tag=7, size=size,
                                            data=("msg", i))
                pending.append(req)
                if len(pending) >= window:
                    yield from comm.wait(pending.pop(0))
            yield from comm.waitall(pending)
            return comm.wtime()
        received = []
        for _ in range(messages):
            msg = yield from comm.recv(src=0, tag=7)
            received.append(msg.data)
        return {"received": received, "t_end": comm.wtime()}

    return program


@dataclass
class ChaosReport:
    """Everything a chaos run measured."""

    plan: FaultPlan
    seed: int
    messages: int
    size: int
    clean_elapsed: float
    faulted_elapsed: float
    exactly_once: bool
    delivered: int
    expected: int
    duplicates_suppressed: int
    retransmits: int
    timeouts: int
    rail_downs: int
    rail_ups: int
    failovers: int
    degraded_bandwidth_fraction: float
    recovery_times: List[float]
    fingerprint: str
    metrics: Dict[str, Any] = field(default_factory=dict)

    @property
    def degradation(self) -> float:
        """Relative slowdown of the faulted run (0 = unaffected)."""
        if self.clean_elapsed <= 0:
            return 0.0
        return self.faulted_elapsed / self.clean_elapsed - 1.0

    @property
    def goodput_fraction(self) -> float:
        """Faulted goodput as a fraction of the fault-free goodput."""
        if self.faulted_elapsed <= 0:
            return 1.0
        return self.clean_elapsed / self.faulted_elapsed

    def to_dict(self) -> Dict[str, Any]:
        return {
            "plan": self.plan.to_dict(),
            "seed": self.seed,
            "messages": self.messages,
            "size": self.size,
            "clean_elapsed": self.clean_elapsed,
            "faulted_elapsed": self.faulted_elapsed,
            "degradation": self.degradation,
            "goodput_fraction": self.goodput_fraction,
            "exactly_once": self.exactly_once,
            "delivered": self.delivered,
            "expected": self.expected,
            "duplicates_suppressed": self.duplicates_suppressed,
            "retransmits": self.retransmits,
            "timeouts": self.timeouts,
            "rail_downs": self.rail_downs,
            "rail_ups": self.rail_ups,
            "failovers": self.failovers,
            "degraded_bandwidth_fraction": self.degraded_bandwidth_fraction,
            "recovery_times": self.recovery_times,
            "fingerprint": self.fingerprint,
            "metrics": self.metrics,
        }

    def format_text(self) -> str:
        p = self.plan
        lines = [
            f"chaos run: plan={p.name!r} seed={self.seed} "
            f"({self.messages} x {self.size} B)",
            f"  fault-free elapsed : {self.clean_elapsed * 1e3:.3f} ms",
            f"  faulted elapsed    : {self.faulted_elapsed * 1e3:.3f} ms "
            f"({self.degradation * +100:.1f}% slower, goodput "
            f"{self.goodput_fraction * 100:.1f}%)",
            f"  exactly-once       : "
            f"{'OK' if self.exactly_once else 'VIOLATED'} "
            f"({self.delivered}/{self.expected} delivered, "
            f"{self.duplicates_suppressed} duplicates suppressed)",
            f"  retransmits        : {self.retransmits} "
            f"(after {self.timeouts} ack timeouts)",
            f"  rail failures      : {self.rail_downs} down / "
            f"{self.rail_ups} recovered, {self.failovers} wrappers "
            f"failed over",
        ]
        for rt in self.recovery_times:
            lines.append(f"  recovery time      : {rt * 1e6:.1f} us")
        lines.append(f"  degraded bandwidth : "
                     f"{self.degraded_bandwidth_fraction * 100:.1f}% "
                     f"of the traced span")
        lines.append(f"  trace fingerprint  : {self.fingerprint[:16]}…")
        return "\n".join(lines)


def _counter_total(metrics: TraceMetrics, name: str) -> float:
    """Sum of ``name`` across every label (plus the unlabeled one)."""
    reg = metrics.registry
    total = sum(reg.counter(name, lbl).value for lbl in reg.labels_of(name))
    plain = reg._metrics.get(name)
    if plain is not None:
        total += plain.value
    return total


def run_chaos(plan_name: str = "drop+outage",
              messages: int = 16, size: int = 512 * 1024,
              seed: int = 1234, window: int = 4,
              spec=None, plan: Optional[FaultPlan] = None,
              drop_prob: float = 0.01) -> ChaosReport:
    """Run the stream workload clean, then under a fault plan; compare.

    The fault plan's windows are positioned relative to the *measured*
    fault-free duration, so the outage always lands mid-transfer.
    """
    if spec is None:
        spec = config.mpich2_nmad_reliable(rails=("ib", "mx"))
    program = stream_program(messages, size, window=window)

    # -- calibration pass: same stack, no faults -----------------------
    fresh_id_space()
    clean_trace = Trace()
    clean_metrics = attach_metrics(clean_trace)
    clean = run_mpi(program, 2, spec, cluster=config.xeon_pair(),
                    trace=clean_trace, seed=seed)
    clean_elapsed = max(r["t_end"] if isinstance(r, dict) else r
                       for r in clean.rank_results)

    if plan is None:
        plan = named_plan(plan_name, rails=spec.rails,
                          t_hint=clean_elapsed, drop_prob=drop_prob)

    # -- chaos pass ----------------------------------------------------
    fresh_id_space()
    trace = Trace()
    metrics = attach_metrics(trace)
    faulted = run_mpi(program, 2, spec, cluster=config.xeon_pair(),
                      trace=trace, seed=seed, faults=plan)
    recv_result = next(r for r in faulted.rank_results if isinstance(r, dict))
    received = recv_result["received"]
    faulted_elapsed = recv_result["t_end"]

    expected = [("msg", i) for i in range(messages)]
    reg = metrics.registry
    rail_ups = reg._metrics.get("reliab.recovery_time")
    recovery = []
    if rail_ups is not None and rail_ups.count:
        recovery = [rail_ups.mean] * rail_ups.count

    return ChaosReport(
        plan=plan, seed=seed, messages=messages, size=size,
        clean_elapsed=clean_elapsed, faulted_elapsed=faulted_elapsed,
        exactly_once=received == expected,
        delivered=len(received), expected=messages,
        duplicates_suppressed=int(_counter_total(metrics, "reliab.duplicates")),
        retransmits=int(_counter_total(metrics, "reliab.retransmits")),
        timeouts=int(_counter_total(metrics, "reliab.timeouts")),
        rail_downs=int(_counter_total(metrics, "reliab.rail_downs")),
        rail_ups=len(recovery),
        failovers=int(_counter_total(metrics, "reliab.failovers")),
        degraded_bandwidth_fraction=metrics.degraded_bandwidth_fraction(),
        recovery_times=recovery,
        fingerprint=trace_fingerprint(trace),
        metrics={
            "clean": {"snapshot": clean_metrics.registry.snapshot(),
                      "derived": clean_metrics.derived()},
            "faulted": {"snapshot": metrics.registry.snapshot(),
                        "derived": metrics.derived()},
        },
    )
