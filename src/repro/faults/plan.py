"""Declarative fault plans: what goes wrong, where, and when.

A :class:`FaultPlan` is a *pure description* of fabric adversity — it
holds no simulator state and draws no random numbers itself.  The
:class:`~repro.faults.injector.FaultInjector` interprets a plan against
a live simulation, deriving one independent random stream per rail from
the run's root seed (via :func:`repro.simulator.rng.rng_stream`), so

* the same ``(plan, seed)`` pair always yields the same fault sequence;
* adding a fault on one rail never perturbs the draws of another.

Three fault families are expressible per rail:

* **probabilistic frame loss/corruption** — each delivered frame is
  dropped with ``drop_prob`` or delivered corrupt (CRC-fail, discarded
  by the receiving NIC) with ``corrupt_prob``;
* **outage windows** — the link is down in ``[start, end)``: every
  frame arriving in the window is lost (both directions);
* **injection stalls** — in ``[start, end)`` the NIC serializes frames
  ``factor``× slower (a misbehaving DMA engine / PCIe contention).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

__all__ = ["OutageWindow", "StallWindow", "RailFaults", "FaultPlan",
           "named_plan"]


@dataclass(frozen=True)
class OutageWindow:
    """Link down from ``start`` (inclusive) to ``end`` (exclusive), seconds."""

    start: float
    end: float

    def __post_init__(self):
        if not (0.0 <= self.start < self.end):
            raise ValueError(f"bad outage window [{self.start}, {self.end})")

    def covers(self, t: float) -> bool:
        return self.start <= t < self.end


@dataclass(frozen=True)
class StallWindow:
    """NIC injection slowed by ``factor`` in ``[start, end)``."""

    start: float
    end: float
    factor: float = 4.0

    def __post_init__(self):
        if not (0.0 <= self.start < self.end):
            raise ValueError(f"bad stall window [{self.start}, {self.end})")
        if self.factor < 1.0:
            raise ValueError(f"stall factor must be >= 1, got {self.factor}")

    def covers(self, t: float) -> bool:
        return self.start <= t < self.end


@dataclass(frozen=True)
class RailFaults:
    """Everything that can go wrong on one named rail."""

    rail: str
    drop_prob: float = 0.0
    corrupt_prob: float = 0.0
    outages: Tuple[OutageWindow, ...] = ()
    stalls: Tuple[StallWindow, ...] = ()

    def __post_init__(self):
        if not (0.0 <= self.drop_prob < 1.0):
            raise ValueError(f"drop_prob must be in [0, 1), got {self.drop_prob}")
        if not (0.0 <= self.corrupt_prob < 1.0):
            raise ValueError(
                f"corrupt_prob must be in [0, 1), got {self.corrupt_prob}")
        if self.drop_prob + self.corrupt_prob >= 1.0:
            raise ValueError("drop_prob + corrupt_prob must stay below 1")

    @property
    def stochastic(self) -> bool:
        """True when this rail needs a random stream at all."""
        return self.drop_prob > 0.0 or self.corrupt_prob > 0.0

    def in_outage(self, t: float) -> bool:
        return any(w.covers(t) for w in self.outages)

    def stall_factor(self, t: float) -> float:
        for w in self.stalls:
            if w.covers(t):
                return w.factor
        return 1.0


@dataclass(frozen=True)
class FaultPlan:
    """A named, serializable set of per-rail fault specifications."""

    name: str
    rails: Tuple[RailFaults, ...] = ()

    def __post_init__(self):
        seen = set()
        for rf in self.rails:
            if rf.rail in seen:
                raise ValueError(f"duplicate rail {rf.rail!r} in plan")
            seen.add(rf.rail)

    def for_rail(self, rail: str) -> Optional[RailFaults]:
        for rf in self.rails:
            if rf.rail == rail:
                return rf
        return None

    @property
    def empty(self) -> bool:
        return not self.rails

    # -- (de)serialization — the schema documented in docs/FAULTS.md ----
    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "rails": [
                {
                    "rail": rf.rail,
                    "drop_prob": rf.drop_prob,
                    "corrupt_prob": rf.corrupt_prob,
                    "outages": [[w.start, w.end] for w in rf.outages],
                    "stalls": [[w.start, w.end, w.factor] for w in rf.stalls],
                }
                for rf in self.rails
            ],
        }

    @staticmethod
    def from_dict(doc: Dict) -> "FaultPlan":
        rails = tuple(
            RailFaults(
                rail=rd["rail"],
                drop_prob=rd.get("drop_prob", 0.0),
                corrupt_prob=rd.get("corrupt_prob", 0.0),
                outages=tuple(OutageWindow(a, b)
                              for a, b in rd.get("outages", ())),
                stalls=tuple(StallWindow(a, b, f)
                             for a, b, f in rd.get("stalls", ())),
            )
            for rd in doc.get("rails", ())
        )
        return FaultPlan(name=doc["name"], rails=rails)


# ---------------------------------------------------------------------------
# named plans (the chaos presets of `repro faults` and the CI smoke job)
# ---------------------------------------------------------------------------

#: names accepted by :func:`named_plan`
PLAN_NAMES = ("clean", "drop", "corrupt", "outage", "drop+outage", "stall")


def named_plan(name: str, rails: Tuple[str, ...] = ("ib", "mx"),
               t_hint: float = 1e-3, drop_prob: float = 0.01,
               outage_span: Tuple[float, float] = (0.3, 0.6),
               stall_factor: float = 4.0) -> FaultPlan:
    """Build one of the preset chaos plans.

    ``t_hint`` is the expected fault-free run duration (seconds); outage
    and stall windows are placed at ``outage_span`` fractions of it, so
    the disturbance lands mid-transfer regardless of workload size.
    The *last* rail in ``rails`` is the one taken down — the fastest
    rail (listed first) survives and carries the failover traffic.
    """
    if name not in PLAN_NAMES:
        raise ValueError(
            f"unknown fault plan {name!r}; available: {', '.join(PLAN_NAMES)}")
    if not rails:
        raise ValueError("a fault plan needs at least one rail")
    window = OutageWindow(outage_span[0] * t_hint, outage_span[1] * t_hint)
    victim = rails[-1]
    if name == "clean":
        return FaultPlan(name="clean", rails=())
    if name == "drop":
        return FaultPlan(name="drop", rails=tuple(
            RailFaults(rail=r, drop_prob=drop_prob) for r in rails))
    if name == "corrupt":
        return FaultPlan(name="corrupt", rails=tuple(
            RailFaults(rail=r, corrupt_prob=drop_prob) for r in rails))
    if name == "outage":
        return FaultPlan(name="outage", rails=(
            RailFaults(rail=victim, outages=(window,)),))
    if name == "drop+outage":
        specs = [RailFaults(rail=r, drop_prob=drop_prob,
                            outages=(window,) if r == victim else ())
                 for r in rails]
        return FaultPlan(name="drop+outage", rails=tuple(specs))
    # "stall": slow the *first* rail so traffic shifts toward the others
    return FaultPlan(name="stall", rails=(
        RailFaults(rail=rails[0],
                   stalls=(StallWindow(window.start, window.end,
                                       stall_factor),)),))
