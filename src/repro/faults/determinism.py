"""Determinism tooling: fresh id spaces and trace fingerprints.

The simulator itself is fully deterministic, but three module-level id
counters (frame ids, packet-wrapper ids, rendezvous ids) are process
global, so two runs *in the same process* see different absolute ids in
their traces.  :func:`fresh_id_space` rewinds them, making repeated
runs byte-comparable; :func:`trace_fingerprint` reduces a trace to a
stable digest for exact-equality regression tests (see
``tests/faults/test_determinism.py``).
"""

from __future__ import annotations

import hashlib

from repro.hardware import nic as _nic
from repro.nmad import packet as _packet
from repro.simulator.tracing import Trace


def fresh_id_space() -> None:
    """Rewind every global id counter to zero.

    Only for determinism comparisons and tooling: after this, ids are
    no longer unique against objects created before the call.
    """
    _nic.reset_frame_ids()
    _packet.reset_ids()


def canonical_records(trace: Trace):
    """Stable one-line serializations of every trace record, in order."""
    for rec in trace.records:
        data = ",".join(f"{k}={rec.data[k]!r}" for k in sorted(rec.data))
        yield f"{rec.time!r} {rec.category} {data}"


def trace_fingerprint(trace: Trace) -> str:
    """SHA-256 over the canonical serialization of ``trace``.

    Two runs with the same configuration, seed, and a fresh id space
    produce byte-identical canonical records, hence equal fingerprints.
    """
    h = hashlib.sha256()
    for line in canonical_records(trace):
        h.update(line.encode("utf-8"))
        h.update(b"\n")
    return h.hexdigest()
