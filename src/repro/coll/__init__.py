"""Collective algorithm selection and tuning (the ``repro.coll`` package).

* :mod:`repro.coll.registry` — the named-algorithm registry both
  :mod:`repro.mpi.collectives` (classic small-message algorithms) and
  :mod:`repro.coll.algorithms` (large-message algorithms) feed;
* :mod:`repro.coll.algorithms` — ring/Rabenseifner allreduce,
  scatter-allgather bcast, Bruck allgather/alltoall, tree barrier;
* :mod:`repro.coll.selector` — the size/p cutoff table consulted on
  every dispatched collective, with forcing and tuned-table loading;
* :mod:`repro.coll.tuning` — the ``repro coll-tune`` autotuner that
  measures (algorithm x p x size) through the campaign cache and emits
  a tuned table.

See ``docs/COLLECTIVES.md``.
"""

from repro.coll import algorithms as _algorithms  # registers on import
from repro.coll.registry import (COLLECTIVES, Algorithm, all_algorithms,
                                 fallback_of, get, names_of)
from repro.coll.selector import (Rule, SelectionTable, active_table,
                                 default_table, forced, resolve, set_table)

del _algorithms

__all__ = [
    "COLLECTIVES", "Algorithm", "all_algorithms", "fallback_of", "get",
    "names_of", "Rule", "SelectionTable", "active_table", "default_table",
    "forced", "resolve", "set_table",
]
