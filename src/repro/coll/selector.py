"""Size/p-aware collective algorithm selection.

A :class:`SelectionTable` maps each collective to an ordered rule list;
the first rule matching ``(p, size)`` names the algorithm, in the style
of MPICH's ``MPIR_*_intra_auto`` cutoff tables.  The module holds one
*active* table (the default below, or a tuned one loaded from the JSON
emitted by ``repro coll-tune``) that :mod:`repro.mpi.collectives`
consults on every dispatch.

Selection must be identical on every rank of a collective — it depends
only on ``(collective, p, size)``, never on the local payload.  The
payload enters only afterwards: if the chosen algorithm is segmented
(``needs_vector``) and the payload is neither ``None`` nor a ``list``,
:func:`resolve` retreats to the collective's registered fallback.
MPI programs pass the same payload *kind* on every rank (all-None for
timing skeletons, all-list for data runs), so the retreat is
rank-uniform too; bcast — whose payload genuinely differs between root
and non-roots — only registers payload-agnostic algorithms.

The default table is deliberately conservative: it keeps the classic
(seed) algorithm everywhere the committed goldens tread, and switches
to the large-message algorithms only in regions the seed experiments
never exercise (allreduce >= 8 KiB — the largest application allreduce
is NAS IS at 4 KiB — and bcast >= 32 KiB, which no workload calls).
``repro coll-tune`` measures the real crossovers for a given stack and
emits a table to replace it.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.coll import registry
from repro.coll.registry import Algorithm


@dataclass(frozen=True)
class Rule:
    """One selection-table entry: algorithm + its (p, size) region.

    ``max_size``/``max_p`` are exclusive; ``None`` means unbounded.
    ``pow2`` restricts the rule to power-of-two (True) or
    non-power-of-two (False) process counts.
    """

    algorithm: str
    min_size: int = 0
    max_size: Optional[int] = None
    min_p: int = 1
    max_p: Optional[int] = None
    pow2: Optional[bool] = None

    def matches(self, p: int, size: int) -> bool:
        if size < self.min_size:
            return False
        if self.max_size is not None and size >= self.max_size:
            return False
        if p < self.min_p:
            return False
        if self.max_p is not None and p >= self.max_p:
            return False
        if self.pow2 is not None and (p & (p - 1) == 0) != self.pow2:
            return False
        return True

    def to_json(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"algorithm": self.algorithm}
        if self.min_size:
            out["min_size"] = self.min_size
        if self.max_size is not None:
            out["max_size"] = self.max_size
        if self.min_p != 1:
            out["min_p"] = self.min_p
        if self.max_p is not None:
            out["max_p"] = self.max_p
        if self.pow2 is not None:
            out["pow2"] = self.pow2
        return out

    @classmethod
    def from_json(cls, doc: Dict[str, Any]) -> "Rule":
        return cls(algorithm=doc["algorithm"],
                   min_size=doc.get("min_size", 0),
                   max_size=doc.get("max_size"),
                   min_p=doc.get("min_p", 1),
                   max_p=doc.get("max_p"),
                   pow2=doc.get("pow2"))


@dataclass
class SelectionTable:
    """Ordered per-collective rule lists; first match wins."""

    rules: Dict[str, Tuple[Rule, ...]] = field(default_factory=dict)
    #: provenance note carried into the JSON dump (e.g. tuner settings)
    origin: str = "default"

    def choose(self, collective: str, p: int, size: int) -> str:
        """The algorithm name for a ``(collective, p, size)`` call."""
        for rule in self.rules.get(collective, ()):
            if rule.matches(p, size):
                return rule.algorithm
        raise LookupError(
            f"selection table {self.origin!r} has no rule matching "
            f"{collective} at p={p}, size={size} — the last rule of "
            "every collective should be unbounded")

    def validate(self) -> None:
        """Check every named algorithm is registered and every
        collective's rule list ends with a catch-all."""
        for coll, rules in self.rules.items():
            if coll not in registry.COLLECTIVES:
                raise ValueError(f"unknown collective {coll!r} in table")
            if not rules:
                raise ValueError(f"empty rule list for {coll!r}")
            for rule in rules:
                registry.get(coll, rule.algorithm)
            last = rules[-1]
            if (last.min_size or last.max_size is not None
                    or last.min_p != 1 or last.max_p is not None
                    or last.pow2 is not None):
                raise ValueError(
                    f"last rule of {coll!r} is not a catch-all; calls "
                    "outside its region would have no algorithm")

    def to_json(self) -> Dict[str, Any]:
        return {"version": 1, "origin": self.origin,
                "rules": {coll: [r.to_json() for r in rules]
                          for coll, rules in self.rules.items()}}

    @classmethod
    def from_json(cls, doc: Dict[str, Any]) -> "SelectionTable":
        if doc.get("version") != 1:
            raise ValueError(f"unsupported table version {doc.get('version')!r}")
        table = cls(rules={coll: tuple(Rule.from_json(r) for r in rules)
                           for coll, rules in doc["rules"].items()},
                    origin=doc.get("origin", "loaded"))
        return table

    def dumps(self) -> str:
        return json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def loads(cls, text: str) -> "SelectionTable":
        table = cls.from_json(json.loads(text))
        table.validate()
        return table


def default_table() -> SelectionTable:
    """The built-in MPICH-style cutoff table (see module docstring)."""
    return SelectionTable(origin="default", rules={
        "barrier": (Rule("dissemination"),),
        "bcast": (
            Rule("binomial", max_size=32 * 1024),
            Rule("binomial", max_p=8, max_size=128 * 1024),
            Rule("scatter_allgather"),
        ),
        "reduce": (Rule("binomial"),),
        "allreduce": (
            Rule("recursive_doubling", max_size=8 * 1024),
            Rule("rabenseifner", pow2=True),
            Rule("ring"),
        ),
        "allgather": (Rule("ring"),),
        "alltoall": (Rule("pairwise"),),
    })


_active: Optional[SelectionTable] = None
_forced: Dict[str, str] = {}


def _ensure_registered() -> None:
    """Make sure both algorithm sets are in the registry.

    The classic small-message algorithms register at the bottom of
    :mod:`repro.mpi.collectives`, which imports this module — so the
    import here must be lazy (it is a no-op on the dispatch path, where
    that module is loaded by definition).
    """
    import repro.mpi.collectives  # noqa: F401  (registers on import)


def active_table() -> SelectionTable:
    """The table consulted by dispatch (default until one is loaded)."""
    global _active
    if _active is None:
        _ensure_registered()
        _active = default_table()
        _active.validate()
    return _active


def set_table(table: Optional[SelectionTable]) -> None:
    """Install ``table`` as the active one (None restores the default)."""
    global _active
    if table is not None:
        _ensure_registered()
        table.validate()
    _active = table


@contextmanager
def forced(collective: str, algorithm: str) -> Iterator[None]:
    """Force one collective onto one algorithm (benchmarks / tests).

    Forcing bypasses the table but not the payload-compatibility
    fallback; nesting on the same collective restores the outer force.
    """
    _ensure_registered()
    registry.get(collective, algorithm)  # fail fast on unknown names
    prev = _forced.get(collective)
    _forced[collective] = algorithm
    try:
        yield
    finally:
        if prev is None:
            del _forced[collective]
        else:
            _forced[collective] = prev


def _payload_ok(algo: Algorithm, payload: Any) -> bool:
    return not algo.needs_vector or payload is None or isinstance(payload, list)


def resolve(collective: str, p: int, size: int,
            payload: Any = None) -> Algorithm:
    """The algorithm to run for this call (force > table > fallback)."""
    name = _forced.get(collective)
    if name is None:
        name = active_table().choose(collective, p, size)
    algo = registry.get(collective, name)
    if not _payload_ok(algo, payload):
        algo = registry.fallback_of(collective)
    return algo
