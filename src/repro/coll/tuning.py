"""The ``repro coll-tune`` autotuner.

Sweeps every registered algorithm of every multi-algorithm collective
over a (p x size) grid, one campaign point per cell, through the same
content-addressed :class:`~repro.campaign.cache.ResultCache` and
process-pool machinery as ``repro campaign`` — so a rerun is free and a
tuning sweep shares cells with the ``ext_collectives`` experiment.
The per-cell winners (lowest ``per_op``; ties break by registration
order) are folded into a banded :class:`~repro.coll.selector.
SelectionTable`: measured process counts and sizes become half-open
bands, adjacent same-winner size bands merge, and a final catch-all
repeats the largest-cell winner so the table always resolves.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.campaign.cache import ResultCache, campaign_key
from repro.campaign.executors import execute_point
from repro.campaign.points import Point, stack_ref
from repro.coll import registry
from repro.coll.selector import Rule, SelectionTable
from repro.experiments.common import host_clock

MODULE = "coll_tune"

#: default tuning grid (powers of two straddle the expected crossovers)
DEFAULT_PROCS: Tuple[int, ...] = (4, 8, 16)
DEFAULT_SIZES: Tuple[int, ...] = (64, 1024, 16384, 262144, 2097152)
FAST_PROCS: Tuple[int, ...] = (4,)
FAST_SIZES: Tuple[int, ...] = (1024, 262144)


def tunable_collectives() -> List[str]:
    """Collectives worth tuning (more than one registered algorithm)."""
    return [c for c in registry.COLLECTIVES if len(registry.names_of(c)) > 1]


def tune_points(stack_preset: str = "mpich2_nmad",
                procs: Sequence[int] = DEFAULT_PROCS,
                sizes: Sequence[int] = DEFAULT_SIZES,
                reps: int = 3, warmup: int = 1,
                collectives: Optional[Sequence[str]] = None) -> List[Point]:
    """The (collective x algorithm x p x size) measurement grid.

    Barrier has no payload: it gets one size-0 cell per (algorithm, p).
    """
    colls = list(collectives) if collectives else tunable_collectives()
    ref = stack_ref(stack_preset)
    pts: List[Point] = []
    for coll in colls:
        names = registry.names_of(coll)
        if len(names) < 2:
            raise ValueError(f"collective {coll!r} has "
                             f"{len(names)} algorithm(s); nothing to tune")
        cell_sizes = [0] if coll == "barrier" else list(sizes)
        for algo in names:
            for p in procs:
                for size in cell_sizes:
                    pts.append(Point(
                        MODULE, f"{coll}/{algo}/p{p}/{size}", "coll",
                        {"stack": ref, "nprocs": p, "collective": coll,
                         "algorithm": algo, "size": size,
                         "reps": reps, "warmup": warmup}))
    return pts


def pick_winners(measurements: Dict[str, Dict[str, Any]]) -> Dict[str, str]:
    """Per-cell argmin: ``{"coll/p{p}/{size}": algorithm}``.

    Ties break toward the earlier-registered algorithm, so a tuned
    table never flaps between cost-identical implementations.
    """
    cells: Dict[Tuple[str, int, int], List[Tuple[float, int, str]]] = {}
    for key, result in measurements.items():
        coll, algo, ptag, stag = key.split("/")
        p, size = int(ptag[1:]), int(stag)
        order = registry.names_of(coll).index(algo)
        cells.setdefault((coll, p, size), []).append(
            (float(result["per_op"]), order, algo))
    return {f"{coll}/p{p}/{size}": min(entries)[2]
            for (coll, p, size), entries in sorted(cells.items())}


def _bands(values: Sequence[int]) -> List[Tuple[int, int, Optional[int]]]:
    """(measured value, inclusive lower bound, exclusive upper) bands."""
    ordered = sorted(set(values))
    out = []
    for i, v in enumerate(ordered):
        lo = 0 if i == 0 else v
        hi = ordered[i + 1] if i + 1 < len(ordered) else None
        out.append((v, lo, hi))
    return out


def build_table(winners: Dict[str, str], procs: Sequence[int],
                sizes: Sequence[int],
                origin: str = "coll-tune") -> SelectionTable:
    """Fold per-cell winners into a banded first-match selection table.

    Unmeasured collectives keep their default rules, so a partial sweep
    still yields a complete (valid) table.
    """
    from repro.coll.selector import default_table

    measured = {key.split("/")[0] for key in winners}
    rules: Dict[str, Tuple[Rule, ...]] = dict(default_table().rules)
    for coll in sorted(measured):
        coll_rules: List[Rule] = []
        cell_sizes = [0] if coll == "barrier" else list(sizes)
        last_winner = None
        for p, plo, phi in _bands(procs):
            # merge adjacent same-winner size bands inside this p band
            band_rules: List[Rule] = []
            for s, slo, shi in _bands(cell_sizes):
                win = winners[f"{coll}/p{p}/{s}"]
                if band_rules and band_rules[-1].algorithm == win:
                    band_rules[-1] = Rule(
                        win, min_size=band_rules[-1].min_size,
                        max_size=shi, min_p=max(plo, 1), max_p=phi)
                else:
                    band_rules.append(Rule(win, min_size=slo, max_size=shi,
                                           min_p=max(plo, 1), max_p=phi))
                last_winner = win
            coll_rules.extend(band_rules)
        # the largest-cell winner backstops anything off the grid
        # (skip when the last band rule is already a catch-all)
        last = coll_rules[-1]
        if (last.min_size or last.max_size is not None or last.min_p != 1
                or last.max_p is not None or last.pow2 is not None):
            coll_rules.append(Rule(last_winner))
        rules[coll] = tuple(coll_rules)
    table = SelectionTable(rules=rules, origin=origin)
    table.validate()
    return table


@dataclass
class TuneReport:
    """Everything one tuning sweep produced."""

    table: SelectionTable
    winners: Dict[str, str]
    measurements: Dict[str, Dict[str, Any]]
    points: int
    cache_hits: int
    cache_misses: int
    wall_seconds: float
    stack: str
    procs: Tuple[int, ...]
    sizes: Tuple[int, ...]
    changed: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "table": self.table.to_json(),
            "winners": self.winners,
            "measurements": self.measurements,
            "stats": {"points": self.points, "cache_hits": self.cache_hits,
                      "cache_misses": self.cache_misses,
                      "wall_seconds": self.wall_seconds},
            "stack": self.stack,
            "procs": list(self.procs),
            "sizes": list(self.sizes),
            "changed": self.changed,
        }

    def format_summary(self) -> str:
        lines = [
            f"coll-tune: {self.points} cells on {self.stack} "
            f"(p in {list(self.procs)}, sizes {list(self.sizes)})",
            f"  cache: {self.cache_hits} hit(s), "
            f"{self.cache_misses} miss(es)",
            f"  wall time: {self.wall_seconds:.1f}s",
            "  winners:",
        ]
        for key, algo in self.winners.items():
            lines.append(f"    {key:32s} -> {algo}")
        if self.changed:
            lines.append("  default-table cells overturned: "
                         + ", ".join(self.changed))
        else:
            lines.append("  tuned table agrees with the default table")
        return "\n".join(lines)


def _timed_execute(point_config: Dict[str, Any]) -> Tuple[Dict[str, Any],
                                                          float]:
    """Top-level (picklable) worker: execute one cell, time it."""
    t0 = host_clock()
    result = execute_point(point_config)
    return result, host_clock() - t0


def tune(stack_preset: str = "mpich2_nmad",
         procs: Optional[Sequence[int]] = None,
         sizes: Optional[Sequence[int]] = None,
         reps: int = 3, warmup: int = 1,
         collectives: Optional[Sequence[str]] = None,
         fast: bool = False, workers: int = 1,
         cache: Optional[ResultCache] = None,
         force: bool = False) -> TuneReport:
    """Run the sweep and build the tuned table (the CLI entry point).

    ``fast`` shrinks the grid to one p and two sizes (CI smoke);
    explicit ``procs``/``sizes`` override it.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    t_start = host_clock()
    procs = tuple(procs) if procs else (FAST_PROCS if fast else DEFAULT_PROCS)
    sizes = tuple(sizes) if sizes else (FAST_SIZES if fast else DEFAULT_SIZES)
    pts = tune_points(stack_preset, procs, sizes, reps=reps, warmup=warmup,
                      collectives=collectives)

    measurements: Dict[str, Dict[str, Any]] = {}
    pending: List[Tuple[Point, str]] = []
    hits = misses = 0
    for point in pts:
        key = campaign_key(point.config()) if cache is not None else ""
        cached = cache.get(key) if (cache is not None and not force) else None
        if cached is not None:
            measurements[point.key] = cached[0]
            hits += 1
        else:
            pending.append((point, key))
    if pending:
        if workers == 1:
            timed = [_timed_execute(point.config()) for point, _k in pending]
        else:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [pool.submit(_timed_execute, point.config())
                           for point, _k in pending]
                timed = [future.result() for future in futures]
        for (point, key), (result, elapsed) in zip(pending, timed):
            measurements[point.key] = result
            misses += 1
            if cache is not None:
                cache.put(key, point.config(), result, elapsed)

    winners = pick_winners(measurements)
    table = build_table(winners, procs, sizes,
                        origin=f"coll-tune:{stack_preset}")
    from repro.coll.selector import default_table

    defaults = default_table()
    changed = []
    for key, algo in winners.items():
        coll, ptag, stag = key.split("/")
        if defaults.choose(coll, int(ptag[1:]), int(stag)) != algo:
            changed.append(f"{key}:{algo}")
    return TuneReport(
        table=table, winners=winners, measurements=measurements,
        points=len(pts), cache_hits=hits, cache_misses=misses,
        wall_seconds=host_clock() - t_start, stack=stack_preset,
        procs=procs, sizes=sizes, changed=changed)
