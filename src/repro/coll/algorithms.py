"""Large-message collective algorithms.

The classic MPICH-style *small-message* algorithms live in
:mod:`repro.mpi.collectives` (binomial bcast/reduce, recursive-doubling
allreduce, dissemination barrier, ring allgather, pairwise alltoall).
This module adds the *large-message* and *latency-optimized*
counterparts whose winning regions flip with message size and process
count — the crossover behaviour the selection table and the
``repro coll-tune`` autotuner pin down:

* ``allreduce/ring`` — ring reduce-scatter + ring allgather,
  ``2(p-1)`` steps of ``size/p`` bytes (bandwidth-optimal, any p);
* ``allreduce/rabenseifner`` — recursive-halving reduce-scatter +
  recursive-doubling allgather, ``2 log2 p`` steps moving ``2·size``
  bytes total, with the non-power-of-two pre-fold of Rabenseifner's
  original formulation;
* ``bcast/scatter_allgather`` — binomial scatter of ``size/p`` blocks
  followed by a ring allgather (van de Geijn), ``~2·size`` bytes moved
  instead of ``log2 p · size``;
* ``allgather/bruck`` — ``ceil(log2 p)`` rounds of doubling item sets
  (latency-optimal; pays pack/rotate memory copies);
* ``alltoall/bruck`` — ``ceil(log2 p)`` rounds, each item forwarded
  once per set bit of its rank distance (``log2 p / 2`` extra wire
  traffic — the classic small-message/large-message tradeoff);
* ``barrier/tree`` — binomial gather + binomial release (2 log2 p
  sequential hops vs dissemination's log2 p rounds of p messages).

Segmented algorithms (the first three) partition the payload into
MPI-style contiguous blocks.  They accept ``data=None`` (timing-only —
block payloads are ``None`` and the reduction op is skipped) or a
``list`` treated as an element vector; the reduction op is then applied
*blockwise* (to sublists), so it must be elementwise-compatible and
commutative — exactly the contract MPI imposes on built-in ops.  The
dispatcher in :mod:`repro.mpi.collectives` falls back to the classic
algorithm for any other payload kind.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.coll import registry


def _default_op(a: Any, b: Any) -> Any:
    if a is None or b is None:
        return a if b is None else b
    return a + b


def _combine(op, a: Any, b: Any) -> Any:
    """Apply ``op`` treating None as the identity (timing-only runs)."""
    if a is None or b is None:
        return a if b is None else b
    return op(a, b)


def _bounds(n: int, p: int) -> List[Tuple[int, int]]:
    """MPI-style contiguous partition of ``n`` elements into ``p`` blocks.

    The first ``n % p`` blocks get one extra element; blocks may be
    empty when ``n < p``.
    """
    base, extra = divmod(max(n, 0), p)
    out = []
    lo = 0
    for i in range(p):
        hi = lo + base + (1 if i < extra else 0)
        out.append((lo, hi))
        lo = hi
    return out


def _check_vector(value: Any, what: str) -> bool:
    """True when ``value`` is a vector payload; raises on other kinds."""
    if value is None:
        return False
    if isinstance(value, list):
        return True
    raise TypeError(
        f"{what} is a segmented algorithm: the payload must be None "
        f"(timing-only) or a list (element vector), got "
        f"{type(value).__name__} — the dispatcher normally falls back "
        "to the classic algorithm for such payloads")


class _Opaque:
    """Marker wrapping a non-splittable bcast payload into block 0."""

    __slots__ = ("data",)

    def __init__(self, data: Any) -> None:
        self.data = data


# ---------------------------------------------------------------------------
# allreduce
# ---------------------------------------------------------------------------

def allreduce_ring(comm, size: int, value: Any = None, op=None):
    """Ring reduce-scatter + ring allgather (bandwidth-optimal, any p)."""
    tag = comm._next_coll_tag("allreduce")
    op = op or _default_op
    p, r = comm.size, comm.rank
    if p == 1:
        return value
    vec = _check_vector(value, "allreduce/ring")
    bbytes = [hi - lo for lo, hi in _bounds(size, p)]
    if vec:
        blocks: List[Any] = [value[lo:hi] for lo, hi in _bounds(len(value), p)]
    else:
        blocks = [None] * p
    right, left = (r + 1) % p, (r - 1) % p
    # reduce-scatter: after p-1 steps rank r holds final block (r+1) % p
    for s in range(p - 1):
        sidx = (r - s) % p
        ridx = (r - s - 1) % p
        msg = yield from comm.sendrecv(right, left, tag=(tag, "rs", s),
                                       size=bbytes[sidx], data=blocks[sidx])
        blocks[ridx] = _combine(op, msg.data, blocks[ridx])
    # ring allgather of the reduced blocks
    for s in range(p - 1):
        sidx = (r + 1 - s) % p
        ridx = (r - s) % p
        msg = yield from comm.sendrecv(right, left, tag=(tag, "ag", s),
                                       size=bbytes[sidx], data=blocks[sidx])
        blocks[ridx] = msg.data
    if not vec:
        return None
    out: List[Any] = []
    for block in blocks:
        out.extend(block)
    return out


def allreduce_rabenseifner(comm, size: int, value: Any = None, op=None):
    """Recursive-halving reduce-scatter + recursive-doubling allgather.

    Non-power-of-two process counts use Rabenseifner's pre-fold: the
    first ``2·rem`` ranks pair up (even ranks fold their contribution
    into the odd neighbour and sit out the core), the power-of-two core
    runs, and folded ranks receive the result back at the end.
    """
    tag = comm._next_coll_tag("allreduce")
    op = op or _default_op
    p, r = comm.size, comm.rank
    if p == 1:
        return value
    vec = _check_vector(value, "allreduce/rabenseifner")
    pof2 = 1
    while pof2 * 2 <= p:
        pof2 *= 2
    rem = p - pof2

    acc = value
    if r < 2 * rem:
        if r % 2 == 0:
            yield from comm.send(r + 1, tag=(tag, "fold"), size=size,
                                 data=acc)
            newrank = -1
        else:
            msg = yield from comm.recv(src=r - 1, tag=(tag, "fold"))
            acc = _combine(op, msg.data, acc)
            newrank = r // 2
    else:
        newrank = r - rem

    def real(nr: int) -> int:
        return nr * 2 + 1 if nr < rem else nr + rem

    result: Any = None
    if newrank >= 0:
        bbounds = _bounds(size, pof2)

        def range_bytes(blo: int, bhi: int) -> int:
            return bbounds[bhi - 1][1] - bbounds[blo][0] if bhi > blo else 0

        if vec:
            blocks: List[Any] = [acc[elo:ehi]
                                 for elo, ehi in _bounds(len(acc), pof2)]
        else:
            blocks = [None] * pof2

        # recursive halving: interval [lo, hi) narrows to block `newrank`
        lo, hi = 0, pof2
        mask = pof2 // 2
        while mask >= 1:
            partner = real(newrank ^ mask)
            mid = (lo + hi) // 2
            if newrank & mask == 0:
                keep_lo, keep_hi, send_lo, send_hi = lo, mid, mid, hi
            else:
                keep_lo, keep_hi, send_lo, send_hi = mid, hi, lo, mid
            msg = yield from comm.sendrecv(
                partner, partner, tag=(tag, "rs", mask),
                size=range_bytes(send_lo, send_hi),
                data=blocks[send_lo:send_hi])
            for i, incoming in zip(range(keep_lo, keep_hi), msg.data):
                blocks[i] = _combine(op, incoming, blocks[i])
            lo, hi = keep_lo, keep_hi
            mask //= 2

        # recursive doubling allgather: aligned intervals merge back
        mask = 1
        while mask < pof2:
            cnt = hi - lo
            if newrank & mask == 0:
                plo, phi = hi, hi + cnt
            else:
                plo, phi = lo - cnt, lo
            partner = real(newrank ^ mask)
            msg = yield from comm.sendrecv(
                partner, partner, tag=(tag, "ag", mask),
                size=range_bytes(lo, hi), data=blocks[lo:hi])
            blocks[plo:phi] = msg.data
            lo, hi = min(lo, plo), max(hi, phi)
            mask *= 2

        if vec:
            result = []
            for block in blocks:
                result.extend(block)

    # unfold: active odd ranks ship the full result back to their pair
    if r < 2 * rem:
        if r % 2 == 0:
            msg = yield from comm.recv(src=r + 1, tag=(tag, "unfold"))
            result = msg.data
        else:
            yield from comm.send(r - 1, tag=(tag, "unfold"), size=size,
                                 data=result)
    return result if vec else None


# ---------------------------------------------------------------------------
# bcast
# ---------------------------------------------------------------------------

def bcast_scatter_allgather(comm, size: int, data: Any = None, root: int = 0):
    """Binomial scatter of blocks + ring allgather (van de Geijn).

    A list payload is split into ``p`` element blocks; any other
    payload rides opaquely in block 0 (the wire sizes still follow the
    ``size`` partition, so timing is unchanged).
    """
    tag = comm._next_coll_tag("bcast")
    p = comm.size
    if p == 1:
        return data
    vr = (comm.rank - root) % p

    def real(v: int) -> int:
        return (v + root) % p

    bbounds = _bounds(size, p)

    def range_bytes(blo: int, bhi: int) -> int:
        return bbounds[bhi - 1][1] - bbounds[blo][0] if bhi > blo else 0

    blocks: List[Any] = [None] * p
    if comm.rank == root and data is not None:
        if isinstance(data, list):
            blocks = [data[elo:ehi]
                      for elo, ehi in _bounds(len(data), p)]
        else:
            blocks[0] = _Opaque(data)

    # binomial scatter over virtual ranks: parent sends each child the
    # block range its subtree covers
    mask = 1
    if vr == 0:
        while mask < p:
            mask *= 2
    else:
        while mask < p:
            if vr & mask:
                src = real(vr - mask)
                msg = yield from comm.recv(src=src, tag=(tag, "sc"))
                blocks[vr:min(vr + mask, p)] = msg.data
                break
            mask *= 2
    mask //= 2
    while mask:
        if vr + mask < p:
            dst = real(vr + mask)
            end = min(vr + 2 * mask, p)
            yield from comm.send(dst, tag=(tag, "sc"),
                                 size=range_bytes(vr + mask, end),
                                 data=blocks[vr + mask:end])
        mask //= 2

    # ring allgather of the scattered blocks (virtual-rank ring)
    right, left = real(vr + 1), real(vr - 1)
    for s in range(p - 1):
        sidx = (vr - s) % p
        ridx = (vr - s - 1) % p
        msg = yield from comm.sendrecv(right, left, tag=(tag, "ag", s),
                                       size=range_bytes(sidx, sidx + 1),
                                       data=blocks[sidx])
        blocks[ridx] = msg.data

    if comm.rank == root:
        return data
    for block in blocks:
        if isinstance(block, _Opaque):
            return block.data
    if all(block is None for block in blocks):
        return None
    out: List[Any] = []
    for block in blocks:
        out.extend(block)
    return out


# ---------------------------------------------------------------------------
# allgather / alltoall (Bruck)
# ---------------------------------------------------------------------------

def allgather_bruck(comm, size: int, value: Any = None):
    """Bruck allgather: ``ceil(log2 p)`` rounds of doubling item sets.

    Latency-optimal for small contributions; charges pack/rotate
    memory copies (the cost that hands large messages back to ring).
    """
    tag = comm._next_coll_tag("allgather")
    p, r = comm.size, comm.rank
    held: List[Any] = [value]
    if p == 1:
        return held
    mem = comm.stack.node.mem
    k, step = 1, 0
    while k < p:
        cnt = min(k, p - k)
        dst = (r - k) % p
        src = (r + k) % p
        pack = mem.copy_time(cnt * size)
        if pack:
            yield comm.sim.timeout(pack)
        msg = yield from comm.sendrecv(dst, src, tag=(tag, step),
                                       size=cnt * size, data=held[:cnt])
        held.extend(msg.data)
        k *= 2
        step += 1
    # final inverse rotation: held[i] is the value of rank (r + i) % p
    rot = mem.copy_time(p * size)
    if rot:
        yield comm.sim.timeout(rot)
    out: List[Any] = [None] * p
    for i in range(p):
        out[(r + i) % p] = held[i]
    return out


def alltoall_bruck(comm, size: int, values: Optional[list] = None):
    """Bruck alltoall: log rounds; each item forwarded once per set bit
    of its rank distance (≈ ``log2 p / 2`` extra wire traffic)."""
    tag = comm._next_coll_tag("alltoall")
    p, r = comm.size, comm.rank
    if p == 1:
        return [values[r] if values else None]
    mem = comm.stack.node.mem
    # phase 1 — rotate: tmp[i] holds my item destined to rank (r+i) % p
    tmp: List[Any] = [values[(r + i) % p] if values else None
                      for i in range(p)]
    rot = mem.copy_time(p * size)
    if rot:
        yield comm.sim.timeout(rot)
    # phase 2 — for each bit, forward every item whose remaining
    # distance has that bit set
    k, step = 1, 0
    while k < p:
        idxs = [i for i in range(p) if i & k]
        dst = (r + k) % p
        src = (r - k) % p
        pack = mem.copy_time(len(idxs) * size)
        if pack:
            yield comm.sim.timeout(pack)
        msg = yield from comm.sendrecv(dst, src, tag=(tag, step),
                                       size=len(idxs) * size,
                                       data=[tmp[i] for i in idxs])
        for i, item in zip(idxs, msg.data):
            tmp[i] = item
        k *= 2
        step += 1
    # phase 3 — inverse rotate: tmp[i] came from rank (r - i) % p
    rot = mem.copy_time(p * size)
    if rot:
        yield comm.sim.timeout(rot)
    out: List[Any] = [None] * p
    for i in range(p):
        out[(r - i) % p] = tmp[i]
    return out


# ---------------------------------------------------------------------------
# barrier
# ---------------------------------------------------------------------------

def barrier_tree(comm):
    """Binomial gather-to-0 + binomial release (2 log2 p critical path)."""
    tag = comm._next_coll_tag("barrier")
    p, r = comm.size, comm.rank
    if p == 1:
        return
    mask = 1
    while mask < p:
        if r & mask:
            yield from comm.send(r - mask, tag=(tag, "up", mask), size=1)
            yield from comm.recv(src=r - mask, tag=(tag, "down"))
            break
        partner = r + mask
        if partner < p:
            yield from comm.recv(src=partner, tag=(tag, "up", mask))
        mask *= 2
    mask //= 2
    while mask:
        if r + mask < p:
            yield from comm.send(r + mask, tag=(tag, "down"), size=1)
        mask //= 2


# ---------------------------------------------------------------------------
# registration
# ---------------------------------------------------------------------------

registry.register(
    "allreduce", "ring", allreduce_ring, needs_vector=True,
    summary="2(p-1) steps of size/p bytes; bandwidth-optimal, any p")
registry.register(
    "allreduce", "rabenseifner", allreduce_rabenseifner, needs_vector=True,
    summary="2 log2 p halving/doubling steps, 2*size bytes total; "
            "non-pow2 via pre-fold")
registry.register(
    "bcast", "scatter_allgather", bcast_scatter_allgather,
    summary="binomial scatter + ring allgather (van de Geijn), "
            "~2*size bytes vs log2 p * size")
registry.register(
    "allgather", "bruck", allgather_bruck,
    summary="ceil(log2 p) doubling rounds; latency-optimal, "
            "pays pack/rotate copies")
registry.register(
    "alltoall", "bruck", alltoall_bruck,
    summary="ceil(log2 p) rounds; ~log2(p)/2 x extra wire bytes "
            "buys p -> log p messages")
registry.register(
    "barrier", "tree", barrier_tree,
    summary="binomial gather + release; p-1 messages total vs "
            "dissemination's p log2 p")
