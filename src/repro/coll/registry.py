"""The collective-algorithm registry.

Every collective with more than one implementation is dispatched by
name through this registry: :mod:`repro.mpi.collectives` registers the
classic small-message algorithms and :mod:`repro.coll.algorithms`
registers the large-message ones.  The registry is pure bookkeeping —
it imports nothing from the MPI layer, so both sides can depend on it
without a cycle.

An algorithm entry records whether the implementation is *segmented*
(``needs_vector``): segmented algorithms split the payload into blocks
and therefore require the data argument to be ``None`` (timing-only
runs) or a ``list`` (treated as an MPI-style element vector, with the
reduction op applied blockwise).  The dispatcher falls back to the
collective's ``fallback`` algorithm when the payload is incompatible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

#: the collectives that go through selector dispatch, in display order
COLLECTIVES: Tuple[str, ...] = (
    "barrier", "bcast", "reduce", "allreduce", "allgather", "alltoall")


@dataclass(frozen=True)
class Algorithm:
    """One registered implementation of a collective."""

    collective: str
    name: str
    fn: Callable
    #: True when the payload must be None or a list (segmented algorithm)
    needs_vector: bool = False
    #: one-line cost/shape note (docs and ``repro coll-tune`` output)
    summary: str = ""


_REGISTRY: Dict[str, Dict[str, Algorithm]] = {c: {} for c in COLLECTIVES}
#: per-collective algorithm used when the selected one rejects the payload
_FALLBACK: Dict[str, str] = {}


def register(collective: str, name: str, fn: Callable, *,
             needs_vector: bool = False, fallback: bool = False,
             summary: str = "") -> Algorithm:
    """Register ``fn`` as algorithm ``name`` of ``collective``.

    ``fallback=True`` marks it as the payload-compatible default the
    dispatcher retreats to (must not itself need a vector payload).
    """
    if collective not in _REGISTRY:
        raise ValueError(f"unknown collective {collective!r}; "
                         f"known: {', '.join(COLLECTIVES)}")
    if name in _REGISTRY[collective]:
        raise ValueError(f"algorithm {collective}/{name} already registered")
    algo = Algorithm(collective, name, fn, needs_vector=needs_vector,
                     summary=summary)
    _REGISTRY[collective][name] = algo
    if fallback:
        if needs_vector:
            raise ValueError(f"fallback algorithm {collective}/{name} "
                             "cannot itself need a vector payload")
        _FALLBACK[collective] = name
    return algo


def get(collective: str, name: str) -> Algorithm:
    """Look up one algorithm; raises with the known list on a miss."""
    try:
        return _REGISTRY[collective][name]
    except KeyError:
        known = ", ".join(names_of(collective)) or "<none>"
        raise KeyError(f"no algorithm {name!r} for {collective!r} "
                       f"(registered: {known})") from None


def fallback_of(collective: str) -> Algorithm:
    """The payload-compatible fallback algorithm of a collective."""
    name = _FALLBACK.get(collective)
    if name is None:
        raise KeyError(f"collective {collective!r} has no fallback "
                       "algorithm registered")
    return _REGISTRY[collective][name]


def names_of(collective: str) -> List[str]:
    """Registered algorithm names of a collective, registration order."""
    return list(_REGISTRY.get(collective, {}))


def all_algorithms() -> List[Algorithm]:
    """Every registered algorithm, grouped by collective."""
    return [algo for coll in COLLECTIVES
            for algo in _REGISTRY[coll].values()]
