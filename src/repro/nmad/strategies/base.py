"""Strategy base: the FIFO "default" strategy and the SendItem queue."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Optional

from repro.nmad.drivers.base import NmadDriver
from repro.nmad.packet import (
    CtsEntry,
    DataEntry,
    EagerEntry,
    PacketWrapper,
    RtsEntry,
)


def entry_summary(entry):
    """``(kind, src_rank, dst_rank, tag, seq, rdv_id)`` of a pw entry.

    The tuple is what ``strategy.pw_built`` trace records carry so the
    observability layer can correlate packet wrappers back to messages.
    """
    if isinstance(entry, EagerEntry):
        return ("eager", entry.src_rank, entry.dst_rank, entry.tag,
                entry.seq, 0)
    if isinstance(entry, RtsEntry):
        return ("rts", entry.src_rank, entry.dst_rank, entry.tag,
                entry.seq, entry.rdv_id)
    if isinstance(entry, CtsEntry):
        return ("cts", entry.src_rank, entry.dst_rank, None, 0, entry.rdv_id)
    return ("data", entry.src_rank, entry.dst_rank, None, 0, entry.rdv_id)


@dataclass
class SendItem:
    """One pending unit of outgoing work awaiting NIC submission."""

    kind: str          # "eager" | "rts" | "cts" | "data"
    dst_rank: int
    dst_node: int
    size: int          # payload bytes ("data"/"eager"); 0 for control
    src_rank: int
    tag: Any = None
    seq: int = 0
    rdv_id: int = 0
    data: Any = None
    req: Any = None    # originating NmadRequest for eager sends


class DefaultStrategy:
    """FIFO submission: one send item per packet wrapper, no merging.

    Subclasses override :meth:`_build_pw` (aggregation) and
    :meth:`_pump_driver` / :meth:`_eligible` (multirail placement).
    """

    name = "default"

    def __init__(self, core):
        self.core = core
        self.queue: Deque[SendItem] = deque()
        self.pws_built = 0
        # race-detector name of the shared optimization window
        # (tests build strategies with core=None to inspect them)
        self._rv_queue = f"nmad.strategy@r{core.rank if core else '?'}"

    # -- feeding ---------------------------------------------------------
    def push(self, item: SendItem, priority: bool = False,
             pump: bool = True) -> None:
        """Queue an item; control acks use ``priority`` to jump the line.

        ``pump=False`` defers NIC submission to the next progress point
        — how a library without a progress thread behaves when the
        application is about to leave for a compute phase (Fig. 7).
        """
        self.core.sim.race_write(self._rv_queue)
        if priority:
            self.queue.appendleft(item)
        else:
            self.queue.append(item)
        if self.core.sim.tracing:
            self.core.sim.record(
                "strategy.push", strategy=self.name, kind=item.kind,
                src=item.src_rank, dst=item.dst_rank, size=item.size,
                rdv=item.rdv_id, priority=priority, pending=len(self.queue),
            )
        if pump:
            self.pump()

    def pending(self) -> int:
        return len(self.queue)

    # -- draining ----------------------------------------------------------
    def pump(self) -> None:
        """Feed idle drivers until windows are full or the queue drains."""
        self.core.sim.race_write(self._rv_queue)
        progressed = True
        while progressed and self.queue:
            progressed = False
            for driver in self.core.preferred_drivers():
                if not self.queue:
                    break
                if not driver.window_free():
                    continue
                if not self._eligible(self.queue[0], driver):
                    continue
                if self._pump_driver(driver):
                    progressed = True

    def _eligible(self, item: SendItem, driver: NmadDriver) -> bool:
        """May the queue head go out on this driver?  Default: anywhere."""
        return True

    def _pump_driver(self, driver: NmadDriver) -> bool:
        """Build and post one packet wrapper on ``driver``."""
        pw = self._build_pw(driver)
        if pw is None:
            return False
        self.pws_built += 1
        if self.core.sim.tracing:
            self.core.sim.record(
                "strategy.pw_built", strategy=self.name, rail=driver.name,
                node=self.core.node_id, pw=pw.pw_id,
                entries=len(pw.entries), wire_size=pw.wire_size,
                msgs=[entry_summary(e) for e in pw.entries],
            )
        self.core.post_pw(driver, pw)
        return True

    def _build_pw(self, driver: NmadDriver) -> Optional[PacketWrapper]:
        if not self.queue:
            return None
        self.core.sim.race_write(self._rv_queue)
        item = self.queue.popleft()
        pw = self._new_pw(item)
        pw.append(self._to_entry(item))
        return pw

    # -- helpers -----------------------------------------------------------
    def _new_pw(self, item: SendItem) -> PacketWrapper:
        return PacketWrapper(dst_node=item.dst_node, src_node=self.core.node_id)

    @staticmethod
    def _to_entry(item: SendItem):
        if item.kind == "eager":
            return EagerEntry(item.src_rank, item.dst_rank, item.tag,
                              item.seq, item.size, item.data, req=item.req)
        if item.kind == "rts":
            return RtsEntry(item.src_rank, item.dst_rank, item.tag,
                            item.seq, item.size, item.rdv_id)
        if item.kind == "cts":
            return CtsEntry(item.src_rank, item.dst_rank, item.rdv_id)
        if item.kind == "data":
            return DataEntry(item.src_rank, item.dst_rank, item.rdv_id,
                             item.size, item.data)
        raise ValueError(f"unknown send item kind {item.kind!r}")
