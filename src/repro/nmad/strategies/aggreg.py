"""Aggregation strategy: coalesce pending small sends into one packet.

While the NIC is busy, eager sends to the same destination accumulate;
when window space frees, they travel in a single packet wrapper,
amortizing the per-message NIC gap and wire latency over several MPI
messages.  Control entries (RTS/CTS) ride along for free.
"""

from __future__ import annotations

from typing import Optional

from repro.nmad.drivers.base import NmadDriver
from repro.nmad.packet import PacketWrapper, entry_wire_size
from repro.nmad.strategies.base import DefaultStrategy


class AggregStrategy(DefaultStrategy):
    """FIFO with same-destination merging up to ``core.costs.max_pw_size``."""

    name = "aggreg"

    #: item kinds that may share a packet wrapper
    _MERGEABLE = ("eager", "rts", "cts")

    def _build_pw(self, driver: NmadDriver) -> Optional[PacketWrapper]:
        if not self.queue:
            return None
        head = self.queue.popleft()
        pw = self._new_pw(head)
        pw.append(self._to_entry(head))
        if head.kind == "data":
            return pw  # rendezvous payloads never aggregate
        max_pw = self.core.costs.max_pw_size
        while self.queue:
            nxt = self.queue[0]
            if nxt.kind not in self._MERGEABLE:
                break
            if nxt.dst_rank != head.dst_rank:
                break
            entry = self._to_entry(nxt)
            if pw.wire_size + entry_wire_size(entry) > max_pw:
                break
            self.queue.popleft()
            pw.append(entry)
        return pw
