"""Network sampling: adaptive split ratios for heterogeneous multirail.

The real NewMadeleine runs a sampling program at startup and derives a
per-network performance profile used to compute an adaptive split ratio
(paper Section 2.2 and [4]).  Here sampling probes the *model*: the
effective bandwidth of a rail for a reference transfer size, which
accounts for per-message gaps and DMA setup, not just the nominal line
rate — so asymmetric rails get asymmetric shares.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

from repro.nmad.drivers.base import NmadDriver

__all__ = ["NetworkSampler"]


class NetworkSampler:
    """Computes split shares and rail preference from sampled rates."""

    def __init__(self, ref_size: int = 1 << 20):
        if ref_size <= 0:
            raise ValueError("ref_size must be positive")
        self.ref_size = ref_size

    def sampled_bandwidth(self, driver: NmadDriver) -> float:
        """Effective B/s moving ``ref_size`` bytes through the rail."""
        t = driver.nic.params.injection_time(self.ref_size)
        return self.ref_size / t

    def fastest(self, drivers: Sequence[NmadDriver]) -> NmadDriver:
        """The rail with the lowest small-message latency."""
        if not drivers:
            raise ValueError("no drivers to choose from")
        return min(drivers, key=lambda d: d.small_latency())

    def ordered(self, drivers: Sequence[NmadDriver]) -> List[NmadDriver]:
        """Drivers sorted by ascending small-message latency."""
        return sorted(drivers, key=lambda d: d.small_latency())

    def contended_bandwidth(self, driver: NmadDriver,
                            extra_delay: float) -> float:
        """Effective B/s with ``extra_delay`` seconds of observed
        in-network queueing added to the reference transfer."""
        t = driver.nic.params.injection_time(self.ref_size) + max(0.0, extra_delay)
        return self.ref_size / t

    def split(self, drivers: Sequence[NmadDriver], size: int) -> List[Tuple[NmadDriver, int]]:
        """Stripe ``size`` bytes across ``drivers`` by sampled bandwidth.

        Returns ``(driver, chunk_bytes)`` pairs with positive chunks
        summing exactly to ``size``.
        """
        rates = [self.sampled_bandwidth(d) for d in drivers]
        return self._apportion(drivers, size, rates)

    def split_contended(self, drivers: Sequence[NmadDriver], size: int,
                        delay_of: Callable[[NmadDriver], float]) -> List[Tuple[NmadDriver, int]]:
        """Like :meth:`split`, but each rail's sampled rate is degraded
        by ``delay_of(driver)`` — the recent in-network queueing delay
        its frames experienced — so congested rails earn smaller shares.
        """
        rates = [self.contended_bandwidth(d, delay_of(d)) for d in drivers]
        return self._apportion(drivers, size, rates)

    @staticmethod
    def _apportion(drivers: Sequence[NmadDriver], size: int,
                   rates: Sequence[float]) -> List[Tuple[NmadDriver, int]]:
        if not drivers:
            raise ValueError("cannot split across zero drivers")
        if size <= 0:
            raise ValueError("split size must be positive")
        total_rate = sum(rates)
        chunks = [int(size * r / total_rate) for r in rates]
        # hand the rounding remainder to the fastest-sampling rail
        remainder = size - sum(chunks)
        chunks[max(range(len(rates)), key=rates.__getitem__)] += remainder
        return [(d, c) for d, c in zip(drivers, chunks) if c > 0]
