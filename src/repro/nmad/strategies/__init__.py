"""Packet-scheduling strategies (the heart of the paper's contribution).

When all rails are busy, outgoing send items queue up here; when a rail
frees window space, the strategy decides what to put on the wire:

* :class:`DefaultStrategy` — FIFO, one item per packet wrapper.
* :class:`AggregStrategy` — coalesces consecutive small sends to the
  same destination into a single packet wrapper.
* :class:`SplitBalanceStrategy` — multirail: small messages ride the
  fastest rail; large rendezvous payloads are striped across all rails
  proportionally to their sampled bandwidth (paper [4]).
* :class:`SplitContentionStrategy` — as above, but the split responds
  to live link congestion observed on topology-routed rails.
"""

from repro.nmad.strategies.base import DefaultStrategy, SendItem
from repro.nmad.strategies.aggreg import AggregStrategy
from repro.nmad.strategies.split_balance import SplitBalanceStrategy
from repro.nmad.strategies.split_contention import SplitContentionStrategy
from repro.nmad.strategies.sampling import NetworkSampler

_REGISTRY = {
    "default": DefaultStrategy,
    "aggreg": AggregStrategy,
    "split_balance": SplitBalanceStrategy,
    "split_contention": SplitContentionStrategy,
}


def make_strategy(name: str, core) -> DefaultStrategy:
    """Instantiate a strategy by its NewMadeleine name."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown strategy {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return cls(core)


__all__ = [
    "SendItem",
    "DefaultStrategy",
    "AggregStrategy",
    "SplitBalanceStrategy",
    "SplitContentionStrategy",
    "NetworkSampler",
    "make_strategy",
]
