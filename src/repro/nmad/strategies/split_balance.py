"""Multirail strategy: fastest rail for small, bandwidth-split for large.

Implements the behaviour the paper verifies in Fig. 5: small messages
(and all control traffic) take the lowest-latency rail; rendezvous
payloads at or above ``core.costs.split_threshold`` are striped across
every rail with free window space, each rail receiving a share
proportional to its sampled bandwidth, so the aggregate bandwidth
approaches the sum of the rails.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.nmad.drivers.base import NmadDriver
from repro.nmad.packet import DataEntry, PacketWrapper
from repro.nmad.strategies.aggreg import AggregStrategy
from repro.nmad.strategies.base import SendItem, entry_summary


class SplitBalanceStrategy(AggregStrategy):
    """Aggregation on the fastest rail + adaptive striping of payloads."""

    name = "split_balance"

    def _eligible(self, item: SendItem, driver: NmadDriver) -> bool:
        if item.kind == "data" and item.size >= self.core.costs.split_threshold:
            return True  # any driver may trigger a split
        # everything else sticks to the lowest-latency rail
        return driver is self.core.fastest_driver()

    def _pump_driver(self, driver: NmadDriver) -> bool:
        head = self.queue[0]
        if head.kind == "data" and head.size >= self.core.costs.split_threshold:
            return self._pump_split(head)
        return super()._pump_driver(driver)

    def _shares(self, free: List[NmadDriver],
                item: SendItem) -> List[Tuple[NmadDriver, int]]:
        """How ``item.size`` bytes divide over the free rails.

        Subclasses override this to fold live feedback (observed link
        contention, rail health) into the static sampled profile.
        """
        return self.core.sampler.split(free, item.size)

    def _pump_split(self, item: SendItem) -> bool:
        free = [d for d in self.core.preferred_drivers() if d.window_free()]
        if not free:
            return False
        self.queue.popleft()
        shares = self._shares(free, item)
        if self.core.sim.tracing:
            self.core.sim.record(
                "strategy.split", strategy=self.name, rdv=item.rdv_id,
                src=item.src_rank, dst=item.dst_rank, size=item.size,
                shares=[(drv.name, chunk) for drv, chunk in shares],
            )
        # the message payload object rides on the largest chunk
        carrier = max(range(len(shares)), key=lambda i: shares[i][1])
        for i, (drv, chunk) in enumerate(shares):
            pw = PacketWrapper(dst_node=item.dst_node, src_node=self.core.node_id)
            pw.append(DataEntry(
                src_rank=item.src_rank,
                dst_rank=item.dst_rank,
                rdv_id=item.rdv_id,
                size=chunk,
                data=item.data if i == carrier else None,
            ))
            self.pws_built += 1
            if self.core.sim.tracing:
                self.core.sim.record(
                    "strategy.pw_built", strategy=self.name, rail=drv.name,
                    node=self.core.node_id, pw=pw.pw_id, entries=1,
                    wire_size=pw.wire_size,
                    msgs=[entry_summary(pw.entries[0])],
                )
            self.core.post_pw(drv, pw)
        return True
