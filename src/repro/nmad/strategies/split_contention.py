"""Contention-aware multirail striping over topology-routed rails.

:class:`~repro.nmad.strategies.split_balance.SplitBalanceStrategy`
apportions a large payload by the rails' *sampled* bandwidths — a
static profile measured on an idle network.  On a routed fabric
(:class:`~repro.hardware.netgraph.RoutedFabric`) frames additionally
queue on shared links, so the static profile overfeeds a congested
rail.  This strategy folds the fabric's live congestion estimate —
the EWMA of per-frame link-queueing delay observed for traffic from
this node — back into the split: a rail whose routes are contended
samples a lower effective bandwidth and earns a smaller share.

On flat rails ``observed_source_delay`` is identically zero and this
strategy degrades to exactly ``split_balance``.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.nmad.drivers.base import NmadDriver
from repro.nmad.strategies.base import SendItem
from repro.nmad.strategies.split_balance import SplitBalanceStrategy


class SplitContentionStrategy(SplitBalanceStrategy):
    """Bandwidth split degraded by observed per-rail link contention."""

    name = "split_contention"

    def _rail_delay(self, driver: NmadDriver) -> float:
        nic = driver.nic
        return nic.fabric.observed_source_delay(nic.node_id)

    def _shares(self, free: List[NmadDriver],
                item: SendItem) -> List[Tuple[NmadDriver, int]]:
        return self.core.sampler.split_contended(
            free, item.size, self._rail_delay)
