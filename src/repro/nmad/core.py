"""The NewMadeleine core: request submission, matching, protocols.

One :class:`NmadCore` exists per MPI process.  It owns:

* the *strategy* holding pending send items (optimization window);
* one *driver* per rail (submission windows over shared node NICs);
* the receive side: posted-request list, unexpected list, and the
  internal eager / rendezvous protocol state.

CPU-cost convention: methods that run on some thread's CPU are
generators yielding simulator timeouts; the caller decides *which*
thread's time that is (application thread for submissions, progress
context for frame handling).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.hardware.memory import MemoryRegistrar
from repro.hardware.params import MemParams
from repro.nmad.drivers.base import NmadDriver
from repro.nmad.packet import (
    CtsEntry,
    DataEntry,
    EagerEntry,
    PacketWrapper,
    RtsEntry,
    next_rdv_id,
)
from repro.nmad.reliability import RailHealthMonitor, ReliabilityParams
from repro.nmad.request import NmadRequest
from repro.nmad.strategies.base import SendItem
from repro.nmad.strategies.sampling import NetworkSampler
from repro.simulator import Simulator


class _AnySentinel:
    def __repr__(self):
        return "<ANY>"


#: wildcard for probe()'s source argument
ANY = _AnySentinel()


class ProtocolError(RuntimeError):
    """Raised when message-ordering or protocol invariants are violated."""


@dataclass(frozen=True)
class NmadCosts:
    """Software-path cost constants of the NewMadeleine library.

    Calibration: raw NewMadeleine latency is 1.8 us over the 1.15 us IB
    hardware path (paper Section 4.1.1), i.e. ~0.65 us of library
    software split across the send and receive paths.
    """

    #: nm_sr_isend software path (request alloc, strategy enqueue), s
    send_post: float = 0.35e-6
    #: nm_sr_irecv software path, s
    recv_post: float = 0.15e-6
    #: receive-side matching + completion handling per message, s
    match_cost: float = 0.42e-6
    #: processing an RTS or CTS control entry, s
    rdv_handshake_cost: float = 0.20e-6
    #: receive-side handling of one rendezvous chunk (non-RDMA rails), s
    data_chunk_cost: float = 0.05e-6
    #: eager/rendezvous protocol switch point, bytes
    eager_threshold: int = 16 * 1024
    #: aggregation limit: max packet-wrapper wire size, bytes
    max_pw_size: int = 32 * 1024
    #: minimum rendezvous payload that gets striped across rails, bytes
    split_threshold: int = 128 * 1024
    #: upper-layer (CH3) request-completion work charged in the receive
    #: handler; 0 when NewMadeleine runs standalone (raw 1.8 us vs the
    #: integrated 2.1 us of Fig. 4a)
    upper_complete_cost: float = 0.0


@dataclass
class _RdvSend:
    req: NmadRequest
    remaining_inject: int
    cts_seen: bool = False
    retries: int = 0
    timer: Any = None


@dataclass
class _RdvRecv:
    req: NmadRequest
    remaining: int
    data: Any = None
    src_rank: int = -1
    got_data: bool = False
    cts_retries: int = 0
    timer: Any = None


@dataclass
class _Unexpected:
    """An arrived message with no matching posted request yet."""

    kind: str          # "eager" | "rts"
    src_rank: int
    tag: Any
    seq: int
    size: int
    data: Any = None
    rdv_id: int = 0
    arrival: float = 0.0


class NmadCore:
    """Per-process NewMadeleine instance."""

    def __init__(
        self,
        sim: Simulator,
        rank: int,
        node_id: int,
        mem: MemParams,
        registrar: MemoryRegistrar,
        costs: NmadCosts = NmadCosts(),
        sampler: Optional[NetworkSampler] = None,
        rank_to_node: Optional[Callable[[int], int]] = None,
        check_ordering: bool = True,
        reliability: Optional[ReliabilityParams] = None,
    ):
        self.sim = sim
        self.rank = rank
        self.node_id = node_id
        self.mem = mem
        self.registrar = registrar
        self.costs = costs
        self.sampler = sampler or NetworkSampler()
        self.rank_to_node = rank_to_node or (lambda r: r)
        self.check_ordering = check_ordering
        self.reliability = reliability
        self.health: Optional[RailHealthMonitor] = None
        #: pin-down registration cache, adopted from the IB rail (None =
        #: the paper's on-the-fly registration)
        self.reg_cache = None

        self.drivers: List[NmadDriver] = []
        self._preferred: List[NmadDriver] = []
        self.strategy = None  # set via set_strategy()

        # receive side
        self.posted: List[NmadRequest] = []
        self.unexpected: List[_Unexpected] = []

        # protocol state
        self._rdv_send: Dict[int, _RdvSend] = {}
        self._rdv_recv: Dict[int, _RdvRecv] = {}
        self._done_rdv: set = set()
        self._rts_accepted: set = set()
        # reliability resequencing: next admissible header seq per
        # (src_rank, tag), plus headers parked ahead of a lost predecessor
        self._admit_seq: Dict[Tuple[int, Any], int] = {}
        self._reorder: Dict[Tuple[int, Any], Dict[int, Tuple[Any, str]]] = {}
        self._send_seq: Dict[Tuple[int, Any], int] = {}
        self._recv_seq: Dict[Tuple[int, Any], int] = {}

        # stats
        self.sent_messages = 0
        self.recv_messages = 0

        # race-detector names of the shared protocol state, and the
        # node's virtual progress-lock region for timer callbacks
        self._region = ("node", node_id)
        self._rv_posted = f"nmad.posted@r{rank}"
        self._rv_unexpected = f"nmad.unexpected@r{rank}"
        self._rv_rdv = f"nmad.rdv@r{rank}"
        self._rv_seq = f"nmad.seq@r{rank}"

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def add_driver(self, driver: NmadDriver) -> None:
        driver.on_injected = self._on_pw_injected
        driver.race_name = f"nmad.pending@r{self.rank}:{driver.name}"
        # repro-check: allow[RPC004] build-time wiring, sim not running
        self.drivers.append(driver)
        if driver.reg_cache is not None:
            # repro-check: allow[RPC004] build-time wiring, sim not running
            self.reg_cache = driver.reg_cache
        self.refresh_preferred()

    def set_strategy(self, strategy) -> None:
        self.strategy = strategy

    def refresh_preferred(self) -> None:
        """Recompute the rail preference order over *live* rails.

        Called after a rail is declared dead or recovers, so strategies
        (including ``split_balance`` striping) only see survivors.
        """
        self._preferred = self.sampler.ordered(
            [d for d in self.drivers if d.alive])

    def preferred_drivers(self) -> List[NmadDriver]:
        """Live drivers in ascending small-message-latency order."""
        return self._preferred

    def fastest_driver(self) -> Optional[NmadDriver]:
        return self._preferred[0] if self._preferred else None

    def driver_for_rail(self, rail: str) -> NmadDriver:
        for d in self.drivers:
            if d.name == rail:
                return d
        raise KeyError(f"no driver for rail {rail!r}")

    def post_pw(self, driver: NmadDriver, pw: PacketWrapper) -> None:
        driver.post(pw)

    # ------------------------------------------------------------------
    # sending (generator: caller charges its CPU)
    # ------------------------------------------------------------------
    def isend(self, dst_rank: int, tag: Any, size: int, data: Any = None,
              sync: bool = False):
        """Submit a send; returns the :class:`NmadRequest`.

        Equivalent of ``nm_sr_isend`` (paper Section 2.2.1).  With
        ``sync=True`` the rendezvous protocol is used regardless of
        size, so completion implies the receive was matched
        (MPI_Ssend semantics).
        """
        req = NmadRequest(self.sim, "send", dst_rank, tag, size, data)
        key = (dst_rank, tag)
        self.sim.race_write(self._rv_seq)
        req.seq = self._send_seq.get(key, 0)
        self._send_seq[key] = req.seq + 1
        self.sent_messages += 1

        eager = size <= self.costs.eager_threshold and not sync
        rdv_id = 0 if eager else next_rdv_id()
        if self.sim.tracing:
            self.sim.record(
                "nmad.send_post", src=self.rank, dst=dst_rank, tag=tag,
                seq=req.seq, size=size, proto="eager" if eager else "rdv",
                rdv=rdv_id,
                dur=self.costs.send_post
                + (self.mem.copy_time(size) if eager else 0.0),
            )
        yield self.sim.timeout(self.costs.send_post)
        dst_node = self.rank_to_node(dst_rank)
        # Submission is deferred to the next progress point (pump=False):
        # without a progress thread nothing moves while the application
        # computes; PIOMan offloads the pump to an idle core (Fig. 7).
        if eager:
            # eager: data is copied into the packet wrapper now
            yield self.sim.timeout(self.mem.copy_time(size))
            self.strategy.push(SendItem(
                kind="eager", dst_rank=dst_rank, dst_node=dst_node,
                size=size, src_rank=self.rank, tag=tag, seq=req.seq,
                data=data, req=req,
            ), pump=False)
        else:
            state = _RdvSend(req, remaining_inject=size)
            self.sim.race_write(self._rv_rdv)
            self._rdv_send[rdv_id] = state
            self.strategy.push(SendItem(
                kind="rts", dst_rank=dst_rank, dst_node=dst_node,
                size=size, src_rank=self.rank, tag=tag, seq=req.seq,
                rdv_id=rdv_id, data=data, req=req,
            ), pump=False)
            if self.reliability is not None and self.reliability.rdv_timeout > 0:
                state.timer = self.sim.schedule(
                    self.reliability.rdv_timeout, self._rts_check, rdv_id)
        return req

    def _rts_check(self, rdv_id: int) -> None:
        """RTS retry timer: no CTS seen yet → re-issue the request."""
        with self.sim.sync_region(self._region, "nmad.rdv_timer"):
            self._rts_check_locked(rdv_id)

    def _rts_check_locked(self, rdv_id: int) -> None:
        self.sim.race_write(self._rv_rdv)
        state = self._rdv_send.get(rdv_id)
        if state is None or state.cts_seen:
            return
        state.retries += 1
        r = self.reliability
        gave_up = state.retries > r.rdv_max_retries
        if self.sim.tracing:
            self.sim.record("reliab.rdv_timeout", kind="rts", rdv=rdv_id,
                            rank=self.rank, retry=state.retries,
                            gave_up=gave_up)
        if gave_up:
            return
        req = state.req
        self.strategy.push(SendItem(
            kind="rts", dst_rank=req.peer,
            dst_node=self.rank_to_node(req.peer), size=req.size,
            src_rank=self.rank, tag=req.tag, seq=req.seq,
            rdv_id=rdv_id, data=req.data, req=req,
        ), priority=True)
        state.timer = self.sim.schedule(
            r.rdv_timeout * (r.backoff ** state.retries),
            self._rts_check, rdv_id)

    def _cts_check(self, rdv_id: int) -> None:
        """CTS retry timer: no data arrived yet → re-issue the grant."""
        with self.sim.sync_region(self._region, "nmad.rdv_timer"):
            self._cts_check_locked(rdv_id)

    def _cts_check_locked(self, rdv_id: int) -> None:
        self.sim.race_write(self._rv_rdv)
        state = self._rdv_recv.get(rdv_id)
        if state is None or state.got_data:
            return
        state.cts_retries += 1
        r = self.reliability
        gave_up = state.cts_retries > r.rdv_max_retries
        if self.sim.tracing:
            self.sim.record("reliab.rdv_timeout", kind="cts", rdv=rdv_id,
                            rank=self.rank, retry=state.cts_retries,
                            gave_up=gave_up)
        if gave_up:
            return
        self.strategy.push(SendItem(
            kind="cts", dst_rank=state.src_rank,
            dst_node=self.rank_to_node(state.src_rank), size=0,
            src_rank=self.rank, rdv_id=rdv_id,
        ), priority=True)
        state.timer = self.sim.schedule(
            r.rdv_timeout * (r.backoff ** state.cts_retries),
            self._cts_check, rdv_id)

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------
    def irecv(self, src_rank: int, tag: Any, size: Optional[int] = None):
        """Submit a receive for a *specific* source (nmad has no wildcard).

        Generator; returns the :class:`NmadRequest`.
        """
        if src_rank is ANY:
            raise ProtocolError(
                "NewMadeleine cannot match ANY-source receives; "
                "use probe() + irecv() as the MPICH2 module does (Section 3.2)"
            )
        req = NmadRequest(self.sim, "recv", src_rank, tag, size or 0)
        if self.sim.tracing:
            self.sim.record("nmad.recv_post", rank=self.rank, src=src_rank,
                            tag=tag, dur=self.costs.recv_post)
        yield self.sim.timeout(self.costs.recv_post)
        self.sim.race_read(self._rv_unexpected)
        idx = self._find_unexpected(src_rank, tag)
        if idx is None:
            self.sim.race_write(self._rv_posted)
            self.posted.append(req)
            return req
        self.sim.race_write(self._rv_unexpected)
        ux = self.unexpected.pop(idx)
        yield from self._consume_unexpected(req, ux)
        return req

    def probe(self, tag: Any, src: Any = ANY) -> Optional[Tuple[int, int]]:
        """First unexpected message matching ``tag`` (and ``src``).

        Returns ``(src_rank, size)`` or None.  This is the "new
        NewMadeleine function" the MPICH2 module polls for ANY_SOURCE
        support (paper Section 3.1.3/3.2.2).
        """
        self.sim.race_read(self._rv_unexpected)
        for ux in self.unexpected:
            if ux.tag == tag and (src is ANY or ux.src_rank == src):
                return (ux.src_rank, ux.size)
        return None

    # ------------------------------------------------------------------
    # frame handling (generator: progress context charges CPU)
    # ------------------------------------------------------------------
    def handle_pw(self, pw: PacketWrapper, rail: str):
        """Process an arrived packet wrapper's entries for this rank."""
        for entry in pw.entries:
            if entry.dst_rank != self.rank:
                continue
            yield from self.handle_entry(entry, rail)

    def handle_entry(self, entry, rail: str):
        if self.reliability is not None and isinstance(
                entry, (EagerEntry, RtsEntry)):
            # retransmission can deliver headers out of order; admit them
            # into matching strictly by seq so non-overtaking still holds
            key = (entry.src_rank, entry.tag)
            self.sim.race_write(self._rv_seq)
            expected = self._admit_seq.get(key, 0)
            if entry.seq != expected:
                if entry.seq > expected:
                    self._reorder.setdefault(key, {})[entry.seq] = (entry, rail)
                    if self.sim.tracing:
                        self.sim.record(
                            "reliab.reorder", rank=self.rank,
                            src=entry.src_rank, seq=entry.seq,
                            expected=expected,
                            held=len(self._reorder[key]),
                        )
                return
            self._admit_seq[key] = expected + 1
            yield from self._dispatch_entry(entry, rail)
            held = self._reorder.get(key)
            while held:
                nxt = self._admit_seq.get(key, 0)
                if nxt not in held:
                    break
                parked, parked_rail = held.pop(nxt)
                self._admit_seq[key] = nxt + 1
                yield from self._dispatch_entry(parked, parked_rail)
            return
        yield from self._dispatch_entry(entry, rail)

    def _dispatch_entry(self, entry, rail: str):
        if isinstance(entry, EagerEntry):
            yield from self._handle_eager(entry)
        elif isinstance(entry, RtsEntry):
            yield from self._handle_rts(entry)
        elif isinstance(entry, CtsEntry):
            yield from self._handle_cts(entry)
        elif isinstance(entry, DataEntry):
            yield from self._handle_data(entry, rail)
        else:
            raise ProtocolError(f"unknown entry {entry!r}")

    # -- eager ------------------------------------------------------------
    def _handle_eager(self, entry: EagerEntry):
        yield self.sim.timeout(self.costs.match_cost)
        self.sim.race_write(self._rv_posted)
        req = self._match_posted(entry.src_rank, entry.tag)
        if req is None:
            if self.sim.tracing:
                self.sim.record(
                    "nmad.unexpected", kind="eager", src=entry.src_rank,
                    dst=self.rank, tag=entry.tag, seq=entry.seq,
                    size=entry.size, depth=len(self.unexpected) + 1,
                )
            self.sim.race_write(self._rv_unexpected)
            self.unexpected.append(_Unexpected(
                kind="eager", src_rank=entry.src_rank, tag=entry.tag,
                seq=entry.seq, size=entry.size, data=entry.data,
                arrival=self.sim.now,
            ))
            return
        self._check_seq(entry.src_rank, entry.tag, entry.seq)
        if self.sim.tracing:
            self.sim.record(
                "nmad.eager_rx", src=entry.src_rank, dst=self.rank,
                tag=entry.tag, seq=entry.seq, size=entry.size,
                dur=(self.mem.copy_time(entry.size)
                     + self.costs.upper_complete_cost),
            )
        # copy out of the packet wrapper into the user buffer
        yield self.sim.timeout(self.mem.copy_time(entry.size))
        yield self.sim.timeout(self.costs.upper_complete_cost)
        self.recv_messages += 1
        req._finish(self.sim, data=entry.data, size=entry.size)

    # -- rendezvous ---------------------------------------------------------
    def _handle_rts(self, entry: RtsEntry):
        yield self.sim.timeout(self.costs.rdv_handshake_cost)
        if self.reliability is not None and self._rts_duplicate(entry):
            return
        # synchronous (no yield between check and add): a retried copy
        # arriving during any later yield point is recognized above
        self.sim.race_write(self._rv_rdv)
        self._rts_accepted.add(entry.rdv_id)
        self.sim.race_write(self._rv_posted)
        req = self._match_posted(entry.src_rank, entry.tag)
        if req is None:
            if self.sim.tracing:
                self.sim.record(
                    "nmad.unexpected", kind="rts", src=entry.src_rank,
                    dst=self.rank, tag=entry.tag, seq=entry.seq,
                    size=entry.size, depth=len(self.unexpected) + 1,
                )
            self.sim.race_write(self._rv_unexpected)
            self.unexpected.append(_Unexpected(
                kind="rts", src_rank=entry.src_rank, tag=entry.tag,
                seq=entry.seq, size=entry.size, rdv_id=entry.rdv_id,
                arrival=self.sim.now,
            ))
            return
        self._check_seq(entry.src_rank, entry.tag, entry.seq)
        if self.sim.tracing:
            self.sim.record(
                "nmad.rts_rx", src=entry.src_rank, dst=self.rank,
                tag=entry.tag, seq=entry.seq, size=entry.size,
                rdv=entry.rdv_id, dur=self.costs.rdv_handshake_cost,
            )
        yield from self._grant_rdv(req, entry.src_rank, entry.size, entry.rdv_id)

    def _rts_duplicate(self, entry: RtsEntry) -> bool:
        """Detect a re-sent RTS (reliability retries); answer if needed."""
        if entry.rdv_id not in self._rts_accepted:
            return False
        if self.sim.tracing:
            self.sim.record("reliab.rdv_duplicate", kind="rts",
                            rdv=entry.rdv_id, rank=self.rank)
        if entry.rdv_id in self._rdv_recv:
            # already granted: the CTS must have been lost — re-issue it
            self.strategy.push(SendItem(
                kind="cts", dst_rank=entry.src_rank,
                dst_node=self.rank_to_node(entry.src_rank), size=0,
                src_rank=self.rank, rdv_id=entry.rdv_id,
            ), priority=True)
        # otherwise the first copy is still queued unexpected, or its
        # grant is mid-flight, or the rendezvous already completed — in
        # every case the normal path (or the sender's next retry) makes
        # progress without this copy
        return True

    def _reg_cost(self, way: str, peer: int, req_id: int, size: int) -> float:
        """Memory-registration cost for one rendezvous buffer.

        Without a pin-down cache this is today's on-the-fly registration
        (paper Section 4.1.1), keyed by the globally unique request id.
        With a cache, the key models buffer reuse — applications (like
        NetPIPE) re-use their transfer buffers, so a same-peer same-size
        transfer re-pins the same region; the native comparators use the
        same convention.
        """
        if self.reg_cache is None:
            return self.registrar.cost((way, req_id), size)
        cost, info = self.reg_cache.lookup((way, peer, size), size)
        if self.sim.tracing:
            self.sim.record("nmad.reg_cache", rank=self.rank, way=way,
                            size=size, **info)
        return cost

    def _grant_rdv(self, req: NmadRequest, src_rank: int, size: int, rdv_id: int):
        """Register the receive buffer and send clear-to-send."""
        req.size = size
        reg_cost = self._reg_cost("rx", src_rank, req.req_id, size)
        if self.sim.tracing:
            self.sim.record("nmad.rdv_grant", rdv=rdv_id, src=src_rank,
                            dst=self.rank, size=size, dur=reg_cost)
        yield self.sim.timeout(reg_cost)
        state = _RdvRecv(req, remaining=size, src_rank=src_rank)
        self.sim.race_write(self._rv_rdv)
        self._rdv_recv[rdv_id] = state
        self.strategy.push(SendItem(
            kind="cts", dst_rank=src_rank, dst_node=self.rank_to_node(src_rank),
            size=0, src_rank=self.rank, rdv_id=rdv_id,
        ), priority=True)
        if self.reliability is not None and self.reliability.rdv_timeout > 0:
            state.timer = self.sim.schedule(
                self.reliability.rdv_timeout, self._cts_check, rdv_id)

    def _handle_cts(self, entry: CtsEntry):
        yield self.sim.timeout(self.costs.rdv_handshake_cost)
        self.sim.race_write(self._rv_rdv)
        state = self._rdv_send.get(entry.rdv_id)
        if state is None:
            if self.reliability is not None:
                # rendezvous already fully injected: a retried CTS
                if self.sim.tracing:
                    self.sim.record("reliab.rdv_duplicate", kind="cts",
                                    rdv=entry.rdv_id, rank=self.rank)
                return
            raise ProtocolError(f"CTS for unknown rendezvous {entry.rdv_id}")
        if state.cts_seen:
            if self.sim.tracing:
                self.sim.record("reliab.rdv_duplicate", kind="cts",
                                rdv=entry.rdv_id, rank=self.rank)
            return
        state.cts_seen = True
        if state.timer is not None:
            state.timer.cancel()
            state.timer = None
        req = state.req
        # send-buffer registration: on the fly (paper 4.1.1) unless the
        # IB rail carries a pin-down cache
        reg_cost = self._reg_cost("tx", req.peer, req.req_id, req.size)
        if self.sim.tracing:
            self.sim.record(
                "nmad.cts_rx", rdv=entry.rdv_id, src=self.rank,
                dst=req.peer, size=req.size,
                dur=self.costs.rdv_handshake_cost + reg_cost,
            )
        yield self.sim.timeout(reg_cost)
        self.strategy.push(SendItem(
            kind="data", dst_rank=req.peer, dst_node=self.rank_to_node(req.peer),
            size=req.size, src_rank=self.rank, rdv_id=entry.rdv_id,
            data=req.data,
        ), priority=True)

    def _handle_data(self, entry: DataEntry, rail: str):
        driver = self.driver_for_rail(rail)
        if not driver.rdma:
            yield self.sim.timeout(self.costs.data_chunk_cost)
        self.sim.race_write(self._rv_rdv)
        state = self._rdv_recv.get(entry.rdv_id)
        if state is None:
            if self.reliability is not None and entry.rdv_id in self._done_rdv:
                return  # stale duplicate for a finished rendezvous
            raise ProtocolError(f"data for unknown rendezvous {entry.rdv_id}")
        state.got_data = True
        if state.timer is not None:
            state.timer.cancel()
            state.timer = None
        if self.sim.tracing:
            self.sim.record("nmad.data_rx", rdv=entry.rdv_id, rail=rail,
                            dst=self.rank, size=entry.size,
                            remaining=state.remaining - entry.size)
        if entry.data is not None:
            state.data = entry.data
        state.remaining -= entry.size
        if state.remaining < 0:
            raise ProtocolError(f"rendezvous {entry.rdv_id} overran its size")
        if state.remaining == 0:
            if self.sim.tracing:
                self.sim.record(
                    "nmad.rdv_complete", rdv=entry.rdv_id,
                    src=state.req.peer, dst=self.rank, tag=state.req.tag,
                    size=state.req.size,
                    dur=(self.costs.match_cost
                         + self.costs.upper_complete_cost),
                )
            yield self.sim.timeout(self.costs.match_cost
                                   + self.costs.upper_complete_cost)
            del self._rdv_recv[entry.rdv_id]
            self._done_rdv.add(entry.rdv_id)
            self.recv_messages += 1
            state.req._finish(self.sim, data=state.data)

    # ------------------------------------------------------------------
    # injection completions (callback context: no CPU charged)
    # ------------------------------------------------------------------
    def _on_pw_injected(self, pw: PacketWrapper, driver: NmadDriver) -> None:
        self.sim.race_write(self._rv_rdv)
        for entry in pw.entries:
            if isinstance(entry, EagerEntry):
                if entry.req is not None and not entry.req.complete:
                    entry.req._finish(self.sim)
            elif isinstance(entry, DataEntry):
                state = self._rdv_send.get(entry.rdv_id)
                if state is None:
                    continue
                state.remaining_inject -= entry.size
                if state.remaining_inject <= 0:
                    if state.timer is not None:
                        state.timer.cancel()
                    del self._rdv_send[entry.rdv_id]
                    if not state.req.complete:
                        state.req._finish(self.sim)
        self.strategy.pump()

    # ------------------------------------------------------------------
    # matching helpers
    # ------------------------------------------------------------------
    def _match_posted(self, src_rank: int, tag: Any) -> Optional[NmadRequest]:
        for i, req in enumerate(self.posted):
            if req.peer == src_rank and req.tag == tag:
                return self.posted.pop(i)
        return None

    def _find_unexpected(self, src_rank: int, tag: Any) -> Optional[int]:
        for i, ux in enumerate(self.unexpected):
            if ux.src_rank == src_rank and ux.tag == tag:
                return i
        return None

    def _consume_unexpected(self, req: NmadRequest, ux: _Unexpected):
        self._check_seq(ux.src_rank, ux.tag, ux.seq)
        if self.sim.tracing:
            dur = 0.0
            if ux.kind == "eager":
                dur = (self.costs.match_cost + self.costs.upper_complete_cost
                       + self.mem.copy_time(ux.size))
            self.sim.record(
                "nmad.unexpected_match", kind=ux.kind, src=ux.src_rank,
                dst=self.rank, tag=ux.tag, seq=ux.seq, size=ux.size,
                residency=self.sim.now - ux.arrival, dur=dur,
            )
        if ux.kind == "eager":
            yield self.sim.timeout(self.costs.match_cost
                                   + self.costs.upper_complete_cost)
            yield self.sim.timeout(self.mem.copy_time(ux.size))
            self.recv_messages += 1
            req._finish(self.sim, data=ux.data, size=ux.size)
        elif ux.kind == "rts":
            yield from self._grant_rdv(req, ux.src_rank, ux.size, ux.rdv_id)
        else:
            raise ProtocolError(f"bad unexpected kind {ux.kind!r}")

    def _check_seq(self, src_rank: int, tag: Any, seq: int) -> None:
        if not self.check_ordering:
            return
        key = (src_rank, tag)
        self.sim.race_write(self._rv_seq)
        expected = self._recv_seq.get(key, 0)
        if self.sim.tracing:
            self.sim.record("nmad.seq_check", rank=self.rank, src=src_rank,
                            tag=tag, seq=seq, expected=expected)
        if seq != expected:
            raise ProtocolError(
                f"out-of-order match on rank {self.rank}: (src={src_rank}, "
                f"tag={tag!r}) got seq {seq}, expected {expected}"
            )
        self._recv_seq[key] = seq + 1
