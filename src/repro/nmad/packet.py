"""Packet wrappers: what NewMadeleine actually puts on the wire.

A packet wrapper (*pw*) is the unit of NIC submission.  The strategy
builds one from pending send items when a driver has window space.  A
pw carries one or more *entries*; aggregation is precisely the act of
packing several eager entries for the same destination into one pw.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, List, Optional, Union

__all__ = ["next_rdv_id", "reset_ids", "EagerEntry", "RtsEntry", "CtsEntry",
           "DataEntry", "entry_wire_size", "PacketWrapper"]

_pw_ids = itertools.count()
_rdv_ids = itertools.count()


def next_rdv_id() -> int:
    """Allocate a cluster-unique rendezvous identifier."""
    return next(_rdv_ids)


def reset_ids() -> None:
    """Rewind the pw/rdv id counters (determinism tooling only)."""
    global _pw_ids, _rdv_ids
    _pw_ids = itertools.count()
    _rdv_ids = itertools.count()


@dataclass
class EagerEntry:
    """Message data travelling inline with its envelope."""

    src_rank: int
    dst_rank: int
    tag: Any
    seq: int
    size: int
    data: Any = None
    #: sender-side request to complete at local injection (not wire data)
    req: Any = None


@dataclass
class RtsEntry:
    """Rendezvous request-to-send: envelope only, data waits at sender."""

    src_rank: int
    dst_rank: int
    tag: Any
    seq: int
    size: int
    rdv_id: int = 0


@dataclass
class CtsEntry:
    """Clear-to-send: the receiver granted the rendezvous."""

    src_rank: int
    dst_rank: int
    rdv_id: int = 0


@dataclass
class DataEntry:
    """One zero-copy chunk of rendezvous payload."""

    src_rank: int
    dst_rank: int
    rdv_id: int
    size: int
    data: Any = None


Entry = Union[EagerEntry, RtsEntry, CtsEntry, DataEntry]

#: wire bytes of one entry header (envelope: tag, seq, sizes)
HEADER_SIZE = 32
#: wire bytes of control-only entries
CONTROL_SIZE = 32


def entry_wire_size(entry: Entry) -> int:
    """Bytes an entry occupies on the wire."""
    if isinstance(entry, EagerEntry):
        return HEADER_SIZE + entry.size
    if isinstance(entry, DataEntry):
        return HEADER_SIZE + entry.size
    return CONTROL_SIZE


@dataclass
class PacketWrapper:
    """A NIC submission unit holding one or more entries."""

    dst_node: int
    src_node: int
    entries: List[Entry] = field(default_factory=list)
    pw_id: int = field(default_factory=lambda: next(_pw_ids))

    @property
    def wire_size(self) -> int:
        return sum(entry_wire_size(e) for e in self.entries)

    @property
    def dst_ranks(self) -> List[int]:
        return [e.dst_rank for e in self.entries]

    def append(self, entry: Entry) -> None:
        self.entries.append(entry)
