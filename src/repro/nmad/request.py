"""NewMadeleine request objects.

Requests are opaque, allocated per submitted operation, and — exactly
like the real library (paper Section 2.2.1) — **cannot be cancelled**:
a posted request must eventually be matched and completed.  This
constraint is what forces the ANY_SOURCE machinery of Section 3.2 in
the MPICH2 layer.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Optional

from repro.simulator import Event, Simulator

_req_ids = itertools.count()


class NmadRequest:
    """One pending send or receive operation inside NewMadeleine.

    Attributes
    ----------
    upper:
        Back-pointer to the upper-layer (CH3) request, the association
        mechanism of paper Section 3.1.1.
    """

    __slots__ = (
        "req_id", "kind", "peer", "tag", "size", "data",
        "completion", "completed_at", "upper", "on_complete", "seq",
    )

    def __init__(self, sim: Simulator, kind: str, peer: int, tag: Any,
                 size: int, data: Any = None):
        if kind not in ("send", "recv"):
            raise ValueError(f"bad request kind {kind!r}")
        self.req_id = next(_req_ids)
        self.kind = kind
        self.peer = peer              # peer process rank (the "gate")
        self.tag = tag
        self.size = size
        self.data = data
        self.completion: Event = sim.event()
        self.completed_at: Optional[float] = None
        self.upper: Any = None
        self.on_complete: Optional[Callable[["NmadRequest"], None]] = None
        self.seq: Optional[int] = None

    @property
    def complete(self) -> bool:
        return self.completion.triggered

    def cancel(self) -> None:
        """NewMadeleine does not support cancellation (Section 2.2.1)."""
        raise NotImplementedError(
            "NewMadeleine does not support the cancellation of a posted request"
        )

    def _finish(self, sim: Simulator, data: Any = None, size: Optional[int] = None) -> None:
        if self.complete:
            raise RuntimeError(f"request {self.req_id} completed twice")
        if data is not None:
            self.data = data
        if size is not None:
            self.size = size
        self.completed_at = sim.now
        self.completion.succeed(self)
        if self.on_complete is not None:
            self.on_complete(self)

    def __repr__(self) -> str:
        state = "done" if self.complete else "pending"
        return (f"NmadRequest(#{self.req_id} {self.kind} peer={self.peer} "
                f"tag={self.tag!r} size={self.size} {state})")
