"""Rail drivers: the glue between NewMadeleine's core and a NIC.

A driver owns a *submission window*: at most ``window`` packet wrappers
may be in flight on its NIC at once.  Keeping the window small is what
lets requests accumulate in the strategy while the NIC is busy — the
precondition for aggregation and reordering (paper Section 2.2).
"""

from repro.nmad.drivers.base import NmadDriver
from repro.nmad.drivers.ib import make_ib_driver
from repro.nmad.drivers.mx import make_mx_driver

__all__ = ["NmadDriver", "make_ib_driver", "make_mx_driver"]
