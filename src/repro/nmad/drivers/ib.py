"""InfiniBand (Verbs) driver flavour.

Rendezvous payloads move by RDMA write: the receiving CPU pays no
per-chunk cost, only the final completion.  Memory must be registered
on both sides — NewMadeleine registers on the fly, without a cache
(paper Section 4.1.1).

:class:`RegistrationCache` adds the pin-down cache of Liu et al.
(cs/0310059) as an opt-in (``StackSpec.ib_reg_cache`` capacity in
bytes): registered regions stay pinned and are reused LRU until the
capacity forces an eviction, whose unpinning cost is also charged.
The comparators (MVAPICH2, Open MPI) already model such a cache; with
this knob nmad can too, making cached registration both a speed lever
and a crossover axis against the 2009 on-the-fly design.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple

from repro.hardware.nic import NIC
from repro.hardware.params import MemParams
from repro.nmad.drivers.base import NmadDriver


class RegistrationCache:
    """LRU pin-down cache over registered memory regions.

    Keys follow the :class:`~repro.hardware.memory.MemoryRegistrar`
    convention ``(buffer_key, size)``; the cache holds at most
    ``capacity`` pinned bytes.  ``lookup`` returns the registration
    cost to charge plus a stats snapshot for trace emission:

    * hit — the region is pinned; charge ``reg_cache_hit`` only;
    * miss — charge the full pin cost (``reg_base + size *
      reg_per_byte``) plus ``dereg_base`` for every LRU region evicted
      to make room.  A region larger than the whole cache is
      registered uncached (pinned and immediately forgotten).
    """

    def __init__(self, params: MemParams, capacity: int):
        if capacity <= 0:
            raise ValueError("registration cache capacity must be > 0 bytes")
        self.params = params
        self.capacity = capacity
        self._regions: "OrderedDict[Tuple[object, int], int]" = OrderedDict()
        self.pinned_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.evicted_bytes = 0

    def __contains__(self, key: Tuple[object, int]) -> bool:
        return key in self._regions

    def __len__(self) -> int:
        return len(self._regions)

    def lookup(self, buffer_key: object,
               size: int) -> Tuple[float, Dict[str, int]]:
        """Registration cost for one transfer of ``size`` bytes."""
        key = (buffer_key, size)
        if key in self._regions:
            self._regions.move_to_end(key)
            self.hits += 1
            return self.params.reg_cache_hit, self._info(hit=True, evicted=0)
        self.misses += 1
        cost = self.params.reg_base + size * self.params.reg_per_byte
        evicted = 0
        if size <= self.capacity:
            while self._regions and self.pinned_bytes + size > self.capacity:
                _, old_size = self._regions.popitem(last=False)
                self.pinned_bytes -= old_size
                self.evictions += 1
                self.evicted_bytes += old_size
                evicted += old_size
                cost += self.params.dereg_base
            self._regions[key] = size
            self.pinned_bytes += size
        return cost, self._info(hit=False, evicted=evicted)

    def deregister(self, buffer_key: object, size: int) -> Optional[float]:
        """Explicitly unpin a region; returns its cost, None if absent."""
        key = (buffer_key, size)
        if key not in self._regions:
            return None
        del self._regions[key]
        self.pinned_bytes -= size
        return self.params.dereg_base

    def _info(self, hit: bool, evicted: int) -> Dict[str, int]:
        return {"hit": hit, "evicted": evicted,
                "pinned": self.pinned_bytes, "regions": len(self._regions)}


def make_ib_driver(nic: NIC, window: int = 2,
                   reg_cache: Optional[RegistrationCache] = None) -> NmadDriver:
    """Driver for a ConnectX-style Verbs NIC."""
    driver = NmadDriver(nic, window=window, rdma=True)
    driver.reg_cache = reg_cache
    return driver
