"""InfiniBand (Verbs) driver flavour.

Rendezvous payloads move by RDMA write: the receiving CPU pays no
per-chunk cost, only the final completion.  Memory must be registered
on both sides — NewMadeleine registers on the fly, without a cache
(paper Section 4.1.1).
"""

from repro.hardware.nic import NIC
from repro.nmad.drivers.base import NmadDriver


def make_ib_driver(nic: NIC, window: int = 2) -> NmadDriver:
    """Driver for a ConnectX-style Verbs NIC."""
    return NmadDriver(nic, window=window, rdma=True)
