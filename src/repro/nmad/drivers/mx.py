"""Myrinet MX driver flavour.

MX is a two-sided message-passing interface: rendezvous chunks are
consumed by the host (per-chunk receive cost), and there is no RDMA
path.  Registration is handled by the MX kernel module and folded into
the NIC's DMA-setup constant.
"""

from repro.hardware.nic import NIC
from repro.nmad.drivers.base import NmadDriver


def make_mx_driver(nic: NIC, window: int = 2) -> NmadDriver:
    """Driver for a Myri-10G MX NIC."""
    return NmadDriver(nic, window=window, rdma=False)
