"""Generic NewMadeleine rail driver."""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from repro.hardware.nic import NIC, Frame
from repro.nmad.packet import PacketWrapper
from repro.nmad.reliability import ReliabilityParams, _PendingPw


class NmadDriver:
    """One rail endpoint as seen by a NewMadeleine core.

    Parameters
    ----------
    window:
        Maximum packet wrappers in flight (default 2: one being
        serialized, one queued on the NIC).
    rdma:
        True when rendezvous data moves by RDMA (no receive-side
        per-chunk CPU cost) — the InfiniBand Verbs behaviour.

    When :attr:`reliability` is set (see
    :mod:`repro.nmad.reliability`), every posted packet wrapper is
    tracked until the receiving node acks it; on timeout it is
    retransmitted with exponential backoff, and repeated timeouts mark
    the rail suspect through the attached :attr:`health` monitor.
    """

    def __init__(self, nic: NIC, window: int = 2, rdma: bool = False):
        if window < 1:
            raise ValueError("driver window must be >= 1")
        self.nic = nic
        self.window = window
        self.rdma = rdma
        self.inflight = 0
        #: called as ``on_injected(pw, driver)`` at local completion
        self.on_injected: Optional[Callable[[PacketWrapper, "NmadDriver"], None]] = None
        self.pws_posted = 0
        #: pin-down registration cache (IB rails only; None = on the fly)
        self.reg_cache = None
        # -- reliability state (inert unless `reliability` is set) -----
        self.reliability: Optional[ReliabilityParams] = None
        self.health = None          # RailHealthMonitor, set by the builder
        self.alive = True
        self.last_dst: Optional[int] = None   # most recent peer node (probe target)
        self._pending: Dict[int, _PendingPw] = {}
        self._backlog: Deque[PacketWrapper] = deque()
        self._consec_timeouts = 0
        self.retransmits = 0
        self.timeouts = 0
        self.acks = 0
        # race-detector name of the submission/retransmit state; the
        # owning NmadCore overwrites it with a rank-qualified name
        self.race_name = f"nmad.pending@{nic.params.name}"
        self._region = ("node", nic.node_id)

    @property
    def name(self) -> str:
        return self.nic.params.name

    def window_free(self) -> bool:
        self.nic.sim.race_read(self.race_name)
        return self.alive and not self._backlog and self.inflight < self.window

    def small_latency(self) -> float:
        """One-way raw latency for a tiny message (driver preference key)."""
        p = self.nic.params
        return p.post_overhead + p.transfer_time(8) + p.recv_overhead

    def bandwidth(self) -> float:
        return self.nic.params.bandwidth

    def post(self, pw: PacketWrapper) -> None:
        """Submit a packet wrapper; requires window space."""
        if not self.window_free():
            raise RuntimeError(f"driver {self.name} window full")
        self._do_post(pw)

    def _do_post(self, pw: PacketWrapper) -> None:
        self.nic.sim.race_write(self.race_name)
        self.inflight += 1
        self.pws_posted += 1
        self.last_dst = pw.dst_node
        frame = Frame(
            src=pw.src_node, dst=pw.dst_node, size=pw.wire_size,
            kind="nmad", payload=pw,
        )
        evt = self.nic.post_send(frame)
        evt.add_done_callback(lambda _e: self._injected(pw))
        if self.reliability is not None:
            self._track(pw)

    def _injected(self, pw: PacketWrapper) -> None:
        # injection completions fire from the NIC's timeline; they touch
        # the window/backlog under the node's virtual progress lock
        with self.nic.sim.sync_region(self._region, "nmad.injected"):
            self.nic.sim.race_write(self.race_name)
            self.inflight -= 1
            # failover backlog outranks fresh strategy output for the window
            while self._backlog and self.inflight < self.window:
                self._do_post(self._backlog.popleft())
            if self.on_injected is not None:
                self.on_injected(pw, self)

    # ------------------------------------------------------------------
    # ack / retransmit
    # ------------------------------------------------------------------
    def _rtt_bound(self) -> float:
        """Model upper bound on injection-end → ack-arrival."""
        p = self.nic.params
        return 2 * p.wire_latency + p.injection_time(self.reliability.ack_size)

    def _track(self, pw: PacketWrapper) -> None:
        sim = self.nic.sim
        sim.race_write(self.race_name)
        entry = self._pending.get(pw.pw_id)
        if entry is None:
            entry = self._pending[pw.pw_id] = _PendingPw(pw, posted_at=sim.now)
        idle = self.nic.tx_idle_at()  # right after post: injection end
        r = self.reliability
        delay = (idle - sim.now) + (self._rtt_bound() + r.timeout_slack) * (
            r.backoff ** entry.retries)
        entry.timer = sim.schedule(delay, self._on_timeout, pw.pw_id)

    def handle_ack(self, pw_id: int) -> None:
        """The receiving node confirmed delivery of ``pw_id``."""
        self.nic.sim.race_write(self.race_name)
        entry = self._pending.pop(pw_id, None)
        if entry is None:
            return  # duplicate ack (retransmit raced the original)
        if entry.timer is not None:
            entry.timer.cancel()
        self.acks += 1
        self._consec_timeouts = 0
        sim = self.nic.sim
        if sim.tracing:
            sim.record("reliab.ack", rail=self.name, pw=pw_id,
                       rtt=sim.now - entry.posted_at, retries=entry.retries)

    def _on_timeout(self, pw_id: int) -> None:
        """Retransmit timer: runs on the NIC's timeline, not a thread."""
        with self.nic.sim.sync_region(self._region, "reliab.timeout"):
            self._on_timeout_locked(pw_id)

    def _on_timeout_locked(self, pw_id: int) -> None:
        self.nic.sim.race_write(self.race_name)
        entry = self._pending.get(pw_id)
        if entry is None or not self.alive:
            return
        entry.retries += 1
        self._consec_timeouts += 1
        self.timeouts += 1
        sim = self.nic.sim
        if sim.tracing:
            sim.record("reliab.timeout", rail=self.name, pw=pw_id,
                       retry=entry.retries, consec=self._consec_timeouts)
        r = self.reliability
        if self.health is not None and (
                self._consec_timeouts >= r.dead_after
                or entry.retries > r.max_retries):
            self.health.rail_suspect(self)
            return
        if entry.retries > r.max_retries:
            # no health monitor: give the wrapper up (the run will then
            # deadlock loudly — losing a message must never be silent)
            self._pending.pop(pw_id, None)
            return
        self._retransmit(entry)

    def _retransmit(self, entry: _PendingPw) -> None:
        self.nic.sim.race_write(self.race_name)
        pw = entry.pw
        self.retransmits += 1
        sim = self.nic.sim
        if sim.tracing:
            sim.record("reliab.retransmit", rail=self.name, pw=pw.pw_id,
                       retry=entry.retries, size=pw.wire_size)
        # same wrapper object → same pw_id → receiver-side dedup; the
        # retransmission occupies the NIC but not the submission window
        self.nic.post_send(Frame(
            src=pw.src_node, dst=pw.dst_node, size=pw.wire_size,
            kind="nmad", payload=pw,
        ))
        idle = self.nic.tx_idle_at()
        r = self.reliability
        delay = (idle - sim.now) + (self._rtt_bound() + r.timeout_slack) * (
            r.backoff ** entry.retries)
        entry.timer = sim.schedule(delay, self._on_timeout, pw.pw_id)

    # ------------------------------------------------------------------
    # failover support
    # ------------------------------------------------------------------
    def take_pending(self) -> List[PacketWrapper]:
        """Strip and return every unacked wrapper (rail declared dead)."""
        self.nic.sim.race_write(self.race_name)
        orphans: List[PacketWrapper] = []
        for entry in self._pending.values():
            if entry.timer is not None:
                entry.timer.cancel()
            orphans.append(entry.pw)
        self._pending.clear()
        orphans.extend(self._backlog)
        self._backlog.clear()
        return orphans

    def failover_post(self, pw: PacketWrapper) -> None:
        """Accept a wrapper migrating from a dead rail."""
        self.nic.sim.race_write(self.race_name)
        if self.alive and not self._backlog and self.inflight < self.window:
            self._do_post(pw)
        else:
            self._backlog.append(pw)

    def reset_health(self) -> None:
        self._consec_timeouts = 0

    def __repr__(self) -> str:
        return f"NmadDriver({self.name}, window={self.window}, inflight={self.inflight})"
