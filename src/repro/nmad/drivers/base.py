"""Generic NewMadeleine rail driver."""

from __future__ import annotations

from typing import Callable, Optional

from repro.hardware.nic import NIC, Frame
from repro.nmad.packet import PacketWrapper


class NmadDriver:
    """One rail endpoint as seen by a NewMadeleine core.

    Parameters
    ----------
    window:
        Maximum packet wrappers in flight (default 2: one being
        serialized, one queued on the NIC).
    rdma:
        True when rendezvous data moves by RDMA (no receive-side
        per-chunk CPU cost) — the InfiniBand Verbs behaviour.
    """

    def __init__(self, nic: NIC, window: int = 2, rdma: bool = False):
        if window < 1:
            raise ValueError("driver window must be >= 1")
        self.nic = nic
        self.window = window
        self.rdma = rdma
        self.inflight = 0
        #: called as ``on_injected(pw, driver)`` at local completion
        self.on_injected: Optional[Callable[[PacketWrapper, "NmadDriver"], None]] = None
        self.pws_posted = 0

    @property
    def name(self) -> str:
        return self.nic.params.name

    def window_free(self) -> bool:
        return self.inflight < self.window

    def small_latency(self) -> float:
        """One-way raw latency for a tiny message (driver preference key)."""
        p = self.nic.params
        return p.post_overhead + p.transfer_time(8) + p.recv_overhead

    def bandwidth(self) -> float:
        return self.nic.params.bandwidth

    def post(self, pw: PacketWrapper) -> None:
        """Submit a packet wrapper; requires window space."""
        if not self.window_free():
            raise RuntimeError(f"driver {self.name} window full")
        self.inflight += 1
        self.pws_posted += 1
        frame = Frame(
            src=pw.src_node, dst=pw.dst_node, size=pw.wire_size,
            kind="nmad", payload=pw,
        )
        evt = self.nic.post_send(frame)
        evt.add_done_callback(lambda _e: self._injected(pw))

    def _injected(self, pw: PacketWrapper) -> None:
        self.inflight -= 1
        if self.on_injected is not None:
            self.on_injected(pw, self)

    def __repr__(self) -> str:
        return f"NmadDriver({self.name}, window={self.window}, inflight={self.inflight})"
