"""NewMadeleine: the communication scheduling engine (paper Section 2.2).

NewMadeleine decouples request submission from network submission: when
a NIC is busy, outgoing requests accumulate in the *strategy*, which may
reorder, aggregate, or split them when the NIC becomes idle.  It
performs its own tag matching, implements eager and rendezvous
protocols internally, and natively drives several (possibly
heterogeneous) rails at once.

Public surface:

* :class:`~repro.nmad.core.NmadCore` — one instance per MPI process.
* :class:`~repro.nmad.request.NmadRequest` — opaque request objects
  (no cancellation, exactly like the real library).
* :mod:`~repro.nmad.strategies` — default / aggregation / split_balance.
* :mod:`~repro.nmad.drivers` — rail drivers with submission windows.
* :class:`~repro.nmad.interface.SendRecvInterface` — the ``nm_sr_*``
  flavoured thin API used by tests and the raw-library example.
"""

from repro.nmad.core import NmadCore, NmadCosts
from repro.nmad.request import NmadRequest
from repro.nmad.packet import PacketWrapper, EagerEntry, RtsEntry, CtsEntry, DataEntry
from repro.nmad.drivers import NmadDriver
from repro.nmad.strategies import (
    AggregStrategy,
    DefaultStrategy,
    SplitBalanceStrategy,
    make_strategy,
)
from repro.nmad.interface import SendRecvInterface

__all__ = [
    "NmadCore",
    "NmadCosts",
    "NmadRequest",
    "PacketWrapper",
    "EagerEntry",
    "RtsEntry",
    "CtsEntry",
    "DataEntry",
    "NmadDriver",
    "DefaultStrategy",
    "AggregStrategy",
    "SplitBalanceStrategy",
    "make_strategy",
    "SendRecvInterface",
]
