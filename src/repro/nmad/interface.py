"""The ``nm_sr`` send/receive interface (paper Section 2.2.1).

A thin, paper-faithful facade over :class:`~repro.nmad.core.NmadCore`
for using NewMadeleine *standalone* (without the MPICH2 stack), as the
raw-library benchmarks in the paper do.  It spawns one internal
progress pump per rail, mirroring the library's own progress engine.

Note: standalone use assumes one process per node (the pumps consume
the node NIC receive queues directly).  Inside the MPICH2 stack, frame
dispatch is handled by the runtime instead.
"""

from __future__ import annotations

from typing import Any

from repro.nmad.core import NmadCore
from repro.nmad.request import NmadRequest
from repro.simulator import Simulator

__all__ = ["SendRecvInterface"]


class SendRecvInterface:
    """``nm_sr_*`` flavoured API over a NewMadeleine core."""

    def __init__(self, sim: Simulator, core: NmadCore):
        self.sim = sim
        self.core = core
        for driver in core.drivers:
            sim.spawn(self._pump(driver), name=f"nm-pump-{driver.name}")

    def _pump(self, driver):
        while True:
            frame = yield driver.nic.rx_queue.get()
            if frame.kind == "nmad":
                yield from self.core.handle_pw(frame.payload, frame.rail)

    # -- paper-named entry points ---------------------------------------
    def nm_sr_isend(self, dest: int, tag: Any, data: Any, size: int):
        """Generator; returns the request (cf. ``nm_sr_isend`` prototype)."""
        req = yield from self.core.isend(dest, tag, size, data)
        # standalone use: the library's own progress engine pumps here
        self.core.strategy.pump()
        return req

    def nm_sr_irecv(self, source: int, tag: Any, size: int = 0):
        req = yield from self.core.irecv(source, tag, size)
        return req

    def nm_sr_rwait(self, req: NmadRequest):
        """Generator: block until the request completes."""
        if not req.complete:
            yield req.completion

    def nm_sr_rtest(self, req: NmadRequest) -> bool:
        return req.complete
