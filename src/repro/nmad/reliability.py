"""Reliability: acks, retransmission, and multirail failover.

The base simulation assumes a perfect fabric, so NewMadeleine's wire
protocols never needed delivery guarantees.  Once a
:class:`~repro.faults.injector.FaultInjector` can drop, corrupt, or
black-hole frames, three cooperating mechanisms keep MPI semantics
(every message delivered exactly once, in order per ``(src, tag)``):

* **driver-level ack/retransmit** — every data frame (packet wrapper)
  is acked by the receiving node out-of-band; the sending
  :class:`~repro.nmad.drivers.base.NmadDriver` keeps unacked wrappers
  and retransmits on timeout with exponential backoff
  (:class:`ReliabilityParams`).  Receivers deduplicate on the globally
  unique ``pw_id`` (:class:`FrameReliability`), so retransmission can
  never double-deliver.
* **rail health + failover** — consecutive timeouts (or a wrapper
  exhausting its retries) mark the rail *suspect*; a PIOMan ltask
  confirms and declares it dead (:class:`RailHealthMonitor`).  Unacked
  wrappers migrate to the fastest surviving rail, the core's preferred
  list is recomputed so ``split_balance`` stripes over survivors only,
  and periodic out-of-band probes detect recovery and restore the rail.
* **rendezvous timeouts** — RTS/CTS are retried end-to-end by
  :class:`~repro.nmad.core.NmadCore` (see ``rdv_timeout``), covering
  handshakes lost before any driver-level state existed.

Everything here is deterministic: timeouts are computed from model
parameters, probes are scheduled at fixed backoff points, and no random
draws are made (the only randomness in a chaos run lives in the fault
injector's seeded per-rail streams).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List

from repro.hardware.nic import Frame
from repro.nmad.packet import PacketWrapper


@dataclass(frozen=True)
class ReliabilityParams:
    """Constants of the ack/retransmit/failover machinery."""

    #: wire bytes of an ack control frame
    ack_size: int = 16
    #: wire bytes of a rail-liveness probe frame
    probe_size: int = 16
    #: grace added to the model RTT bound before a retransmit fires, s
    timeout_slack: float = 8e-6
    #: multiplier applied to the timeout on every retry
    backoff: float = 2.0
    #: retransmissions per wrapper before the rail is declared suspect
    max_retries: int = 4
    #: consecutive timeouts (across wrappers) declaring the rail suspect
    dead_after: int = 2
    #: base interval between liveness probes of a dead rail, s
    probe_interval: float = 50e-6
    #: multiplier applied to the probe interval on every missed probe
    probe_backoff: float = 1.5
    #: probes before giving the rail up for the rest of the run
    max_probes: int = 64
    #: rendezvous RTS/CTS retry timeout, s (0 disables rdv timers)
    rdv_timeout: float = 200e-6
    #: RTS/CTS re-pushes before the handshake gives up
    rdv_max_retries: int = 3


@dataclass
class _Ack:
    """Payload of an out-of-band ``nm_ack`` frame."""

    ack_id: int        # pw_id (data ack) or probe number (probe ack)
    dst_rank: int      # rank whose driver state the ack clears
    probe: bool = False


@dataclass
class _Probe:
    """Payload of an out-of-band ``nm_probe`` frame."""

    probe_id: int
    src_rank: int
    rail: str


@dataclass
class _PendingPw:
    """One posted-but-unacked packet wrapper on a driver."""

    pw: PacketWrapper
    posted_at: float
    retries: int = 0
    timer: Any = None


class RailHealthMonitor:
    """Marks rails dead/alive for one core and drives failover.

    Suspicion comes from the driver (consecutive timeouts or exhausted
    retries); confirmation runs as a PIOMan ltask when the node has a
    PIOMan (the paper's progress engine doubles as the health checker),
    inline otherwise.  A dead rail is probed out-of-band at backoff
    intervals; the first answered probe restores it.
    """

    def __init__(self, core, params: ReliabilityParams, pioman=None):
        self.core = core
        self.params = params
        self.pioman = pioman
        self._suspected: set = set()
        self._down_since: Dict[Any, float] = {}
        self._probe_timer: Dict[Any, Any] = {}
        self._parked: List[PacketWrapper] = []
        # stats
        self.rails_died = 0
        self.rails_recovered = 0
        self.failovers = 0
        # race-detector name of the suspicion/probe/parked state, and
        # the node's virtual progress-lock region for probe timers
        self._rv = f"reliab.health@r{core.rank}"
        self._region = ("node", core.node_id)

    @property
    def sim(self):
        return self.core.sim

    # -- going down ------------------------------------------------------
    def rail_suspect(self, driver) -> None:
        """A driver crossed its timeout threshold; confirm via ltask."""
        self.sim.race_write(self._rv)
        if not driver.alive or driver in self._suspected:
            return
        self._suspected.add(driver)
        if self.pioman is not None:
            params = self.pioman.params

            def check():
                yield self.sim.timeout(params.health_check_cost)
                self._declare_dead(driver)

            self.pioman.submit(check)
        else:
            self._declare_dead(driver)

    def _bandwidth_share(self, driver) -> float:
        rates = {d: self.core.sampler.sampled_bandwidth(d)
                 for d in self.core.drivers}
        total = sum(rates.values())
        return rates[driver] / total if total else 0.0

    def _declare_dead(self, driver) -> None:
        self.sim.race_write(self._rv)
        self._suspected.discard(driver)
        if not driver.alive:
            return
        driver.alive = False
        self.rails_died += 1
        self._down_since[driver] = self.sim.now
        orphans = driver.take_pending()
        if self.sim.tracing:
            self.sim.record(
                "reliab.rail_down", rail=driver.name, node=self.core.node_id,
                rank=self.core.rank, pending=len(orphans),
                share=self._bandwidth_share(driver),
            )
        self.core.refresh_preferred()
        self._reroute(orphans, from_rail=driver.name)
        if self.core.strategy is not None:
            self.core.strategy.pump()
        self._schedule_probe(driver, 0)

    def _reroute(self, orphans: List[PacketWrapper], from_rail: str) -> None:
        target = self.core.fastest_driver()
        for pw in orphans:
            if target is None:
                self._parked.append(pw)
                continue
            self.failovers += 1
            if self.sim.tracing:
                self.sim.record(
                    "reliab.failover", pw=pw.pw_id, size=pw.wire_size,
                    src=from_rail, dst=target.name, rank=self.core.rank,
                )
            target.failover_post(pw)

    # -- probing / coming back up ---------------------------------------
    def _schedule_probe(self, driver, n: int) -> None:
        if n >= self.params.max_probes:
            if self.sim.tracing:
                self.sim.record("reliab.probe", rail=driver.name,
                                rank=self.core.rank, n=n, gave_up=True)
            return
        delay = self.params.probe_interval * (
            self.params.probe_backoff ** min(n, 10))
        self.sim.race_write(self._rv)
        self._probe_timer[driver] = self.sim.schedule(
            delay, self._send_probe, driver, n)

    def _send_probe(self, driver, n: int) -> None:
        """Probe timer: runs on its own timeline, not a thread."""
        with self.sim.sync_region(self._region, "reliab.probe"):
            self._send_probe_locked(driver, n)

    def _send_probe_locked(self, driver, n: int) -> None:
        self.sim.race_write(self._rv)
        if driver.alive:
            return
        dst_node = driver.last_dst
        if dst_node is None:
            return
        probe = _Probe(probe_id=n, src_rank=self.core.rank, rail=driver.name)
        if self.sim.tracing:
            self.sim.record("reliab.probe", rail=driver.name,
                            rank=self.core.rank, n=n, gave_up=False)
        driver.nic.post_control(Frame(
            src=driver.nic.node_id, dst=dst_node,
            size=self.params.probe_size, kind="nm_probe", payload=probe,
        ))
        self._schedule_probe(driver, n + 1)

    def on_probe_ack(self, driver) -> None:
        """A dead rail answered a probe: restore it."""
        self.sim.race_write(self._rv)
        if driver.alive:
            return
        driver.alive = True
        driver.reset_health()
        self.rails_recovered += 1
        timer = self._probe_timer.pop(driver, None)
        if timer is not None:
            timer.cancel()
        downtime = self.sim.now - self._down_since.pop(driver, self.sim.now)
        if self.sim.tracing:
            self.sim.record(
                "reliab.rail_up", rail=driver.name, node=self.core.node_id,
                rank=self.core.rank, downtime=downtime,
            )
        self.core.refresh_preferred()
        if self._parked:
            parked, self._parked = self._parked, []
            self._reroute(parked, from_rail="(parked)")
        if self.core.strategy is not None:
            self.core.strategy.pump()


class FrameReliability:
    """Node-level receive hook: acks, probes, and duplicate suppression.

    Owned by the runtime and consulted by ``_route_frame`` before any
    frame reaches a stack.  Returns False from :meth:`on_frame` when
    the frame is consumed here (control frames, duplicates, CRC-failed
    corrupt frames are handled by the caller).
    """

    def __init__(self, sim, params: ReliabilityParams,
                 core_of, nic_of):
        """``core_of(rank)`` → NmadCore; ``nic_of(node, rail)`` → NIC."""
        self.sim = sim
        self.params = params
        self.core_of = core_of
        self.nic_of = nic_of
        self._seen: set = set()
        # stats
        self.acked = 0
        self.duplicates = 0

    def on_frame(self, frame: Frame) -> bool:
        payload = frame.payload
        if frame.kind == "nm_ack":
            self._handle_ack(frame, payload)
            return False
        if frame.kind == "nm_probe":
            self._send_ack(frame, ack_id=payload.probe_id,
                           dst_rank=payload.src_rank, probe=True)
            return False
        if isinstance(payload, PacketWrapper):
            src_rank = payload.entries[0].src_rank
            self._send_ack(frame, ack_id=payload.pw_id,
                           dst_rank=src_rank, probe=False)
            if self.sim.monitor is not None:
                self.sim.race_write(f"reliab.seen@n{frame.dst}")
            if payload.pw_id in self._seen:
                self.duplicates += 1
                if self.sim.tracing:
                    self.sim.record("reliab.duplicate", pw=payload.pw_id,
                                    rail=frame.rail, node=frame.dst,
                                    size=frame.size)
                return False
            self._seen.add(payload.pw_id)
        return True

    # -- internals -------------------------------------------------------
    def _send_ack(self, frame: Frame, ack_id: int, dst_rank: int,
                  probe: bool) -> None:
        self.acked += 1
        nic = self.nic_of(frame.dst, frame.rail)
        nic.post_control(Frame(
            src=frame.dst, dst=frame.src, size=self.params.ack_size,
            kind="nm_ack",
            payload=_Ack(ack_id=ack_id, dst_rank=dst_rank, probe=probe),
        ))

    def _handle_ack(self, frame: Frame, ack: _Ack) -> None:
        core = self.core_of(ack.dst_rank)
        try:
            driver = core.driver_for_rail(frame.rail)
        except KeyError:
            return
        if ack.probe:
            if driver.health is not None:
                driver.health.on_probe_ack(driver)
        else:
            driver.handle_ack(ack.ack_id)
