"""Kernel registry, process-grid helpers, and the NAS runner."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.config import ClusterSpec, StackSpec, grid5000
from repro.runtime import run_mpi


@dataclass(frozen=True)
class KernelClass:
    """One NPB problem class of one kernel."""

    name: str          # "A" | "B" | "C"
    gop: float         # total operation count (Gop, from NPB reports)
    iters: int         # time-step count
    grid: Tuple[int, ...]  # problem dimensions (kernel-specific meaning)


@dataclass
class KernelSpec:
    """A registered NAS kernel skeleton."""

    name: str
    #: effective per-core rate (GF/s) calibrated to the paper's Opterons
    rate_gflops: float
    classes: Dict[str, KernelClass]
    #: generator(comm, ctx, iteration_index) performing one time step
    iteration: Callable
    #: process-count constraint ("pow2" | "square" | "any")
    proc_rule: str = "pow2"
    #: how many representative iterations to actually simulate
    default_sim_iters: int = 10
    #: optional generator(comm, ctx) run once before timing
    setup: Optional[Callable] = None

    def cpu_seconds(self, cls: str) -> float:
        """Total single-core CPU seconds for the whole run."""
        return self.classes[cls].gop / self.rate_gflops

    def validate_procs(self, p: int) -> None:
        if self.proc_rule == "pow2" and (p & (p - 1)) != 0:
            raise ValueError(f"{self.name} needs a power-of-two process count, got {p}")
        if self.proc_rule == "square" and math.isqrt(p) ** 2 != p:
            raise ValueError(f"{self.name} needs a square process count, got {p}")


@dataclass
class KernelContext:
    """Per-run precomputed layout handed to iteration generators."""

    kernel: KernelSpec
    cls: KernelClass
    p: int
    compute_per_iter: float   # seconds of CPU per rank per iteration
    extras: dict = field(default_factory=dict)


#: global kernel registry (populated by the kernel modules at import)
KERNELS: Dict[str, KernelSpec] = {}


def register(spec: KernelSpec) -> KernelSpec:
    KERNELS[spec.name] = spec
    return spec


# ---------------------------------------------------------------------------
# process-grid helpers
# ---------------------------------------------------------------------------

def adjust_procs(kernel_name: str, p: int) -> int:
    """The paper's substitution: 8→9 and 32→36 for square kernels."""
    spec = KERNELS[kernel_name]
    if spec.proc_rule == "square" and math.isqrt(p) ** 2 != p:
        q = math.isqrt(p)
        return (q + 1) * (q + 1) if (q + 1) ** 2 - p <= p - q * q else q * q
    return p


def square_side(p: int) -> int:
    q = math.isqrt(p)
    if q * q != p:
        raise ValueError(f"{p} is not a square process count")
    return q


def grid_2d(p: int) -> Tuple[int, int]:
    """Near-square 2D factorization (px >= py, px*py == p)."""
    px = math.isqrt(p)
    while p % px != 0:
        px -= 1
    return max(px, p // px), min(px, p // px)


def grid_3d(p: int) -> Tuple[int, int, int]:
    """Near-cubic 3D factorization."""
    best = (p, 1, 1)
    c = round(p ** (1 / 3))
    for fx in range(max(1, c - 2), p + 1):
        if p % fx:
            continue
        fy, fz = grid_2d(p // fx)
        cand = tuple(sorted((fx, fy, fz), reverse=True))
        if max(cand) / min(cand) < max(best) / min(best):
            best = cand
        if fx > c + 2:
            break
    return best


def torus_neighbors_2d(rank: int, px: int, py: int):
    """(north, south, west, east) on a (px, py) torus, row-major."""
    x, y = rank // py, rank % py
    return (
        ((x - 1) % px) * py + y,
        ((x + 1) % px) * py + y,
        x * py + (y - 1) % py,
        x * py + (y + 1) % py,
    )


# ---------------------------------------------------------------------------
# runner
# ---------------------------------------------------------------------------

@dataclass
class NasRunResult:
    """Outcome of one kernel x class x process-count x stack run."""

    kernel: str
    cls: str
    nprocs: int
    stack: str
    time_seconds: float        # projected full-run execution time
    simulated_iters: int
    total_iters: int


def default_nas_cluster(p: int) -> Tuple[ClusterSpec, int]:
    """The Grid'5000 placement: at most 10 nodes, ranks packed evenly."""
    rpn = math.ceil(p / 10)
    n_nodes = math.ceil(p / rpn)
    return grid5000(n_nodes=n_nodes), rpn


def parallel_efficiency(results) -> Dict[int, float]:
    """Parallel efficiency per process count from NasRunResults.

    ``results`` is an iterable of :class:`NasRunResult` of one kernel,
    one class, one stack, across process counts.  Efficiency is
    ``t(p0) * p0 / (t(p) * p)`` with p0 the smallest count present.
    """
    by_p = {r.nprocs: r.time_seconds for r in results}
    if not by_p:
        return {}
    p0 = min(by_p)
    base = by_p[p0] * p0
    return {p: base / (t * p) for p, t in sorted(by_p.items())}


def run_kernel(kernel_name: str, cls: str, nprocs: int, stack: StackSpec,
               cluster: Optional[ClusterSpec] = None,
               ranks_per_node: Optional[int] = None,
               sim_iters: Optional[int] = None) -> NasRunResult:
    """Simulate one NAS kernel run and project the full execution time."""
    spec = KERNELS[kernel_name]
    spec.validate_procs(nprocs)
    kcls = spec.classes[cls]
    if cluster is None:
        cluster, ranks_per_node = default_nas_cluster(nprocs)
    n_sim = min(kcls.iters, sim_iters or spec.default_sim_iters)
    compute_per_iter = spec.cpu_seconds(cls) / nprocs / kcls.iters

    def program(comm):
        ctx = KernelContext(kernel=spec, cls=kcls, p=nprocs,
                            compute_per_iter=compute_per_iter)
        if spec.setup is not None:
            yield from spec.setup(comm, ctx)
        yield from comm.barrier()
        t0 = comm.sim.now
        for i in range(n_sim):
            yield from spec.iteration(comm, ctx, i)
        yield from comm.barrier()
        return (comm.sim.now - t0) * (kcls.iters / n_sim)

    result = run_mpi(program, nprocs, stack, cluster=cluster,
                     ranks_per_node=ranks_per_node)
    time_seconds = max(result.rank_results)
    return NasRunResult(kernel=kernel_name, cls=cls, nprocs=nprocs,
                        stack=stack.name, time_seconds=time_seconds,
                        simulated_iters=n_sim, total_iters=kcls.iters)
