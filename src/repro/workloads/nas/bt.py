"""BT: block-tridiagonal solver on a 3D multipartition decomposition.

Communication skeleton: each time step performs three directional ADI
sweeps on a square q x q process grid; each sweep advances in q phases,
each phase exchanging one sub-block face (~40 bytes per face cell) with
the neighbour in the sweep direction.  Compute dominates; the sweeps
make BT moderately latency-sensitive at larger process counts.
"""

from __future__ import annotations

from repro.workloads.nas.base import (
    KernelClass,
    KernelSpec,
    register,
    square_side,
    torus_neighbors_2d,
)


def _layout(comm, ctx):
    if "q" not in ctx.extras:
        q = square_side(ctx.p)
        n = ctx.cls.grid[0]
        ctx.extras["q"] = q
        ctx.extras["face"] = max(64, 40 * (n * n) // (q * q))
        ctx.extras["nbrs"] = torus_neighbors_2d(comm.rank, q, q)
    return ctx.extras


def sweep_iteration(comm, ctx, i, tag_prefix):
    """Shared BT/SP multipartition time step."""
    ex = _layout(comm, ctx)
    q, face = ex["q"], ex["face"]
    north, south, west, east = ex["nbrs"]
    # (send-to, receive-from) pairs for the three directional sweeps
    directions = [(east, west), (south, north), (west, east)]
    chunk = ctx.compute_per_iter / (3 * max(q, 1))
    for d, (dst, src) in enumerate(directions):
        for step in range(q):
            yield from comm.compute(chunk)
            if ctx.p > 1:
                yield from comm.sendrecv(dst, src, tag=(tag_prefix, i, d, step),
                                         size=face)


def iteration(comm, ctx, i):
    yield from sweep_iteration(comm, ctx, i, "bt")


register(KernelSpec(
    name="bt",
    rate_gflops=0.51,
    proc_rule="square",
    default_sim_iters=10,
    classes={
        "A": KernelClass("A", gop=168.3, iters=200, grid=(64,)),
        "B": KernelClass("B", gop=721.5, iters=200, grid=(102,)),
        "C": KernelClass("C", gop=2992.3, iters=200, grid=(162,)),
    },
    iteration=iteration,
))
