"""EP: embarrassingly parallel random-number statistics.

Almost pure compute: each rank generates its share of Gaussian pairs
and the run ends with a handful of small reductions.  EP isolates
per-process runtime efficiency — which is how the paper's unexplained
Open MPI lag on EP shows up (modeled as a compute-efficiency factor).
"""

from __future__ import annotations

from repro.workloads.nas.base import KernelClass, KernelSpec, register


def iteration(comm, ctx, i):
    yield from comm.compute(ctx.compute_per_iter)
    # sx, sy sums and the 10-bin annulus counts
    yield from comm.allreduce(size=8)
    yield from comm.allreduce(size=8)
    yield from comm.allreduce(size=80)


register(KernelSpec(
    name="ep",
    rate_gflops=0.098,
    proc_rule="pow2",
    default_sim_iters=1,
    classes={
        "A": KernelClass("A", gop=5.4, iters=1, grid=(1 << 28,)),
        "B": KernelClass("B", gop=21.5, iters=1, grid=(1 << 30,)),
        "C": KernelClass("C", gop=86.0, iters=1, grid=(1 << 32,)),
    },
    iteration=iteration,
))
