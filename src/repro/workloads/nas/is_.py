"""IS: integer bucket sort (extension beyond the paper's runs).

The paper excluded IS because its MPICH2-NewMadeleine lacked datatype
support; this reproduction has a datatype model, so IS runs.  Skeleton:
per iteration, an allreduce of bucket counts followed by an all-to-all
redistribution of keys, with the key exchange using a strided datatype
to exercise the pack/unpack cost path.
"""

from __future__ import annotations

from repro.mpi.datatypes import vector
from repro.workloads.nas.base import KernelClass, KernelSpec, register


def iteration(comm, ctx, i):
    nkeys = ctx.cls.grid[0]
    p = ctx.p
    yield from comm.compute(ctx.compute_per_iter)
    if p > 1:
        yield from comm.allreduce(size=4 * 1024)   # bucket histograms
        pair = max(64, 4 * nkeys // (p * p))
        # keys are gathered per destination bucket: strided accesses
        dtype = vector(count=max(1, pair // 256), blocklen=64, stride=256)
        tag = comm._next_coll_tag("is-keys")
        reqs = []
        for step in range(1, p):
            dst = (comm.rank + step) % p
            src = (comm.rank - step) % p
            rr = yield from comm.irecv(src=src, tag=(tag, step), datatype=dtype)
            sr = yield from comm.isend(dst, tag=(tag, step), size=pair,
                                       datatype=dtype)
            reqs.extend((rr, sr))
        yield from comm.waitall(reqs)


register(KernelSpec(
    name="is",
    rate_gflops=0.15,
    proc_rule="pow2",
    default_sim_iters=5,
    classes={
        "A": KernelClass("A", gop=0.78, iters=10, grid=(1 << 23,)),
        "B": KernelClass("B", gop=3.3, iters=10, grid=(1 << 25,)),
        "C": KernelClass("C", gop=13.4, iters=10, grid=(1 << 27,)),
    },
    iteration=iteration,
))
