"""NAS Parallel Benchmark communication skeletons (paper Fig. 8).

Each kernel is modeled by its *communication skeleton*: the real
per-iteration message pattern (multipartition sweeps, wavefront
pipelines, transposes, halo exchanges, all-to-alls) with message sizes
derived from the NPB problem classes, plus per-iteration compute time
derived from the official operation counts and a per-kernel effective
rate calibrated to 2009-era Opterons.  A handful of representative
iterations are simulated and scaled to the full iteration count (the
coarsening documented in DESIGN.md).

The paper runs BT, CG, EP, FT, SP, MG and LU (IS is excluded there for
lack of datatype support; we provide it as an extension).
"""

from repro.workloads.nas.base import (
    KERNELS,
    KernelClass,
    KernelSpec,
    NasRunResult,
    adjust_procs,
    default_nas_cluster,
    parallel_efficiency,
    run_kernel,
)

# importing the kernel modules registers them in KERNELS
from repro.workloads.nas import bt, cg, ep, ft, is_, lu, mg, sp  # noqa: F401,E402

__all__ = [
    "KERNELS",
    "KernelClass",
    "KernelSpec",
    "NasRunResult",
    "adjust_procs",
    "default_nas_cluster",
    "parallel_efficiency",
    "run_kernel",
]
