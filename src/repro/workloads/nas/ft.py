"""FT: 3D FFT — the all-to-all transpose benchmark.

Communication skeleton: each time step performs a global transpose of
the complex grid: an all-to-all where every pair exchanges
``16 * Nx*Ny*Nz / p^2`` bytes, wrapped in the FFT compute phases.  FT
is the bandwidth-heavy collective workload of the set.
"""

from __future__ import annotations

from repro.workloads.nas.base import KernelClass, KernelSpec, register


def iteration(comm, ctx, i):
    nx, ny, nz = ctx.cls.grid
    pair = max(64, 16 * nx * ny * nz // (ctx.p * ctx.p))
    yield from comm.compute(ctx.compute_per_iter / 2)
    if ctx.p > 1:
        yield from comm.alltoall(size=pair)
    yield from comm.compute(ctx.compute_per_iter / 2)


register(KernelSpec(
    name="ft",
    rate_gflops=0.204,
    proc_rule="pow2",
    default_sim_iters=8,
    classes={
        "A": KernelClass("A", gop=7.16, iters=6, grid=(256, 256, 128)),
        "B": KernelClass("B", gop=92.75, iters=20, grid=(512, 256, 256)),
        "C": KernelClass("C", gop=391.3, iters=20, grid=(512, 512, 512)),
    },
    iteration=iteration,
))
