"""SP: scalar-pentadiagonal solver.

Same multipartition sweep structure as BT but with twice the time steps
and roughly a third of the per-step computation — which is exactly why
SP is more communication-bound and scales worse (paper Fig. 8: SP at 36
processes is poor for every implementation).
"""

from __future__ import annotations

from repro.workloads.nas.base import KernelClass, KernelSpec, register
from repro.workloads.nas.bt import sweep_iteration


def iteration(comm, ctx, i):
    yield from sweep_iteration(comm, ctx, i, "sp")


register(KernelSpec(
    name="sp",
    rate_gflops=0.40,
    proc_rule="square",
    default_sim_iters=10,
    classes={
        "A": KernelClass("A", gop=85.0, iters=400, grid=(64,)),
        "B": KernelClass("B", gop=447.1, iters=400, grid=(102,)),
        "C": KernelClass("C", gop=1978.8, iters=400, grid=(162,)),
    },
    iteration=iteration,
))
