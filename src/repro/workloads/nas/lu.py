"""LU: SSOR solver with wavefront (pipelined) sweeps.

Communication skeleton: a 2D process grid; each time step runs a lower
and an upper triangular sweep.  Each sweep is pipelined over k-blocks:
a rank must receive boundary data from its upstream neighbours before
computing a block and forwarding to downstream neighbours.  Messages
are small (a few KiB) and numerous — the traffic mix the paper calls
out ("most of the traffic is composed of small messages").
"""

from __future__ import annotations

from repro.workloads.nas.base import (
    KernelClass,
    KernelSpec,
    grid_2d,
    register,
)

def _nblocks(px: int, py: int) -> int:
    """k-blocks per sweep.

    Real LU pipelines all N_z planes, so the pipeline-fill overhead per
    iteration is tiny; the skeleton coarsens planes into blocks but
    keeps the fill fraction representative by scaling the block count
    with the process-grid diameter.
    """
    return min(32, max(8, 2 * (px + py - 2)))


def _layout(comm, ctx):
    ex = ctx.extras
    if "px" not in ex:
        px, py = grid_2d(ctx.p)
        x, y = comm.rank // py, comm.rank % py
        n = ctx.cls.grid[0]
        nb = _nblocks(px, py)
        ex["px"], ex["py"], ex["x"], ex["y"], ex["nb"] = px, py, x, y, nb
        # boundary pencil: 5 doubles x (N/px) x (N/nb) cells
        ex["msg"] = max(64, 40 * (n // max(px, 1)) * (n // nb))
        ex["north"] = comm.rank - py if x > 0 else None
        ex["south"] = comm.rank + py if x < px - 1 else None
        ex["west"] = comm.rank - 1 if y > 0 else None
        ex["east"] = comm.rank + 1 if y < py - 1 else None
    return ex


def _sweep(comm, ctx, i, blocks, up_nbrs, down_nbrs, label):
    ex = ctx.extras
    chunk = ctx.compute_per_iter / (2 * ex["nb"])
    for b in blocks:
        for src in up_nbrs:
            if src is not None:
                yield from comm.recv(src=src, tag=("lu", label, i, b))
        yield from comm.compute(chunk)
        for dst in down_nbrs:
            if dst is not None:
                # NPB LU uses blocking MPI_Send: the library progresses
                # inside the call, which is what keeps the pipeline moving
                yield from comm.send(dst, tag=("lu", label, i, b),
                                     size=ex["msg"])


def iteration(comm, ctx, i):
    ex = _layout(comm, ctx)
    blocks = list(range(ex["nb"]))
    # lower sweep flows north/west -> south/east; upper sweep reverses
    yield from _sweep(comm, ctx, i, blocks,
                      (ex["north"], ex["west"]), (ex["south"], ex["east"]), "lo")
    yield from _sweep(comm, ctx, i, list(reversed(blocks)),
                      (ex["south"], ex["east"]), (ex["north"], ex["west"]), "up")


register(KernelSpec(
    name="lu",
    rate_gflops=0.667,
    proc_rule="pow2",
    default_sim_iters=8,
    classes={
        "A": KernelClass("A", gop=119.3, iters=250, grid=(64,)),
        "B": KernelClass("B", gop=554.7, iters=250, grid=(102,)),
        "C": KernelClass("C", gop=2295.9, iters=250, grid=(162,)),
    },
    iteration=iteration,
))
