"""CG: conjugate gradient with irregular sparse matrix-vector products.

Communication skeleton: per outer iteration, ~25 inner CG steps each
exchange partial vectors with a transpose partner across the process
grid and reduce dot products.  Inner steps are coarsened 5:1 (sizes
scaled up accordingly) to bound event counts; CG's low effective flop
rate reflects its memory-bound irregular accesses.
"""

from __future__ import annotations

from repro.workloads.nas.base import KernelClass, KernelSpec, register

#: real inner iterations per outer step, and the coarsening we apply
INNER = 25
COARSE = 5


def iteration(comm, ctx, i):
    n = ctx.cls.grid[0]
    p = ctx.p
    # bisection-heavy transpose exchange partner
    partner = (comm.rank + p // 2) % p if p > 1 else comm.rank
    seg = max(64, 8 * n // p * (INNER // COARSE))
    chunk = ctx.compute_per_iter / COARSE
    for s in range(COARSE):
        yield from comm.compute(chunk)
        if p > 1:
            yield from comm.sendrecv(partner, partner, tag=("cg", i, s), size=seg)
            yield from comm.allreduce(size=8 * (INNER // COARSE))


register(KernelSpec(
    name="cg",
    rate_gflops=0.054,
    proc_rule="pow2",
    default_sim_iters=10,
    classes={
        "A": KernelClass("A", gop=1.50, iters=15, grid=(14000,)),
        "B": KernelClass("B", gop=54.7, iters=75, grid=(75000,)),
        "C": KernelClass("C", gop=143.3, iters=75, grid=(150000,)),
    },
    iteration=iteration,
))
