"""MG: multigrid V-cycles with halo exchanges at every grid level.

Communication skeleton: each time step walks down and back up the grid
hierarchy; at each level every rank exchanges six halo faces with its
3D-torus neighbours, with face sizes shrinking by 4x per level.  Most
compute lives on the finest level; coarse levels are latency-bound.
"""

from __future__ import annotations

from repro.workloads.nas.base import (
    KernelClass,
    KernelSpec,
    grid_3d,
    register,
)

#: levels of the hierarchy we simulate per V-cycle
LEVELS = 4


def _layout(comm, ctx):
    ex = ctx.extras
    if "nbrs" not in ex:
        fx, fy, fz = grid_3d(ctx.p)
        r = comm.rank
        z, rem = r % fz, r // fz
        y, x = rem % fy, rem // fy

        def nid(dx, dy, dz):
            return (((x + dx) % fx) * fy + ((y + dy) % fy)) * fz + ((z + dz) % fz)

        ex["nbrs"] = [(nid(1, 0, 0), nid(-1, 0, 0)),
                      (nid(0, 1, 0), nid(0, -1, 0)),
                      (nid(0, 0, 1), nid(0, 0, -1))]
        ex["area_div"] = max(1, fy * fz)
    return ex


def iteration(comm, ctx, i):
    ex = _layout(comm, ctx)
    n = ctx.cls.grid[0]
    levels = [n >> k for k in range(LEVELS)]
    walk = levels + list(reversed(levels))       # down then up the V-cycle
    weights = [lev ** 3 for lev in walk]
    wsum = sum(weights)
    for step, lev in enumerate(walk):
        yield from comm.compute(ctx.compute_per_iter * weights[step] / wsum)
        if ctx.p > 1:
            face = max(64, 8 * lev * lev // ex["area_div"])
            for d, (fwd, bwd) in enumerate(ex["nbrs"]):
                if fwd == comm.rank:
                    continue
                yield from comm.sendrecv(fwd, bwd, tag=("mg", i, step, d),
                                         size=face)


register(KernelSpec(
    name="mg",
    rate_gflops=0.324,
    proc_rule="pow2",
    default_sim_iters=8,
    classes={
        "A": KernelClass("A", gop=3.63, iters=4, grid=(256,)),
        "B": KernelClass("B", gop=18.16, iters=20, grid=(256,)),
        "C": KernelClass("C", gop=155.7, iters=20, grid=(512,)),
    },
    iteration=iteration,
))
