"""Netpipe: the protocol-independent ping-pong performance evaluator.

Measures steady-state one-way latency (round-trip / 2) and bandwidth
across a sweep of message sizes, with warm-up iterations so that
registration caches behave as in the paper's runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.config import ClusterSpec, StackSpec
from repro.mpich2.request import ANY_SOURCE
from repro.runtime import run_mpi

__all__ = ["NetpipeResult", "pingpong", "run_netpipe"]

#: Fig. 4(a)/5(a)/6 latency sweep: 1 B .. 512 B
LATENCY_SIZES = [1 << i for i in range(10)]
#: Fig. 4(b)/5(b) bandwidth sweep: 1 B .. 64 MiB
BANDWIDTH_SIZES = [1 << i for i in range(0, 27, 2)]

MiB = 1024 * 1024


@dataclass
class NetpipeResult:
    """One stack's sweep: sizes, one-way latencies (s), bandwidths (MiB/s)."""

    stack: str
    sizes: List[int] = field(default_factory=list)
    latencies: List[float] = field(default_factory=list)
    bandwidths: List[float] = field(default_factory=list)

    def latency_at(self, size: int) -> float:
        return self.latencies[self.sizes.index(size)]

    def bandwidth_at(self, size: int) -> float:
        return self.bandwidths[self.sizes.index(size)]


def pingpong(size: int, reps: int, warmup: int, anysource: bool = False,
             peer_pair=(0, 1)):
    """Rank program: returns one-way time (s) on the initiating rank."""
    a, b = peer_pair

    def program(comm):
        if comm.rank not in (a, b):
            return None
        me_a = comm.rank == a
        peer = b if me_a else a
        src = ANY_SOURCE if (anysource and not me_a) else peer
        for i in range(warmup):
            if me_a:
                yield from comm.send(peer, tag=("w", i), size=size)
                yield from comm.recv(src=peer, tag=("w", i))
            else:
                yield from comm.recv(src=src, tag=("w", i))
                yield from comm.send(peer, tag=("w", i), size=size)
        t0 = comm.sim.now
        for i in range(reps):
            if me_a:
                yield from comm.send(peer, tag=("p", i), size=size)
                yield from comm.recv(src=peer, tag=("p", i))
            else:
                yield from comm.recv(src=src, tag=("p", i))
                yield from comm.send(peer, tag=("p", i), size=size)
        return (comm.sim.now - t0) / (2 * reps)

    return program


def run_netpipe(stack: StackSpec, cluster: ClusterSpec,
                sizes: Sequence[int], reps: int = 10, warmup: int = 2,
                anysource: bool = False, intra_node: bool = False,
                ranks_per_node: Optional[int] = None) -> NetpipeResult:
    """Sweep ``sizes`` between two ranks under one stack configuration.

    ``intra_node=True`` places both ranks on one node (Fig. 6a).
    """
    result = NetpipeResult(stack=stack.name)
    rpn = ranks_per_node
    if intra_node:
        cluster = ClusterSpec(n_nodes=1, node=cluster.node, rails=cluster.rails)
        rpn = 2
    for size in sizes:
        r = run_mpi(pingpong(size, reps, warmup, anysource=anysource),
                    2, stack, cluster=cluster, ranks_per_node=rpn)
        one_way = r.result(0)
        result.sizes.append(size)
        result.latencies.append(one_way)
        result.bandwidths.append(size / one_way / MiB)
    return result
