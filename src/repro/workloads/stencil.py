"""A 2D Jacobi stencil application skeleton.

The paper's conclusion promises to "exhibit the benefits of PIOMan on
real applications, especially in the overlapping department", and its
Section 4.2 notes the NAS kernels barely use the post-compute-wait
scheme.  This workload is the canonical application that *does*:

* **overlapped** version: post halo irecv/isend, compute the interior
  (the bulk of the work), wait for the halos, compute the boundary;
* **non-overlapped** version: exchange halos first, then compute.

With background progress (PIOMan) the halo rendezvous completes during
the interior computation; without it, the handshake waits until the
``waitall`` — the application-level payoff of Fig. 7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.config import ClusterSpec, StackSpec
from repro.runtime import run_mpi
from repro.workloads.nas.base import grid_2d


@dataclass(frozen=True)
class StencilConfig:
    """Problem shape for one stencil run.

    Defaults model a high-order stencil (deep ghost zones): the halo is
    large enough relative to the per-step computation that overlapping
    the exchange matters (~20 % of an iteration).
    """

    #: global grid edge (points); halo exchanges scale with n / sqrt(p)
    n: int = 8192
    #: time steps
    iters: int = 10
    #: per-point flop estimate per update
    flops_per_point: float = 2.5
    #: ghost-zone depth in points (high-order stencils need several)
    ghost_depth: int = 16

    def halo_bytes(self, px: int) -> int:
        return 8 * self.ghost_depth * self.n // px

    def interior_flops(self, p: int) -> float:
        return self.flops_per_point * (self.n * self.n) / p


@dataclass
class StencilResult:
    stack: str
    overlap: bool
    time_seconds: float
    per_iter: float


def stencil_program(cfg: StencilConfig, overlap: bool):
    def program(comm):
        p = comm.size
        px, py = grid_2d(p)
        x, y = comm.rank // py, comm.rank % py
        nbrs = [n for n in (
            comm.rank - py if x > 0 else None,
            comm.rank + py if x < px - 1 else None,
            comm.rank - 1 if y > 0 else None,
            comm.rank + 1 if y < py - 1 else None,
        ) if n is not None]
        halo = max(64, cfg.halo_bytes(px))
        interior = cfg.interior_flops(p) * 0.9
        boundary = cfg.interior_flops(p) * 0.1

        yield from comm.barrier()
        t0 = comm.sim.now
        for it in range(cfg.iters):
            if overlap:
                reqs = []
                for nb in nbrs:
                    r = yield from comm.irecv(src=nb, tag=("h", it, nb))
                    reqs.append(r)
                for nb in nbrs:
                    r = yield from comm.isend(nb, tag=("h", it, comm.rank),
                                              size=halo)
                    reqs.append(r)
                yield from comm.compute_flops(interior)
                yield from comm.waitall(reqs)
                yield from comm.compute_flops(boundary)
            else:
                for nb in nbrs:
                    yield from comm.sendrecv(nb, nb, tag=("h", it, comm.rank),
                                             recv_tag=("h", it, nb), size=halo)
                yield from comm.compute_flops(interior + boundary)
        yield from comm.barrier()
        return comm.sim.now - t0

    return program


def run_stencil(stack: StackSpec, nprocs: int,
                cfg: StencilConfig = StencilConfig(),
                cluster: Optional[ClusterSpec] = None,
                ranks_per_node: Optional[int] = None,
                overlap: bool = True) -> StencilResult:
    """Run the stencil under one stack; returns timing."""
    if cluster is None:
        cluster = ClusterSpec(n_nodes=nprocs)
    result = run_mpi(stencil_program(cfg, overlap), nprocs, stack,
                     cluster=cluster, ranks_per_node=ranks_per_node)
    elapsed = max(result.rank_results)
    return StencilResult(stack=stack.name, overlap=overlap,
                         time_seconds=elapsed, per_iter=elapsed / cfg.iters)
