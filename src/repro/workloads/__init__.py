"""Workloads: the benchmark programs of the paper's evaluation.

* :mod:`~repro.workloads.netpipe` — latency/bandwidth ping-pong sweeps
  (Figs. 4, 5, 6).
* :mod:`~repro.workloads.overlap` — the isend/compute/wait asynchronous
  progression benchmark (Fig. 7).
* :mod:`~repro.workloads.nas` — NAS Parallel Benchmark communication
  skeletons: BT, CG, EP, FT, SP, MG, LU (+ IS as an extension), classes
  A/B/C (Fig. 8).
* :mod:`~repro.workloads.stencil` — a halo-exchange application skeleton
  (the overlap payoff the paper's conclusion anticipates).
"""

from repro.workloads.netpipe import NetpipeResult, run_netpipe
from repro.workloads.overlap import OverlapResult, run_overlap
from repro.workloads.stencil import StencilConfig, StencilResult, run_stencil
from repro.workloads import nas

__all__ = [
    "NetpipeResult", "run_netpipe",
    "OverlapResult", "run_overlap",
    "StencilConfig", "StencilResult", "run_stencil",
    "nas",
]
