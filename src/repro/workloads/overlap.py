"""The communication/computation overlap benchmark (paper Fig. 7).

"The sender calls MPI_Isend, computes for a while and waits for the end
of the communication (using MPI_Wait).  Then the sender waits for an
incoming message.  We measure the time required to send the message and
to perform the computation."

A stack with background progress (PIOMan) yields
``max(computation, communication)``; the others yield the sum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.config import ClusterSpec, StackSpec
from repro.runtime import run_mpi


@dataclass
class OverlapResult:
    """Sending times (s) per message size for one (stack, compute) pair."""

    stack: str
    compute: float
    sizes: List[int]
    sending_times: List[float]

    def at(self, size: int) -> float:
        return self.sending_times[self.sizes.index(size)]


def overlap_program(size: int, compute: float, reps: int = 5, warmup: int = 1):
    """Rank 0 returns the mean isend+compute+wait time (s)."""

    def program(comm):
        total = 0.0
        for i in range(warmup + reps):
            if comm.rank == 0:
                t0 = comm.sim.now
                req = yield from comm.isend(1, tag=("ov", i), size=size)
                if compute > 0.0:
                    yield from comm.compute(compute)
                yield from comm.wait(req)
                if i >= warmup:
                    total += comm.sim.now - t0
                # wait for the receiver's ack before the next round
                yield from comm.recv(src=1, tag=("ack", i))
            else:
                yield from comm.recv(src=0, tag=("ov", i))
                yield from comm.send(0, tag=("ack", i), size=4)
        if comm.rank == 0:
            return total / reps
        return None

    return program


def run_overlap(stack: StackSpec, cluster: ClusterSpec, sizes: Sequence[int],
                compute: float, reps: int = 5) -> OverlapResult:
    """Measure sending time across ``sizes`` with a fixed compute phase."""
    times = []
    for size in sizes:
        r = run_mpi(overlap_program(size, compute, reps=reps), 2, stack,
                    cluster=cluster)
        times.append(r.result(0))
    return OverlapResult(stack=stack.name, compute=compute,
                         sizes=list(sizes), sending_times=times)
