"""Collective micro-benchmark (OSU-style, one collective per run).

Times ``reps`` back-to-back invocations of one collective at one
message size after ``warmup`` untimed rounds, with every rank's clock
started by a preliminary sync so stragglers count.  The reported
``per_op`` is the *slowest* rank's mean — the completion time an
application would observe.

``algorithm`` forces one registered implementation through
:func:`repro.coll.selector.forced`; ``None`` exercises the active
selection table (what real applications get).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.coll import selector
from repro.config import ClusterSpec, StackSpec
from repro.mpi.collectives import barrier_dissemination
from repro.runtime import run_mpi
from repro.simulator.tracing import Trace

#: collectives the bench knows how to drive (timing-only payloads)
BENCHABLE = ("barrier", "bcast", "reduce", "allreduce", "allgather",
             "alltoall")


@dataclass
class CollbenchResult:
    """One (collective, size) measurement under one stack."""

    stack: str
    collective: str
    algorithm: str            # resolved name actually run
    nprocs: int
    size: int
    per_op: float             # slowest rank's mean seconds per operation
    elapsed: float            # full simulated run (incl. warmup + sync)


def _one_op(comm, collective: str, size: int):
    if collective == "barrier":
        yield from comm.barrier()
    elif collective == "bcast":
        yield from comm.bcast(size)
    elif collective == "reduce":
        yield from comm.reduce(size)
    elif collective == "allreduce":
        yield from comm.allreduce(size)
    elif collective == "allgather":
        yield from comm.allgather(size)
    elif collective == "alltoall":
        yield from comm.alltoall(size)
    else:
        raise ValueError(f"unknown collective {collective!r}; "
                         f"benchable: {', '.join(BENCHABLE)}")


def collbench(collective: str, size: int, reps: int, warmup: int):
    """Rank program: returns this rank's mean seconds per operation."""

    def program(comm):
        for _ in range(warmup):
            yield from _one_op(comm, collective, size)
        # sync outside the measured region (and outside dispatch, so a
        # forced barrier algorithm is not perturbed by the sync itself)
        yield from barrier_dissemination(comm)
        t0 = comm.sim.now
        for _ in range(reps):
            yield from _one_op(comm, collective, size)
        return (comm.sim.now - t0) / reps

    return program


def run_collbench(stack: StackSpec, nprocs: int, collective: str, size: int,
                  algorithm: Optional[str] = None, reps: int = 5,
                  warmup: int = 2, cluster: Optional[ClusterSpec] = None,
                  trace: Optional[Trace] = None,
                  seed: int = 0) -> CollbenchResult:
    """Measure one collective at one size (one rank per node by default)."""
    if cluster is None:
        cluster = ClusterSpec(n_nodes=nprocs)
    resolved = (algorithm if algorithm is not None
                else selector.active_table().choose(collective, nprocs, size))

    def execute():
        return run_mpi(collbench(collective, size, reps, warmup),
                       nprocs, stack, cluster=cluster, trace=trace,
                       seed=seed)

    if algorithm is not None:
        with selector.forced(collective, algorithm):
            r = execute()
    else:
        r = execute()
    per_op = max(r.result(rank) for rank in range(nprocs))
    return CollbenchResult(stack=stack.name, collective=collective,
                           algorithm=resolved, nprocs=nprocs, size=size,
                           per_op=per_op, elapsed=r.elapsed)
