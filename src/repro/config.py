"""Stack and cluster configuration: the knobs of every experiment.

A :class:`StackSpec` describes one MPI implementation under test; a
:class:`ClusterSpec` describes the machines.  ``presets`` builds the
configurations the paper evaluates:

======================  =====================================================
preset                  paper name
======================  =====================================================
``mpich2_nmad``         MPICH2:Nem:Nmad (CH3-direct over NewMadeleine)
``mpich2_nmad_pioman``  MPICH2:Nem:Nmad:PIOMan
``mpich2_nmad_netmod``  plain network-module path (ablation, Fig. 2 costs)
``mvapich2``            MVAPICH2 1.0.3
``openmpi_ib``          Open MPI 1.2.7 (openib)
``openmpi_pml_mx``      Open MPI PML/CM over MX
``openmpi_btl_mx``      Open MPI BTL over MX
======================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.comparators import presets as comparator_presets
from repro.comparators.native import NativeCosts
from repro.hardware import presets as hw
from repro.hardware.netgraph import TopologySpec
from repro.hardware.params import NICParams, NodeParams
from repro.mpich2.ch3 import CH3Costs
from repro.mpich2.nemesis.shm import ShmCosts
from repro.nmad.core import NmadCosts
from repro.nmad.reliability import ReliabilityParams
from repro.pioman import PIOManParams


@dataclass(frozen=True)
class ClusterSpec:
    """Machines: node count/shape and the rails connecting them."""

    n_nodes: int
    node: NodeParams = hw.XEON_NODE
    rails: Tuple[NICParams, ...] = (hw.IB_CONNECTX,)
    #: when set, the named rails (all by default) become
    #: :class:`~repro.hardware.netgraph.RoutedFabric`\ s over this
    #: link/switch graph instead of flat full-bisection switches
    topology: Optional[TopologySpec] = None
    topo_rails: Tuple[str, ...] = ()

    def rail_names(self) -> Tuple[str, ...]:
        return tuple(r.name for r in self.rails)


@dataclass(frozen=True)
class StackSpec:
    """One MPI implementation configuration."""

    name: str
    kind: str = "nmad"                       # "nmad" | "native"
    rails: Tuple[str, ...] = ("ib",)         # rails this stack drives
    strategy: str = "aggreg"                 # nmad scheduling strategy
    mode: str = "direct"                     # "direct" | "netmod"
    pioman: bool = False
    #: progress-engine kind (repro.pioman.engines.ENGINE_KINDS) when
    #: ``pioman`` is on; None -> REPRO_PROGRESS env, then "pioman"
    progress: Optional[str] = None
    reg_cache: bool = False                  # nmad registers on the fly
    #: IB pin-down registration cache capacity in bytes (Liu et al.
    #: cs/0310059); 0 keeps today's on-the-fly registration
    ib_reg_cache: int = 0
    nmad_costs: NmadCosts = field(default_factory=NmadCosts)
    ch3_costs: CH3Costs = field(default_factory=CH3Costs)
    shm_costs: ShmCosts = field(default_factory=ShmCosts)
    pioman_params: PIOManParams = field(default_factory=PIOManParams)
    native_costs: Optional[NativeCosts] = None
    driver_window: int = 2
    #: when set, frames are acked/retransmitted and rails fail over
    #: (see :mod:`repro.nmad.reliability`); nmad stacks only
    reliability: Optional[ReliabilityParams] = None

    @property
    def compute_efficiency(self) -> float:
        if self.kind == "native" and self.native_costs is not None:
            return self.native_costs.compute_efficiency
        return 1.0

    def with_(self, **kw) -> "StackSpec":
        """A modified copy (ablation helper)."""
        return replace(self, **kw)


# ---------------------------------------------------------------------------
# paper configurations
# ---------------------------------------------------------------------------

def mpich2_nmad(rails: Tuple[str, ...] = ("ib",), strategy: Optional[str] = None,
                pioman: bool = False, **kw) -> StackSpec:
    """MPICH2 with the CH3-direct NewMadeleine integration."""
    if strategy is None:
        strategy = "split_balance" if len(rails) > 1 else "aggreg"
    suffix = "+".join(rails) + (":PIOMan" if pioman else "")
    return StackSpec(name=f"MPICH2:Nem:Nmad:{suffix}", kind="nmad",
                     rails=rails, strategy=strategy, mode="direct",
                     pioman=pioman, **kw)


def mpich2_nmad_pioman(rails: Tuple[str, ...] = ("ib",), **kw) -> StackSpec:
    return mpich2_nmad(rails=rails, pioman=True, **kw)


def mpich2_nmad_netmod(rails: Tuple[str, ...] = ("ib",), **kw) -> StackSpec:
    """The unmodified network-module path: cell copies + nested handshakes."""
    return StackSpec(name=f"MPICH2:Nem:netmod:{'+'.join(rails)}", kind="nmad",
                     rails=rails, strategy="aggreg", mode="netmod", **kw)


def mpich2_nmad_reliable(rails: Tuple[str, ...] = ("ib", "mx"),
                         pioman: bool = True, **kw) -> StackSpec:
    """Multirail stack with the reliability layer armed (chaos runs)."""
    kw.setdefault("reliability", ReliabilityParams())
    spec = mpich2_nmad(rails=rails, pioman=pioman, **kw)
    return spec.with_(name=spec.name + ":reliable")


def mvapich2(**kw) -> StackSpec:
    return StackSpec(name="MVAPICH2", kind="native", rails=("ib",),
                     native_costs=comparator_presets.MVAPICH2_IB, **kw)


def openmpi_ib(**kw) -> StackSpec:
    return StackSpec(name="Open MPI", kind="native", rails=("ib",),
                     native_costs=comparator_presets.OPENMPI_IB, **kw)


def openmpi_pml_mx(**kw) -> StackSpec:
    return StackSpec(name="Open MPI:PML:MX", kind="native", rails=("mx",),
                     native_costs=comparator_presets.OPENMPI_PML_MX, **kw)


def openmpi_btl_mx(**kw) -> StackSpec:
    return StackSpec(name="Open MPI:BTL:MX", kind="native", rails=("mx",),
                     native_costs=comparator_presets.OPENMPI_BTL_MX, **kw)


# ---------------------------------------------------------------------------
# paper testbeds
# ---------------------------------------------------------------------------

def xeon_pair(rails: Tuple[NICParams, ...] = (hw.IB_CONNECTX, hw.MX_MYRI10G)) -> ClusterSpec:
    """The point-to-point testbed: 2 dual-quadcore Xeon boxes."""
    return ClusterSpec(n_nodes=2, node=hw.XEON_NODE, rails=rails)


def grid5000(n_nodes: int = 10) -> ClusterSpec:
    """The NAS testbed: Opteron nodes with one IB 10G NIC each."""
    return ClusterSpec(n_nodes=n_nodes, node=hw.OPTERON_NODE,
                       rails=(hw.IB_10G_SDR,))
