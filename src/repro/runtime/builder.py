"""Assembly of a complete simulated MPI job.

``run_mpi(program, nprocs, stack, cluster)`` builds the simulator, the
hardware, one stack instance per rank (wired to the node NICs and
shared-memory fabrics), spawns one application thread per rank running
``program(comm)``, and runs the simulation to completion.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional

from repro.comparators.native import NativeStack
from repro.config import ClusterSpec, StackSpec
from repro.hardware.topology import Cluster, build_cluster
from repro.mpi.api import Communicator
from repro.mpich2.ch3 import CH3Stack
from repro.mpich2.nemesis.shm import NemesisShm
from repro.nmad.core import NmadCore
from repro.nmad.drivers import make_ib_driver, make_mx_driver
from repro.nmad.drivers.ib import RegistrationCache
from repro.nmad.packet import PacketWrapper
from repro.nmad.reliability import FrameReliability, RailHealthMonitor
from repro.nmad.strategies import make_strategy
from repro.pioman import PIOMan, make_engine
from repro.simulator import Simulator, Trace
from repro.threads.marcel import MarcelScheduler


@dataclass
class RunResult:
    """Outcome of one simulated MPI job."""

    elapsed: float                 # latest rank finish time (s)
    rank_results: List[Any]        # program return values, by rank
    rank_times: List[float]        # per-rank finish times (s)
    sim_time: float                # final simulator clock

    def result(self, rank: int = 0) -> Any:
        return self.rank_results[rank]


class MPIRuntime:
    """A fully wired simulated MPI job, ready to run programs."""

    def __init__(self, nprocs: int, stack: StackSpec,
                 cluster: Optional[ClusterSpec] = None,
                 ranks_per_node: Optional[int] = None,
                 trace: Optional[Trace] = None,
                 seed: int = 0,
                 faults: Optional[Any] = None,
                 scheduler: Optional[Any] = None):
        if nprocs < 1:
            raise ValueError("need at least one process")
        self.nprocs = nprocs
        self.spec = stack
        if cluster is None:
            cluster = ClusterSpec(n_nodes=nprocs)
        self.cluster_spec = cluster
        missing = set(stack.rails) - set(cluster.rail_names())
        if missing:
            raise ValueError(f"stack uses rails {sorted(missing)} "
                             f"not present in cluster {cluster.rail_names()}")

        self.seed = seed
        self.sim = Simulator(trace=trace, scheduler=scheduler)
        self.cluster: Cluster = build_cluster(
            self.sim, cluster.n_nodes, cluster.node, list(cluster.rails),
            topology=cluster.topology, topo_rails=cluster.topo_rails)

        if ranks_per_node is None:
            ranks_per_node = math.ceil(nprocs / cluster.n_nodes)
        self.ranks_per_node = ranks_per_node
        self._rank_node = [min(r // ranks_per_node, cluster.n_nodes - 1)
                           for r in range(nprocs)]

        self.schedulers: Dict[int, MarcelScheduler] = {}
        self.piomans: Dict[int, Optional[PIOMan]] = {}
        self.shms: Dict[int, NemesisShm] = {}
        self.stacks: List[Any] = []
        self.compute_efficiency = stack.compute_efficiency

        self.reliab: Optional[FrameReliability] = None
        self._build_nodes()
        self._build_stacks()
        self._wire_network()
        self._wire_reliability()
        self.injector = self._wire_faults(faults)

    # ------------------------------------------------------------------
    def rank_to_node(self, rank: int) -> int:
        return self._rank_node[rank]

    def scheduler_of(self, rank: int) -> MarcelScheduler:
        return self.schedulers[self.rank_to_node(rank)]

    def ranks_on_node(self, node_id: int) -> List[int]:
        return [r for r in range(self.nprocs) if self._rank_node[r] == node_id]

    # ------------------------------------------------------------------
    def _build_nodes(self) -> None:
        for node in self.cluster.nodes:
            sched = MarcelScheduler(self.sim, node.params,
                                    node_id=node.node_id, seed=self.seed)
            node.scheduler = sched
            # repro-check: allow[RPC004] build-time wiring, sim not running
            self.schedulers[node.node_id] = sched
            if self.spec.pioman:
                node.pioman = make_engine(self.spec.progress, self.sim,
                                          sched, self.spec.pioman_params)
            # repro-check: allow[RPC004] build-time wiring, sim not running
            self.piomans[node.node_id] = node.pioman
            if self.spec.kind == "nmad":
                # repro-check: allow[RPC004] build-time wiring
                self.shms[node.node_id] = NemesisShm(
                    self.sim, node.params.mem, self.spec.shm_costs)

    def _build_stacks(self) -> None:
        for rank in range(self.nprocs):
            node = self.cluster.node(self.rank_to_node(rank))
            if self.spec.kind == "nmad":
                # repro-check: allow[RPC004] build-time wiring
                self.stacks.append(self._build_nmad_stack(rank, node))
            elif self.spec.kind == "native":
                # repro-check: allow[RPC004] build-time wiring
                self.stacks.append(self._build_native_stack(rank, node))
            else:
                raise ValueError(f"unknown stack kind {self.spec.kind!r}")
        if self.spec.kind == "native":
            for rank, stack in enumerate(self.stacks):
                for peer in self.ranks_on_node(stack.node.node_id):
                    if peer != rank:
                        stack.local_peers[peer] = self.stacks[peer]
        else:
            for stack in self.stacks:
                stack.setup_vcs(self.nprocs, self.rank_to_node)

    def _build_nmad_stack(self, rank: int, node) -> CH3Stack:
        nmad_costs = replace(self.spec.nmad_costs,
                             upper_complete_cost=self.spec.ch3_costs.complete_overhead)
        core = NmadCore(
            self.sim, rank, node.node_id,
            mem=node.params.mem,
            registrar=node.make_registrar(cache=self.spec.reg_cache),
            costs=nmad_costs,
            rank_to_node=self.rank_to_node,
        )
        for rail in self.spec.rails:
            nic = node.nics[rail]
            if rail == "ib":
                # per-rank pin-down cache: registrations are per-process
                reg_cache = (RegistrationCache(node.params.mem,
                                               self.spec.ib_reg_cache)
                             if self.spec.ib_reg_cache > 0 else None)
                driver = make_ib_driver(nic, window=self.spec.driver_window,
                                        reg_cache=reg_cache)
            else:
                driver = make_mx_driver(nic, window=self.spec.driver_window)
            core.add_driver(driver)
        core.set_strategy(make_strategy(self.spec.strategy, core))
        return CH3Stack(
            self.sim, rank, node, node.scheduler, core,
            shm=self.shms[node.node_id], mode=self.spec.mode,
            pioman=node.pioman, costs=self.spec.ch3_costs,
        )

    def _build_native_stack(self, rank: int, node) -> NativeStack:
        rail = self.spec.rails[0]
        return NativeStack(
            self.sim, rank, node, node.scheduler, node.nics[rail],
            self.rank_to_node, costs=self.spec.native_costs,
            pioman=node.pioman,
        )

    def _wire_network(self) -> None:
        for node in self.cluster.nodes:
            for nic in node.nics.values():
                nic.rx_notify = self._route_frame

    def _wire_reliability(self) -> None:
        """Arm ack/retransmit/failover when the spec asks for it."""
        params = self.spec.reliability
        if params is None or self.spec.kind != "nmad":
            return
        self.reliab = FrameReliability(
            self.sim, params,
            core_of=lambda rank: self.stacks[rank].core,
            nic_of=lambda node_id, rail: self.cluster.fabrics[rail].nic(node_id),
        )
        for stack in self.stacks:
            core = stack.core
            core.reliability = params
            monitor = RailHealthMonitor(
                core, params, pioman=self.piomans[core.node_id])
            core.health = monitor
            for driver in core.drivers:
                driver.reliability = params
                driver.health = monitor

    def _wire_faults(self, faults):
        """Attach a fault plan (if any) to every fabric of the cluster."""
        if faults is None or getattr(faults, "empty", True):
            return None
        from repro.faults.injector import FaultInjector

        injector = FaultInjector(self.sim, faults, seed=self.seed)
        injector.attach(self.cluster.fabrics.values())
        injector.schedule_markers()
        return injector

    def _route_frame(self, frame) -> None:
        # rx callbacks fire from the NIC's timeline; acks mutate driver
        # state and deliveries touch stack inboxes on the dst node, so
        # the whole dispatch runs under that node's virtual lock
        with self.sim.sync_region(("node", frame.dst), "net.route"):
            if frame.corrupt:
                return  # failed its CRC at the receiving NIC
            if self.reliab is not None and not self.reliab.on_frame(frame):
                return  # control frame or duplicate, consumed by reliability
            payload = frame.payload
            if isinstance(payload, PacketWrapper):
                ranks = {e.dst_rank for e in payload.entries}
            else:
                ranks = {payload.dst_rank}
            for rank in sorted(ranks):
                self.stacks[rank].deliver(("net", frame))

    # ------------------------------------------------------------------
    def run(self, program: Callable, until: Optional[float] = None) -> RunResult:
        """Run ``program(comm)`` on every rank to completion."""
        results: List[Any] = [None] * self.nprocs
        times: List[float] = [-1.0] * self.nprocs

        def rank_main(rank: int):
            sched = self.scheduler_of(rank)
            yield sched.acquire_core()
            comm = Communicator(self, rank)
            gen = program(comm)
            if not hasattr(gen, "send"):
                raise TypeError(
                    "rank programs must be generator functions "
                    "(use `yield from comm....` inside)")
            results[rank] = yield from gen
            times[rank] = self.sim.now
            sched.release_core()

        for rank in range(self.nprocs):
            self.sim.spawn(rank_main(rank), name=f"rank{rank}")
        self.sim.run(until=until)

        stuck = [r for r, t in enumerate(times) if t < 0]
        if stuck:
            raise RuntimeError(
                f"MPI job did not complete: ranks {stuck} still blocked at "
                f"t={self.sim.now:.6f}s (deadlock or truncated run)")
        return RunResult(elapsed=max(times), rank_results=results,
                         rank_times=times, sim_time=self.sim.now)


def run_mpi(program: Callable, nprocs: int, stack: StackSpec,
            cluster: Optional[ClusterSpec] = None,
            ranks_per_node: Optional[int] = None,
            trace: Optional[Trace] = None,
            until: Optional[float] = None,
            seed: int = 0,
            faults: Optional[Any] = None,
            scheduler: Optional[Any] = None) -> RunResult:
    """Build a runtime and execute one program (the main entry point).

    Example
    -------
    >>> from repro import config
    >>> from repro.runtime import run_mpi
    >>> def hello(comm):
    ...     if comm.rank == 0:
    ...         yield from comm.send(1, tag=1, size=8, data="hi")
    ...     else:
    ...         msg = yield from comm.recv(src=0, tag=1)
    ...         return msg.data
    >>> run_mpi(hello, 2, config.mpich2_nmad()).result(1)
    'hi'
    """
    runtime = MPIRuntime(nprocs, stack, cluster=cluster,
                         ranks_per_node=ranks_per_node, trace=trace,
                         seed=seed, faults=faults, scheduler=scheduler)
    return runtime.run(program, until=until)
