"""Runtime: build a cluster + per-rank stacks and execute rank programs."""

from repro.runtime.builder import MPIRuntime, RunResult, run_mpi

__all__ = ["MPIRuntime", "RunResult", "run_mpi"]
