"""One-shot events: the synchronization primitive tasks wait on.

An :class:`Event` has three states: pending, succeeded, failed.  Tasks
``yield`` an event to block until it triggers.  Triggering is *scheduled*
(at the current time) rather than executed inline, so wake-up order is
the deterministic FIFO order of the engine queue.

This module is on the engine's innermost dispatch path (every task
switch triggers at least one event), so the hot methods trade a little
repetition for fewer Python frames: callback dispatch is inlined into
:meth:`Event.succeed` / :meth:`Event.fail`, and the combinators read
``_state`` / ``_value`` directly instead of going through the
properties.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.simulator.errors import SimulationError

_PENDING = 0
_SUCCEEDED = 1
_FAILED = 2


class Event:
    """A one-shot waitable.

    Notes
    -----
    * ``succeed``/``fail`` may be called exactly once.
    * Callbacks added after the event triggered run (scheduled) immediately.
    """

    __slots__ = ("sim", "_state", "_value", "_callbacks", "_observed")

    def __init__(self, sim):
        self.sim = sim
        self._state = _PENDING
        self._value: Any = None
        self._callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._observed = False

    # -- state ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has succeeded or failed."""
        return self._state != _PENDING

    @property
    def ok(self) -> bool:
        """True if the event succeeded."""
        return self._state == _SUCCEEDED

    @property
    def value(self) -> Any:
        """The success value, or the exception if the event failed."""
        return self._value

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        if self._state != _PENDING:
            raise SimulationError("event already triggered")
        self._state = _SUCCEEDED
        self._value = value
        # inline dispatch: schedule every waiter at the current time
        callbacks, self._callbacks = self._callbacks, None
        if callbacks:
            post = self.sim._post
            for fn in callbacks:
                post(0.0, fn, self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        if self._state != _PENDING:
            raise SimulationError("event already triggered")
        if not isinstance(exc, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exc!r}")
        self._state = _FAILED
        self._value = exc
        callbacks, self._callbacks = self._callbacks, None
        if callbacks:
            post = self.sim._post
            for fn in callbacks:
                post(0.0, fn, self)
        return self

    # -- waiting -------------------------------------------------------
    def add_done_callback(self, fn: Callable[["Event"], None]) -> None:
        """Call ``fn(event)`` (via the scheduler) once the event triggers."""
        self._observed = True
        callbacks = self._callbacks
        if callbacks is None:
            self.sim._post(0.0, fn, self)
        else:
            callbacks.append(fn)


class AllOf(Event):
    """Succeeds once all child events succeed; value is the list of values.

    Fails as soon as any child fails (first failure wins).
    """

    __slots__ = ("_children", "_remaining")

    def __init__(self, sim, events):
        super().__init__(sim)
        self._children = events
        self._remaining = len(events)
        if self._remaining == 0:
            self.succeed([])
            return
        for evt in events:
            evt.add_done_callback(self._on_child)

    def _on_child(self, evt: Event) -> None:
        if self._state != _PENDING:
            return
        if evt._state != _SUCCEEDED:
            self.fail(evt._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([e._value for e in self._children])


class AnyOf(Event):
    """Succeeds as soon as one child succeeds; value is ``(index, value)``."""

    __slots__ = ("_children",)

    def __init__(self, sim, events):
        super().__init__(sim)
        self._children = events
        if not events:
            raise SimulationError("AnyOf needs at least one event")
        for i, evt in enumerate(events):
            evt.add_done_callback(lambda e, i=i: self._on_child(i, e))

    def _on_child(self, index: int, evt: Event) -> None:
        if self._state != _PENDING:
            return
        if evt._state != _SUCCEEDED:
            self.fail(evt._value)
            return
        self.succeed((index, evt._value))
