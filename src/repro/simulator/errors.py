"""Exception types used by the simulation engine."""


class SimulationError(RuntimeError):
    """Base class for errors raised by the simulation engine itself."""


class DeadlockError(SimulationError):
    """Raised by :meth:`Simulator.run` when tasks remain but no events do.

    A discrete-event simulation has deadlocked when live tasks are all
    blocked on events that nothing can ever trigger.  This mirrors a real
    MPI deadlock (e.g. two ranks both in a blocking receive).
    """


class Interrupt(Exception):
    """Thrown into a task's generator by :meth:`Task.interrupt`.

    Carries an arbitrary ``cause`` describing why the task was
    interrupted (used e.g. by timer-driven preemption models).
    """

    def __init__(self, cause=None):
        super().__init__(cause)
        self.cause = cause
