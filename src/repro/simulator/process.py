"""Tasks: generator coroutines driven by the simulator.

A task wraps a generator.  Whenever the generator ``yield``s an
:class:`~repro.simulator.events.Event` the task blocks until it
triggers; the event's value is sent back into the generator (or the
exception thrown in, if the event failed).  When the generator returns,
the task — which is itself an event — succeeds with the return value.

:meth:`Task._on_event` is the single hottest callback in the whole
reproduction (every task switch goes through it), so the resume logic
is inlined there as well as kept in :meth:`Task._resume` for the
start/interrupt paths — one Python frame per wake-up instead of two.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.simulator.errors import Interrupt, SimulationError
from repro.simulator.events import _SUCCEEDED, Event

__all__ = ["Task"]


class Task(Event):
    """A running coroutine.  Yield a Task to join it.

    Attributes
    ----------
    name:
        Debug label, shown in tracebacks and traces.
    """

    __slots__ = ("name", "_gen", "_waiting_on", "_started")

    def __init__(self, sim, gen: Generator, name: str = ""):
        if not hasattr(gen, "send"):
            raise SimulationError(
                f"Task needs a generator, got {type(gen).__name__}; "
                "did you forget to call the coroutine function?"
            )
        super().__init__(sim)
        self.name = name or getattr(gen, "__name__", "task")
        self._gen = gen
        self._waiting_on: Optional[Event] = None
        self._started = False
        sim._running_tasks += 1
        # First resume happens through the scheduler so a freshly spawned
        # task never runs synchronously inside its creator.
        sim._post(0.0, self._resume, None, None)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the task at the current time.

        Only valid while the task is blocked on an event.  The event the
        task was waiting for stays valid; the task simply stops waiting
        for it.
        """
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished task {self.name!r}")
        self.sim.schedule(0.0, self._do_interrupt, Interrupt(cause))

    def _do_interrupt(self, exc: Interrupt) -> None:
        if self.triggered:
            return
        self._waiting_on = None
        self._resume(None, exc)

    def _on_event(self, evt: Event) -> None:
        # hot path: _resume inlined (keep the two bodies in sync)
        if self._waiting_on is not evt:
            return  # stale wake-up (e.g. after an interrupt)
        self._waiting_on = None
        try:
            if evt._state == _SUCCEEDED:
                target = self._gen.send(evt._value)
            else:
                target = self._gen.throw(evt._value)
        except StopIteration as stop:
            self.sim._running_tasks -= 1
            self.succeed(stop.value)
            return
        except BaseException as err:
            self.sim._running_tasks -= 1
            self.fail(err)
            self.sim._failed_tasks.append(self)
            return
        if not isinstance(target, Event):
            self.sim._running_tasks -= 1
            bad = SimulationError(
                f"task {self.name!r} yielded {target!r}; tasks must yield Events"
            )
            self.fail(bad)
            self.sim._failed_tasks.append(self)
            return
        self._waiting_on = target
        target.add_done_callback(self._on_event)

    def _resume(self, value: Any, exc: Optional[BaseException]) -> None:
        if self.triggered:
            return
        self._started = True
        try:
            if exc is not None:
                target = self._gen.throw(exc)
            else:
                target = self._gen.send(value)
        except StopIteration as stop:
            self.sim._running_tasks -= 1
            self.succeed(stop.value)
            return
        except BaseException as err:
            self.sim._running_tasks -= 1
            self.fail(err)
            self.sim._failed_tasks.append(self)
            return
        if not isinstance(target, Event):
            self.sim._running_tasks -= 1
            bad = SimulationError(
                f"task {self.name!r} yielded {target!r}; tasks must yield Events"
            )
            self.fail(bad)
            self.sim._failed_tasks.append(self)
            return
        self._waiting_on = target
        target.add_done_callback(self._on_event)
