"""Blocking resources built on events: semaphores, mutexes, channels.

These model the synchronization objects the paper's stack needs:
semaphore-style completion waits (PIOMan replaces busy-wait loops with
semaphores, Section 3.3.2), mutual exclusion around non-thread-safe
network drivers, and FIFO message channels (Nemesis queues, NIC request
queues).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.simulator.errors import SimulationError
from repro.simulator.events import Event

__all__ = ["Semaphore", "Mutex", "Channel"]


class Semaphore:
    """Counting semaphore with FIFO wake-up order.

    ``acquire()`` returns an :class:`Event` that succeeds once a unit is
    granted — yield it to block.
    """

    def __init__(self, sim, value: int = 0):
        if value < 0:
            raise SimulationError(f"semaphore initial value must be >= 0, got {value}")
        self.sim = sim
        self._value = value
        self._waiters: Deque[Event] = deque()

    @property
    def value(self) -> int:
        """Units currently available."""
        return self._value

    @property
    def waiting(self) -> int:
        """Number of blocked acquirers."""
        return len(self._waiters)

    def acquire(self) -> Event:
        evt = Event(self.sim)
        if self._value > 0:
            self._value -= 1
            monitor = self.sim.monitor
            if monitor is not None:
                monitor.sync_acquire(("sem", id(self)))
            evt.succeed()
        else:
            self._waiters.append(evt)
        return evt

    def try_acquire(self) -> bool:
        """Non-blocking acquire; True on success."""
        if self._value > 0:
            self._value -= 1
            monitor = self.sim.monitor
            if monitor is not None:
                monitor.sync_acquire(("sem", id(self)))
            return True
        return False

    def release(self, units: int = 1) -> None:
        monitor = self.sim.monitor
        if monitor is not None:
            monitor.sync_release(("sem", id(self)))
        for _ in range(units):
            if self._waiters:
                self._waiters.popleft().succeed()
            else:
                self._value += 1


class Mutex(Semaphore):
    """Binary semaphore starting unlocked.

    Models locks protecting non-thread-safe drivers and request lists
    (the source of PIOMan's network-path synchronization overhead).
    """

    def __init__(self, sim):
        super().__init__(sim, value=1)

    def release(self, units: int = 1) -> None:
        if units != 1:
            raise SimulationError("mutex release must be one unit")
        if self._value >= 1 and not self._waiters:
            raise SimulationError("mutex released while not held")
        super().release()


class Channel:
    """Unbounded FIFO channel of items.

    ``get()`` returns an event carrying the next item; getters are served
    in FIFO order.  This is the shape of the Nemesis receive queue and of
    NIC completion queues.
    """

    def __init__(self, sim):
        self.sim = sim
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        monitor = self.sim.monitor
        if monitor is not None:
            monitor.sync_release(("chan", id(self)))
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        evt = Event(self.sim)
        if self._items:
            self._observe()
            evt.succeed(self._items.popleft())
        else:
            self._getters.append(evt)
        return evt

    def try_get(self) -> Optional[Any]:
        """Non-blocking get; None when empty."""
        if self._items:
            self._observe()
            return self._items.popleft()
        return None

    def peek(self) -> Optional[Any]:
        """Look at the head item without removing it; None when empty."""
        if self._items:
            self._observe()
            return self._items[0]
        return None

    def _observe(self) -> None:
        """Join the putters' published clock into the current context."""
        monitor = self.sim.monitor
        if monitor is not None:
            monitor.sync_acquire(("chan", id(self)))
