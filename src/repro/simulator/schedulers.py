"""Pluggable event-queue schedulers for the simulator core.

The engine needs exactly one data-structure contract: ``push`` entries
keyed by ``(time, seq)`` and hand them back in that total order.  The
right implementation depends on workload shape, so the structure is
pluggable via ``Simulator(scheduler=...)`` (or the ``REPRO_SCHEDULER``
environment knob):

* :class:`HeapScheduler` — the reference binary heap.  O(log n) per
  operation, minimal constant factors, behaviourally identical to the
  engine's original inline ``heapq`` loop.  Select with ``"heap"``.
* :class:`CalendarScheduler` — a bucketed calendar queue (Brown 1988)
  with adaptive bucket width.  Pushes are O(1) dict+append; the drain
  side extracts whole *batches* of same-timestamp entries in one call,
  which is what makes dense event floods (collective fan-outs posting
  thousands of events at one sim time, PIOMan poll ticks) cheap.
  Select with ``"calendar"`` — the default.

Entry contract (owned by :mod:`repro.simulator.engine`): tuples of
shape ``(time, seq, handle)`` or ``(time, seq, fn, args)``.  ``seq`` is
globally unique and allocated in push order, so tuple comparison never
reaches the third element and ties in time resolve to FIFO.

Equivalence contract — enforced by ``tests/simulator/``'s differential
and property harnesses, and the reason the calendar queue is safe to
default to:

* ``pop``/``pop_batch`` yield entries in strictly increasing
  ``(time, seq)`` order, bit-identical to the heap's order;
* ``pop_batch`` returns a maximal run of equal-time entries in seq
  order; a push at exactly the open batch's time joins that batch
  (its seq is greater than every pending entry's, so appending keeps
  the run sorted);
* lazy deletion: cancelled handles stay queued and are skipped at
  dispatch; :meth:`EventScheduler.remove_if` compacts them in batch.
"""

from __future__ import annotations

import os
from bisect import insort
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple, Union

__all__ = [
    "EventScheduler",
    "HeapScheduler",
    "CalendarScheduler",
    "SCHEDULER_ENV",
    "SCHEDULER_KINDS",
    "make_scheduler",
]

#: heap entries are (time, seq, handle) or (time, seq, fn, args)
Entry = Tuple[Any, ...]

#: environment knob consulted when ``Simulator(scheduler=None)``
SCHEDULER_ENV = "REPRO_SCHEDULER"

_DEFAULT_KIND = "calendar"


class EventScheduler:
    """Interface of a pending-event container ordered by ``(time, seq)``.

    Concrete schedulers must keep the pop order bit-identical to a
    binary heap over the same pushes — the engine's determinism (and
    the golden suite) rides on it.
    """

    #: registry name, reported through ``Simulator.perf_stats()``
    kind: str = "abstract"

    def push(self, entry: Entry) -> None:
        """Queue one entry."""
        raise NotImplementedError

    def pop(self) -> Optional[Entry]:
        """Remove and return the smallest entry, or None when empty."""
        raise NotImplementedError

    def pop_batch(self) -> Optional[List[Entry]]:
        """Remove and return a maximal equal-time run, or None when empty.

        The returned list is sorted by seq.  Until :meth:`end_batch` is
        called the batch is *open*: a scheduler may route pushes that
        carry exactly the batch timestamp onto the returned list (they
        hold greater seqs than every pending entry, so the run stays
        sorted, and the engine's drain loop re-checks the length).
        """
        raise NotImplementedError

    def end_batch(self, batch: List[Entry], done: int) -> None:
        """Close the open batch; re-queue ``batch[done:]`` if present.

        Entries past ``done`` were never dispatched (an exception
        escaped the drain loop); they go back into the queue so a
        subsequent ``run()`` resumes exactly where the previous one
        stopped — the same recovery the heap gave for free.
        """
        raise NotImplementedError

    def peek_time(self) -> Optional[float]:
        """Timestamp of the smallest entry, or None when empty."""
        raise NotImplementedError

    def remove_if(self, pred: Callable[[Entry], bool]) -> int:
        """Drop every queued entry matching ``pred``; return the count."""
        raise NotImplementedError

    def entries(self) -> Iterator[Entry]:
        """Iterate over queued entries (no order guarantee; test hook)."""
        raise NotImplementedError

    def stats(self) -> Dict[str, float]:
        """Structure-specific counters for ``perf_stats()`` telemetry."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class HeapScheduler(EventScheduler):
    """The reference scheduler: a plain binary heap (``heapq``).

    Kept (and CI-exercised via ``REPRO_SCHEDULER=heap``) as the ground
    truth the calendar queue is differentially tested against.
    """

    kind = "heap"

    __slots__ = ("_h",)

    def __init__(self) -> None:
        self._h: List[Entry] = []

    def push(self, entry: Entry) -> None:
        heappush(self._h, entry)

    def pop(self) -> Optional[Entry]:
        if not self._h:
            return None
        return heappop(self._h)

    def pop_batch(self) -> Optional[List[Entry]]:
        h = self._h
        if not h:
            return None
        entry = heappop(h)
        batch = [entry]
        # exact same-timestamp run: ties share one dispatch batch
        # repro-lint: allow[RPR004] — equal floats ARE the batch contract
        first = entry[0]
        while h and h[0][0] == first:  # repro-lint: allow[RPR004]
            batch.append(heappop(h))
        return batch

    def end_batch(self, batch: List[Entry], done: int) -> None:
        h = self._h
        for entry in batch[done:]:
            heappush(h, entry)

    def peek_time(self) -> Optional[float]:
        if not self._h:
            return None
        return float(self._h[0][0])

    def remove_if(self, pred: Callable[[Entry], bool]) -> int:
        kept = [entry for entry in self._h if not pred(entry)]
        removed = len(self._h) - len(kept)
        if removed:
            heapify(kept)
            self._h = kept
        return removed

    def entries(self) -> Iterator[Entry]:
        return iter(self._h)

    def stats(self) -> Dict[str, float]:
        return {"entries": float(len(self._h))}

    def __len__(self) -> int:
        return len(self._h)


#: starting bucket width (seconds).  The stack's event spacing is
#: ns..us scale; adaptation corrects either direction from here.
_INIT_WIDTH = 1e-7
#: sorted-bucket length that triggers a width shrink (when the bucket
#: actually spans more than one timestamp)
_SPLIT_BUCKET = 512
#: entries per bucket the resize aims for
_TARGET_FILL = 16
#: pushes between sparsity checks (widen direction)
_WIDEN_CHECK = 8192
#: never resize by less than this factor (avoids rehash thrash)
_MIN_RESIZE_RATIO = 2.0


class CalendarScheduler(EventScheduler):
    """Bucketed calendar queue with adaptive width and batch drain.

    Layout: a dict keyed by ``int(time / width)`` holding unsorted
    entry lists, plus a small heap of bucket keys.  A push is an O(1)
    dict lookup + append.  The drain side *promotes* the minimum
    bucket: sorts it once (Timsort on the nearly sorted append order),
    removes it from the dict, and serves equal-time batches out of the
    promoted run by advancing an index — no per-batch re-sort, no list
    shifting.  Pushes that land inside the live run's remaining span
    are bisect-inserted so the run stays exact; buckets therefore only
    ever hold times *after* the run's tail, which keeps every batch
    maximal.  Cost per entry is O(log B) amortized while the width
    matches the event spacing; two deterministic triggers keep it
    matched:

    * **shrink** — a drained bucket holds more than ``_SPLIT_BUCKET``
      entries spanning multiple timestamps: the width is re-derived
      from that bucket's observed span (aiming at ``_TARGET_FILL``
      entries per bucket) and everything is rehashed;
    * **widen** — a periodic push-count check finds far more buckets
      than entries (every entry alone in its bucket, the key heap
      degenerating toward a plain heap): the width is re-derived from
      the pending key span.

    Both triggers depend only on queue state, never on host time, so
    runs stay bit-for-bit reproducible.

    The same-timestamp floods this repo cares about (collective
    fan-outs, zero-delay event dispatch) all land in the *open batch*
    fast path: while the engine drains a batch at time ``t``, a push at
    exactly ``t`` is appended straight onto the draining list — no
    bucket math, no sort, no heap.
    """

    kind = "calendar"

    __slots__ = ("_buckets", "_keys", "_width", "_inv_width", "_count",
                 "_open", "_open_t", "_pending", "_pending_i",
                 "_push_tick", "_resizes", "_batches", "_max_batch")

    def __init__(self, width: float = _INIT_WIDTH) -> None:
        if width <= 0.0:
            raise ValueError(f"bucket width must be positive, got {width!r}")
        self._buckets: Dict[int, List[Entry]] = {}
        self._keys: List[int] = []       # min-heap of bucket keys (lazy dups)
        self._width = width
        self._inv_width = 1.0 / width
        self._count = 0
        #: batch currently being drained by the engine (live-append target)
        self._open: Optional[List[Entry]] = None
        self._open_t = 0.0
        #: the promoted run: one whole bucket, sorted, consumed by index
        self._pending: List[Entry] = []
        self._pending_i = 0
        self._push_tick = 0
        self._resizes = 0
        self._batches = 0
        self._max_batch = 0

    # -- write side ----------------------------------------------------
    def push(self, entry: Entry) -> None:
        open_batch = self._open
        # repro-lint: allow[RPR004] — exact-equal time IS the batch key:
        # a zero-delay post from inside the batch carries the batch's
        # own float, and a greater seq than everything pending
        if open_batch is not None and entry[0] == self._open_t:
            open_batch.append(entry)
            return
        pending = self._pending
        i = self._pending_i
        if i < len(pending):
            time = entry[0]
            if time < pending[i][0]:
                # a push under the promoted run's head (only possible
                # from user code between stepped runs): spill the run
                # back so the bucket walk re-derives the true minimum
                self._spill_pending()
                self._insert(entry)
            elif time <= pending[-1][0]:
                # inside the live run's remaining span: bisect in, so
                # buckets never hold a time at or before the run tail
                # (that keeps every served batch maximal and exact)
                insort(pending, entry, i)
            else:
                self._insert(entry)
        else:
            self._insert(entry)
        self._count += 1
        self._push_tick += 1
        if self._push_tick >= _WIDEN_CHECK:
            self._push_tick = 0
            self._maybe_widen()

    def _insert(self, entry: Entry) -> None:
        key = int(entry[0] * self._inv_width)
        bucket = self._buckets.get(key)
        if bucket is None:
            self._buckets[key] = [entry]
            heappush(self._keys, key)
        else:
            bucket.append(entry)

    def _spill_pending(self) -> None:
        for entry in self._pending[self._pending_i:]:
            self._insert(entry)
        self._pending = []
        self._pending_i = 0

    # -- read side -----------------------------------------------------
    def _promote(self) -> bool:
        """Promote the minimum bucket into the pending run.

        The bucket is sorted once, removed from the dict, and becomes
        ``self._pending`` served by index.  Equal times always hash to
        the same key, and :meth:`push` never buckets a time at or below
        the pending tail, so every batch carved from the run is the
        maximal equal-time run of the whole queue.
        """
        buckets = self._buckets
        keys = self._keys
        while keys:
            key = keys[0]
            bucket = buckets.get(key)
            if not bucket:
                heappop(keys)            # stale or emptied key
                if bucket is not None:
                    del buckets[key]
                continue
            heappop(keys)
            del buckets[key]
            bucket.sort()
            if len(bucket) >= _SPLIT_BUCKET:
                self._maybe_shrink(bucket)
            self._pending = bucket
            self._pending_i = 0
            return True
        return False

    def pop_batch(self) -> Optional[List[Entry]]:
        pending = self._pending
        i = self._pending_i
        if i >= len(pending):
            if not self._promote():
                return None
            pending = self._pending
            i = 0
        first = pending[i][0]
        j = i + 1
        n = len(pending)
        # repro-lint: allow[RPR004] — equal floats ARE the batch
        while j < n and pending[j][0] == first:
            j += 1
        if i == 0 and j == n:
            batch = pending                 # whole run in one batch: no copy
            self._pending = []
            self._pending_i = 0
        else:
            batch = pending[i:j]
            if j >= n:
                self._pending = []
                self._pending_i = 0
            else:
                self._pending_i = j
        self._count -= len(batch)
        self._open = batch
        self._open_t = first
        self._batches += 1
        if len(batch) > self._max_batch:
            self._max_batch = len(batch)
        return batch

    def end_batch(self, batch: List[Entry], done: int) -> None:
        self._open = None
        if done < len(batch):
            # undispatched leftovers share the batch timestamp, which
            # precedes everything still pending: prepend, don't rehash
            left = batch[done:]
            i = self._pending_i
            pending = self._pending
            if i < len(pending):
                self._pending = left + pending[i:]
            else:
                self._pending = left
            self._pending_i = 0
            self._count += len(left)

    def pop(self) -> Optional[Entry]:
        pending = self._pending
        i = self._pending_i
        if i >= len(pending):
            if not self._promote():
                return None
            pending = self._pending
            i = 0
        entry = pending[i]
        if i + 1 >= len(pending):
            self._pending = []
            self._pending_i = 0
        else:
            self._pending_i = i + 1
        self._count -= 1
        return entry

    def peek_time(self) -> Optional[float]:
        pending = self._pending
        i = self._pending_i
        if i >= len(pending):
            if not self._promote():
                return None
            pending = self._pending
            i = 0
        return float(pending[i][0])

    # -- adaptive width ------------------------------------------------
    def _rehash(self, new_width: float) -> None:
        entries: List[Entry] = []
        for bucket in self._buckets.values():
            entries.extend(bucket)
        self._width = new_width
        self._inv_width = 1.0 / new_width
        buckets: Dict[int, List[Entry]] = {}
        inv = self._inv_width
        for entry in entries:
            key = int(entry[0] * inv)
            lst = buckets.get(key)
            if lst is None:
                buckets[key] = [entry]
            else:
                lst.append(entry)
        self._buckets = buckets
        keys = list(buckets)
        heapify(keys)
        self._keys = keys
        self._resizes += 1

    def _maybe_shrink(self, bucket: List[Entry]) -> None:
        """A sorted, oversized, multi-timestamp bucket: narrow the width."""
        span = float(bucket[-1][0]) - float(bucket[0][0])
        if span <= 0.0:
            return                       # one huge same-time flood: fine
        new_width = span / max(1.0, len(bucket) / _TARGET_FILL)
        if new_width <= 0.0 or self._width / new_width < _MIN_RESIZE_RATIO:
            return
        self._rehash(new_width)

    def _maybe_widen(self) -> None:
        """Far more buckets than entries: re-derive width from key span."""
        n_buckets = len(self._buckets)
        if n_buckets < 64 or self._count >= n_buckets * 2:
            return
        keys = self._buckets.keys()
        span_keys = max(keys) - min(keys) + 1
        span = span_keys * self._width
        new_width = span / max(1.0, self._count / _TARGET_FILL)
        if new_width / self._width < _MIN_RESIZE_RATIO:
            return
        self._rehash(new_width)

    # -- maintenance & introspection ------------------------------------
    def remove_if(self, pred: Callable[[Entry], bool]) -> int:
        removed = 0
        if self._pending_i < len(self._pending):
            kept = [entry for entry in self._pending[self._pending_i:]
                    if not pred(entry)]
            removed += len(self._pending) - self._pending_i - len(kept)
            self._pending = kept
            self._pending_i = 0
        buckets = self._buckets
        for key in list(buckets):
            bucket = buckets[key]
            kept = [entry for entry in bucket if not pred(entry)]
            if len(kept) != len(bucket):
                removed += len(bucket) - len(kept)
                if kept:
                    buckets[key] = kept
                else:
                    del buckets[key]     # key goes stale; drained lazily
        self._count -= removed
        return removed

    def entries(self) -> Iterator[Entry]:
        yield from self._pending[self._pending_i:]
        for bucket in self._buckets.values():
            yield from bucket

    def stats(self) -> Dict[str, float]:
        return {
            "width": self._width,
            "buckets": float(len(self._buckets)),
            "resizes": float(self._resizes),
            "batches": float(self._batches),
            "max_batch": float(self._max_batch),
        }

    def __len__(self) -> int:
        return self._count


#: name -> factory, the ``Simulator(scheduler=...)`` registry
SCHEDULER_KINDS: Dict[str, Callable[[], EventScheduler]] = {
    "heap": HeapScheduler,
    "calendar": CalendarScheduler,
}


def make_scheduler(
        scheduler: Union[EventScheduler, str, None] = None) -> EventScheduler:
    """Resolve a scheduler selection to an instance.

    ``None`` consults the ``REPRO_SCHEDULER`` environment variable and
    falls back to the calendar queue; a string is looked up in
    :data:`SCHEDULER_KINDS`; an :class:`EventScheduler` instance passes
    through untouched.
    """
    if isinstance(scheduler, EventScheduler):
        return scheduler
    if scheduler is None:
        scheduler = os.environ.get(SCHEDULER_ENV, _DEFAULT_KIND) or \
            _DEFAULT_KIND
    try:
        factory = SCHEDULER_KINDS[scheduler]
    except KeyError:
        known = ", ".join(sorted(SCHEDULER_KINDS))
        raise ValueError(
            f"unknown scheduler {scheduler!r} (known: {known})") from None
    return factory()
