"""Deterministic discrete-event simulation engine.

This package is the substrate for the whole reproduction: every other
subsystem (NIC models, thread schedulers, the MPI stacks) is expressed as
tasks running inside a :class:`~repro.simulator.engine.Simulator`.

The design follows the classic coroutine DES shape (SimPy-like, but
self-contained and deterministic):

* :class:`~repro.simulator.engine.Simulator` owns the event heap and the
  clock.
* :class:`~repro.simulator.events.Event` is the one-shot synchronization
  primitive; tasks yield events to wait for them.
* :class:`~repro.simulator.process.Task` drives a generator coroutine; a
  task is itself an event that triggers when the generator returns.
* :mod:`~repro.simulator.resources` provides semaphores, mutexes and
  channels built on events.

Determinism: ties in time are broken by a monotonically increasing
sequence number, so two runs with the same inputs produce identical
schedules.  All randomness must come from :mod:`repro.simulator.rng`
streams seeded explicitly.
"""

from repro.simulator.engine import Simulator, ScheduledCallback
from repro.simulator.schedulers import (EventScheduler, HeapScheduler,
                                        CalendarScheduler, SCHEDULER_ENV,
                                        SCHEDULER_KINDS, make_scheduler)
from repro.simulator.events import Event, AllOf, AnyOf
from repro.simulator.process import Task
from repro.simulator.resources import Semaphore, Mutex, Channel
from repro.simulator.errors import SimulationError, Interrupt
from repro.simulator.hostclock import host_clock
from repro.simulator.tracing import (Trace, TraceRecord, TraceSampler,
                                     RingTrace, JsonlTrace, load_trace_jsonl)
from repro.simulator.rng import rng_stream

__all__ = [
    "Simulator",
    "ScheduledCallback",
    "EventScheduler",
    "HeapScheduler",
    "CalendarScheduler",
    "SCHEDULER_ENV",
    "SCHEDULER_KINDS",
    "make_scheduler",
    "Event",
    "AllOf",
    "AnyOf",
    "Task",
    "Semaphore",
    "Mutex",
    "Channel",
    "SimulationError",
    "Interrupt",
    "Trace",
    "TraceRecord",
    "TraceSampler",
    "RingTrace",
    "JsonlTrace",
    "load_trace_jsonl",
    "host_clock",
    "rng_stream",
]
