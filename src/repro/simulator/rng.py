"""Deterministic random streams.

Every stochastic component derives its own independent stream from a
root seed plus a structured key, so adding a component never perturbs
the stream of another (counter-based sub-seeding via SeedSequence).
"""

from __future__ import annotations

import zlib
from typing import Union

import numpy as np

Key = Union[str, int]


def _key_to_int(key: Key) -> int:
    if isinstance(key, int):
        return key
    return zlib.crc32(str(key).encode("utf-8"))


def rng_stream(root_seed: int, *key: Key) -> np.random.Generator:
    """An independent, reproducible generator for (root_seed, *key).

    Example
    -------
    >>> a = rng_stream(42, "nic", 0)
    >>> b = rng_stream(42, "nic", 0)
    >>> float(a.random()) == float(b.random())
    True
    """
    seq = np.random.SeedSequence([root_seed] + [_key_to_int(k) for k in key])
    return np.random.default_rng(seq)
