"""Structured trace recording for simulations.

Tracing is opt-in: construct a :class:`Trace` and pass it to the
:class:`~repro.simulator.engine.Simulator`.  Subsystems then emit
records through ``sim.record(category, **data)``.  Records are cheap
named tuples; filtering helpers make assertions in tests readable.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, NamedTuple, Optional


class TraceRecord(NamedTuple):
    time: float
    category: str
    data: Dict[str, Any]


class Trace:
    """An append-only log of :class:`TraceRecord`."""

    def __init__(self, categories: Optional[set] = None):
        #: restrict recording to these categories (None = record all)
        self.categories = categories
        self.records: List[TraceRecord] = []

    def append(self, time: float, category: str, data: Dict[str, Any]) -> None:
        if self.categories is not None and category not in self.categories:
            return
        self.records.append(TraceRecord(time, category, data))

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def filter(self, category: str, **match: Any) -> List[TraceRecord]:
        """Records of ``category`` whose data contains all of ``match``."""
        out = []
        for rec in self.records:
            if rec.category != category:
                continue
            if all(rec.data.get(k) == v for k, v in match.items()):
                out.append(rec)
        return out

    def count(self, category: str, **match: Any) -> int:
        return len(self.filter(category, **match))
