"""Structured trace recording for simulations.

Tracing is opt-in: construct a :class:`Trace` and pass it to the
:class:`~repro.simulator.engine.Simulator`.  Subsystems then emit
records through ``sim.record(category, **data)``.  Records are cheap
named tuples; filtering helpers make assertions in tests readable.

Hot call sites guard on the simulator's truthy ``sim.tracing`` flag so
that a disabled trace costs exactly one attribute check (no kwargs
dict is built).

Category names follow the ``<layer>.<event>`` taxonomy documented in
:mod:`repro.observability.taxonomy` (and ``docs/OBSERVABILITY.md``):
the prefix before the first dot names the emitting layer (``nic``,
``nmad``, ``strategy``, ``pioman``, ``mpich2``).

Live consumers (e.g. the metrics registry of
:mod:`repro.observability.metrics`) attach through :meth:`Trace.subscribe`
and see every record as it is appended.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, NamedTuple, Optional


class TraceRecord(NamedTuple):
    time: float
    category: str
    data: Dict[str, Any]


class Trace:
    """An append-only log of :class:`TraceRecord`.

    A per-category index is maintained on append, so
    :meth:`filter`/:meth:`count` cost O(matches) instead of scanning
    the whole record list.
    """

    def __init__(self, categories: Optional[set] = None):
        #: restrict recording to these categories (None = record all)
        self.categories = categories
        self.records: List[TraceRecord] = []
        self._by_category: Dict[str, List[TraceRecord]] = {}
        self._subscribers: List[Callable[[TraceRecord], None]] = []

    def append(self, time: float, category: str, data: Dict[str, Any]) -> None:
        if self.categories is not None and category not in self.categories:
            return
        rec = TraceRecord(time, category, data)
        self.records.append(rec)
        bucket = self._by_category.get(category)
        if bucket is None:
            bucket = self._by_category[category] = []
        bucket.append(rec)
        for fn in self._subscribers:
            fn(rec)

    def subscribe(self, fn: Callable[[TraceRecord], None]) -> None:
        """Call ``fn(record)`` for every record appended from now on."""
        self._subscribers.append(fn)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def categories_seen(self) -> List[str]:
        """Every category with at least one record, in first-seen order."""
        return list(self._by_category)

    def filter(self, category: str, **match: Any) -> List[TraceRecord]:
        """Records of ``category`` whose data contains all of ``match``."""
        recs = self._by_category.get(category, [])
        if not match:
            return list(recs)
        return [rec for rec in recs
                if all(rec.data.get(k) == v for k, v in match.items())]

    def count(self, category: str, **match: Any) -> int:
        if not match:
            return len(self._by_category.get(category, ()))
        return len(self.filter(category, **match))
