"""Structured trace recording for simulations.

Tracing is opt-in: construct a :class:`Trace` and pass it to the
:class:`~repro.simulator.engine.Simulator`.  Subsystems then emit
records through ``sim.record(category, **data)``.  Records are cheap
named tuples; filtering helpers make assertions in tests readable.

Hot call sites guard on the simulator's truthy ``sim.tracing`` flag so
that a disabled trace costs exactly one attribute check (no kwargs
dict is built).

Category names follow the ``<layer>.<event>`` taxonomy documented in
:mod:`repro.observability.taxonomy` (and ``docs/OBSERVABILITY.md``):
the prefix before the first dot names the emitting layer (``nic``,
``nmad``, ``strategy``, ``pioman``, ``mpich2``).

Live consumers (e.g. the metrics registry of
:mod:`repro.observability.metrics` and the span profiler of
:mod:`repro.observability.profile`) attach through
:meth:`Trace.subscribe` and see every admitted record as it is
appended.  A subscriber that raises is detached (and the error kept in
:attr:`Trace.subscriber_errors`) instead of poisoning every subsequent
record.

Memory-bounded sinks for large runs (the ``p >= 64`` sweeps):

* :class:`RingTrace` — keeps only the last ``capacity`` records in a
  ring buffer; subscribers still stream over everything admitted, so
  live consumers lose nothing;
* :class:`JsonlTrace` — spills every record to disk as one JSON line
  (reload with :func:`load_trace_jsonl`), retaining nothing in memory;
* :class:`TraceSampler` — deterministic per-category stride and
  per-entity (rank/node) filtering, attachable to any sink.
"""

from __future__ import annotations

import json
from collections import deque
from typing import (Any, Callable, Deque, Dict, Iterator, List, NamedTuple,
                    Optional, Sequence, Tuple)

__all__ = ["TraceRecord", "TraceSampler", "Trace", "RingTrace", "JsonlTrace",
           "load_trace_jsonl"]


class TraceRecord(NamedTuple):
    time: float
    category: str
    data: Dict[str, Any]


#: data keys that identify the emitting entity, in lookup order
#: (rank-scoped records first, node-scoped ones as fallback)
_ENTITY_KEYS = ("rank", "dst", "src", "node")


class TraceSampler:
    """Deterministic record sampling for a :class:`Trace` sink.

    ``strides`` maps a category (``"pioman.poll"``) or a whole layer
    (``"pioman"``) to an admit-every-Nth stride; the per-key counters
    make the decision a pure function of the record sequence, never of
    host state (no RNG — the determinism lint would flag it anyway).
    ``entities`` restricts recording to the given rank/node ids (the
    first of ``rank``/``dst``/``src``/``node`` present in the record's
    data); records naming no entity are always admitted.

    Begin/end span categories (``*.begin``/``*.end``) are never
    stride-sampled — dropping half of a begin/end stream would leave
    the profiler with unmatched pairs — but the entity filter applies.
    """

    def __init__(self, strides: Optional[Dict[str, int]] = None,
                 entities: Optional[Sequence[int]] = None):
        for key, stride in (strides or {}).items():
            if stride < 1:
                raise ValueError(f"stride for {key!r} must be >= 1, "
                                 f"got {stride}")
        self.strides: Dict[str, int] = dict(strides or {})
        self.entities = frozenset(entities) if entities is not None else None
        self._counts: Dict[str, int] = {}

    def admit(self, category: str, data: Dict[str, Any]) -> bool:
        if self.entities is not None:
            for key in _ENTITY_KEYS:
                entity = data.get(key)
                if entity is not None:
                    if entity not in self.entities:
                        return False
                    break
        if not self.strides:
            return True
        stride = self.strides.get(category)
        if stride is None:
            stride = self.strides.get(category.split(".", 1)[0], 1)
        if stride == 1:
            return True
        if category.endswith(".begin") or category.endswith(".end"):
            return True
        count = self._counts.get(category, 0)
        self._counts[category] = count + 1
        return count % stride == 0


class Trace:
    """An append-only log of :class:`TraceRecord`.

    A per-category index is maintained on append, so
    :meth:`filter`/:meth:`count` cost O(matches) instead of scanning
    the whole record list.
    """

    def __init__(self, categories: Optional[set] = None,
                 sampler: Optional[TraceSampler] = None):
        self._init_common(categories, sampler)
        self.records: List[TraceRecord] = []
        self._by_category: Dict[str, List[TraceRecord]] = {}

    def _init_common(self, categories: Optional[set],
                     sampler: Optional[TraceSampler]) -> None:
        #: restrict recording to these categories (None = record all)
        self.categories = categories
        self.sampler = sampler
        #: records admitted past the category filter and sampler — for
        #: bounded sinks this keeps counting after eviction/spill
        self.seen = 0
        #: records rejected by the sampler (category-filtered ones are
        #: not counted: they were never meant for this trace)
        self.sampled_out = 0
        self._subscribers: List[Callable[[TraceRecord], None]] = []
        #: (subscriber, exception) pairs for callbacks that raised and
        #: were detached; inspect in tests / after a run
        self.subscriber_errors: List[
            Tuple[Callable[[TraceRecord], None], BaseException]] = []

    def append(self, time: float, category: str, data: Dict[str, Any]) -> None:
        if self.categories is not None and category not in self.categories:
            return
        if self.sampler is not None and not self.sampler.admit(category, data):
            self.sampled_out += 1
            return
        rec = TraceRecord(time, category, data)
        self.records.append(rec)
        self.seen += 1
        bucket = self._by_category.get(category)
        if bucket is None:
            bucket = self._by_category[category] = []
        bucket.append(rec)
        if self._subscribers:
            self._dispatch(rec)

    def _dispatch(self, rec: TraceRecord) -> None:
        """Feed ``rec`` to every subscriber; detach any that raises."""
        dead: Optional[List[Callable[[TraceRecord], None]]] = None
        for fn in self._subscribers:
            try:
                fn(rec)
            except Exception as exc:
                self.subscriber_errors.append((fn, exc))
                if dead is None:
                    dead = []
                dead.append(fn)
        if dead is not None:
            for fn in dead:
                self.unsubscribe(fn)

    def subscribe(self, fn: Callable[[TraceRecord], None]) -> None:
        """Call ``fn(record)`` for every record appended from now on."""
        self._subscribers.append(fn)

    def unsubscribe(self, fn: Callable[[TraceRecord], None]) -> None:
        """Stop delivering records to ``fn``.  Idempotent."""
        try:
            self._subscribers.remove(fn)
        except ValueError:
            pass

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def categories_seen(self) -> List[str]:
        """Every category with at least one record, in first-seen order."""
        return list(self._by_category)

    def first_divergence(self, other: "Trace") -> Optional[int]:
        """Index of the first record where this trace differs from
        ``other``, or None when both streams are identical.

        The differential scheduler harness uses this to report *where*
        two runs diverged instead of dumping two full record lists.
        Length differences diverge at the shorter trace's end.
        """
        mine = list(self)
        theirs = list(other)
        for i, (a, b) in enumerate(zip(mine, theirs)):
            if a != b:
                return i
        if len(mine) != len(theirs):
            return min(len(mine), len(theirs))
        return None

    def filter(self, category: str, **match: Any) -> List[TraceRecord]:
        """Records of ``category`` whose data contains all of ``match``."""
        recs = self._by_category.get(category, [])
        if not match:
            return list(recs)
        return [rec for rec in recs
                if all(rec.data.get(k) == v for k, v in match.items())]

    def count(self, category: str, **match: Any) -> int:
        if not match:
            return len(self._by_category.get(category, ()))
        return len(self.filter(category, **match))


class RingTrace(Trace):
    """A :class:`Trace` retaining only the last ``capacity`` records.

    Memory is bounded by ``capacity`` regardless of run length; the
    lifetime tallies (:attr:`seen`, :attr:`evicted`, per-category
    counts via :meth:`lifetime_count`) keep counting past eviction, and
    subscribers stream over every admitted record, so live consumers
    (metrics, the span profiler) observe the full run.  ``filter`` /
    ``count`` / iteration see the retained window only.
    """

    def __init__(self, capacity: int, categories: Optional[set] = None,
                 sampler: Optional[TraceSampler] = None):
        if capacity < 1:
            raise ValueError(f"ring capacity must be >= 1, got {capacity}")
        self._init_common(categories, sampler)
        self.capacity = capacity
        self.evicted = 0
        self._ring: Deque[TraceRecord] = deque(maxlen=capacity)
        self._lifetime_counts: Dict[str, int] = {}

    @property
    def records(self) -> List[TraceRecord]:  # type: ignore[override]
        """The retained window, oldest first."""
        return list(self._ring)

    def append(self, time: float, category: str, data: Dict[str, Any]) -> None:
        if self.categories is not None and category not in self.categories:
            return
        if self.sampler is not None and not self.sampler.admit(category, data):
            self.sampled_out += 1
            return
        rec = TraceRecord(time, category, data)
        ring = self._ring
        if len(ring) == self.capacity:
            self.evicted += 1
        ring.append(rec)
        self.seen += 1
        self._lifetime_counts[category] = \
            self._lifetime_counts.get(category, 0) + 1
        if self._subscribers:
            self._dispatch(rec)

    def lifetime_count(self, category: str) -> int:
        """Admitted records of ``category`` ever, evicted ones included."""
        return self._lifetime_counts.get(category, 0)

    def categories_seen(self) -> List[str]:
        """Every category ever admitted, in first-seen order."""
        return list(self._lifetime_counts)

    def __len__(self) -> int:
        return len(self._ring)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._ring)

    def filter(self, category: str, **match: Any) -> List[TraceRecord]:
        """Matching records still in the retained window."""
        return [rec for rec in self._ring
                if rec.category == category
                and all(rec.data.get(k) == v for k, v in match.items())]

    def count(self, category: str, **match: Any) -> int:
        return len(self.filter(category, **match))


class JsonlTrace(Trace):
    """A :class:`Trace` spilling every record to disk as JSON lines.

    Nothing is retained in memory: each admitted record becomes one
    ``{"time": ..., "category": ..., "data": {...}}`` line on ``path``
    (values JSON-sanitized the way the Perfetto exporter does — tuples
    become lists, exotic objects their ``repr``).  Reload the full
    trace with :func:`load_trace_jsonl`.  Use as a context manager, or
    call :meth:`close` when the run is over.
    """

    def __init__(self, path: str, categories: Optional[set] = None,
                 sampler: Optional[TraceSampler] = None):
        self._init_common(categories, sampler)
        self.path = path
        self._fh = open(path, "w")

    @property
    def records(self) -> List[TraceRecord]:  # type: ignore[override]
        return []

    def append(self, time: float, category: str, data: Dict[str, Any]) -> None:
        if self.categories is not None and category not in self.categories:
            return
        if self.sampler is not None and not self.sampler.admit(category, data):
            self.sampled_out += 1
            return
        self._fh.write(json.dumps(
            {"time": time, "category": category,
             "data": {str(k): _jsonable(v) for k, v in data.items()}}))
        self._fh.write("\n")
        self.seen += 1
        if self._subscribers:
            self._dispatch(TraceRecord(time, category, data))

    def flush(self) -> None:
        if not self._fh.closed:
            self._fh.flush()

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "JsonlTrace":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __len__(self) -> int:
        return 0

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(())

    def categories_seen(self) -> List[str]:
        return []

    def filter(self, category: str, **match: Any) -> List[TraceRecord]:
        return []

    def count(self, category: str, **match: Any) -> int:
        return 0


def _jsonable(value: Any) -> Any:
    """Make a record data value JSON-serializable (lossy for objects)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


def load_trace_jsonl(path: str) -> Trace:
    """Rebuild an in-memory :class:`Trace` from a :class:`JsonlTrace` file.

    Data values round-trip through JSON: tuples come back as lists and
    non-JSON objects as their ``repr`` strings, which is faithful
    enough for breakdowns, metrics and Perfetto export.
    """
    trace = Trace()
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            trace.append(obj["time"], obj["category"], obj["data"])
    return trace
