"""The audited host wall clock.

The determinism lint (RPR001) bans ``time.time`` and friends
everywhere except this module: every host-time read in the codebase
funnels through :func:`host_clock`, so nothing host-dependent can leak
into simulated results.  Legitimate consumers are *telemetry only* —
engine events/sec accounting, campaign progress reporting — never
simulation logic.
"""

from __future__ import annotations

import time


def host_clock() -> float:
    """Host wall-clock seconds, for telemetry and progress reporting.

    Never feed this value into a simulation: simulated time advances
    only through the event heap.
    """
    return time.time()
