"""The simulation event loop.

Time is a ``float`` in **seconds**.  The engine keeps pending work in a
pluggable :class:`~repro.simulator.schedulers.EventScheduler` ordered by
``(time, seq)``; ``seq`` is a global monotonically increasing counter so
that callbacks scheduled for the same instant run in FIFO order, which
makes every simulation fully deterministic.

Two kinds of entries coexist in the queue:

* ``(time, seq, handle)`` — cancellable, created by :meth:`Simulator.at`
  / :meth:`Simulator.schedule`, which return the
  :class:`ScheduledCallback` handle;
* ``(time, seq, fn, args)`` — slim non-cancellable entries created by
  the internal :meth:`Simulator._post` fast path (event dispatch, task
  start, timeouts).  They carry no handle object, which keeps the
  hottest scheduling operations allocation-light.

``seq`` is unique, so entry comparisons never reach the third element of
either tuple shape.

Scheduler selection: ``Simulator(scheduler=...)`` takes ``"calendar"``
(the default — a bucketed calendar queue draining whole same-timestamp
batches per dispatch loop), ``"heap"`` (the reference binary heap), or
a ready :class:`~repro.simulator.schedulers.EventScheduler` instance.
``scheduler=None`` consults the ``REPRO_SCHEDULER`` environment knob.
Both structures yield bit-identical execution orders — the differential
harness in ``tests/simulator/`` enforces it — so results, traces and
race reports never depend on the choice; only throughput does.

Cancellation is O(1) lazy deletion: the handle is flagged and skipped
when dispatched.  Long-lived simulations that cancel many far-future
timers (e.g. per-frame retransmission timeouts) would otherwise
accumulate dead entries, so the engine compacts the queue in one
batched pass when cancelled entries outnumber live ones.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional, Tuple, Union

from repro.simulator.errors import DeadlockError, SimulationError
from repro.simulator.events import Event
from repro.simulator.hostclock import host_clock
from repro.simulator.schedulers import EventScheduler, make_scheduler
from repro.simulator.tracing import Trace

__all__ = ["ScheduledCallback", "Simulator"]

#: queue entries are (time, seq, handle) or (time, seq, fn, args)
_HeapEntry = Tuple[Any, ...]

#: start compacting only past this many cancelled entries (tiny queues
#: are cheaper to drain lazily than to rebuild)
_COMPACT_MIN_CANCELLED = 64


class ScheduledCallback:
    """Handle for a callback sitting in the event queue.

    Supports :meth:`cancel`, which is O(1): the entry is flagged and the
    event loop skips it when dispatched (lazy deletion).  The owning
    simulator batches a compaction pass when flagged entries pile up.
    """

    __slots__ = ("sim", "time", "fn", "args", "cancelled", "origin")

    def __init__(self, sim: "Simulator", time: float, fn: Callable, args: tuple):
        self.sim = sim
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False
        # ``origin`` (scheduler's vector-clock snapshot) is attached by an
        # installed monitor; absent in normal runs to keep handles small.

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        sim = self.sim
        sim._cancelled += 1
        if (sim._cancelled >= _COMPACT_MIN_CANCELLED
                and sim._cancelled * 2 >= len(sim._sched)):
            sim._compact()


def _entry_is_cancelled(entry: _HeapEntry) -> bool:
    """Compaction predicate: a flagged cancellable handle entry."""
    item = entry[2]
    return type(item) is ScheduledCallback and item.cancelled


class _NullRegion:
    """No-op stand-in for :meth:`Simulator.sync_region` without a monitor."""

    __slots__ = ()

    def __enter__(self) -> "_NullRegion":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False


_NULL_REGION = _NullRegion()


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    trace:
        Optional :class:`~repro.simulator.tracing.Trace` recorder.  When
        provided, subsystems emit structured trace records through
        :meth:`record`.
    scheduler:
        Event-queue structure: ``"calendar"`` (default), ``"heap"``, or
        an :class:`~repro.simulator.schedulers.EventScheduler` instance.
        ``None`` consults the ``REPRO_SCHEDULER`` environment variable.
        The choice affects throughput only, never results.

    Example
    -------
    >>> sim = Simulator()
    >>> def hello():
    ...     yield sim.timeout(1.5)
    ...     return "done"
    >>> task = sim.spawn(hello())
    >>> sim.run()
    1.5
    >>> task.value
    'done'
    """

    def __init__(self, trace: Optional[Trace] = None,
                 scheduler: Union[EventScheduler, str, None] = None):
        self._sched: EventScheduler = make_scheduler(scheduler)
        self._push = self._sched.push
        self._seq = 0
        self._now = 0.0
        self._cancelled = 0          # cancelled handles still queued
        self._running_tasks = 0
        self._failed_tasks: list = []
        self._trace: Optional[Trace] = None
        self._trace_append: Optional[Callable[..., None]] = None
        #: truthy fast-path flag: hot call sites check this before even
        #: building the kwargs dict for :meth:`record`
        self.tracing = False
        self.trace = trace
        #: perf telemetry (host-side, never fed back into simulation):
        #: callbacks dispatched, high-water queue length, dispatch
        #: batches, wall seconds inside :meth:`run` — see :meth:`perf_stats`
        self.events_executed = 0
        self.queue_peak = 0
        self.batches_executed = 0
        self.run_wall_seconds = 0.0
        #: optional execution monitor (duck-typed; see
        #: ``repro.analysis.race.RaceDetector``).  When set, the engine
        #: reports every schedule and callback slice to it.
        self.monitor: Optional[Any] = None

    # ------------------------------------------------------------------
    # Clock & scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def heap_peak(self) -> int:
        """Deprecated alias of :attr:`queue_peak` (pre-scheduler name)."""
        return self.queue_peak

    def schedule(self, delay: float, fn: Callable, *args: Any) -> ScheduledCallback:
        """Run ``fn(*args)`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        time = self._now + delay
        handle = ScheduledCallback(self, time, fn, args)
        if self.monitor is not None:
            self.monitor.on_schedule(handle)
        self._seq += 1
        self._push((time, self._seq, handle))
        return handle

    def at(self, time: float, fn: Callable, *args: Any) -> ScheduledCallback:
        """Run ``fn(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule in the past (now={self._now!r}, time={time!r})"
            )
        handle = ScheduledCallback(self, time, fn, args)
        if self.monitor is not None:
            self.monitor.on_schedule(handle)
        self._seq += 1
        self._push((time, self._seq, handle))
        return handle

    def _post(self, delay: float, fn: Callable, *args: Any) -> None:
        """Internal non-cancellable scheduling fast path.

        Pushes a slim ``(time, seq, fn, args)`` entry — no handle
        object.  Used by the hottest call sites (event dispatch, task
        start, timeouts), which never cancel.  With a monitor installed
        it falls back to :meth:`at` so happens-before edges are kept.
        """
        if self.monitor is not None:
            self.at(self._now + delay, fn, *args)
            return
        self._seq += 1
        self._push((self._now + delay, self._seq, fn, args))

    def _compact(self) -> None:
        """Drop cancelled entries from the queue in one batched pass."""
        self._sched.remove_if(_entry_is_cancelled)
        self._cancelled = 0

    # ------------------------------------------------------------------
    # Events & tasks (factories live here so user code needs only `sim`)
    # ------------------------------------------------------------------
    def event(self) -> "Event":
        """Create a fresh untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> "Event":
        """An event that succeeds ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        evt = Event(self)
        self._post(delay, evt.succeed, value)
        return evt

    def all_of(self, events: Iterable["Event"]) -> "Event":
        from repro.simulator.events import AllOf

        return AllOf(self, list(events))

    def any_of(self, events: Iterable["Event"]) -> "Event":
        from repro.simulator.events import AnyOf

        return AnyOf(self, list(events))

    def spawn(self, generator, name: str = "") -> "Task":
        """Start driving ``generator`` as a concurrent task."""
        from repro.simulator.process import Task

        return Task(self, generator, name=name)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next pending callback.  Returns False when empty."""
        sched = self._sched
        while True:
            pending = len(sched)
            if pending == 0:
                return False
            if pending > self.queue_peak:
                self.queue_peak = pending
            entry = sched.pop()
            assert entry is not None
            item = entry[2]
            if type(item) is ScheduledCallback:
                if item.cancelled:
                    if self._cancelled > 0:
                        self._cancelled -= 1
                    continue
                self._now = entry[0]
                self.events_executed += 1
                monitor = self.monitor
                if monitor is None:
                    item.fn(*item.args)
                else:
                    monitor.before_step(item)
                    try:
                        item.fn(*item.args)
                    finally:
                        monitor.after_step(item)
                return True
            # slim non-cancellable entry: (time, seq, fn, args)
            self._now = entry[0]
            self.events_executed += 1
            item(*entry[3])
            return True

    def run(self, until: Optional[float] = None,
            detect_deadlock: bool = False) -> float:
        """Run until the queue drains or ``until`` is reached.

        Returns the final simulation time.  With ``detect_deadlock=True``
        a :class:`DeadlockError` is raised if live tasks remain when the
        queue drains (tasks blocked on events nobody will trigger).
        """
        sched = self._sched
        wall_start = host_clock()
        if until is None and self.monitor is None:
            # hot path: drain whole same-timestamp batches per dispatch
            # loop, so the clock write, the peak sample and the loop
            # bookkeeping are paid once per *batch* of an event flood,
            # not once per event.  Telemetry stays in locals and is
            # flushed once on exit.  The queue peak is sampled between
            # batches (documented in perf_stats).
            pop_batch = sched.pop_batch
            end_batch = sched.end_batch
            qlen = sched.__len__
            executed = 0
            batches = 0
            peak = self.queue_peak
            try:
                while True:
                    pending = qlen()
                    if pending > peak:
                        peak = pending
                    batch = pop_batch()
                    if batch is None:
                        break
                    batches += 1
                    self._now = batch[0][0]
                    done = 0
                    try:
                        # len() re-checked each lap: a zero-delay push
                        # from inside the batch appends to it live
                        while done < len(batch):
                            entry = batch[done]
                            done += 1
                            item = entry[2]
                            if type(item) is ScheduledCallback:
                                if item.cancelled:
                                    if self._cancelled > 0:
                                        self._cancelled -= 1
                                    continue
                                executed += 1
                                item.fn(*item.args)
                            else:
                                executed += 1
                                item(*entry[3])
                    finally:
                        end_batch(batch, done)
            finally:
                self.events_executed += executed
                self.batches_executed += batches
                self.queue_peak = peak
                self.run_wall_seconds += host_clock() - wall_start
        else:
            try:
                while True:
                    time = sched.peek_time()
                    if time is None:
                        break
                    if until is not None and time > until:
                        self._now = until
                        self._raise_unobserved_failures()
                        return self._now
                    self.step()
            finally:
                self.run_wall_seconds += host_clock() - wall_start
        self._raise_unobserved_failures()
        if detect_deadlock and self._running_tasks > 0:
            raise DeadlockError(
                f"{self._running_tasks} task(s) blocked with no pending events "
                f"at t={self._now}"
            )
        return self._now

    def _raise_unobserved_failures(self) -> None:
        """Re-raise the first task failure that nobody joined on.

        Without this, an exception inside a spawned task would vanish
        silently — the classic swallowed-failure bug of callback systems.
        """
        for task in self._failed_tasks:
            if not task._observed:
                raise task.value

    # ------------------------------------------------------------------
    # Perf telemetry
    # ------------------------------------------------------------------
    def perf_stats(self) -> dict:
        """Host-side run-loop telemetry, accumulated across ``run`` calls.

        ``events_executed`` counts dispatched callbacks (cancelled
        entries skipped at dispatch are not events), ``queue_peak`` is
        the high-water pending-entry count (``heap_peak`` is kept as a
        deprecated alias; on the batched fast path the peak is sampled
        once per dispatch batch), ``batches_executed`` the number of
        same-timestamp dispatch batches the fast path drained,
        ``wall_seconds`` the host time spent inside :meth:`run`, and
        ``events_per_sec`` their ratio.  ``scheduler`` names the active
        event-queue structure and ``scheduler_stats`` carries its
        structure-specific counters (bucket width, resizes, ... for the
        calendar queue).  Wall time is the one host-dependent quantity
        in the engine; it feeds telemetry only, never simulation.
        """
        wall = self.run_wall_seconds
        executed = self.events_executed
        batches = self.batches_executed
        return {
            "events_executed": float(executed),
            "queue_peak": float(self.queue_peak),
            "heap_peak": float(self.queue_peak),     # deprecated alias
            "batches_executed": float(batches),
            "events_per_batch": (executed / batches if batches else 0.0),
            "wall_seconds": wall,
            "events_per_sec": (executed / wall if wall > 0 else 0.0),
            "scheduler": self._sched.kind,
            "scheduler_stats": self._sched.stats(),
        }

    # ------------------------------------------------------------------
    # Concurrency-analysis hooks (no-ops unless a monitor is installed)
    # ------------------------------------------------------------------
    def sync_region(self, key: Any, label: Optional[str] = None):
        """A virtual lock region for the installed monitor.

        Models the locks the real stack takes around progress-engine
        state (e.g. PIOMan's per-node progression lock).  Regions with
        equal ``key`` are treated as one lock: the monitor serializes
        them with release->acquire happens-before edges.  Without a
        monitor this returns a shared no-op context manager.
        """
        monitor = self.monitor
        if monitor is None:
            return _NULL_REGION
        return monitor.region(key, label)

    def race_read(self, name: str, detail: Optional[str] = None) -> None:
        """Record a read of the named shared variable (monitor only)."""
        monitor = self.monitor
        if monitor is not None:
            monitor.on_access(name, False, detail)

    def race_write(self, name: str, detail: Optional[str] = None) -> None:
        """Record a write of the named shared variable (monitor only)."""
        monitor = self.monitor
        if monitor is not None:
            monitor.on_access(name, True, detail)

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------
    @property
    def trace(self) -> Optional[Trace]:
        """The attached :class:`Trace` recorder (None = tracing off)."""
        return self._trace

    @trace.setter
    def trace(self, trace: Optional[Trace]) -> None:
        self._trace = trace
        self.tracing = trace is not None
        #: bound append, so the no-trace path in :meth:`record` is a
        #: single attribute test and the traced path skips a lookup
        self._trace_append = trace.append if trace is not None else None

    def record(self, category: str, **data: Any) -> None:
        """Emit a trace record if tracing is enabled (cheap no-op otherwise)."""
        append = self._trace_append
        if append is not None:
            append(self._now, category, data)
