"""The simulation event loop.

Time is a ``float`` in **seconds**.  The engine keeps a binary heap of
entries ordered by ``(time, seq)``; ``seq`` is a global monotonically
increasing counter so that callbacks scheduled for the same instant run
in FIFO order, which makes every simulation fully deterministic.

Two kinds of entries coexist on the heap:

* ``(time, seq, handle)`` — cancellable, created by :meth:`Simulator.at`
  / :meth:`Simulator.schedule`, which return the
  :class:`ScheduledCallback` handle;
* ``(time, seq, fn, args)`` — slim non-cancellable entries created by
  the internal :meth:`Simulator._post` fast path (event dispatch, task
  start, timeouts).  They carry no handle object, which keeps the
  hottest scheduling operations allocation-light.

``seq`` is unique, so heap comparisons never reach the third element of
either tuple shape.

Cancellation is O(1) lazy deletion: the handle is flagged and skipped
when popped.  Long-lived simulations that cancel many far-future timers
(e.g. per-frame retransmission timeouts) would otherwise accumulate
dead entries, so the engine compacts the heap in one batched pass when
cancelled entries outnumber live ones.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, List, Optional, Tuple

from repro.simulator.errors import DeadlockError, SimulationError
from repro.simulator.hostclock import host_clock
from repro.simulator.tracing import Trace

__all__ = ["ScheduledCallback", "Simulator"]

#: heap entries are (time, seq, handle) or (time, seq, fn, args)
_HeapEntry = Tuple[Any, ...]

#: start compacting only past this many cancelled entries (tiny heaps
#: are cheaper to drain lazily than to rebuild)
_COMPACT_MIN_CANCELLED = 64


class ScheduledCallback:
    """Handle for a callback sitting in the event heap.

    Supports :meth:`cancel`, which is O(1): the entry is flagged and the
    event loop skips it when popped (lazy deletion).  The owning
    simulator batches a compaction pass when flagged entries pile up.
    """

    __slots__ = ("sim", "time", "fn", "args", "cancelled", "origin")

    def __init__(self, sim: "Simulator", time: float, fn: Callable, args: tuple):
        self.sim = sim
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False
        # ``origin`` (scheduler's vector-clock snapshot) is attached by an
        # installed monitor; absent in normal runs to keep handles small.

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        sim = self.sim
        sim._cancelled += 1
        if (sim._cancelled >= _COMPACT_MIN_CANCELLED
                and sim._cancelled * 2 >= len(sim._heap)):
            sim._compact()


class _NullRegion:
    """No-op stand-in for :meth:`Simulator.sync_region` without a monitor."""

    __slots__ = ()

    def __enter__(self) -> "_NullRegion":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False


_NULL_REGION = _NullRegion()


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    trace:
        Optional :class:`~repro.simulator.tracing.Trace` recorder.  When
        provided, subsystems emit structured trace records through
        :meth:`record`.

    Example
    -------
    >>> sim = Simulator()
    >>> def hello():
    ...     yield sim.timeout(1.5)
    ...     return "done"
    >>> task = sim.spawn(hello())
    >>> sim.run()
    1.5
    >>> task.value
    'done'
    """

    def __init__(self, trace: Optional[Trace] = None):
        self._heap: List[_HeapEntry] = []
        self._seq = 0
        self._now = 0.0
        self._cancelled = 0          # cancelled handles still on the heap
        self._running_tasks = 0
        self._failed_tasks: list = []
        self._trace: Optional[Trace] = None
        self._trace_append: Optional[Callable[..., None]] = None
        #: truthy fast-path flag: hot call sites check this before even
        #: building the kwargs dict for :meth:`record`
        self.tracing = False
        self.trace = trace
        #: perf telemetry (host-side, never fed back into simulation):
        #: callbacks dispatched, high-water heap length, wall seconds
        #: spent inside :meth:`run` — see :meth:`perf_stats`
        self.events_executed = 0
        self.heap_peak = 0
        self.run_wall_seconds = 0.0
        #: optional execution monitor (duck-typed; see
        #: ``repro.analysis.race.RaceDetector``).  When set, the engine
        #: reports every schedule and callback slice to it.
        self.monitor: Optional[Any] = None

    # ------------------------------------------------------------------
    # Clock & scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def schedule(self, delay: float, fn: Callable, *args: Any) -> ScheduledCallback:
        """Run ``fn(*args)`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        time = self._now + delay
        handle = ScheduledCallback(self, time, fn, args)
        if self.monitor is not None:
            self.monitor.on_schedule(handle)
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, handle))
        return handle

    def at(self, time: float, fn: Callable, *args: Any) -> ScheduledCallback:
        """Run ``fn(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule in the past (now={self._now!r}, time={time!r})"
            )
        handle = ScheduledCallback(self, time, fn, args)
        if self.monitor is not None:
            self.monitor.on_schedule(handle)
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, handle))
        return handle

    def _post(self, delay: float, fn: Callable, *args: Any) -> None:
        """Internal non-cancellable scheduling fast path.

        Pushes a slim ``(time, seq, fn, args)`` entry — no handle
        object.  Used by the hottest call sites (event dispatch, task
        start, timeouts), which never cancel.  With a monitor installed
        it falls back to :meth:`at` so happens-before edges are kept.
        """
        if self.monitor is not None:
            self.at(self._now + delay, fn, *args)
            return
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, self._seq, fn, args))

    def _compact(self) -> None:
        """Drop cancelled entries from the heap in one batched pass."""
        self._heap = [entry for entry in self._heap
                      if not (type(entry[2]) is ScheduledCallback
                              and entry[2].cancelled)]
        heapq.heapify(self._heap)
        self._cancelled = 0

    # ------------------------------------------------------------------
    # Events & tasks (factories live here so user code needs only `sim`)
    # ------------------------------------------------------------------
    def event(self) -> "Event":
        """Create a fresh untriggered :class:`Event`."""
        from repro.simulator.events import Event

        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> "Event":
        """An event that succeeds ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        evt = self.event()
        self._post(delay, evt.succeed, value)
        return evt

    def all_of(self, events: Iterable["Event"]) -> "Event":
        from repro.simulator.events import AllOf

        return AllOf(self, list(events))

    def any_of(self, events: Iterable["Event"]) -> "Event":
        from repro.simulator.events import AnyOf

        return AnyOf(self, list(events))

    def spawn(self, generator, name: str = "") -> "Task":
        """Start driving ``generator`` as a concurrent task."""
        from repro.simulator.process import Task

        return Task(self, generator, name=name)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next pending callback.  Returns False when empty."""
        heap = self._heap
        while heap:
            if len(heap) > self.heap_peak:
                self.heap_peak = len(heap)
            entry = heapq.heappop(heap)
            item = entry[2]
            if type(item) is ScheduledCallback:
                if item.cancelled:
                    if self._cancelled > 0:
                        self._cancelled -= 1
                    continue
                self._now = entry[0]
                self.events_executed += 1
                monitor = self.monitor
                if monitor is None:
                    item.fn(*item.args)
                else:
                    monitor.before_step(item)
                    try:
                        item.fn(*item.args)
                    finally:
                        monitor.after_step(item)
                return True
            # slim non-cancellable entry: (time, seq, fn, args)
            self._now = entry[0]
            self.events_executed += 1
            item(*entry[3])
            return True
        return False

    def run(self, until: Optional[float] = None,
            detect_deadlock: bool = False) -> float:
        """Run until the heap drains or ``until`` is reached.

        Returns the final simulation time.  With ``detect_deadlock=True``
        a :class:`DeadlockError` is raised if live tasks remain when the
        heap drains (tasks blocked on events nobody will trigger).
        """
        heap = self._heap
        wall_start = host_clock()
        if until is None and self.monitor is None:
            # hot path: inline pop-dispatch loop, no per-event peeking.
            # Telemetry stays in locals and is flushed once on exit so
            # the per-event cost is one compare + one increment.
            pop = heapq.heappop
            executed = 0
            peak = self.heap_peak
            try:
                while heap:
                    if len(heap) > peak:
                        peak = len(heap)
                    entry = pop(heap)
                    item = entry[2]
                    if type(item) is ScheduledCallback:
                        if item.cancelled:
                            if self._cancelled > 0:
                                self._cancelled -= 1
                            continue
                        self._now = entry[0]
                        executed += 1
                        item.fn(*item.args)
                    else:
                        self._now = entry[0]
                        executed += 1
                        item(*entry[3])
            finally:
                self.events_executed += executed
                self.heap_peak = peak
                self.run_wall_seconds += host_clock() - wall_start
        else:
            try:
                while heap:
                    time = heap[0][0]
                    if until is not None and time > until:
                        self._now = until
                        self._raise_unobserved_failures()
                        return self._now
                    self.step()
            finally:
                self.run_wall_seconds += host_clock() - wall_start
        self._raise_unobserved_failures()
        if detect_deadlock and self._running_tasks > 0:
            raise DeadlockError(
                f"{self._running_tasks} task(s) blocked with no pending events "
                f"at t={self._now}"
            )
        return self._now

    def _raise_unobserved_failures(self) -> None:
        """Re-raise the first task failure that nobody joined on.

        Without this, an exception inside a spawned task would vanish
        silently — the classic swallowed-failure bug of callback systems.
        """
        for task in self._failed_tasks:
            if not task._observed:
                raise task.value

    # ------------------------------------------------------------------
    # Perf telemetry
    # ------------------------------------------------------------------
    def perf_stats(self) -> dict:
        """Host-side run-loop telemetry, accumulated across ``run`` calls.

        ``events_executed`` counts dispatched callbacks (cancelled
        entries skipped on pop are not events), ``heap_peak`` is the
        high-water heap length, ``wall_seconds`` the host time spent
        inside :meth:`run`, and ``events_per_sec`` their ratio.  Wall
        time is the one host-dependent quantity in the engine; it feeds
        telemetry only, never simulation.
        """
        wall = self.run_wall_seconds
        return {
            "events_executed": float(self.events_executed),
            "heap_peak": float(self.heap_peak),
            "wall_seconds": wall,
            "events_per_sec": (self.events_executed / wall
                               if wall > 0 else 0.0),
        }

    # ------------------------------------------------------------------
    # Concurrency-analysis hooks (no-ops unless a monitor is installed)
    # ------------------------------------------------------------------
    def sync_region(self, key: Any, label: Optional[str] = None):
        """A virtual lock region for the installed monitor.

        Models the locks the real stack takes around progress-engine
        state (e.g. PIOMan's per-node progression lock).  Regions with
        equal ``key`` are treated as one lock: the monitor serializes
        them with release->acquire happens-before edges.  Without a
        monitor this returns a shared no-op context manager.
        """
        monitor = self.monitor
        if monitor is None:
            return _NULL_REGION
        return monitor.region(key, label)

    def race_read(self, name: str, detail: Optional[str] = None) -> None:
        """Record a read of the named shared variable (monitor only)."""
        monitor = self.monitor
        if monitor is not None:
            monitor.on_access(name, False, detail)

    def race_write(self, name: str, detail: Optional[str] = None) -> None:
        """Record a write of the named shared variable (monitor only)."""
        monitor = self.monitor
        if monitor is not None:
            monitor.on_access(name, True, detail)

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------
    @property
    def trace(self) -> Optional[Trace]:
        """The attached :class:`Trace` recorder (None = tracing off)."""
        return self._trace

    @trace.setter
    def trace(self, trace: Optional[Trace]) -> None:
        self._trace = trace
        self.tracing = trace is not None
        #: bound append, so the no-trace path in :meth:`record` is a
        #: single attribute test and the traced path skips a lookup
        self._trace_append = trace.append if trace is not None else None

    def record(self, category: str, **data: Any) -> None:
        """Emit a trace record if tracing is enabled (cheap no-op otherwise)."""
        append = self._trace_append
        if append is not None:
            append(self._now, category, data)
