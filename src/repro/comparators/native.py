"""A parameterized native MPI stack (the comparator skeleton)."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.hardware.nic import NIC, Frame
from repro.mpich2.queues import Envelope, PostedQueue, UnexpectedQueue
from repro.mpich2.request import MPIRequest
from repro.mpich2.stackbase import BaseStack

_rid_ctr = itertools.count()


@dataclass(frozen=True)
class NativeCosts:
    """Externally observable cost profile of a native MPI implementation."""

    #: software send path, s
    send_overhead: float = 0.18e-6
    #: software receive-post path, s
    recv_overhead: float = 0.17e-6
    #: receive-side matching + completion per message, s
    match_cost: float = 0.10e-6
    #: eager/rendezvous switch, bytes
    eager_threshold: int = 12 * 1024
    #: control-message wire size, bytes
    ctrl_size: int = 32
    #: large messages move in pipelined chunks of this size, bytes
    pipeline_chunk: int = 1 << 20
    #: host cost between successive pipeline chunks, s
    per_chunk_cost: float = 1.5e-6
    #: registration cache enabled (MVAPICH2: yes; NewMadeleine: no)
    reg_cache: bool = True
    #: protocol efficiency applied to wire bandwidth (credits, headers)
    bw_derate: float = 1.0
    #: one-way intra-node small-message latency, s
    shm_latency: float = 0.30e-6
    #: intra-node large-message bandwidth, B/s
    shm_bandwidth: float = 2.5e9
    #: compute-efficiency factor applied by the runtime to compute phases
    compute_efficiency: float = 1.0
    #: eager sends at or below this size go out during the isend call;
    #: larger eager payloads need library progress (Fig. 7a no-overlap)
    inline_pump_threshold: int = 1024


@dataclass
class NativeMsg:
    """Wire payload of the native stack's protocol."""

    kind: str            # "eager" | "rts" | "cts" | "data"
    src_rank: int
    dst_rank: int
    tag: Any = None
    size: int = 0
    data: Any = None
    rid: int = 0
    last: bool = False

    @property
    def entries(self):   # uniform routing interface with PacketWrapper
        return [self]


@dataclass
class _RdvSendState:
    req: MPIRequest
    remaining: int
    offset: int = 0


@dataclass
class _RdvRecvState:
    req: MPIRequest
    remaining: int
    total: int = 0
    tag: Any = None
    src: int = 0
    data: Any = None


class NativeStack(BaseStack):
    """One process of a comparator MPI implementation."""

    def __init__(self, sim, rank: int, node, scheduler, nic: Optional[NIC],
                 rank_to_node, costs: NativeCosts = NativeCosts(),
                 registrar=None, pioman=None):
        super().__init__(sim, rank, node, scheduler, pioman=pioman)
        self.nic = nic
        self.rank_to_node = rank_to_node
        self.costs = costs
        self.registrar = registrar or node.make_registrar(cache=costs.reg_cache)
        self.posted = PostedQueue()
        self.unexpected = UnexpectedQueue()
        self._rdv_send: Dict[int, _RdvSendState] = {}
        self._rdv_recv: Dict[int, _RdvRecvState] = {}
        self._pending_tx: list = []
        #: same-node peer stacks, filled by the runtime
        self.local_peers: Dict[int, "NativeStack"] = {}

    # ------------------------------------------------------------------
    # MPI entry points
    # ------------------------------------------------------------------
    def isend(self, dst: int, tag: Any, size: int, data: Any = None,
              sync: bool = False):
        if dst == self.rank:
            raise ValueError("self-sends must be handled above the device layer")
        req = MPIRequest(self.sim, "send", dst, tag, size, data)
        req._sync = sync
        self.messages_sent += 1
        self.bytes_sent += size
        if self.rank_to_node(dst) == self.node.node_id:
            yield from self._send_shm(req)
        elif size <= self.costs.eager_threshold and not sync:
            yield from self._send_eager(req)
        else:
            yield from self._send_rts(req)
        return req

    def irecv(self, src: Any, tag: Any):
        req = MPIRequest(self.sim, "recv", src, tag)
        yield from self.cpu(self.costs.recv_overhead)
        env = self.unexpected.match(src, tag)
        if env is not None:
            yield from self._deliver_env(req, env)
        else:
            self.posted.post(req)
        return req

    # ------------------------------------------------------------------
    # send paths
    # ------------------------------------------------------------------
    def _wire(self, size: int) -> int:
        """Bytes on the wire after protocol derating."""
        return int(size / self.costs.bw_derate)

    def _post_frame(self, msg: NativeMsg, wire_size: int):
        frame = Frame(src=self.node.node_id, dst=self.rank_to_node(msg.dst_rank),
                      size=wire_size, kind="native", payload=msg)
        return self.nic.post_send(frame)

    def _send_eager(self, req: MPIRequest):
        yield from self.cpu(self.costs.send_overhead)
        # copy into a pre-registered bounce buffer
        yield from self.cpu(self.node.mem.copy_time(req.size))
        msg = NativeMsg("eager", self.rank, req.peer, tag=req.tag,
                        size=req.size, data=req.data)
        wire = self._wire(req.size) + self.costs.ctrl_size
        if req.size <= self.costs.inline_pump_threshold:
            evt = self._post_frame(msg, wire)
            evt.add_done_callback(lambda _e: req._finish(self.sim))
        else:
            # fragments beyond the first need progress calls to move
            self._pending_tx.append((msg, wire, req))

    def _send_rts(self, req: MPIRequest):
        yield from self.cpu(self.costs.send_overhead)
        rid = next(_rid_ctr)
        self._rdv_send[rid] = _RdvSendState(req, remaining=req.size)
        msg = NativeMsg("rts", self.rank, req.peer, tag=req.tag,
                        size=req.size, rid=rid)
        self._post_frame(msg, self.costs.ctrl_size)

    def _pump_rdv_data(self, rid: int) -> None:
        """Send the next pipeline chunk (callback context)."""
        state = self._rdv_send.get(rid)
        if state is None:
            return
        chunk = min(self.costs.pipeline_chunk, state.remaining)
        state.remaining -= chunk
        last = state.remaining == 0
        msg = NativeMsg("data", self.rank, state.req.peer, rid=rid,
                        size=chunk, data=state.req.data if last else None,
                        last=last)
        evt = self._post_frame(msg, self._wire(chunk))
        if last:
            del self._rdv_send[rid]
            evt.add_done_callback(lambda _e: state.req._finish(self.sim))
        else:
            # host-side gap between pipeline chunks
            evt.add_done_callback(
                lambda _e: self.sim.schedule(
                    self.costs.per_chunk_cost, self._pump_rdv_data, rid))

    # ------------------------------------------------------------------
    # shared-memory path
    # ------------------------------------------------------------------
    def _send_shm(self, req: MPIRequest):
        c = self.costs
        yield from self.cpu(0.5 * c.shm_latency + 0.5 * req.size / c.shm_bandwidth)
        env = Envelope(src=self.rank, tag=req.tag, size=req.size, data=req.data,
                       proto="shm")
        peer = self.local_peers[req.peer]
        if getattr(req, "_sync", False):
            env.sync_req = req
            self.sim.schedule(0.0, peer.deliver, ("shm", env))
        else:
            self.sim.schedule(0.0, peer.deliver, ("shm", env))
            req._finish(self.sim)

    # ------------------------------------------------------------------
    # progress
    # ------------------------------------------------------------------
    def probe_unexpected(self, src, tag):
        env = self.unexpected.peek(src, tag)
        if env is not None:
            return (env.src, env.size)
        return None

    def _flush_tx(self) -> None:
        """Library progress: push out deferred eager frames."""
        while self._pending_tx:
            msg, wire, req = self._pending_tx.pop(0)
            evt = self._post_frame(msg, wire)
            evt.add_done_callback(
                lambda _e, r=req: r._finish(self.sim) if not r.complete else None)

    def _progress_hook(self):
        self._flush_tx()
        return
        yield  # pragma: no cover

    def _handle_item(self, item):
        kind, payload = item
        if kind == "net":
            yield from self._handle_msg(payload.payload)
        elif kind == "shm":
            yield from self._handle_shm_env(payload)
        else:
            raise RuntimeError(f"unknown progress item {kind!r}")

    def _handle_msg(self, msg: NativeMsg):
        if msg.kind == "eager":
            yield from self.cpu(self.costs.match_cost)
            req = self.posted.match(msg.src_rank, msg.tag)
            env = Envelope(src=msg.src_rank, tag=msg.tag, size=msg.size,
                           data=msg.data, proto="eager")
            if req is None:
                self.unexpected.add(env)
            else:
                yield from self._deliver_env(req, env)
        elif msg.kind == "rts":
            yield from self.cpu(self.costs.match_cost)
            req = self.posted.match(msg.src_rank, msg.tag)
            env = Envelope(src=msg.src_rank, tag=msg.tag, size=msg.size,
                           proto=("rts", msg.rid))
            if req is None:
                self.unexpected.add(env)
            else:
                yield from self._grant(req, env)
        elif msg.kind == "cts":
            state = self._rdv_send.get(msg.rid)
            if state is None:
                raise RuntimeError(f"CTS for unknown rendezvous {msg.rid}")
            # the cache key models buffer reuse (Netpipe reuses its buffer)
            yield from self.cpu(
                self.registrar.cost(("tx", state.req.peer, state.req.size),
                                    state.req.size))
            # pipeline startup: the host gap precedes every chunk
            yield from self.cpu(self.costs.per_chunk_cost)
            self._pump_rdv_data(msg.rid)
        elif msg.kind == "data":
            state = self._rdv_recv.get(msg.rid)
            if state is None:
                raise RuntimeError(f"data for unknown rendezvous {msg.rid}")
            if msg.data is not None:
                state.data = msg.data
            state.remaining -= msg.size
            if state.remaining <= 0:
                del self._rdv_recv[msg.rid]
                yield from self.cpu(self.costs.match_cost)
                state.req._finish(self.sim, data=state.data, size=state.total,
                                  source=state.src, tag=state.tag)
        else:
            raise RuntimeError(f"unknown native message {msg.kind!r}")

    def _handle_shm_env(self, env: Envelope):
        yield from self.cpu(0.5 * self.costs.shm_latency
                            + 0.5 * env.size / self.costs.shm_bandwidth)
        req = self.posted.match(env.src, env.tag)
        if req is None:
            self.unexpected.add(env)
        else:
            if env.sync_req is not None and not env.sync_req.complete:
                env.sync_req._finish(self.sim)
            req._finish(self.sim, data=env.data, size=env.size,
                        source=env.src, tag=env.tag)

    def _deliver_env(self, req: MPIRequest, env: Envelope):
        if env.proto == "shm":
            yield from self.cpu(0.5 * self.costs.shm_latency
                                + 0.5 * env.size / self.costs.shm_bandwidth)
            if env.sync_req is not None and not env.sync_req.complete:
                env.sync_req._finish(self.sim)
            req._finish(self.sim, data=env.data, size=env.size,
                        source=env.src, tag=env.tag)
        elif env.proto == "eager":
            yield from self.cpu(self.node.mem.copy_time(env.size))
            req._finish(self.sim, data=env.data, size=env.size,
                        source=env.src, tag=env.tag)
        elif isinstance(env.proto, tuple) and env.proto[0] == "rts":
            yield from self._grant(req, env)
        else:
            raise RuntimeError(f"bad envelope protocol {env.proto!r}")

    def _grant(self, req: MPIRequest, env: Envelope):
        """Receiver grants a rendezvous: register, track, send CTS."""
        rid = env.proto[1] if isinstance(env.proto, tuple) else env.proto
        yield from self.cpu(self.registrar.cost(("rx", env.src, env.size),
                                                env.size))
        self._rdv_recv[rid] = _RdvRecvState(req, remaining=env.size,
                                            total=env.size,
                                            tag=env.tag, src=env.src)
        msg = NativeMsg("cts", self.rank, env.src, rid=rid)
        self._post_frame(msg, self.costs.ctrl_size)
