"""Simulated comparator MPI implementations (paper Section 4).

The paper evaluates against MVAPICH2 1.0.3 and Open MPI 1.2.7.  Only
their externally observable behaviour matters for the comparison, so
they are modeled as parameterized *native stacks*: a classic
eager/rendezvous protocol directly over one NIC, a registration cache
(MVAPICH2) or pipelined RDMA protocol (Open MPI), their own
shared-memory path, wildcard matching in a central queue pair, and —
crucially — **no asynchronous progress** (neither overlaps
communication with computation, Fig. 7).
"""

from repro.comparators.native import NativeStack, NativeCosts, NativeMsg
from repro.comparators import presets

__all__ = ["NativeStack", "NativeCosts", "NativeMsg", "presets"]
