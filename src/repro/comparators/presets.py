"""Calibrated comparator cost profiles.

Calibration targets (paper Section 4.1):

* MVAPICH2: 1.5 us IB latency, ~1400 MiB/s peak (registration cache,
  "finely-tuned" native path).
* Open MPI 1.2.7 (openib BTL + IB MTL): 1.6 us IB latency, lower peak
  bandwidth and a medium-size dip (pipelined protocol), below
  MPICH2-NewMadeleine between ~8 KiB and ~256 KiB.
* Open MPI over MX: the PML/CM (MTL) path is fast, the BTL path is
  visibly slower (Fig. 6b / 7a).
* Open MPI lags on EP and LU regardless of process count (Fig. 8);
  the paper observes this without attributing a mechanism — modeled as
  a compute-efficiency factor.
"""

from repro.comparators.native import NativeCosts

#: MVAPICH2 1.0.3 over ConnectX InfiniBand.
MVAPICH2_IB = NativeCosts(
    send_overhead=0.18e-6,
    recv_overhead=0.17e-6,
    match_cost=0.28e-6,
    eager_threshold=12 * 1024,
    pipeline_chunk=1 << 20,
    per_chunk_cost=1.0e-6,
    reg_cache=True,
    bw_derate=0.997,
    shm_latency=0.30e-6,
    shm_bandwidth=2.5e9,
    compute_efficiency=1.0,
)

#: Open MPI 1.2.7 over ConnectX InfiniBand (openib BTL + MTL).
OPENMPI_IB = NativeCosts(
    send_overhead=0.22e-6,
    recv_overhead=0.23e-6,
    match_cost=0.34e-6,
    eager_threshold=12 * 1024,
    pipeline_chunk=128 * 1024,
    per_chunk_cost=14.0e-6,
    reg_cache=True,
    bw_derate=0.93,
    shm_latency=0.45e-6,
    shm_bandwidth=2.0e9,
    compute_efficiency=0.92,
)

#: Open MPI over Myrinet MX through the CM PML (MTL path): lean.
OPENMPI_PML_MX = NativeCosts(
    send_overhead=0.15e-6,
    recv_overhead=0.15e-6,
    match_cost=0.30e-6,
    eager_threshold=12 * 1024,
    pipeline_chunk=256 * 1024,
    per_chunk_cost=4.0e-6,
    reg_cache=True,
    bw_derate=0.95,
    shm_latency=0.45e-6,
    shm_bandwidth=2.0e9,
    compute_efficiency=0.92,
)

#: Open MPI over Myrinet MX through the BTL path: extra copies/layers.
OPENMPI_BTL_MX = NativeCosts(
    send_overhead=1.20e-6,
    recv_overhead=0.90e-6,
    match_cost=0.90e-6,
    eager_threshold=12 * 1024,
    pipeline_chunk=128 * 1024,
    per_chunk_cost=8.0e-6,
    reg_cache=True,
    bw_derate=0.90,
    shm_latency=0.45e-6,
    shm_bandwidth=2.0e9,
    compute_efficiency=0.92,
)
