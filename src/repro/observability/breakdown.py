"""Per-message critical-path latency attribution.

Reconstructs each message's life from trace records and attributes its
end-to-end latency to the stack layers it crossed:

* ``mpich2 (send)`` — CH3 entry until the NewMadeleine submission
* ``nmad (send)`` — nm_sr_isend software path (+ eager copy-in)
* ``strategy (queue)`` — waiting in the optimization window for
  window space / a progress pump
* ``network`` — injection, wire time, and progress-engine dispatch
  until the receive side acts on the message
* ``nmad (rendezvous)`` — RTS/CTS handshake work (registration costs)
* ``nmad (recv)`` — receive-side matching, copy-out, upper completion

The correlation keys are the ones the instrumentation carries:
``(src, dst, tag, seq)`` for message-level records, the rendezvous id
for RTS/CTS/DATA records, and the per-entry summaries inside
``strategy.pw_built`` records to see through aggregation.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.simulator.tracing import Trace

#: attribution order (send side to receive side)
SEGMENT_ORDER = (
    "mpich2 (send)",
    "nmad (send)",
    "strategy (queue)",
    "network",
    "nmad (rendezvous)",
    "nmad (recv)",
)


@dataclass
class MessageLife:
    """Timestamps of one message's journey through the stack."""

    src: int
    dst: int
    tag: Any
    seq: int
    size: int
    proto: str                      # "eager" | "rdv"
    rdv: int = 0
    t_mpi_send: Optional[float] = None
    t_post: float = 0.0             # nmad.send_post
    dur_send: float = 0.0
    t_pw: Optional[float] = None    # packet wrapper built (eager/rts out)
    t_rts_rx: Optional[float] = None
    t_grant: Optional[float] = None
    dur_grant: float = 0.0
    t_cts_rx: Optional[float] = None
    dur_cts: float = 0.0
    t_done: Optional[float] = None  # receive-side match / last chunk
    dur_recv: float = 0.0

    @property
    def complete(self) -> bool:
        return self.t_done is not None

    @property
    def t_start(self) -> float:
        return self.t_mpi_send if self.t_mpi_send is not None else self.t_post

    @property
    def total(self) -> float:
        """End-to-end latency: CH3 entry to receive completion."""
        if not self.complete:
            return 0.0
        return self.t_done + self.dur_recv - self.t_start

    def segments(self) -> "OrderedDict[str, float]":
        """Latency attributed to each layer (zeros clamped, summing to
        :attr:`total` up to unattributed residue folded into network)."""
        out: "OrderedDict[str, float]" = OrderedDict(
            (name, 0.0) for name in SEGMENT_ORDER)
        if not self.complete:
            return out
        if self.t_mpi_send is not None:
            out["mpich2 (send)"] = max(0.0, self.t_post - self.t_mpi_send)
        out["nmad (send)"] = self.dur_send
        sent = self.t_post + self.dur_send
        injected = self.t_pw if self.t_pw is not None else sent
        out["strategy (queue)"] = max(0.0, injected - sent)
        out["nmad (recv)"] = self.dur_recv
        if self.proto == "eager" or self.t_rts_rx is None:
            out["network"] = max(0.0, self.t_done - injected)
        else:
            rts_wire = max(0.0, self.t_rts_rx - injected)
            granted = (self.t_grant + self.dur_grant
                       if self.t_grant is not None else self.t_rts_rx)
            handshake = max(0.0, granted - self.t_rts_rx) + self.dur_cts
            if self.t_cts_rx is not None:
                cts_wire = max(0.0, self.t_cts_rx - granted)
                data_wire = max(0.0, self.t_done
                                - (self.t_cts_rx + self.dur_cts))
            else:
                cts_wire = 0.0
                data_wire = max(0.0, self.t_done - granted - self.dur_cts)
            out["nmad (rendezvous)"] = handshake
            out["network"] = rts_wire + cts_wire + data_wire
        return out


def message_lives(trace: Trace) -> List[MessageLife]:
    """Reconstruct every message whose send was traced (time order)."""
    lives: List[MessageLife] = []
    by_key: Dict[Tuple, MessageLife] = {}
    by_rdv: Dict[int, MessageLife] = {}
    # mpich2.send records awaiting their nmad.send_post, per (src, dst)
    pending_mpi: Dict[Tuple[int, int], deque] = {}

    for rec in trace.records:
        cat, data, t = rec.category, rec.data, rec.time
        if cat == "mpich2.send":
            if data.get("path") in ("direct", "netmod"):
                pending_mpi.setdefault(
                    (data["src"], data["dst"]), deque()).append(t)
        elif cat == "nmad.send_post":
            life = MessageLife(
                src=data["src"], dst=data["dst"], tag=data["tag"],
                seq=data["seq"], size=data["size"], proto=data["proto"],
                rdv=data.get("rdv", 0), t_post=t,
                dur_send=data.get("dur", 0.0),
            )
            queue = pending_mpi.get((life.src, life.dst))
            if queue:
                life.t_mpi_send = queue.popleft()
            lives.append(life)
            by_key[(life.src, life.dst, _tag_key(life.tag), life.seq)] = life
            if life.proto == "rdv":  # rdv ids start at 0: don't truth-test
                by_rdv[life.rdv] = life
        elif cat == "strategy.pw_built":
            for entry in data.get("msgs", ()):
                kind, src, dst, tag, seq, rdv = entry
                if kind in ("eager", "rts"):
                    life = by_key.get((src, dst, _tag_key(tag), seq))
                elif kind == "data":
                    life = by_rdv.get(rdv)
                else:
                    life = None
                if life is not None and life.t_pw is None:
                    life.t_pw = t
        elif cat == "nmad.rts_rx":
            life = by_rdv.get(data.get("rdv", 0))
            if life is not None:
                life.t_rts_rx = t
        elif cat == "nmad.rdv_grant":
            life = by_rdv.get(data.get("rdv", 0))
            if life is not None:
                life.t_grant = t
                life.dur_grant = data.get("dur", 0.0)
        elif cat == "nmad.cts_rx":
            life = by_rdv.get(data.get("rdv", 0))
            if life is not None:
                life.t_cts_rx = t
                life.dur_cts = data.get("dur", 0.0)
        elif cat == "nmad.rdv_complete":
            life = by_rdv.get(data.get("rdv", 0))
            if life is not None and life.t_done is None:
                life.t_done = t
                life.dur_recv = data.get("dur", 0.0)
        elif cat in ("nmad.eager_rx", "nmad.unexpected_match"):
            if cat == "nmad.unexpected_match" and data.get("kind") != "eager":
                # an unexpected RTS resolves through rdv_grant/rdv_complete
                continue
            life = by_key.get((data["src"], data["dst"],
                               _tag_key(data["tag"]), data["seq"]))
            if life is not None and life.t_done is None:
                life.t_done = t
                life.dur_recv = data.get("dur", 0.0)
    return lives


def _tag_key(tag: Any) -> str:
    """Hash-safe identity for arbitrary (possibly unhashable) tags."""
    return repr(tag)


@dataclass
class BreakdownSummary:
    """Aggregated per-layer attribution over a set of message lives."""

    messages: int = 0
    eager: int = 0
    rdv: int = 0
    total_latency: float = 0.0
    per_layer: "OrderedDict[str, float]" = field(
        default_factory=lambda: OrderedDict(
            (name, 0.0) for name in SEGMENT_ORDER))

    @property
    def mean_latency(self) -> float:
        return self.total_latency / self.messages if self.messages else 0.0


def summarize_breakdown(lives: List[MessageLife]) -> BreakdownSummary:
    """Sum each completed message's layer attribution."""
    out = BreakdownSummary()
    for life in lives:
        if not life.complete:
            continue
        out.messages += 1
        if life.proto == "eager":
            out.eager += 1
        else:
            out.rdv += 1
        out.total_latency += life.total
        for name, value in life.segments().items():
            out.per_layer[name] += value
    return out


def format_breakdown(lives: List[MessageLife]) -> str:
    """A per-layer latency table (mean per message and share)."""
    summary = summarize_breakdown(lives)
    if not summary.messages:
        return "(no completed traced messages)"
    attributed = sum(summary.per_layer.values())
    lines = [
        f"{summary.messages} messages traced end-to-end "
        f"({summary.eager} eager, {summary.rdv} rendezvous), "
        f"mean latency {summary.mean_latency * 1e6:.2f} us",
        f"{'layer':<22} {'mean us/msg':>12} {'share':>8}",
    ]
    for name, total in summary.per_layer.items():
        mean = total / summary.messages
        share = total / attributed if attributed else 0.0
        lines.append(f"{name:<22} {mean * 1e6:>12.3f} {share:>7.1%}")
    residue = summary.total_latency - attributed
    if summary.messages and abs(residue) > 1e-12:
        lines.append(f"{'(unattributed)':<22} "
                     f"{residue / summary.messages * 1e6:>12.3f} "
                     f"{residue / summary.total_latency:>7.1%}")
    return "\n".join(lines)
