"""Chrome trace-event / Perfetto JSON export of simulation traces.

The output is the classic ``{"traceEvents": [...]}`` JSON the Perfetto
UI (https://ui.perfetto.dev) and ``chrome://tracing`` both load:

* one *process* track group per stack layer (``nic``, ``nmad``,
  ``strategy``, ``pioman``, ``mpich2``), in bottom-up stack order;
* one *thread* track per emitting entity within the layer (a rank, a
  node, or a node+rail pair);
* records carrying a ``dur`` field become complete (``"X"``) slices
  spanning the simulated work they charge; the rest become instant
  (``"i"``) events;
* ``strategy.push`` and ``nmad.unexpected`` additionally emit counter
  (``"C"``) tracks for the optimization-window and unexpected-queue
  depths.

Timestamps are microseconds of simulated time.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.observability.taxonomy import ALL_LAYERS, entity_of, layer_of
from repro.simulator.tracing import Trace

#: (category, data key, counter name) -> emitted counter tracks
_COUNTERS = (
    ("strategy.push", "pending", "strategy window depth"),
    ("nmad.unexpected", "depth", "unexpected queue depth"),
)


def _sanitize(value: Any) -> Any:
    """Make a record data value JSON-serializable."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_sanitize(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _sanitize(v) for k, v in value.items()}
    return repr(value)


def to_perfetto(trace: Trace,
                spans: Optional[List[Any]] = None) -> Dict[str, Any]:
    """Convert a trace into a Chrome trace-event JSON object.

    ``spans`` takes the output of
    :meth:`repro.observability.profile.SpanProfiler.all_spans`: each
    span becomes a complete slice on its entity's track in its layer's
    process group, enriched with self-time — useful with a
    :class:`~repro.simulator.tracing.RingTrace` sink, where the raw
    records are a window but the profiler saw the whole run.
    """
    events: List[Dict[str, Any]] = []
    pids: Dict[str, int] = {}
    tids: Dict[tuple, int] = {}

    def pid_of(layer: str) -> int:
        pid = pids.get(layer)
        if pid is None:
            # keep documented layers in stack order; unknown ones after
            pid = (ALL_LAYERS.index(layer) + 1 if layer in ALL_LAYERS
                   else len(ALL_LAYERS) + 1 + len([p for p in pids
                                                   if p not in ALL_LAYERS]))
            pids[layer] = pid
            events.append({"name": "process_name", "ph": "M", "pid": pid,
                           "tid": 0, "args": {"name": layer}})
            events.append({"name": "process_sort_index", "ph": "M",
                           "pid": pid, "tid": 0, "args": {"sort_index": pid}})
        return pid

    def tid_of(pid: int, track: str) -> int:
        tid = tids.get((pid, track))
        if tid is None:
            tid = len([1 for p, _t in tids if p == pid]) + 1
            tids[(pid, track)] = tid
            events.append({"name": "thread_name", "ph": "M", "pid": pid,
                           "tid": tid, "args": {"name": track}})
        return tid

    for rec in trace.records:
        layer = layer_of(rec.category)
        pid = pid_of(layer)
        tid = tid_of(pid, entity_of(rec.category, rec.data))
        ts = rec.time * 1e6
        args = {k: _sanitize(v) for k, v in rec.data.items()}
        dur = rec.data.get("dur")
        if dur is not None and dur > 0:
            # ``*.end`` records are emitted when the span closes with
            # the elapsed dur: backdate the slice to its real start
            if rec.category.endswith(".end"):
                ts = max(0.0, (rec.time - dur) * 1e6)
            events.append({"name": rec.category, "cat": layer, "ph": "X",
                           "ts": ts, "dur": dur * 1e6,
                           "pid": pid, "tid": tid, "args": args})
        else:
            events.append({"name": rec.category, "cat": layer, "ph": "i",
                           "ts": ts, "s": "t",
                           "pid": pid, "tid": tid, "args": args})
        for category, key, counter in _COUNTERS:
            if rec.category == category and key in rec.data:
                events.append({"name": counter, "cat": layer, "ph": "C",
                               "ts": ts, "pid": pid, "tid": 0,
                               "args": {"depth": rec.data[key]}})

    for span in spans or ():
        layer = span.layer
        pid = pid_of(layer)
        tid = tid_of(pid, span.entity)
        args = {"self_us": span.exclusive * 1e6}
        if span.truncated:
            args["truncated"] = True
        if span.clipped > 0:
            args["clipped_us"] = span.clipped * 1e6
        if span.inclusive > 0:
            events.append({"name": span.name, "cat": layer, "ph": "X",
                           "ts": span.start * 1e6,
                           "dur": span.inclusive * 1e6,
                           "pid": pid, "tid": tid, "args": args})
        else:
            events.append({"name": span.name, "cat": layer, "ph": "i",
                           "ts": span.start * 1e6, "s": "t",
                           "pid": pid, "tid": tid, "args": args})

    # stable ts order keeps the file loadable and diffable
    events.sort(key=lambda e: (e["ph"] != "M", e.get("ts", 0.0)))
    return {"traceEvents": events, "displayTimeUnit": "ns",
            "otherData": {"generator": "repro.observability.perfetto",
                          "time_unit": "us of simulated time"}}


def write_perfetto(trace: Trace, path: str,
                   indent: Optional[int] = None,
                   spans: Optional[List[Any]] = None) -> str:
    """Write the Perfetto JSON for ``trace`` to ``path``; returns it."""
    doc = to_perfetto(trace, spans=spans)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=indent)
    return path
