"""Chrome trace-event / Perfetto JSON export of simulation traces.

The output is the classic ``{"traceEvents": [...]}`` JSON the Perfetto
UI (https://ui.perfetto.dev) and ``chrome://tracing`` both load:

* one *process* track group per stack layer (``nic``, ``nmad``,
  ``strategy``, ``pioman``, ``mpich2``), in bottom-up stack order;
* one *thread* track per emitting entity within the layer (a rank, a
  node, or a node+rail pair);
* records carrying a ``dur`` field become complete (``"X"``) slices
  spanning the simulated work they charge; the rest become instant
  (``"i"``) events;
* ``strategy.push`` and ``nmad.unexpected`` additionally emit counter
  (``"C"``) tracks for the optimization-window and unexpected-queue
  depths.

Timestamps are microseconds of simulated time.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.observability.taxonomy import ALL_LAYERS, layer_of
from repro.simulator.tracing import Trace

#: categories whose record's local entity is named by this data key
#: (fallback: first of ``rank``/``dst``/``src`` present)
_LOCAL_KEY = {
    "nmad.send_post": "src",
    "nmad.cts_rx": "src",
    "mpich2.send": "src",
    "mpich2.shm_send": "src",
}

#: (category, data key, counter name) -> emitted counter tracks
_COUNTERS = (
    ("strategy.push", "pending", "strategy window depth"),
    ("nmad.unexpected", "depth", "unexpected queue depth"),
)


def _sanitize(value: Any) -> Any:
    """Make a record data value JSON-serializable."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_sanitize(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _sanitize(v) for k, v in value.items()}
    return repr(value)


def _track_name(category: str, data: Dict[str, Any]) -> str:
    """The thread-track label of one record within its layer."""
    layer = layer_of(category)
    if layer in ("nic", "pioman", "strategy"):
        node = data.get("node", "?")
        rail = data.get("rail")
        return f"node{node} {rail}" if rail else f"node{node}"
    key = _LOCAL_KEY.get(category)
    if key is None:
        for k in ("rank", "dst", "src"):
            if k in data:
                key = k
                break
    return f"rank{data.get(key, '?')}" if key else "events"


def to_perfetto(trace: Trace) -> Dict[str, Any]:
    """Convert a trace into a Chrome trace-event JSON object."""
    events: List[Dict[str, Any]] = []
    pids: Dict[str, int] = {}
    tids: Dict[tuple, int] = {}

    def pid_of(layer: str) -> int:
        pid = pids.get(layer)
        if pid is None:
            # keep documented layers in stack order; unknown ones after
            pid = (ALL_LAYERS.index(layer) + 1 if layer in ALL_LAYERS
                   else len(ALL_LAYERS) + 1 + len([p for p in pids
                                                   if p not in ALL_LAYERS]))
            pids[layer] = pid
            events.append({"name": "process_name", "ph": "M", "pid": pid,
                           "tid": 0, "args": {"name": layer}})
            events.append({"name": "process_sort_index", "ph": "M",
                           "pid": pid, "tid": 0, "args": {"sort_index": pid}})
        return pid

    def tid_of(pid: int, track: str) -> int:
        tid = tids.get((pid, track))
        if tid is None:
            tid = len([1 for p, _t in tids if p == pid]) + 1
            tids[(pid, track)] = tid
            events.append({"name": "thread_name", "ph": "M", "pid": pid,
                           "tid": tid, "args": {"name": track}})
        return tid

    for rec in trace.records:
        layer = layer_of(rec.category)
        pid = pid_of(layer)
        tid = tid_of(pid, _track_name(rec.category, rec.data))
        ts = rec.time * 1e6
        args = {k: _sanitize(v) for k, v in rec.data.items()}
        dur = rec.data.get("dur")
        if dur is not None and dur > 0:
            events.append({"name": rec.category, "cat": layer, "ph": "X",
                           "ts": ts, "dur": dur * 1e6,
                           "pid": pid, "tid": tid, "args": args})
        else:
            events.append({"name": rec.category, "cat": layer, "ph": "i",
                           "ts": ts, "s": "t",
                           "pid": pid, "tid": tid, "args": args})
        for category, key, counter in _COUNTERS:
            if rec.category == category and key in rec.data:
                events.append({"name": counter, "cat": layer, "ph": "C",
                               "ts": ts, "pid": pid, "tid": 0,
                               "args": {"depth": rec.data[key]}})

    # stable ts order keeps the file loadable and diffable
    events.sort(key=lambda e: (e["ph"] != "M", e.get("ts", 0.0)))
    return {"traceEvents": events, "displayTimeUnit": "ns",
            "otherData": {"generator": "repro.observability.perfetto",
                          "time_unit": "us of simulated time"}}


def write_perfetto(trace: Trace, path: str,
                   indent: Optional[int] = None) -> str:
    """Write the Perfetto JSON for ``trace`` to ``path``; returns it."""
    doc = to_perfetto(trace)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=indent)
    return path
