"""Observability: trace taxonomy, metrics, Perfetto export, breakdowns.

The measurement layer of the reproduction (see ``docs/OBSERVABILITY.md``):

* :mod:`~repro.observability.taxonomy` — the documented
  ``<layer>.<event>`` trace-category taxonomy;
* :mod:`~repro.observability.metrics` — a counters/gauges/histograms
  registry fed live from trace records;
* :mod:`~repro.observability.perfetto` — Chrome trace-event / Perfetto
  JSON export;
* :mod:`~repro.observability.breakdown` — per-message critical-path
  latency attribution across the stack layers.
"""

from repro.observability.breakdown import (
    BreakdownSummary,
    MessageLife,
    format_breakdown,
    message_lives,
    summarize_breakdown,
)
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TraceMetrics,
    attach_metrics,
)
from repro.observability.perfetto import to_perfetto, write_perfetto
from repro.observability.taxonomy import (
    ALL_LAYERS,
    CATEGORIES,
    COLL_LAYERS,
    FAULT_LAYERS,
    LAYERS,
    layer_of,
)

__all__ = [
    "BreakdownSummary",
    "MessageLife",
    "format_breakdown",
    "message_lives",
    "summarize_breakdown",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TraceMetrics",
    "attach_metrics",
    "to_perfetto",
    "write_perfetto",
    "ALL_LAYERS",
    "CATEGORIES",
    "COLL_LAYERS",
    "FAULT_LAYERS",
    "LAYERS",
    "layer_of",
]
