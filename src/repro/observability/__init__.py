"""Observability: trace taxonomy, metrics, Perfetto export, breakdowns.

The measurement layer of the reproduction (see ``docs/OBSERVABILITY.md``):

* :mod:`~repro.observability.taxonomy` — the documented
  ``<layer>.<event>`` trace-category taxonomy;
* :mod:`~repro.observability.metrics` — a counters/gauges/histograms
  registry fed live from trace records;
* :mod:`~repro.observability.perfetto` — Chrome trace-event / Perfetto
  JSON export;
* :mod:`~repro.observability.breakdown` — per-message critical-path
  latency attribution across the stack layers;
* :mod:`~repro.observability.profile` — hierarchical sim-time span
  profiler (inclusive/exclusive attribution, folded-stack flame
  graphs, enriched Perfetto spans);
* :mod:`~repro.observability.engineperf` — engine/process perf
  telemetry (events/sec, heap peak, wall time, peak RSS) into the
  metrics registry.
"""

from repro.observability.breakdown import (
    BreakdownSummary,
    MessageLife,
    format_breakdown,
    message_lives,
    summarize_breakdown,
)
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TraceMetrics,
    attach_metrics,
)
from repro.observability.engineperf import (
    format_engine_stats,
    peak_rss_kib,
    record_engine_metrics,
)
from repro.observability.perfetto import to_perfetto, write_perfetto
from repro.observability.profile import Span, SpanProfiler, profile_trace
from repro.observability.taxonomy import (
    ALL_LAYERS,
    CATEGORIES,
    COLL_LAYERS,
    FAULT_LAYERS,
    LAYERS,
    LINK_LAYERS,
    entity_of,
    layer_of,
)

__all__ = [
    "BreakdownSummary",
    "MessageLife",
    "format_breakdown",
    "message_lives",
    "summarize_breakdown",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TraceMetrics",
    "attach_metrics",
    "to_perfetto",
    "write_perfetto",
    "Span",
    "SpanProfiler",
    "profile_trace",
    "format_engine_stats",
    "peak_rss_kib",
    "record_engine_metrics",
    "ALL_LAYERS",
    "CATEGORIES",
    "COLL_LAYERS",
    "FAULT_LAYERS",
    "LAYERS",
    "LINK_LAYERS",
    "entity_of",
    "layer_of",
]
