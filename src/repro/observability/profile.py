"""Hierarchical sim-time span profiler over the trace stream.

The :class:`SpanProfiler` subscribes to any
:class:`~repro.simulator.tracing.Trace` sink (full, ring or JSONL —
subscribers stream over every admitted record, so a bounded sink loses
nothing) and folds the record stream into per-entity span trees with
inclusive/exclusive **simulated-time** attribution:

* ``*.begin`` / ``*.end`` category pairs (``coll``, ``mpich2.op``,
  ``pioman.ltask``) open and close spans, matched LIFO per emitting
  entity — nested calls (a collective driving sends driving waits)
  become nested spans;
* records carrying a ``dur`` field (``nic.tx``, ``nmad.eager_rx``,
  ``pioman.ltask`` dispatch, ...) become closed leaf spans covering
  the simulated work they charge.

After :meth:`finalize`, spans are arranged into a containment forest
per entity.  *Inclusive* time of a span is its extent; *exclusive*
(self) time is the extent minus its direct children's.  Direct
children of a node are disjoint by construction, so per tree the self
times sum exactly to the root's inclusive time, and across the forest
the folded-stack output sums exactly to :meth:`total_busy` — the union
extent of all root spans, the run's total simulated busy time.

Robustness corners (all surfaced as counters on the profiler):

* a ``begin`` never closed by sim shutdown -> closed at the finalize
  time and flagged ``truncated``;
* an ``end`` with no matching open span -> counted in
  :attr:`unmatched_ends` (recovered via its ``dur`` when it carries
  one);
* partially overlapping spans on one entity (two threads of a rank) ->
  the later span is clipped to its enclosing span's extent and the
  clipped seconds tallied in :attr:`clipped_seconds`.

Outputs: :meth:`folded` (Brendan-Gregg folded stacks — feed to
``flamegraph.pl`` or https://www.speedscope.app), :meth:`report`
(top-N table + per-layer attribution), and :meth:`all_spans` for
enriched Perfetto export.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.observability.taxonomy import entity_of, layer_of
from repro.simulator.tracing import Trace, TraceRecord

__all__ = ["Span", "SpanProfiler", "profile_trace"]

#: matching key of one open span: (entity, category stem, op discriminator)
_OpenKey = Tuple[str, str, Any]


class Span:
    """One closed span: a named extent of simulated time on an entity."""

    __slots__ = ("entity", "name", "layer", "start", "end", "raw_end",
                 "seq", "truncated", "clipped", "children", "exclusive")

    def __init__(self, entity: str, name: str, layer: str,
                 start: float, end: float, seq: int,
                 truncated: bool = False):
        self.entity = entity
        self.name = name
        self.layer = layer
        self.start = start
        self.end = end
        #: the recorded end, before any overlap clipping
        self.raw_end = end
        self.seq = seq
        self.truncated = truncated
        #: seconds cut off because the span spilled past its parent
        self.clipped = 0.0
        self.children: List["Span"] = []
        #: inclusive minus direct children (set when the forest builds)
        self.exclusive = 0.0

    @property
    def inclusive(self) -> float:
        return self.end - self.start

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, {self.entity}, "
                f"[{self.start:.9f}, {self.end:.9f}])")


def _span_name(stem: str, data: Dict[str, Any]) -> str:
    """Display name of a begin/end span (always ``<layer>.<...>``)."""
    if stem == "coll":
        return f"coll.{data.get('coll', '?')}[{data.get('algo', '?')}]"
    op = data.get("op")
    if op is not None and stem.endswith(".op"):
        return f"{stem[:-3]}.{op}"
    if stem == "pioman.ltask":
        # keep distinct from the "pioman.ltask" dispatch-cost leaf
        # record that nests inside this span
        return "pioman.ltask.run"
    return stem


class SpanProfiler:
    """Folds a trace's record stream into per-entity span trees."""

    def __init__(self) -> None:
        self._open: Dict[_OpenKey, List[Tuple[float, str, str]]] = {}
        self._spans: List[Span] = []
        self._seq = 0
        self._forest: Optional[Dict[str, List[Span]]] = None
        self._attached: Optional[Trace] = None
        #: ``*.end`` records that matched no open begin
        self.unmatched_ends = 0
        #: spans closed unfinished at :meth:`finalize`
        self.truncated_spans = 0
        #: partially overlapping spans clipped to their parent's extent
        self.clipped_spans = 0
        self.clipped_seconds = 0.0

    # -- wiring ----------------------------------------------------------
    def attach(self, trace: Trace) -> "SpanProfiler":
        """Subscribe to ``trace``; records stream in as the sim runs."""
        trace.subscribe(self.on_record)
        self._attached = trace
        return self

    def detach(self) -> None:
        if self._attached is not None:
            self._attached.unsubscribe(self.on_record)
            self._attached = None

    # -- feed ------------------------------------------------------------
    def on_record(self, rec: TraceRecord) -> None:
        category = rec.category
        data = rec.data
        if category.endswith(".begin"):
            stem = category[:-6]
            key = (entity_of(category, data), stem, data.get("op"))
            self._open.setdefault(key, []).append(
                (rec.time, _span_name(stem, data), layer_of(category)))
        elif category.endswith(".end"):
            stem = category[:-4]
            entity = entity_of(category, data)
            stack = self._open.get((entity, stem, data.get("op")))
            if stack:
                start, name, layer = stack.pop()
                self._close(entity, name, layer, start, rec.time)
            else:
                self.unmatched_ends += 1
                dur = data.get("dur")
                if dur:
                    # recover the extent from the carried duration
                    self._close(entity, _span_name(stem, data),
                                layer_of(category), rec.time - dur, rec.time)
        else:
            dur = data.get("dur")
            if dur:
                # a leaf span covering the simulated work charged after
                # the record (the exporter draws the same slice)
                self._close(entity_of(category, data), category,
                            layer_of(category), rec.time, rec.time + dur)

    def _close(self, entity: str, name: str, layer: str,
               start: float, end: float, truncated: bool = False) -> None:
        self._seq += 1
        if end < start:
            end = start
        self._spans.append(
            Span(entity, name, layer, start, end, self._seq,
                 truncated=truncated))
        self._forest = None

    # -- finalize & build ------------------------------------------------
    def finalize(self, end_time: Optional[float] = None) -> None:
        """Close every still-open span (flagged truncated) at ``end_time``.

        Call once the simulation is over, passing ``sim.now``; without
        an explicit time the latest span edge seen is used.  Idempotent
        (later calls only close spans opened since).
        """
        if end_time is None:
            end_time = max((s.end for s in self._spans), default=0.0)
            for stack in self._open.values():
                for start, _name, _layer in stack:
                    if start > end_time:
                        end_time = start
        for (entity, _stem, _op), stack in list(self._open.items()):
            while stack:
                start, name, layer = stack.pop()
                self.truncated_spans += 1
                self._close(entity, name, layer, start,
                            max(start, end_time), truncated=True)
        self._open.clear()

    def forest(self) -> Dict[str, List[Span]]:
        """Entity -> root spans of its containment tree (built lazily)."""
        if self._forest is None:
            self._forest = self._build()
        return self._forest

    def _build(self) -> Dict[str, List[Span]]:
        # rebuilds start from scratch: reset clip tallies so a second
        # build (more spans closed since) never double-counts
        self.clipped_spans = 0
        self.clipped_seconds = 0.0
        by_entity: Dict[str, List[Span]] = {}
        for span in self._spans:
            span.children = []
            span.clipped = 0.0
            span.end = span.raw_end
            by_entity.setdefault(span.entity, []).append(span)
        forest: Dict[str, List[Span]] = {}
        for entity, spans in by_entity.items():
            # parents sort before children: earlier start first, then
            # wider extent, then emission order
            spans.sort(key=lambda s: (s.start, -s.end, s.seq))
            roots: List[Span] = []
            stack: List[Span] = []
            for span in spans:
                while stack and (stack[-1].end < span.start
                                 or (stack[-1].end <= span.start
                                     and span.end > stack[-1].end)):
                    stack.pop()
                if stack:
                    top = stack[-1]
                    if span.end > top.end:
                        # partial overlap (sibling threads): clip to the
                        # enclosing extent so the tree stays consistent
                        clipped = span.end - top.end
                        span.clipped = clipped
                        span.end = top.end
                        self.clipped_spans += 1
                        self.clipped_seconds += clipped
                    top.children.append(span)
                else:
                    roots.append(span)
                stack.append(span)
            forest[entity] = roots
        # exclusive = inclusive - direct children (children disjoint)
        for roots in forest.values():
            order: List[Span] = []
            work = list(roots)
            while work:
                span = work.pop()
                order.append(span)
                work.extend(span.children)
            for span in reversed(order):
                child_sum = 0.0
                for child in span.children:
                    child_sum += child.inclusive
                span.exclusive = max(0.0, span.inclusive - child_sum)
        return forest

    # -- views -----------------------------------------------------------
    def all_spans(self) -> List[Span]:
        """Every span, forest-built (exclusive times populated)."""
        self.forest()
        return list(self._spans)

    def busy_of(self, entity: str) -> float:
        """Union extent of ``entity``'s root spans (they are disjoint)."""
        total = 0.0
        for root in self.forest().get(entity, []):
            total += root.inclusive
        return total

    def total_busy(self) -> float:
        """The run's total simulated busy time across all entities."""
        return sum(self.busy_of(entity) for entity in self.forest())

    def folded(self) -> Dict[str, float]:
        """Folded call stacks: ``entity;name;...`` -> exclusive seconds.

        The values sum exactly (modulo float addition order) to
        :meth:`total_busy` — the flame graph covers the run's busy time
        with no double counting.
        """
        out: Dict[str, float] = {}

        def walk(span: Span, prefix: str) -> None:
            path = f"{prefix};{span.name}"
            out[path] = out.get(path, 0.0) + span.exclusive
            for child in span.children:
                walk(child, path)

        for entity, roots in sorted(self.forest().items()):
            for root in roots:
                walk(root, entity)
        return out

    def write_folded(self, path: str) -> str:
        """Write folded stacks (integer nanosecond values) to ``path``.

        The format is Brendan Gregg's ``stack value`` lines; render
        with ``flamegraph.pl`` or paste into speedscope.
        """
        with open(path, "w") as fh:
            for stack, seconds in sorted(self.folded().items()):
                fh.write(f"{stack} {round(seconds * 1e9)}\n")
        return path

    def aggregate(self) -> List[Dict[str, Any]]:
        """Per-name totals: count, inclusive and exclusive seconds.

        Inclusive sums double-count same-name nesting (the classic
        recursive-frame caveat); exclusive sums never double-count.
        """
        totals: Dict[str, Dict[str, Any]] = {}
        for span in self.all_spans():
            row = totals.get(span.name)
            if row is None:
                row = totals[span.name] = {
                    "name": span.name, "layer": span.layer, "count": 0,
                    "inclusive": 0.0, "exclusive": 0.0}
            row["count"] += 1
            row["inclusive"] += span.inclusive
            row["exclusive"] += span.exclusive
        return sorted(totals.values(),
                      key=lambda r: (-r["inclusive"], r["name"]))

    def per_layer(self) -> Dict[str, Dict[str, float]]:
        """Layer -> inclusive/exclusive simulated seconds.

        Exclusive is the layer's self time (sums to the total busy
        time over all layers).  Inclusive counts a span only when no
        ancestor belongs to the same layer, so a layer never
        double-counts its own nesting.
        """
        out: Dict[str, Dict[str, float]] = {}

        def walk(span: Span, seen_layers: Tuple[str, ...]) -> None:
            row = out.setdefault(span.layer,
                                 {"inclusive": 0.0, "exclusive": 0.0})
            row["exclusive"] += span.exclusive
            if span.layer not in seen_layers:
                row["inclusive"] += span.inclusive
                below = seen_layers + (span.layer,)
            else:
                below = seen_layers
            for child in span.children:
                walk(child, below)

        for roots in self.forest().values():
            for root in roots:
                walk(root, ())
        return out

    # -- rendering -------------------------------------------------------
    def report(self, top: int = 15) -> str:
        """Top-N span table + per-layer attribution, terminal-friendly."""
        forest = self.forest()
        n_spans = len(self._spans)
        busy = self.total_busy()
        lines = [
            f"span profile: {n_spans} spans across {len(forest)} entities"
            + (f", {self.truncated_spans} truncated at shutdown"
               if self.truncated_spans else "")
            + (f", {self.clipped_spans} clipped "
               f"({self.clipped_seconds * 1e6:.2f} us)"
               if self.clipped_spans else "")
            + (f", {self.unmatched_ends} unmatched end(s)"
               if self.unmatched_ends else ""),
            f"total simulated busy time: {busy * 1e6:.2f} us",
            "",
            f"{'layer':<10} {'self_us':>12} {'self_%':>7} {'incl_us':>12}",
        ]
        layers = self.per_layer()
        for layer in sorted(layers,
                            key=lambda la: -layers[la]["exclusive"]):
            row = layers[layer]
            share = row["exclusive"] / busy * 100 if busy > 0 else 0.0
            lines.append(f"{layer:<10} {row['exclusive'] * 1e6:>12.2f} "
                         f"{share:>6.1f}% {row['inclusive'] * 1e6:>12.2f}")
        self_sum = sum(row["exclusive"] for row in layers.values())
        lines.append(f"{'total':<10} {self_sum * 1e6:>12.2f} "
                     f"{'100.0%' if busy > 0 else '   n/a':>7}")
        lines.append("")
        lines.append(f"top {top} spans by inclusive time:")
        lines.append(f"{'span':<32} {'count':>7} {'incl_us':>12} "
                     f"{'self_us':>12}")
        for row in self.aggregate()[:top]:
            lines.append(f"{row['name']:<32} {row['count']:>7} "
                         f"{row['inclusive'] * 1e6:>12.2f} "
                         f"{row['exclusive'] * 1e6:>12.2f}")
        return "\n".join(lines)


def profile_trace(trace: Trace,
                  end_time: Optional[float] = None) -> SpanProfiler:
    """Profile an already-recorded in-memory trace in one pass."""
    profiler = SpanProfiler()
    for rec in trace.records:
        profiler.on_record(rec)
    profiler.finalize(end_time)
    return profiler
