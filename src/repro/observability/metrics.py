"""Metrics registry fed from trace records.

Three instrument kinds — :class:`Counter`, :class:`Gauge`,
:class:`Histogram` — live in a :class:`MetricsRegistry` under
``name`` or ``name[label]`` keys.  :class:`TraceMetrics` subscribes to
a :class:`~repro.simulator.tracing.Trace` and maintains the standard
stack metrics (documented in ``docs/OBSERVABILITY.md``) as records
stream in, so one simulation pass yields both the raw event log and
the aggregate view.

Usage::

    trace = Trace()
    metrics = attach_metrics(trace)
    run_mpi(program, 2, spec, trace=trace)
    print(metrics.format_summary())
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

from repro.simulator.tracing import Trace, TraceRecord


class Counter:
    """A monotonically increasing sum."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """A sampled level; remembers the high-water mark."""

    __slots__ = ("value", "high")

    def __init__(self) -> None:
        self.value = 0.0
        self.high = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.high:
            self.high = value


class Histogram:
    """Streaming count/sum/min/max/mean of observed samples."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Named instruments, created on first use."""

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    @staticmethod
    def _key(name: str, label: Optional[str]) -> str:
        return f"{name}[{label}]" if label is not None else name

    def _get(self, cls, name: str, label: Optional[str]):
        key = self._key(name, label)
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = cls()
        elif not isinstance(metric, cls):
            raise TypeError(f"metric {key!r} is a {type(metric).__name__}, "
                            f"not a {cls.__name__}")
        return metric

    def counter(self, name: str, label: Optional[str] = None) -> Counter:
        return self._get(Counter, name, label)

    def gauge(self, name: str, label: Optional[str] = None) -> Gauge:
        return self._get(Gauge, name, label)

    def histogram(self, name: str, label: Optional[str] = None) -> Histogram:
        return self._get(Histogram, name, label)

    def labels_of(self, name: str) -> Tuple[str, ...]:
        """The labels under which ``name[...]`` instruments exist."""
        prefix = name + "["
        return tuple(k[len(prefix):-1] for k in self._metrics
                     if k.startswith(prefix) and k.endswith("]"))

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Plain-data dump of every instrument (JSON-friendly)."""
        out: Dict[str, Dict[str, float]] = {}
        for key in sorted(self._metrics):
            m = self._metrics[key]
            if isinstance(m, Counter):
                out[key] = {"type": "counter", "value": m.value}
            elif isinstance(m, Gauge):
                out[key] = {"type": "gauge", "value": m.value, "high": m.high}
            else:
                out[key] = {"type": "histogram", "count": m.count,
                            "sum": m.total, "mean": m.mean,
                            "min": m.min if m.count else 0.0,
                            "max": m.max if m.count else 0.0}
        return out

    def format_table(self) -> str:
        """A terminal-friendly table of every instrument."""
        lines = [f"{'metric':<40} {'value':>14}  detail"]
        for key in sorted(self._metrics):
            m = self._metrics[key]
            if isinstance(m, Counter):
                lines.append(f"{key:<40} {_fmt(m.value):>14}")
            elif isinstance(m, Gauge):
                lines.append(f"{key:<40} {_fmt(m.value):>14}  "
                             f"high={_fmt(m.high)}")
            else:
                if m.count:
                    lines.append(f"{key:<40} {m.count:>14}  "
                                 f"mean={_fmt(m.mean)} min={_fmt(m.min)} "
                                 f"max={_fmt(m.max)}")
                else:
                    lines.append(f"{key:<40} {0:>14}")
        return "\n".join(lines)


def _fmt(v: float) -> str:
    if v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return f"{v:.3g}"


class TraceMetrics:
    """The standard stack metrics, maintained live from a trace feed.

    Counters/gauges/histograms kept (see ``docs/OBSERVABILITY.md``):

    * ``link.frames[rail/link]`` / ``link.bytes[rail/link]`` — per-link
      traffic on routed fabrics
    * ``link.busy_time[rail/link]`` — serialization seconds per link
    * ``link.queue_delay[rail/link]`` — seconds spent waiting behind
      earlier frames on the link (histogram)
    * ``link.queue_depth[rail/link]`` — occupancy gauge; its high-water
      mark is the link's max contention
    * ``nic.tx_frames[rail]`` / ``nic.tx_bytes[rail]`` — traffic per rail
    * ``nic.busy_time[rail]`` — summed injection time (for busy fraction)
    * ``nmad.messages_sent`` / ``nmad.messages_received``
    * ``nmad.unexpected`` / ``nmad.unexpected_residency`` (seconds)
    * ``nmad.unexpected_depth`` — unexpected-queue depth gauge
    * ``strategy.window_depth`` — optimization-window depth gauge
    * ``strategy.pw_entries`` — aggregation factor histogram
    * ``strategy.pw_wire_bytes`` — wire size per packet wrapper
    * ``pioman.polls`` / ``pioman.ltasks`` / ``pioman.sem_waits``
    * ``pioman.sem_wait_time`` (seconds)
    * ``pioman.engine.polls[engine]`` / ``pioman.engine.ltasks[engine]``
      / ``pioman.engine.steals`` — alternative progress engines
    * ``nmad.reg_hits`` / ``nmad.reg_misses`` / ``nmad.reg_evicted_bytes``
      / ``nmad.reg_pinned_bytes`` — IB pin-down registration cache
    * ``mpich2.sends[path]`` / ``mpich2.recv_posts``
    * ``mpich2.anysource_scans`` / ``mpich2.anysource_hits``
    * ``mpich2.cell_copy_bytes`` / ``mpich2.shm_messages``
    * ``coll.calls[coll/algo]`` — per-rank dispatched-collective count
    * ``coll.time[coll/algo]`` — rank-local seconds inside the algorithm
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.t_first: Optional[float] = None
        self.t_last: float = 0.0
        # open rail outages: rail -> (down_since, bandwidth share)
        self._rails_down: Dict[str, Tuple[float, float]] = {}
        self._degraded_area = 0.0  # sum of share x downtime, closed downs

    # -- wiring ----------------------------------------------------------
    def attach(self, trace: Trace) -> "TraceMetrics":
        trace.subscribe(self.on_record)
        return self

    # -- feed ------------------------------------------------------------
    def on_record(self, rec: TraceRecord) -> None:
        if self.t_first is None:
            self.t_first = rec.time
        if rec.time > self.t_last:
            self.t_last = rec.time
        handler = self._HANDLERS.get(rec.category)
        if handler is not None:
            handler(self, rec)

    def _on_link_xmit(self, rec: TraceRecord) -> None:
        r = self.registry
        link = f"{rec.data.get('rail', '?')}/{rec.data.get('link', '?')}"
        r.counter("link.frames", link).inc()
        r.counter("link.bytes", link).inc(rec.data.get("size", 0))
        r.counter("link.busy_time", link).inc(rec.data.get("dur", 0.0))
        r.histogram("link.queue_delay", link).observe(
            rec.data.get("queued", 0.0))
        r.gauge("link.queue_depth", link).set(rec.data.get("depth", 0))

    def _on_nic_tx(self, rec: TraceRecord) -> None:
        r = self.registry
        rail = rec.data["rail"]
        r.counter("nic.tx_frames", rail).inc()
        r.counter("nic.tx_bytes", rail).inc(rec.data["size"])
        r.counter("nic.busy_time", rail).inc(rec.data.get("dur", 0.0))

    def _on_send_post(self, rec: TraceRecord) -> None:
        self.registry.counter("nmad.messages_sent").inc()

    def _on_recv_done(self, rec: TraceRecord) -> None:
        self.registry.counter("nmad.messages_received").inc()

    def _on_unexpected(self, rec: TraceRecord) -> None:
        self.registry.counter("nmad.unexpected").inc()
        self.registry.gauge("nmad.unexpected_depth").set(
            rec.data.get("depth", 0))

    def _on_unexpected_match(self, rec: TraceRecord) -> None:
        self.registry.histogram("nmad.unexpected_residency").observe(
            rec.data.get("residency", 0.0))
        if rec.data.get("kind") == "eager":
            self.registry.counter("nmad.messages_received").inc()

    def _on_push(self, rec: TraceRecord) -> None:
        self.registry.gauge("strategy.window_depth").set(
            rec.data.get("pending", 0))

    def _on_pw_built(self, rec: TraceRecord) -> None:
        r = self.registry
        r.histogram("strategy.pw_entries").observe(rec.data.get("entries", 1))
        r.histogram("strategy.pw_wire_bytes").observe(
            rec.data.get("wire_size", 0))

    def _on_poll(self, rec: TraceRecord) -> None:
        self.registry.counter("pioman.polls").inc()

    def _on_ltask(self, rec: TraceRecord) -> None:
        self.registry.counter("pioman.ltasks").inc()

    def _on_engine_poll(self, rec: TraceRecord) -> None:
        self.registry.counter("pioman.engine.polls",
                              rec.data.get("engine", "?")).inc()

    def _on_engine_ltask(self, rec: TraceRecord) -> None:
        self.registry.counter("pioman.engine.ltasks",
                              rec.data.get("engine", "?")).inc()

    def _on_engine_steal(self, rec: TraceRecord) -> None:
        self.registry.counter("pioman.engine.steals").inc()

    def _on_reg_cache(self, rec: TraceRecord) -> None:
        hit = rec.data.get("hit", False)
        self.registry.counter(
            "nmad.reg_hits" if hit else "nmad.reg_misses").inc()
        evicted = rec.data.get("evicted", 0)
        if evicted:
            self.registry.counter("nmad.reg_evicted_bytes").inc(evicted)
        self.registry.gauge("nmad.reg_pinned_bytes").set(
            rec.data.get("pinned", 0))

    def _on_sem_wait(self, rec: TraceRecord) -> None:
        self.registry.counter("pioman.sem_waits").inc()

    def _on_sem_wake(self, rec: TraceRecord) -> None:
        self.registry.histogram("pioman.sem_wait_time").observe(
            rec.data.get("waited", 0.0))

    def _on_mpi_send(self, rec: TraceRecord) -> None:
        self.registry.counter("mpich2.sends", rec.data.get("path", "?")).inc()

    def _on_mpi_recv(self, rec: TraceRecord) -> None:
        self.registry.counter("mpich2.recv_posts").inc()

    def _on_as_scan(self, rec: TraceRecord) -> None:
        self.registry.counter("mpich2.anysource_scans").inc()
        if rec.data.get("hit"):
            self.registry.counter("mpich2.anysource_hits").inc()

    def _on_cell_copy(self, rec: TraceRecord) -> None:
        self.registry.counter("mpich2.cell_copy_bytes").inc(
            rec.data.get("size", 0))

    def _on_shm_send(self, rec: TraceRecord) -> None:
        self.registry.counter("mpich2.shm_messages").inc()

    # -- collective dispatch ----------------------------------------------
    def _on_coll_end(self, rec: TraceRecord) -> None:
        label = f"{rec.data.get('coll', '?')}/{rec.data.get('algo', '?')}"
        self.registry.counter("coll.calls", label).inc()
        self.registry.histogram("coll.time", label).observe(
            rec.data.get("dur", 0.0))

    # -- fault / reliability ---------------------------------------------
    def _on_fault_drop(self, rec: TraceRecord) -> None:
        r = self.registry
        rail = rec.data.get("rail", "?")
        r.counter("fault.drops", rail).inc()
        r.counter("fault.dropped_bytes", rail).inc(rec.data.get("size", 0))

    def _on_fault_corrupt(self, rec: TraceRecord) -> None:
        self.registry.counter("fault.corrupts", rec.data.get("rail", "?")).inc()

    def _on_fault_stall(self, rec: TraceRecord) -> None:
        self.registry.counter("fault.stall_time",
                              rec.data.get("rail", "?")).inc(
            rec.data.get("dur", 0.0))

    def _on_reliab_timeout(self, rec: TraceRecord) -> None:
        self.registry.counter("reliab.timeouts", rec.data.get("rail", "?")).inc()

    def _on_reliab_retransmit(self, rec: TraceRecord) -> None:
        r = self.registry
        rail = rec.data.get("rail", "?")
        r.counter("reliab.retransmits", rail).inc()
        r.counter("reliab.retransmitted_bytes", rail).inc(
            rec.data.get("size", 0))

    def _on_reliab_duplicate(self, rec: TraceRecord) -> None:
        self.registry.counter("reliab.duplicates").inc()

    def _on_reliab_rdv_timeout(self, rec: TraceRecord) -> None:
        self.registry.counter("reliab.rdv_timeouts").inc()

    def _on_rail_down(self, rec: TraceRecord) -> None:
        self.registry.counter("reliab.rail_downs").inc()
        self._rails_down[rec.data.get("rail", "?")] = (
            rec.time, rec.data.get("share", 0.0))

    def _on_rail_up(self, rec: TraceRecord) -> None:
        rail = rec.data.get("rail", "?")
        down = self._rails_down.pop(rail, None)
        if down is not None:
            self._degraded_area += down[1] * (rec.time - down[0])
        self.registry.histogram("reliab.recovery_time").observe(
            rec.data.get("downtime", 0.0))

    def _on_failover(self, rec: TraceRecord) -> None:
        self.registry.counter("reliab.failovers").inc()

    _HANDLERS = {
        "link.xmit": _on_link_xmit,
        "nic.tx": _on_nic_tx,
        "nmad.send_post": _on_send_post,
        "nmad.eager_rx": _on_recv_done,
        "nmad.rdv_complete": _on_recv_done,
        "nmad.unexpected": _on_unexpected,
        "nmad.unexpected_match": _on_unexpected_match,
        "strategy.push": _on_push,
        "strategy.pw_built": _on_pw_built,
        "nmad.reg_cache": _on_reg_cache,
        "pioman.poll": _on_poll,
        "pioman.ltask": _on_ltask,
        "pioman.engine.poll": _on_engine_poll,
        "pioman.engine.ltask": _on_engine_ltask,
        "pioman.engine.steal": _on_engine_steal,
        "pioman.sem_wait": _on_sem_wait,
        "pioman.sem_wake": _on_sem_wake,
        "mpich2.send": _on_mpi_send,
        "mpich2.recv_post": _on_mpi_recv,
        "mpich2.anysource_scan": _on_as_scan,
        "mpich2.cell_copy": _on_cell_copy,
        "mpich2.shm_send": _on_shm_send,
        "coll.end": _on_coll_end,
        "fault.drop": _on_fault_drop,
        "fault.corrupt": _on_fault_corrupt,
        "fault.stall": _on_fault_stall,
        "reliab.timeout": _on_reliab_timeout,
        "reliab.retransmit": _on_reliab_retransmit,
        "reliab.duplicate": _on_reliab_duplicate,
        "reliab.rdv_timeout": _on_reliab_rdv_timeout,
        "reliab.rail_down": _on_rail_down,
        "reliab.rail_up": _on_rail_up,
        "reliab.failover": _on_failover,
    }

    # -- derived views ----------------------------------------------------
    def bytes_per_rail(self) -> Dict[str, float]:
        r = self.registry
        return {rail: r.counter("nic.tx_bytes", rail).value
                for rail in r.labels_of("nic.tx_bytes")}

    def nic_busy_fraction(self) -> Dict[str, float]:
        """Injection-busy share of each rail over the traced span."""
        span = (self.t_last - self.t_first) if self.t_first is not None else 0.0
        r = self.registry
        out = {}
        for rail in r.labels_of("nic.busy_time"):
            busy = r.counter("nic.busy_time", rail).value
            out[rail] = busy / span if span > 0 else 0.0
        return out

    def hottest_links(self, n: int = 5) -> Dict[str, Dict[str, float]]:
        """The ``n`` links with the most queueing (contention hot spots)."""
        r = self.registry
        rows = []
        for link in r.labels_of("link.queue_delay"):
            h = r.histogram("link.queue_delay", link)
            busy = r.counter("link.busy_time", link).value
            rows.append((h.total, busy, link))
        out: Dict[str, Dict[str, float]] = {}
        for total, _busy, link in sorted(rows, reverse=True)[:n]:
            out[link] = {
                "queue_delay": total,
                "busy_time": r.counter("link.busy_time", link).value,
                "max_depth": r.gauge("link.queue_depth", link).high,
            }
        return out

    def polls_per_message(self) -> float:
        msgs = self.registry.counter("nmad.messages_received").value
        polls = self.registry.counter("pioman.polls").value
        return polls / msgs if msgs else 0.0

    def degraded_bandwidth_fraction(self) -> float:
        """Share of aggregate bandwidth x time lost to dead rails.

        Sum over outages of (rail's sampled bandwidth share x downtime),
        normalized by the traced span.  Rails still down at the end of
        the trace are charged until ``t_last``.
        """
        span = (self.t_last - self.t_first) if self.t_first is not None else 0.0
        if span <= 0:
            return 0.0
        area = self._degraded_area
        for since, share in self._rails_down.values():
            area += share * (self.t_last - since)
        return area / span

    def derived(self) -> Dict[str, object]:
        return {
            "bytes_per_rail": self.bytes_per_rail(),
            "nic_busy_fraction": self.nic_busy_fraction(),
            "polls_per_message": self.polls_per_message(),
            "degraded_bandwidth_fraction": self.degraded_bandwidth_fraction(),
        }

    def format_summary(self) -> str:
        lines = [self.registry.format_table(), ""]
        derived = self.derived()
        lines.append("derived:")
        for rail, b in sorted(derived["bytes_per_rail"].items()):
            busy = derived["nic_busy_fraction"].get(rail, 0.0)
            lines.append(f"  rail {rail}: {int(b)} bytes on the wire, "
                         f"NIC busy {busy * 100:.1f}% of the traced span")
        lines.append(f"  polls per received message: "
                     f"{derived['polls_per_message']:.2f}")
        if derived["degraded_bandwidth_fraction"] > 0:
            lines.append(f"  degraded bandwidth fraction: "
                         f"{derived['degraded_bandwidth_fraction'] * 100:.1f}%")
        return "\n".join(lines)


def attach_metrics(trace: Trace,
                   registry: Optional[MetricsRegistry] = None) -> TraceMetrics:
    """Subscribe a fresh :class:`TraceMetrics` to ``trace``."""
    return TraceMetrics(registry).attach(trace)
