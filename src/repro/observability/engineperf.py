"""Engine and process performance telemetry -> metrics registry.

The simulator accumulates host-side run-loop counters (events
dispatched, high-water heap length, wall seconds — see
:meth:`repro.simulator.engine.Simulator.perf_stats`); this module
lands them in a :class:`~repro.observability.metrics.MetricsRegistry`
under the ``engine.*`` / ``process.*`` names, next to the simulated
stack metrics, so one snapshot carries both "what the simulation did"
and "what it cost to simulate".

Metrics fed:

* ``engine.events`` — callbacks dispatched (counter)
* ``engine.events_per_sec`` — dispatch throughput (gauge)
* ``engine.queue_peak`` — high-water event-queue length (gauge)
* ``engine.heap_peak`` — legacy alias of ``engine.queue_peak``, kept
  for dashboards written before the queue became pluggable
* ``engine.wall_seconds`` — host seconds inside ``run`` (counter)
* ``process.peak_rss_kib`` — process high-water resident set (gauge)
"""

from __future__ import annotations

import resource
import sys
from typing import Any, Dict, Optional

from repro.observability.metrics import MetricsRegistry
from repro.simulator.engine import Simulator


def peak_rss_kib() -> float:
    """The process's high-water resident set size, in KiB.

    ``ru_maxrss`` is KiB on Linux and bytes on macOS; normalized here.
    """
    peak = float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    if sys.platform == "darwin":
        peak /= 1024.0
    return peak


def record_engine_metrics(sim: Simulator,
                          registry: Optional[MetricsRegistry] = None,
                          ) -> Dict[str, Any]:
    """Land ``sim``'s run-loop telemetry in ``registry``; returns it.

    Call after the run completes.  The returned dict is
    ``sim.perf_stats()`` plus ``peak_rss_kib``.
    """
    registry = registry if registry is not None else MetricsRegistry()
    stats = dict(sim.perf_stats())
    stats["peak_rss_kib"] = peak_rss_kib()
    registry.counter("engine.events").inc(stats["events_executed"])
    registry.gauge("engine.events_per_sec").set(stats["events_per_sec"])
    registry.gauge("engine.queue_peak").set(stats["queue_peak"])
    registry.gauge("engine.heap_peak").set(stats["queue_peak"])  # legacy
    registry.counter("engine.wall_seconds").inc(stats["wall_seconds"])
    registry.gauge("process.peak_rss_kib").set(stats["peak_rss_kib"])
    return stats


def format_engine_stats(stats: Dict[str, Any]) -> str:
    """One-paragraph rendering of :func:`record_engine_metrics` output."""
    scheduler = stats.get("scheduler", "heap")
    return (
        f"engine: {int(stats['events_executed'])} events in "
        f"{stats['wall_seconds']:.3f}s wall "
        f"({stats['events_per_sec']:,.0f} events/s), "
        f"scheduler {scheduler}, "
        f"queue peak {int(stats['queue_peak'])}, "
        f"process peak RSS {stats['peak_rss_kib'] / 1024:.1f} MiB")
