"""Engine and process performance telemetry -> metrics registry.

The simulator accumulates host-side run-loop counters (events
dispatched, high-water heap length, wall seconds — see
:meth:`repro.simulator.engine.Simulator.perf_stats`); this module
lands them in a :class:`~repro.observability.metrics.MetricsRegistry`
under the ``engine.*`` / ``process.*`` names, next to the simulated
stack metrics, so one snapshot carries both "what the simulation did"
and "what it cost to simulate".

Metrics fed:

* ``engine.events`` — callbacks dispatched (counter)
* ``engine.events_per_sec`` — dispatch throughput (gauge)
* ``engine.heap_peak`` — high-water event-heap length (gauge)
* ``engine.wall_seconds`` — host seconds inside ``run`` (counter)
* ``process.peak_rss_kib`` — process high-water resident set (gauge)
"""

from __future__ import annotations

import resource
import sys
from typing import Dict, Optional

from repro.observability.metrics import MetricsRegistry
from repro.simulator.engine import Simulator


def peak_rss_kib() -> float:
    """The process's high-water resident set size, in KiB.

    ``ru_maxrss`` is KiB on Linux and bytes on macOS; normalized here.
    """
    peak = float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    if sys.platform == "darwin":
        peak /= 1024.0
    return peak


def record_engine_metrics(sim: Simulator,
                          registry: Optional[MetricsRegistry] = None,
                          ) -> Dict[str, float]:
    """Land ``sim``'s run-loop telemetry in ``registry``; returns it.

    Call after the run completes.  The returned dict is
    ``sim.perf_stats()`` plus ``peak_rss_kib``.
    """
    registry = registry if registry is not None else MetricsRegistry()
    stats = dict(sim.perf_stats())
    stats["peak_rss_kib"] = peak_rss_kib()
    registry.counter("engine.events").inc(stats["events_executed"])
    registry.gauge("engine.events_per_sec").set(stats["events_per_sec"])
    registry.gauge("engine.heap_peak").set(stats["heap_peak"])
    registry.counter("engine.wall_seconds").inc(stats["wall_seconds"])
    registry.gauge("process.peak_rss_kib").set(stats["peak_rss_kib"])
    return stats


def format_engine_stats(stats: Dict[str, float]) -> str:
    """One-paragraph rendering of :func:`record_engine_metrics` output."""
    return (
        f"engine: {int(stats['events_executed'])} events in "
        f"{stats['wall_seconds']:.3f}s wall "
        f"({stats['events_per_sec']:,.0f} events/s), "
        f"heap peak {int(stats['heap_peak'])}, "
        f"process peak RSS {stats['peak_rss_kib'] / 1024:.1f} MiB")
