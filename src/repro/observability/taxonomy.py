"""The trace-category taxonomy of the simulated stack.

Every ``sim.record`` call site uses a category named
``<layer>.<event>``; the prefix before the first dot identifies the
emitting layer.  This module is the single source of truth: tests
assert instrumented code emits only documented categories, and the
Perfetto exporter uses :data:`LAYERS` to lay out one track group per
layer.

See ``docs/OBSERVABILITY.md`` for the prose version with the metrics
glossary.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

__all__ = ["LAYERS", "CATEGORIES", "layer_of", "entity_of",
           "categories_of_layer"]

#: layer track order (bottom-up through the stack).  These five always
#: appear in a plain traced run; fault/reliability layers are separate
#: (they only emit under a fault plan / reliability-armed spec).
LAYERS: Tuple[str, ...] = ("nic", "nmad", "strategy", "pioman", "mpich2")

#: adversity layers: the fault injector and the reliability machinery
FAULT_LAYERS: Tuple[str, ...] = ("fault", "reliab")

#: collective-dispatch layer (only emits when a program runs collectives)
COLL_LAYERS: Tuple[str, ...] = ("coll",)

#: link layer: per-hop traversal of a routed fabric (only emits when a
#: :class:`~repro.hardware.netgraph.RoutedFabric` topology is in play)
LINK_LAYERS: Tuple[str, ...] = ("link",)

#: every documented layer, in track order (links sit below the NICs)
ALL_LAYERS: Tuple[str, ...] = LINK_LAYERS + LAYERS + COLL_LAYERS + FAULT_LAYERS

#: category -> one-line description.  Common data keys: ``src``/``dst``
#: (ranks), ``tag``, ``seq``, ``size`` (payload bytes), ``rdv``
#: (rendezvous id), ``dur`` (simulated seconds of work charged at/after
#: the record), ``rail`` (NIC name).
CATEGORIES: Dict[str, str] = {
    # -- hardware (routed-fabric links) --------------------------------
    "link.xmit": "frame occupied one link of a routed fabric "
                 "(dur = serialization, queued = wait behind earlier "
                 "frames, depth = occupancy after entry, hop/hops = "
                 "position along the route; src/dst are node ids)",
    # -- hardware (NIC / fabric) ---------------------------------------
    "nic.tx": "frame injection posted on a NIC transmit engine "
              "(dur = injection time, queued = tx-engine backlog delay)",
    "nic.rx": "frame delivered into a NIC receive queue",
    # -- NewMadeleine core ---------------------------------------------
    "nmad.send_post": "nm_sr_isend submitted (proto = eager|rdv)",
    "nmad.recv_post": "nm_sr_irecv submitted",
    "nmad.eager_rx": "eager entry matched a posted receive "
                     "(dur = copy-out + upper completion)",
    "nmad.rts_rx": "rendezvous request-to-send matched a posted receive",
    "nmad.rdv_grant": "receive buffer registered and CTS queued "
                      "(dur = memory registration)",
    "nmad.cts_rx": "clear-to-send received by the sender "
                   "(dur = handshake + send-buffer registration)",
    "nmad.data_rx": "one rendezvous data chunk arrived "
                    "(remaining = bytes still in flight)",
    "nmad.rdv_complete": "last rendezvous chunk arrived; receive completes",
    "nmad.unexpected": "arrived message had no posted receive; queued "
                       "(depth = unexpected-queue depth after insert)",
    "nmad.unexpected_match": "posted receive consumed an unexpected message "
                             "(residency = time it sat in the queue)",
    "nmad.seq_check": "per-(source, tag) message-ordering check",
    "nmad.reg_cache": "IB pin-down registration-cache lookup "
                      "(hit, evicted = bytes unpinned, pinned = bytes "
                      "resident after)",
    # -- strategy (optimization window) --------------------------------
    "strategy.push": "send item queued in the optimization window "
                     "(pending = window depth after push)",
    "strategy.pw_built": "packet wrapper built and posted on a rail "
                         "(entries = aggregation factor, msgs = entry keys)",
    "strategy.split": "large rendezvous payload striped across rails "
                      "(shares = [(rail, bytes), ...])",
    # -- PIOMan --------------------------------------------------------
    "pioman.poll": "worker woke to drain ltasks (mode = idle_core|wait_core)",
    "pioman.ltask": "one background ltask dispatched",
    "pioman.ltask.begin": "PIOMan worker began one ltask "
                          "(dispatch + protocol work under the node lock)",
    "pioman.ltask.end": "that ltask's protocol work finished "
                        "(dur = span seconds)",
    "pioman.sem_wait": "application thread blocked on a semaphore, "
                       "releasing its core",
    "pioman.sem_wake": "semaphore wait satisfied (waited = blocked time)",
    "pioman.engine.poll": "an alternative progress engine polled its "
                          "ltask queues (engine = manual_poll|"
                          "dedicated_thread, pending)",
    "pioman.engine.ltask": "one ltask dispatched by a progress engine "
                           "(engine = kind, dur = dispatch cost)",
    "pioman.engine.steal": "dedicated progress thread stole work from "
                           "another rank's queue (victim = rank)",
    # -- MPICH2 (CH3 / Nemesis) ----------------------------------------
    "mpich2.op.begin": "a blocking MPI API operation entered on a rank "
                       "(op = send|recv|wait|sendrecv)",
    "mpich2.op.end": "the blocking MPI API operation returned "
                     "(dur = rank-local seconds inside the call)",
    "mpich2.send": "MPID_Send entered (path = shm|direct|netmod)",
    "mpich2.recv_post": "MPID_Recv posted (src may be 'ANY')",
    "mpich2.cell_copy": "payload copied into/out of a Nemesis queue cell "
                        "(dir = in|out)",
    "mpich2.netmod_handoff": "CH3 packet crossed the network-module "
                             "interface (dir = tx|rx, kind = eager|rts|cts)",
    "mpich2.netmod_poll": "net_module_poll invoked for an arrived frame",
    "mpich2.anysource_scan": "ANY_SOURCE request-list probe of NewMadeleine "
                             "(hit = a matching message was buffered)",
    "mpich2.shm_send": "message copied into the shared-memory queue cells",
    "mpich2.shm_recv": "message copied out of the shared-memory queue cells",
    # -- collective dispatch (repro.coll selector) ---------------------
    "coll.begin": "a dispatched collective entered on one rank "
                  "(coll = collective, algo = selected algorithm, p, size)",
    "coll.end": "the dispatched collective returned on that rank "
                "(dur = rank-local seconds inside the algorithm)",
    # -- fault injection (repro.faults) --------------------------------
    "fault.drop": "frame lost on the wire (reason = random|outage)",
    "fault.corrupt": "frame delivered corrupt; discarded at the NIC CRC",
    "fault.stall": "one injection slowed by a stall window (dur = extra)",
    "fault.outage": "rail outage window edge (state = down|up)",
    "fault.stall_window": "injection-stall window edge (state = on|off)",
    # -- reliability (ack/retransmit/failover) -------------------------
    "reliab.ack": "packet wrapper acknowledged by the receiving node "
                  "(rtt = post-to-ack time)",
    "reliab.timeout": "ack deadline passed for a posted wrapper "
                      "(consec = consecutive timeouts on the rail)",
    "reliab.retransmit": "unacked wrapper re-injected (retry = attempt)",
    "reliab.duplicate": "received wrapper already seen; dropped by dedup",
    "reliab.reorder": "header arrived ahead of a lost predecessor; parked "
                      "until the retransmission fills the seq gap",
    "reliab.rdv_timeout": "rendezvous handshake timer fired "
                          "(kind = rts|cts, gave_up on retry exhaustion)",
    "reliab.rdv_duplicate": "retried RTS/CTS recognized and absorbed",
    "reliab.rail_down": "rail declared dead (pending = orphaned wrappers, "
                        "share = its sampled bandwidth fraction)",
    "reliab.rail_up": "dead rail answered a probe and was restored "
                      "(downtime = dead span in seconds)",
    "reliab.failover": "orphaned wrapper re-routed onto a surviving rail",
    "reliab.probe": "out-of-band liveness probe of a dead rail",
}


def layer_of(category: str) -> str:
    """The emitting layer of a category (its prefix before the dot)."""
    return category.split(".", 1)[0]


#: categories whose record's local entity is named by this data key
#: (fallback: first of ``rank``/``dst``/``src`` present); sender-side
#: records name the destination rank in ``dst`` but *happen* on ``src``
_LOCAL_KEY: Dict[str, str] = {
    "nmad.send_post": "src",
    "nmad.cts_rx": "src",
    "mpich2.send": "src",
    "mpich2.shm_send": "src",
}


def entity_of(category: str, data: Dict[str, object]) -> str:
    """The emitting entity of one record, as a stable display label.

    Node-scoped layers (``nic``, ``pioman``, ``strategy``) yield
    ``node<N>`` (plus the rail for per-rail records); everything else
    yields ``rank<R>`` from the first rank-naming data key.  This is
    the track label of the Perfetto export and the per-entity grouping
    key of the span profiler — one definition so the two line up.
    """
    layer = layer_of(category)
    if layer == "link":
        # link records name the physical link itself, not a rank: their
        # src/dst keys are *node* ids and must not hit the rank fallback
        return f"{data.get('rail', '?')} {data.get('link', '?')}"
    if layer in ("nic", "pioman", "strategy"):
        node = data.get("node", "?")
        rail = data.get("rail")
        return f"node{node} {rail}" if rail else f"node{node}"
    key: Optional[str] = _LOCAL_KEY.get(category)
    if key is None:
        for k in ("rank", "dst", "src"):
            if k in data:
                key = k
                break
    return f"rank{data.get(key, '?')}" if key else "events"


def categories_of_layer(layer: str) -> Tuple[str, ...]:
    """All documented categories a layer emits."""
    return tuple(c for c in CATEGORIES if layer_of(c) == layer)
