"""Cluster topology: nodes, rails, and the builder used by the runtime."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.hardware.memory import MemoryRegistrar
from repro.hardware.nic import NIC, Fabric
from repro.hardware.params import NICParams, NodeParams
from repro.simulator import Simulator


class Node:
    """A compute node: cores, memory model, one NIC per attached rail."""

    def __init__(self, sim: Simulator, node_id: int, params: NodeParams):
        self.sim = sim
        self.node_id = node_id
        self.params = params
        self.nics: Dict[str, NIC] = {}
        #: filled in by the runtime (threads.marcel.MarcelScheduler)
        self.scheduler = None
        #: filled in by the runtime when PIOMan is enabled
        self.pioman = None

    @property
    def mem(self):
        return self.params.mem

    def attach(self, fabric: Fabric) -> NIC:
        nic = fabric.attach(self.node_id)
        self.nics[fabric.name] = nic
        return nic

    def make_registrar(self, cache: bool) -> MemoryRegistrar:
        """A fresh registration-cost oracle for one process on this node."""
        return MemoryRegistrar(self.params.mem, cache=cache)

    def __repr__(self) -> str:
        return f"Node({self.node_id}, rails={sorted(self.nics)})"


class Cluster:
    """A set of nodes joined by one or more rails (fabrics)."""

    def __init__(self, sim: Simulator, nodes: List[Node], fabrics: Dict[str, Fabric]):
        self.sim = sim
        self.nodes = nodes
        self.fabrics = fabrics

    def __len__(self) -> int:
        return len(self.nodes)

    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]

    @property
    def rail_names(self) -> List[str]:
        return sorted(self.fabrics)


def build_cluster(
    sim: Simulator,
    n_nodes: int,
    node_params: NodeParams,
    rails: Sequence[NICParams],
    topology=None,
    topo_rails: Sequence[str] = (),
) -> Cluster:
    """Build ``n_nodes`` identical nodes, each attached to every rail.

    ``topology`` (a :class:`repro.hardware.netgraph.TopologySpec`)
    turns rails into :class:`~repro.hardware.netgraph.RoutedFabric`\\ s
    — all of them by default, or only those named in ``topo_rails``.
    Without a topology every rail is the flat full-bisection fabric.

    Example
    -------
    >>> from repro.simulator import Simulator
    >>> from repro.hardware import presets, build_cluster
    >>> sim = Simulator()
    >>> cluster = build_cluster(sim, 2, presets.XEON_NODE, [presets.IB_CONNECTX])
    >>> len(cluster)
    2
    """
    if n_nodes < 1:
        raise ValueError("cluster needs at least one node")
    names = [r.name for r in rails]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate rail names: {names}")
    fabrics: Dict[str, Fabric] = {}
    for r in rails:
        if topology is not None and (not topo_rails or r.name in topo_rails):
            from repro.hardware.netgraph import RoutedFabric

            if topology.capacity < n_nodes:
                raise ValueError(
                    f"topology {topology.name} holds {topology.capacity} "
                    f"node(s), cluster needs {n_nodes}")
            fabrics[r.name] = RoutedFabric(sim, r, topology)
        else:
            fabrics[r.name] = Fabric(sim, r)
    nodes = []
    for node_id in range(n_nodes):
        node = Node(sim, node_id, node_params)
        for fabric in fabrics.values():
            node.attach(fabric)
        nodes.append(node)
    return Cluster(sim, nodes, fabrics)
