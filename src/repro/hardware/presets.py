"""Calibrated hardware parameter presets.

Calibration provenance (Section 4 of the paper, Figs. 4-8):

* IB ConnectX raw small-message latency 1.2 us, peak MPI bandwidth
  ~1400 MiB/s (MVAPICH2 with registration cache).
* Myri-10G MX: raw latency ~2.3 us, ~1150 MiB/s class.
* Point-to-point testbed: 2 nodes x 2 quad-core 3.16 GHz Xeon.
* NAS testbed (Grid'5000): 10 nodes x 4 dual-core 2.6 GHz Opteron 2218,
  one IB 10G NIC per node.

The decomposition of a raw latency into post/gap/wire/recv components is
not observable in the paper; we pick a physically plausible split and
verify only the sums against the published figures (see EXPERIMENTS.md).
"""

from repro.hardware.params import MemParams, NICParams, NodeParams

#: ConnectX InfiniBand (Verbs) — raw one-way ~1.15 us, ~1430 MiB/s peak.
IB_CONNECTX = NICParams(
    name="ib",
    post_overhead=0.10e-6,
    recv_overhead=0.10e-6,
    wire_latency=0.90e-6,
    bandwidth=1.50e9,
    per_message_gap=0.05e-6,
    max_inline=128,
    dma_setup=0.15e-6,
)

#: Myri-10G with MX — raw one-way ~2.3 us, ~1150 MiB/s class.
MX_MYRI10G = NICParams(
    name="mx",
    post_overhead=0.15e-6,
    recv_overhead=0.15e-6,
    wire_latency=1.55e-6,
    bandwidth=1.20e9,
    per_message_gap=0.10e-6,
    max_inline=128,
    dma_setup=0.20e-6,
)

#: Single-data-rate IB 10G NIC of the Grid'5000 Opteron nodes (Fig. 8).
IB_10G_SDR = NICParams(
    name="ib",
    post_overhead=0.12e-6,
    recv_overhead=0.12e-6,
    wire_latency=1.30e-6,
    bandwidth=0.95e9,
    per_message_gap=0.06e-6,
    max_inline=128,
    dma_setup=0.15e-6,
)

#: 2009-class Xeon memory system (intra-node copies, registration).
XEON_MEM = MemParams(
    copy_bandwidth=2.5e9,
    copy_base=30e-9,
    reg_base=5e-6,
    reg_per_byte=2.5e-11,
    reg_cache_hit=0.2e-6,
    poll_cost=30e-9,
)

#: Point-to-point testbed node: 2 x quad-core 3.16 GHz Xeon.
XEON_NODE = NodeParams(
    cores=8,
    flops_per_core=3.0e9,
    timeslice=1e-3,
    mem=XEON_MEM,
)

#: Grid'5000 NAS node: 4 x dual-core 2.6 GHz Opteron 2218.
OPTERON_MEM = MemParams(
    copy_bandwidth=2.0e9,
    copy_base=35e-9,
    reg_base=5e-6,
    reg_per_byte=3.0e-11,
    reg_cache_hit=0.2e-6,
    poll_cost=35e-9,
)

OPTERON_NODE = NodeParams(
    cores=8,
    flops_per_core=1.0e9,  # sustained NAS-kernel rate, not peak
    timeslice=1e-3,
    mem=OPTERON_MEM,
)
