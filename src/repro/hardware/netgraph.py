"""Topology-aware network fabrics: explicit link/switch graphs.

The flat :class:`~repro.hardware.nic.Fabric` models a rail as a
full-bisection switch — every frame crosses one `wire_latency` and
never contends with traffic between *other* node pairs.  This module
adds structured fabrics: a :class:`NetGraph` of vertices (node routers
and switches) joined by directed :class:`Link`\\ s, each with its own
serialization bandwidth and hop latency, and a :class:`RoutedFabric`
that walks every frame hop-by-hop through the graph.

The charge model is **store-and-forward**: on every traversed link a
frame waits for the link to drain (`queued`), occupies it for
``size / link.bandwidth`` seconds (`dur`), then propagates for
``link.latency``.  Concurrent frames from *any* source contend on
shared links, so congestion — and everything downstream of it
(collective-algorithm crossovers moving with topology, adaptive
multirail splits) — emerges from the structure instead of being
sampled.  See ``docs/TOPOLOGY.md``.

Topologies
----------
``ring``      n node routers in a cycle, shortest-direction routing
``mesh2d``    rows x cols grid, dimension-ordered (X then Y) routing
``torus2d``   mesh2d with wraparound, shortest direction per dimension
``fattree``   k-ary fat-tree (k/2 edge + k/2 agg per pod, (k/2)^2
              cores, k^3/4 hosts), deterministic up/down routing

All routing is deterministic: the same (src, dst) always yields the
same link sequence, so simulations stay replayable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.hardware.nic import Fabric, Frame
from repro.hardware.params import NICParams
from repro.simulator import Simulator

__all__ = ["TopologySpec", "parse_topology", "Link", "NetGraph",
           "RoutedFabric", "BackgroundTraffic", "ring", "mesh2d", "torus2d",
           "fattree"]

#: EWMA weight of the newest per-frame queueing sample (see
#: :meth:`RoutedFabric.observed_source_delay`)
_OBS_ALPHA = 0.5


# ---------------------------------------------------------------------------
# topology description (pure data, JSON-clean)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TopologySpec:
    """Pure-data description of one rail's network structure.

    ``link_bandwidth``/``hop_latency`` default to the rail NIC's
    serialization bandwidth and half its wire latency, so a topology
    can be attached to any rail preset without re-tuning.
    """

    kind: str                                 # ring|mesh2d|torus2d|fattree
    dims: Tuple[int, ...] = ()                # (n,) | (rows, cols) | (k,)
    link_bandwidth: Optional[float] = None    # B/s; None = rail bandwidth
    hop_latency: Optional[float] = None       # s; None = wire_latency / 2

    def __post_init__(self) -> None:
        if self.kind not in ("ring", "mesh2d", "torus2d", "fattree"):
            raise ValueError(f"unknown topology kind {self.kind!r}")
        want = {"ring": 1, "mesh2d": 2, "torus2d": 2, "fattree": 1}[self.kind]
        if len(self.dims) != want or any(d < 2 for d in self.dims):
            raise ValueError(
                f"{self.kind} needs {want} dimension(s) >= 2, got {self.dims}")
        if self.kind == "fattree" and self.dims[0] % 2:
            raise ValueError("fat-tree arity k must be even")

    @property
    def capacity(self) -> int:
        """How many compute nodes the topology can attach."""
        if self.kind == "fattree":
            k = self.dims[0]
            return k * k * k // 4
        n = 1
        for d in self.dims:
            n *= d
        return n

    @property
    def name(self) -> str:
        if self.kind == "fattree":
            return f"fattree:{self.dims[0]}"
        if self.kind == "ring":
            return f"ring:{self.dims[0]}"
        return f"{self.kind}:{self.dims[0]}x{self.dims[1]}"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-clean form (campaign points, cache keys)."""
        out: Dict[str, Any] = {"kind": self.kind, "dims": list(self.dims)}
        if self.link_bandwidth is not None:
            out["link_bandwidth"] = self.link_bandwidth
        if self.hop_latency is not None:
            out["hop_latency"] = self.hop_latency
        return out

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "TopologySpec":
        return TopologySpec(
            kind=data["kind"], dims=tuple(data["dims"]),
            link_bandwidth=data.get("link_bandwidth"),
            hop_latency=data.get("hop_latency"))


def parse_topology(text: str) -> Optional[TopologySpec]:
    """Parse a CLI topology spec: ``flat``, ``ring:8``, ``torus2d:4x4``,
    ``mesh2d:2x4``, ``fattree:4``.  ``flat`` returns None (no graph)."""
    text = text.strip().lower()
    if text in ("flat", "none", ""):
        return None
    kind, sep, dims_text = text.partition(":")
    if not sep:
        raise ValueError(f"bad topology {text!r}; expected KIND:DIMS "
                         "(e.g. ring:8, torus2d:4x4, fattree:4) or 'flat'")
    try:
        dims = tuple(int(d) for d in dims_text.split("x"))
    except ValueError:
        raise ValueError(f"bad topology dims {dims_text!r}") from None
    return TopologySpec(kind=kind, dims=dims)


# ---------------------------------------------------------------------------
# graph primitives
# ---------------------------------------------------------------------------

class Link:
    """One directed link: a serializing resource with hop latency."""

    __slots__ = ("name", "src", "dst", "bandwidth", "latency",
                 "busy_until", "frames", "bytes", "busy_time",
                 "queue_delay", "queued_now", "max_queued")

    def __init__(self, src: str, dst: str, bandwidth: float, latency: float):
        self.name = f"{src}>{dst}"
        self.src = src
        self.dst = dst
        self.bandwidth = bandwidth
        self.latency = latency
        self.busy_until = 0.0
        # running stats (read by metrics/CLI reports)
        self.frames = 0
        self.bytes = 0
        self.busy_time = 0.0
        self.queue_delay = 0.0
        self.queued_now = 0
        self.max_queued = 0

    def __repr__(self) -> str:
        return f"Link({self.name})"


class NetGraph:
    """A rail's link/switch graph plus its routing function.

    Vertices are strings: ``n<i>`` for node routers (direct networks:
    ring/mesh/torus), ``h<i>``/``e<i>``/``a<i>``/``c<i>`` for fat-tree
    hosts, edge, aggregation and core switches.  ``route(src, dst)``
    returns the directed links a frame traverses between the attachment
    points of two compute nodes.
    """

    def __init__(self, spec: TopologySpec, params: NICParams):
        self.spec = spec
        bw = spec.link_bandwidth if spec.link_bandwidth is not None \
            else params.bandwidth
        lat = spec.hop_latency if spec.hop_latency is not None \
            else params.wire_latency / 2
        self._bw = bw
        self._lat = lat
        self._links: Dict[Tuple[str, str], Link] = {}
        self.switches: List[str] = []
        build = getattr(self, f"_build_{spec.kind}")
        build()

    # -- construction --------------------------------------------------
    def _add(self, a: str, b: str) -> None:
        """One bidirectional connection = two directed links."""
        for src, dst in ((a, b), (b, a)):
            if (src, dst) not in self._links:
                self._links[(src, dst)] = Link(src, dst, self._bw, self._lat)

    def _link(self, src: str, dst: str) -> Link:
        return self._links[(src, dst)]

    def _build_ring(self) -> None:
        n = self.spec.dims[0]
        for i in range(n):
            self._add(f"n{i}", f"n{(i + 1) % n}")

    def _build_mesh2d(self) -> None:
        rows, cols = self.spec.dims
        for r in range(rows):
            for c in range(cols):
                if c + 1 < cols:
                    self._add(f"n{r * cols + c}", f"n{r * cols + c + 1}")
                if r + 1 < rows:
                    self._add(f"n{r * cols + c}", f"n{(r + 1) * cols + c}")

    def _build_torus2d(self) -> None:
        rows, cols = self.spec.dims
        for r in range(rows):
            for c in range(cols):
                self._add(f"n{r * cols + c}", f"n{r * cols + (c + 1) % cols}")
                self._add(f"n{r * cols + c}", f"n{((r + 1) % rows) * cols + c}")

    def _build_fattree(self) -> None:
        k = self.spec.dims[0]
        half = k // 2
        # hosts: h<i>; per pod p: edge e<p*half+j>, agg a<p*half+j>;
        # cores c<g*half+j> for g in range(half)
        for p in range(k):
            for j in range(half):
                edge = f"e{p * half + j}"
                for h in range(half):
                    self._add(f"h{(p * half + j) * half + h}", edge)
                for g in range(half):
                    self._add(edge, f"a{p * half + g}")
            for j in range(half):
                agg = f"a{p * half + j}"
                for g in range(half):
                    self._add(agg, f"c{j * half + g}")
        self.switches = sorted(
            {v for pair in self._links for v in pair if v[0] != "h"})

    # -- introspection -------------------------------------------------
    @property
    def links(self) -> List[Link]:
        """Every directed link, in deterministic (src, dst) order."""
        return [self._links[key] for key in sorted(self._links)]

    def attachment(self, node_id: int) -> str:
        """The graph vertex a compute node's NIC feeds into."""
        if self.spec.kind == "fattree":
            return f"h{node_id}"
        return f"n{node_id}"

    # -- routing -------------------------------------------------------
    def route(self, src: int, dst: int) -> List[Link]:
        """The directed links from node ``src`` to node ``dst``.

        Deterministic and loop-free; an empty route means the nodes
        share an attachment point (self-send).
        """
        if src == dst:
            return []
        router = getattr(self, f"_route_{self.spec.kind}")
        path = router(src, dst)
        return [self._link(a, b) for a, b in zip(path, path[1:])]

    def _route_ring(self, src: int, dst: int) -> List[str]:
        n = self.spec.dims[0]
        fwd = (dst - src) % n
        step = 1 if fwd <= n - fwd else -1   # tie -> clockwise
        path, cur = [f"n{src}"], src
        while cur != dst:
            cur = (cur + step) % n
            path.append(f"n{cur}")
        return path

    def _route_mesh2d(self, src: int, dst: int) -> List[str]:
        rows, cols = self.spec.dims
        sr, sc = divmod(src, cols)
        dr, dc = divmod(dst, cols)
        path = [f"n{src}"]
        # dimension order: X (column) first, then Y (row)
        r, c = sr, sc
        while c != dc:
            c += 1 if dc > c else -1
            path.append(f"n{r * cols + c}")
        while r != dr:
            r += 1 if dr > r else -1
            path.append(f"n{r * cols + c}")
        return path

    def _route_torus2d(self, src: int, dst: int) -> List[str]:
        rows, cols = self.spec.dims
        sr, sc = divmod(src, cols)
        dr, dc = divmod(dst, cols)
        path = [f"n{src}"]
        r, c = sr, sc
        step_c = self._torus_step(sc, dc, cols)
        while c != dc:
            c = (c + step_c) % cols
            path.append(f"n{r * cols + c}")
        step_r = self._torus_step(sr, dr, rows)
        while r != dr:
            r = (r + step_r) % rows
            path.append(f"n{r * cols + c}")
        return path

    @staticmethod
    def _torus_step(a: int, b: int, dim: int) -> int:
        """Shortest wraparound direction; ties go positive."""
        fwd = (b - a) % dim
        return 1 if fwd <= dim - fwd else -1

    def _route_fattree(self, src: int, dst: int) -> List[str]:
        k = self.spec.dims[0]
        half = k // 2
        s_edge, d_edge = src // half, dst // half
        s_pod, d_pod = src // (half * half), dst // (half * half)
        path = [f"h{src}", f"e{s_edge}"]
        if s_edge != d_edge:
            # up-path picked by the destination id: every (src, dst)
            # pair deterministically shares one agg (and one core)
            agg = dst % half
            path.append(f"a{s_pod * half + agg}")
            if s_pod != d_pod:
                core = agg * half + (dst // half) % half
                path.append(f"c{core}")
                path.append(f"a{d_pod * half + agg}")
            path.append(f"e{d_edge}")
        path.append(f"h{dst}")
        return path

    # -- description ---------------------------------------------------
    def describe(self) -> Dict[str, Any]:
        """Shape summary: counts, diameter, mean route length."""
        cap = self.spec.capacity
        hops = [len(self.route(s, d))
                for s in range(cap) for d in range(cap) if s != d]
        return {
            "name": self.spec.name,
            "nodes": cap,
            "switches": len(self.switches),
            "links": len(self._links),
            "link_bandwidth": self._bw,
            "hop_latency": self._lat,
            "diameter_hops": max(hops) if hops else 0,
            "mean_hops": sum(hops) / len(hops) if hops else 0.0,
        }

    def ascii_art(self) -> str:
        """Terminal sketch of the structure (grids and tree levels)."""
        if self.spec.kind in ("mesh2d", "torus2d"):
            rows, cols = self.spec.dims
            wrap = self.spec.kind == "torus2d"
            lines = []
            for r in range(rows):
                cells = "--".join(f"[{r * cols + c:>3}]" for c in range(cols))
                lines.append(("~" if wrap else " ") + cells
                             + ("~" if wrap else ""))
                if r + 1 < rows:
                    lines.append(("   " + "|     " * cols).rstrip())
            if wrap:
                lines.append("(~ = wraparound links on both dimensions)")
            return "\n".join(lines)
        if self.spec.kind == "ring":
            n = self.spec.dims[0]
            return ("/-" + "--".join(f"[{i}]" for i in range(n)) + "-\\\n"
                    + "\\" + "-" * (5 * n) + "/")
        k = self.spec.dims[0]
        half = k // 2
        return "\n".join([
            f"core : {' '.join(f'c{i}' for i in range(half * half))}",
            f"agg  : {' '.join(f'a{i}' for i in range(k * half))}",
            f"edge : {' '.join(f'e{i}' for i in range(k * half))}",
            f"hosts: h0..h{k * k * k // 4 - 1} ({half} per edge switch)",
        ])


# ---------------------------------------------------------------------------
# routed fabric
# ---------------------------------------------------------------------------

class RoutedFabric(Fabric):
    """A rail whose deliveries walk a :class:`NetGraph` hop by hop.

    The NIC still charges injection (gap + size/bandwidth + DMA) and
    one ``wire_latency`` to reach the rail — identical to the flat
    fabric — then each routed link charges store-and-forward
    serialization plus hop latency, contending with every other frame
    crossing it.  Fault injection, when armed, applies at final
    delivery exactly as on the flat fabric.
    """

    def __init__(self, sim: Simulator, params: NICParams, spec: TopologySpec):
        super().__init__(sim, params)
        self.graph = NetGraph(spec, params)
        self.topology = spec
        # per-source-node EWMA of the queueing delay frames experience
        # across their whole route (feeds adaptive multirail splits)
        self._observed: Dict[int, float] = {}

    # -- congestion feedback -------------------------------------------
    def observed_source_delay(self, node_id: int) -> float:
        """EWMA of recent per-frame link-queueing delay from ``node_id``.

        Zero until a frame from that node completes a route; the flat
        :class:`Fabric` always reports zero, so contention-aware
        strategies degrade gracefully to the static split.
        """
        return self._observed.get(node_id, 0.0)

    def _observe(self, node_id: int, queued: float) -> None:
        old = self._observed.get(node_id, 0.0)
        self._observed[node_id] = (1 - _OBS_ALPHA) * old + _OBS_ALPHA * queued

    # -- delivery ------------------------------------------------------
    def deliver(self, frame: Frame) -> None:
        """Entry point at injection-end + wire_latency: start routing."""
        route = self.graph.route(frame.src, frame.dst)
        self._traverse(frame, route, 0, 0.0, self._complete)

    def _complete(self, frame: Frame, queued_total: float) -> None:
        with self.sim.sync_region(("node", frame.src), "link.observe"):
            self._observe(frame.src, queued_total)
        super().deliver(frame)

    def _discard(self, frame: Frame, queued_total: float) -> None:
        """Terminal hop of background traffic: charge links, no delivery."""

    def _traverse(self, frame: Frame, route: List[Link], i: int,
                  queued_total: float,
                  done: Callable[[Frame, float], None]) -> None:
        if i == len(route):
            done(frame, queued_total)
            return
        link = route[i]
        sim = self.sim
        start = max(sim.now, link.busy_until)
        queued = start - sim.now
        ser = frame.size / link.bandwidth
        link.busy_until = start + ser
        link.frames += 1
        link.bytes += frame.size
        link.busy_time += ser
        link.queue_delay += queued
        link.queued_now += 1
        if link.queued_now > link.max_queued:
            link.max_queued = link.queued_now
        if sim.tracing:
            sim.record(
                "link.xmit", rail=self.name, link=link.name, src=frame.src,
                dst=frame.dst, size=frame.size, kind=frame.kind,
                frame=frame.frame_id, dur=ser, queued=queued,
                depth=link.queued_now, hop=i, hops=len(route),
            )
        sim.at(start + ser, self._leave_link, link)
        sim.at(start + ser + link.latency, self._traverse, frame, route,
               i + 1, queued_total + queued, done)

    @staticmethod
    def _leave_link(link: Link) -> None:
        link.queued_now -= 1

    # -- link stats ----------------------------------------------------
    def link_report(self) -> List[Dict[str, Any]]:
        """Per-link stats of every link that carried traffic."""
        out = []
        for link in self.graph.links:
            if link.frames == 0:
                continue
            out.append({
                "link": link.name, "frames": link.frames,
                "bytes": link.bytes, "busy_time": link.busy_time,
                "queue_delay": link.queue_delay,
                "max_queued": link.max_queued,
            })
        return out


class BackgroundTraffic:
    """A deterministic traffic generator riding a :class:`RoutedFabric`.

    Injects ``count`` frames of ``size`` bytes from ``src`` to ``dst``
    every ``period`` seconds, starting at ``start``.  The frames charge
    every link on the route (contending with real traffic) but are
    discarded at the destination attachment point — pure interference,
    used to induce congestion in experiments and tests.
    """

    def __init__(self, fabric: RoutedFabric, src: int, dst: int, size: int,
                 period: float, count: int, start: float = 0.0):
        if not isinstance(fabric, RoutedFabric):
            raise TypeError("background traffic needs a RoutedFabric")
        if count < 1 or size < 1 or period <= 0:
            raise ValueError("count/size must be >= 1 and period > 0")
        self.fabric = fabric
        self.src = src
        self.dst = dst
        self.size = size
        self.period = period
        self.count = count
        self.start = start
        self.injected = 0

    def install(self) -> "BackgroundTraffic":
        sim = self.fabric.sim
        route = self.fabric.graph.route(self.src, self.dst)
        for i in range(self.count):
            frame = Frame(src=self.src, dst=self.dst, size=self.size,
                          kind="bg")
            sim.at(self.start + i * self.period, self._inject, frame, route)
        return self

    def _inject(self, frame: Frame, route: List[Link]) -> None:
        self.injected += 1
        self.fabric._traverse(frame, route, 0, 0.0, self.fabric._discard)


# ---------------------------------------------------------------------------
# presets
# ---------------------------------------------------------------------------

def ring(n: int, **kw: Any) -> TopologySpec:
    return TopologySpec("ring", (n,), **kw)


def mesh2d(rows: int, cols: int, **kw: Any) -> TopologySpec:
    return TopologySpec("mesh2d", (rows, cols), **kw)


def torus2d(rows: int, cols: int, **kw: Any) -> TopologySpec:
    return TopologySpec("torus2d", (rows, cols), **kw)


def fattree(k: int, **kw: Any) -> TopologySpec:
    return TopologySpec("fattree", (k,), **kw)


#: named presets for the CLI and experiment grids
PRESETS: Dict[str, TopologySpec] = {
    "ring8": ring(8),
    "ring16": ring(16),
    "mesh4x4": mesh2d(4, 4),
    "torus4x4": torus2d(4, 4),
    "torus2x4": torus2d(2, 4),
    "fattree4": fattree(4),
}
