"""Hardware models: NICs, rails/fabrics, memory registration, topology.

The paper's evaluation hardware (ConnectX InfiniBand and Myri-10G MX
NICs on dual-Xeon nodes; an Opteron cluster with one IB NIC per node)
is modeled with LogGP-style cost parameters: per-message host overheads,
NIC serialization bandwidth, wire latency, and a memory-registration
model distinguishing on-the-fly registration (NewMadeleine) from a
registration cache (MVAPICH2-like).
"""

from repro.hardware.params import NICParams, MemParams, NodeParams
from repro.hardware.nic import NIC, Fabric, Frame
from repro.hardware.memory import MemoryRegistrar
from repro.hardware.netgraph import (
    BackgroundTraffic,
    NetGraph,
    RoutedFabric,
    TopologySpec,
    parse_topology,
)
from repro.hardware.topology import Node, Cluster, build_cluster
from repro.hardware import presets

__all__ = [
    "NICParams",
    "MemParams",
    "NodeParams",
    "NIC",
    "Fabric",
    "Frame",
    "MemoryRegistrar",
    "BackgroundTraffic",
    "NetGraph",
    "RoutedFabric",
    "TopologySpec",
    "parse_topology",
    "Node",
    "Cluster",
    "build_cluster",
    "presets",
]
