"""Memory-registration model.

RDMA-capable NICs require buffers to be registered (pinned) before
zero-copy transfers.  The paper points out that NewMadeleine "does not
use any caching mechanism for large messages and registers dynamically
and on-the-fly the needed memory" — while MVAPICH2 keeps a registration
cache.  This module models both policies.
"""

from __future__ import annotations

from typing import Set, Tuple

from repro.hardware.params import MemParams


class MemoryRegistrar:
    """Per-node registration-cost oracle.

    Parameters
    ----------
    cache:
        When True, re-registering a previously seen ``(buffer_key,
        size)`` region costs only a cache-hit lookup — the MVAPICH2
        policy.  When False every registration pays the full pinning
        cost — the NewMadeleine policy.
    """

    def __init__(self, params: MemParams, cache: bool = False):
        self.params = params
        self.cache = cache
        self._registered: Set[Tuple[object, int]] = set()
        self.full_registrations = 0
        self.cache_hits = 0

    def cost(self, buffer_key: object, size: int) -> float:
        """Seconds to make ``size`` bytes at ``buffer_key`` DMA-able."""
        key = (buffer_key, size)
        if self.cache and key in self._registered:
            self.cache_hits += 1
            return self.params.reg_cache_hit
        if self.cache:
            self._registered.add(key)
        self.full_registrations += 1
        return self.params.reg_base + size * self.params.reg_per_byte
