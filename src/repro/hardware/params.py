"""Hardware cost-parameter dataclasses.

All times are seconds, sizes bytes, bandwidths bytes/second.  The
parameterization is LogGP-flavoured:

* ``post_overhead`` / ``recv_overhead`` — host CPU time to post a send
  descriptor / consume a completion (the *o* of LogGP).
* ``per_message_gap`` — NIC-side fixed occupancy per message (*g*).
* ``bandwidth`` — serialization rate (1/*G*).
* ``wire_latency`` — propagation plus switch traversal (*L*).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class NICParams:
    """Cost model of one network interface (one rail endpoint)."""

    name: str
    #: host CPU time to post a send descriptor (s)
    post_overhead: float
    #: host CPU time to reap a receive completion (s)
    recv_overhead: float
    #: propagation + switch latency (s)
    wire_latency: float
    #: serialization bandwidth (B/s)
    bandwidth: float
    #: NIC occupancy per message independent of size (s)
    per_message_gap: float
    #: messages at or below this size avoid DMA setup (inline send)
    max_inline: int = 128
    #: extra NIC time for DMA-read transfers above max_inline (s)
    dma_setup: float = 0.0

    def injection_time(self, size: int) -> float:
        """NIC occupancy to serialize a ``size``-byte frame."""
        t = self.per_message_gap + size / self.bandwidth
        if size > self.max_inline:
            t += self.dma_setup
        return t

    def transfer_time(self, size: int) -> float:
        """Injection plus wire time for a single frame (no host overheads)."""
        return self.injection_time(size) + self.wire_latency


@dataclass(frozen=True)
class MemParams:
    """Host memory-system cost model (copies, registration, polling)."""

    #: large-copy bandwidth (memcpy through cache/memory), B/s
    copy_bandwidth: float = 2.5e9
    #: fixed cost per memcpy call (s)
    copy_base: float = 30e-9
    #: memory registration (pinning) base cost per region (s)
    reg_base: float = 5e-6
    #: registration cost per byte (page-table pinning), s/B
    reg_per_byte: float = 2.5e-11
    #: cost of a registration-cache hit (s)
    reg_cache_hit: float = 0.2e-6
    #: deregistration (unpinning) cost per evicted region (s)
    dereg_base: float = 2.0e-6
    #: cost of one poll probe of a queue (s)
    poll_cost: float = 30e-9

    def copy_time(self, size: int) -> float:
        """Time for one memcpy of ``size`` bytes."""
        return self.copy_base + size / self.copy_bandwidth


@dataclass(frozen=True)
class NodeParams:
    """Compute-node shape: cores and scheduler granularity."""

    cores: int = 8
    #: compute rate used by workload skeletons (flop/s per core)
    flops_per_core: float = 4.0e9
    #: OS scheduler timeslice — the granularity at which a fully loaded
    #: node lets background threads run (timer-interrupt progression)
    timeslice: float = 1e-3
    #: OS-noise model: each compute phase is stretched by a uniform
    #: factor in [1, 1 + compute_jitter] drawn from a per-node seeded
    #: stream (0.0 = fully deterministic timing)
    compute_jitter: float = 0.0
    mem: MemParams = MemParams()
