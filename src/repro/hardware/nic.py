"""NIC and fabric models.

A :class:`Fabric` is one rail: a full-bisection switch connecting one
:class:`NIC` per node.  Sending occupies the source NIC's transmit
engine for the injection time (per-message gap + size/bandwidth [+ DMA
setup]), then the frame arrives at the destination NIC ``wire_latency``
later and is appended to its receive queue.  Receive-side software polls
that queue.

Frames model *network-level* messages (NewMadeleine packet wrappers,
native-stack protocol messages), not MPI messages: one MPI message may
map to several frames (rendezvous, multirail striping) or share a frame
with others (aggregation).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.hardware.params import NICParams
from repro.simulator import Channel, Event, Simulator

__all__ = ["reset_frame_ids", "Frame", "NIC", "Fabric"]

_frame_ids = itertools.count()


def reset_frame_ids() -> None:
    """Rewind the global frame-id counter (determinism tooling only)."""
    global _frame_ids
    _frame_ids = itertools.count()


@dataclass
class Frame:
    """One message on the wire."""

    src: int               # source node id
    dst: int               # destination node id
    size: int              # bytes on the wire (headers included by caller)
    kind: str = "data"     # protocol discriminator, e.g. "eager"/"rts"/"cts"
    payload: Any = None    # opaque upper-layer content
    rail: str = ""         # filled in by the fabric
    corrupt: bool = False  # CRC-fail marker set by a fault injector
    frame_id: int = field(default_factory=lambda: next(_frame_ids))


class NIC:
    """One rail endpoint on a node.

    The transmit engine is a FIFO: injections serialize.  The
    ``rx_queue`` is a :class:`~repro.simulator.resources.Channel` of
    delivered frames; an optional ``rx_notify`` callback fires on each
    delivery so progress engines can react without busy polling.
    """

    def __init__(self, sim: Simulator, node_id: int, params: NICParams, fabric: "Fabric"):
        self.sim = sim
        self.node_id = node_id
        self.params = params
        self.fabric = fabric
        self.rx_queue = Channel(sim)
        #: called as ``rx_notify(frame)`` at delivery time (may be None)
        self.rx_notify = None
        self._tx_free_at = 0.0
        # running stats
        self.tx_frames = 0
        self.tx_bytes = 0
        self.rx_frames = 0
        self.rx_bytes = 0

    # -- sending -------------------------------------------------------
    def post_send(self, frame: Frame) -> Event:
        """Queue a frame for injection.

        Returns an event succeeding when the NIC has finished reading
        the frame out of host memory (local completion — the buffer may
        be reused), *not* when the frame reaches the destination.
        """
        if frame.src != self.node_id:
            raise ValueError(f"frame src {frame.src} posted on NIC of node {self.node_id}")
        frame.rail = self.params.name
        start = max(self.sim.now, self._tx_free_at)
        injection = self.params.injection_time(frame.size)
        injector = self.fabric.injector
        if injector is not None:
            injection += injector.tx_stall(self, frame, injection)
        self._tx_free_at = start + injection
        self.tx_frames += 1
        self.tx_bytes += frame.size
        arrival = self._tx_free_at + self.params.wire_latency
        self.sim.at(arrival, self.fabric.deliver, frame)
        if self.sim.tracing:
            self.sim.record(
                "nic.tx", rail=self.params.name, node=self.node_id,
                dst=frame.dst, size=frame.size, kind=frame.kind,
                frame=frame.frame_id, dur=injection,
                queued=start - self.sim.now,
            )
        done = self.sim.event()
        self.sim.at(self._tx_free_at, done.succeed, frame)
        return done

    def post_control(self, frame: Frame) -> None:
        """Send a small out-of-band control frame (ack/probe).

        Control frames ride a dedicated low-priority engine: they do
        not occupy the data transmit FIFO (so a queued megabyte of data
        cannot delay an ack past its retransmission deadline), but they
        still cross the fabric and are subject to fault injection.
        """
        if frame.src != self.node_id:
            raise ValueError(f"frame src {frame.src} posted on NIC of node {self.node_id}")
        frame.rail = self.params.name
        injection = self.params.injection_time(frame.size)
        self.tx_frames += 1
        self.tx_bytes += frame.size
        arrival = self.sim.now + injection + self.params.wire_latency
        self.sim.at(arrival, self.fabric.deliver, frame)
        if self.sim.tracing:
            self.sim.record(
                "nic.tx", rail=self.params.name, node=self.node_id,
                dst=frame.dst, size=frame.size, kind=frame.kind,
                frame=frame.frame_id, dur=injection, queued=0.0, oob=True,
            )

    @property
    def tx_busy(self) -> bool:
        """True while the transmit engine has queued/ongoing injections."""
        return self._tx_free_at > self.sim.now

    def tx_idle_at(self) -> float:
        """Earliest time a new injection could start."""
        return max(self.sim.now, self._tx_free_at)

    # -- receiving -----------------------------------------------------
    def _deliver(self, frame: Frame) -> None:
        self.rx_frames += 1
        self.rx_bytes += frame.size
        if self.sim.tracing:
            self.sim.record(
                "nic.rx", rail=self.params.name, node=self.node_id,
                src=frame.src, size=frame.size, kind=frame.kind,
                frame=frame.frame_id,
            )
        self.rx_queue.put(frame)
        if self.rx_notify is not None:
            self.rx_notify(frame)


class Fabric:
    """One rail: a set of NICs joined by a full-bisection switch."""

    def __init__(self, sim: Simulator, params: NICParams):
        self.sim = sim
        self.params = params
        self.name = params.name
        self._nics: Dict[int, NIC] = {}
        #: optional :class:`repro.faults.injector.FaultInjector`
        self.injector = None
        #: :class:`repro.hardware.netgraph.TopologySpec` on routed rails
        self.topology = None

    def observed_source_delay(self, node_id: int) -> float:
        """Recent link-queueing delay seen by frames from ``node_id``.

        The flat fabric never queues outside the NICs, so this is 0;
        :class:`repro.hardware.netgraph.RoutedFabric` overrides it with
        a live congestion estimate that contention-aware multirail
        strategies consume.
        """
        return 0.0

    def attach(self, node_id: int) -> NIC:
        """Create and register this rail's NIC for ``node_id``."""
        if node_id in self._nics:
            raise ValueError(f"node {node_id} already attached to rail {self.name}")
        nic = NIC(self.sim, node_id, self.params, self)
        self._nics[node_id] = nic
        return nic

    def nic(self, node_id: int) -> NIC:
        return self._nics[node_id]

    def deliver(self, frame: Frame) -> None:
        dst = self._nics.get(frame.dst)
        if dst is None:
            raise ValueError(f"no NIC for destination node {frame.dst} on rail {self.name}")
        if self.injector is not None and not self.injector.on_deliver(self, frame):
            return  # lost on the wire
        dst._deliver(frame)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._nics
