"""Minimal MPI datatype model: contiguous and strided (vector) layouts.

The paper's implementation lacked datatype support ("IS needs datatypes
support and MPICH2-NewMadeleine does not handle yet this
functionality") and names it as the target of future optimization.  We
model datatypes by their packing cost: non-contiguous layouts pay an
extra pack on the send side and unpack on the receive side,
proportional to the data extent.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Datatype:
    """A data layout with an associated pack/unpack cost factor."""

    name: str
    #: True when the layout is a single contiguous block (no packing)
    contiguous: bool
    #: relative cost of packing vs a plain memcpy (strided access)
    pack_factor: float = 0.0

    def pack_cost(self, mem, size: int) -> float:
        """Seconds to pack/unpack ``size`` bytes on one side."""
        if self.contiguous:
            return 0.0
        return self.pack_factor * mem.copy_time(size)


#: the default plain-buffer layout
CONTIGUOUS = Datatype("contiguous", contiguous=True)


def vector(count: int, blocklen: int, stride: int) -> Datatype:
    """A strided vector layout (MPI_Type_vector equivalent).

    The pack cost grows as blocks shrink relative to the stride
    (worse locality -> more expensive gather/scatter loops).
    """
    if count < 1 or blocklen < 1 or stride < blocklen:
        raise ValueError("need count>=1, blocklen>=1, stride>=blocklen")
    sparsity = stride / blocklen
    # dense vectors cost ~1 extra copy; very sparse ones up to ~3x
    factor = min(3.0, 1.0 + 0.25 * (sparsity - 1.0))
    return Datatype(f"vector({count},{blocklen},{stride})",
                    contiguous=(stride == blocklen), pack_factor=factor)
