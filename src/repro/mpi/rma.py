"""MPI-2 one-sided communication (RMA) — a paper future-work extension.

The paper's conclusion names efficient MPI-2 RMA support "without
compromising the optimizations implemented" as an open challenge.  This
module provides fence-synchronized active-target RMA (``MPI_Win_fence``
epochs with ``put``/``get``/``accumulate``) layered on the same
transport as point-to-point — so every NewMadeleine optimization
(aggregation of small puts, multirail striping of large ones,
PIOMan-driven progress) applies to one-sided traffic unchanged.

Window memory is modeled as a slot array: ``put`` writes a slot on the
target, ``get`` reads one, ``accumulate`` combines into one.  Slot
payloads are opaque Python objects; the ``size`` argument drives the
timing, exactly as for point-to-point messages.

Synchronization protocol (per fence):

1. every rank tells every other how many puts/accumulates and gets it
   issued toward it during the epoch (an all-to-all of tiny counts);
2. incoming puts/accumulates are received and applied; incoming get
   requests are answered with the slot contents;
3. a barrier closes the epoch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["GetHandle", "Window"]

#: wire size of a get request / RMA header
_CTRL = 32


@dataclass
class _PendingGet:
    handle: "GetHandle"
    target: int
    slot: int
    size: int


@dataclass
class GetHandle:
    """Result slot of a ``get``; populated when the epoch closes."""

    value: Any = None
    complete: bool = False


@dataclass
class _EpochState:
    puts: Dict[int, List[Tuple[int, int, Any, Optional[Callable]]]] = \
        field(default_factory=dict)     # target -> [(slot, size, data, op)]
    gets: Dict[int, List[_PendingGet]] = field(default_factory=dict)
    send_reqs: list = field(default_factory=list)


class Window:
    """A fence-synchronized RMA window (one instance per rank).

    Example
    -------
    ::

        win = Window(comm, nslots=4, init=0)
        yield from win.fence()                  # open epoch
        if comm.rank == 0:
            yield from win.put(1, slot=2, size=1024, data="remote write")
        yield from win.fence()                  # close epoch
        # rank 1 now sees win.read(2) == "remote write"
    """

    def __init__(self, comm, nslots: int, init: Any = None):
        if nslots < 1:
            raise ValueError("window needs at least one slot")
        self.comm = comm
        # window ids are per-communicator: creation is collective, so the
        # same ordinal names the same window on every rank
        self.win_id = getattr(comm, "_rma_win_ctr", 0)
        comm._rma_win_ctr = self.win_id + 1
        self.nslots = nslots
        self._slots: List[Any] = [init] * nslots
        self._epoch = _EpochState()
        self._epoch_open = False
        self._fence_ctr = 0

    # ------------------------------------------------------------------
    # local access
    # ------------------------------------------------------------------
    def read(self, slot: int) -> Any:
        """Local load from the window (valid outside an access epoch)."""
        return self._slots[slot]

    def write(self, slot: int, value: Any) -> None:
        """Local store to the window (valid outside an exposure epoch)."""
        self._slots[slot] = value

    # ------------------------------------------------------------------
    # one-sided operations (inside an epoch)
    # ------------------------------------------------------------------
    def put(self, target: int, slot: int, size: int, data: Any = None):
        """Write ``data`` into ``slot`` of ``target``'s window."""
        yield from self._origin_op(target, slot, size, data, op=None)

    def accumulate(self, target: int, slot: int, size: int, data: Any,
                   op: Callable[[Any, Any], Any]):
        """Combine ``data`` into the target slot with ``op`` (e.g. add)."""
        if op is None:
            raise ValueError("accumulate needs a combining op")
        yield from self._origin_op(target, slot, size, data, op=op)

    def _origin_op(self, target: int, slot: int, size: int, data: Any, op):
        self._check_epoch()
        self._check_target(target, slot)
        if target == self.comm.rank:
            self._apply(slot, data, op)
            return
        ops = self._epoch.puts.setdefault(target, [])
        seq = len(ops)
        ops.append((slot, size, data, op))
        # data moves immediately (may overlap the rest of the epoch);
        # completion is only guaranteed at the closing fence
        req = yield from self.comm.isend(
            target, tag=("rma-put", self.win_id, self._fence_ctr,
                         self.comm.rank, seq),
            size=size + _CTRL, data=(slot, data, op))
        self._epoch.send_reqs.append(req)

    def get(self, target: int, slot: int, size: int) -> GetHandle:
        """Read ``slot`` of ``target``; the handle fills at the fence.

        Not a generator: the request is recorded and serviced during
        the closing fence (get is inherently two-sided underneath).
        """
        self._check_epoch()
        self._check_target(target, slot)
        handle = GetHandle()
        if target == self.comm.rank:
            handle.value = self._slots[slot]
            handle.complete = True
            return handle
        self._epoch.gets.setdefault(target, []).append(
            _PendingGet(handle, target, slot, size))
        return handle

    # ------------------------------------------------------------------
    # synchronization
    # ------------------------------------------------------------------
    def fence(self):
        """Open the first epoch / close the current one (collective)."""
        if not self._epoch_open:
            self._epoch_open = True
            yield from self.comm.barrier()
            return
        yield from self._close_epoch()
        self._fence_ctr += 1
        self._epoch = _EpochState()

    def _close_epoch(self):
        comm, fc = self.comm, self._fence_ctr
        p = comm.size
        # 1. exchange (puts, gets) counts with everyone
        counts = [(len(self._epoch.puts.get(t, [])),
                   len(self._epoch.gets.get(t, []))) for t in range(p)]
        incoming = yield from comm.alltoall(size=8, values=counts)

        # 2a. post receives for incoming puts
        put_reqs = []
        for src in range(p):
            n_puts = incoming[src][0] if incoming[src] else 0
            for seq in range(n_puts):
                req = yield from comm.irecv(
                    src=src, tag=("rma-put", self.win_id, fc, src, seq))
                put_reqs.append(req)

        # 2b. send my get requests
        for target, gets in self._epoch.gets.items():
            for seq, pg in enumerate(gets):
                yield from comm.send(
                    target, tag=("rma-getreq", self.win_id, fc,
                                 comm.rank, seq),
                    size=_CTRL, data=(pg.slot, pg.size))

        # 2c. apply incoming puts
        for req in put_reqs:
            msg = yield from comm.wait(req)
            slot, data, op = msg.data
            self._apply(slot, data, op)

        # 2d. answer incoming get requests
        reply_reqs = []
        for src in range(p):
            n_gets = incoming[src][1] if incoming[src] else 0
            for seq in range(n_gets):
                msg = yield from comm.recv(
                    src=src, tag=("rma-getreq", self.win_id, fc, src, seq))
                slot, size = msg.data
                req = yield from comm.isend(
                    src, tag=("rma-getrep", self.win_id, fc, seq),
                    size=size + _CTRL, data=self._slots[slot])
                reply_reqs.append(req)

        # 2e. collect my get replies
        for target, gets in self._epoch.gets.items():
            for seq, pg in enumerate(gets):
                msg = yield from comm.recv(
                    src=target, tag=("rma-getrep", self.win_id, fc, seq))
                pg.handle.value = msg.data
                pg.handle.complete = True

        # local put sends must have completed by the end of the epoch
        yield from comm.waitall(self._epoch.send_reqs)
        for req in reply_reqs:
            yield from comm.wait(req)

        # 3. close the epoch
        yield from comm.barrier()

    # ------------------------------------------------------------------
    def _apply(self, slot: int, data: Any, op) -> None:
        if op is None:
            self._slots[slot] = data
        else:
            self._slots[slot] = op(self._slots[slot], data)

    def _check_epoch(self) -> None:
        if not self._epoch_open:
            raise RuntimeError("RMA operation outside a fence epoch")

    def _check_target(self, target: int, slot: int) -> None:
        if not (0 <= target < self.comm.size):
            raise ValueError(f"target rank {target} out of range")
        if not (0 <= slot < self.nslots):
            raise ValueError(f"slot {slot} out of range for {self.nslots}")
