"""The Communicator: point-to-point API and compute phases."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.mpi import collectives as _coll
from repro.mpi.datatypes import CONTIGUOUS, Datatype
from repro.mpich2.queues import ContextAnyTag
from repro.mpich2.request import ANY_SOURCE, ANY_TAG, MPIRequest

__all__ = ["Message", "Communicator", "PersistentRequest"]


@dataclass
class Message:
    """What a receive returns."""

    source: int
    tag: Any
    size: int
    data: Any = None


class Communicator:
    """Per-rank handle binding a program to its simulated stack.

    All communication methods are generators (``yield from`` them).
    """

    def __init__(self, runtime, rank: int, group: Optional[List[int]] = None,
                 context: Any = ("world",)):
        self._runtime = runtime
        self._world_rank = rank
        self.group = list(group) if group is not None else list(
            range(runtime.nprocs))
        self.context = context
        self.rank = self.group.index(rank)
        self.size = len(self.group)
        self.stack = runtime.stacks[rank]
        self.scheduler = runtime.scheduler_of(rank)
        self.sim = runtime.sim
        self._coll_seq = 0
        self._split_seq = 0
        # self-message matching (sends to one's own rank)
        self._self_pending: List[Tuple[Any, int, Any]] = []
        self._self_waiting: Dict[Any, List[MPIRequest]] = {}

    def _world(self, rank: int) -> int:
        """Translate a communicator-local rank to a world rank."""
        return self.group[rank]

    def _local(self, world_rank: int) -> int:
        return self.group.index(world_rank)

    def _wrap_tag(self, tag: Any):
        """Isolate this communicator's traffic from every other's."""
        if tag is ANY_TAG:
            return ContextAnyTag(self.context)
        return (self.context, tag)

    # ------------------------------------------------------------------
    # point-to-point
    # ------------------------------------------------------------------
    def isend(self, dst: int, tag: Any = 0, size: int = 0, data: Any = None,
              datatype: Datatype = CONTIGUOUS, sync: bool = False):
        """Nonblocking send; returns an :class:`MPIRequest`."""
        self._check_rank(dst)
        if dst == self.rank:
            return self._self_send(tag, size, data)
        pack = datatype.pack_cost(self.stack.node.mem, size)
        if pack:
            yield self.sim.timeout(pack)
        req = yield from self.stack.isend(self._world(dst), self._wrap_tag(tag),
                                          size, data, sync=sync)
        return req

    def issend(self, dst: int, tag: Any = 0, size: int = 0, data: Any = None,
               datatype: Datatype = CONTIGUOUS):
        """Nonblocking synchronous send (MPI_Issend): the request
        completes only once the matching receive has started."""
        req = yield from self.isend(dst, tag, size, data, datatype, sync=True)
        return req

    def ssend(self, dst: int, tag: Any = 0, size: int = 0, data: Any = None,
              datatype: Datatype = CONTIGUOUS):
        """Blocking synchronous send (MPI_Ssend)."""
        req = yield from self.issend(dst, tag, size, data, datatype)
        yield from self.wait(req)

    def irecv(self, src: Any = ANY_SOURCE, tag: Any = 0,
              datatype: Datatype = CONTIGUOUS):
        """Nonblocking receive; returns an :class:`MPIRequest`."""
        if src is not ANY_SOURCE:
            self._check_rank(src)
            if src == self.rank:
                return self._self_recv(tag)
            src = self._world(src)
        req = yield from self.stack.irecv(src, self._wrap_tag(tag))
        req.datatype = datatype
        return req

    def _op_begin(self, op: str, **extra):
        """Open an ``mpich2.op`` span (span-profiler food); returns the
        start time, or None when tracing is off."""
        sim = self.sim
        if not sim.tracing:
            return None
        sim.record("mpich2.op.begin", op=op, rank=self._world_rank, **extra)
        return sim.now

    def _op_end(self, op: str, started) -> None:
        if started is not None:
            self.sim.record("mpich2.op.end", op=op, rank=self._world_rank,
                            dur=self.sim.now - started)

    def wait(self, req):
        """Block until ``req`` completes; returns a :class:`Message`.

        Accepts plain requests and active persistent handles.
        """
        started = self._op_begin("wait")
        msg = yield from self._wait_impl(req)
        self._op_end("wait", started)
        return msg

    def _wait_impl(self, req):
        if isinstance(req, PersistentRequest):
            msg = yield from req.wait()
            return msg
        yield from self.stack.wait(req)
        if req.kind == "recv" and req.datatype is not None:
            # unpack into the strided user layout (size known post-match)
            unpack = req.datatype.pack_cost(self.stack.node.mem, req.size)
            if unpack:
                yield self.sim.timeout(unpack)
        source = (req.status_source if req.status_source is not None
                  else (req.peer if req.kind == "recv" else
                        self._world(self.rank)))
        if isinstance(source, int) and source in self.group:
            source = self._local(source)
        tag = req.status_tag if req.status_tag is not None else req.tag
        if (isinstance(tag, tuple) and len(tag) == 2
                and tag[0] == self.context):
            tag = tag[1]
        return Message(source=source, tag=tag, size=req.size, data=req.data)

    def waitall(self, reqs):
        """Wait on every request; returns the list of messages."""
        out = []
        for req in list(reqs):
            msg = yield from self.wait(req)
            out.append(msg)
        return out

    def waitany(self, reqs):
        """Block until one request completes; returns (index, Message)."""
        index = yield from self.stack.waitany(list(reqs))
        msg = yield from self.wait(reqs[index])
        return index, msg

    def wtime(self) -> float:
        """MPI_Wtime: the simulated wall clock, in seconds."""
        return self.sim.now

    def send(self, dst: int, tag: Any = 0, size: int = 0, data: Any = None,
             datatype: Datatype = CONTIGUOUS):
        """Blocking send (complete when the buffer is reusable)."""
        started = self._op_begin("send", peer=dst, size=size)
        req = yield from self.isend(dst, tag, size, data, datatype)
        yield from self.wait(req)
        self._op_end("send", started)

    def recv(self, src: Any = ANY_SOURCE, tag: Any = 0,
             datatype: Datatype = CONTIGUOUS):
        """Blocking receive; returns the :class:`Message`."""
        started = self._op_begin(
            "recv", peer="ANY" if src is ANY_SOURCE else src)
        req = yield from self.irecv(src, tag, datatype)
        msg = yield from self.wait(req)
        self._op_end("recv", started)
        return msg

    def iprobe(self, src: Any = ANY_SOURCE, tag: Any = 0):
        """Nonblocking probe: (source, size) of a matching pending
        message, or None.  Does not consume the message."""
        wsrc = src if src is ANY_SOURCE else self._world(src)
        hit = yield from self.stack.iprobe(wsrc, self._wrap_tag(tag))
        return self._localize_hit(hit)

    def probe(self, src: Any = ANY_SOURCE, tag: Any = 0):
        """Blocking probe: waits until a matching message is available
        and returns (source, size) without consuming it."""
        wsrc = src if src is ANY_SOURCE else self._world(src)
        hit = yield from self.stack.probe(wsrc, self._wrap_tag(tag))
        return self._localize_hit(hit)

    def _localize_hit(self, hit):
        if hit is None:
            return None
        source, size = hit
        if isinstance(source, int) and source in self.group:
            source = self._local(source)
        return (source, size)

    def sendrecv(self, dst: int, src: Any, tag: Any = 0, size: int = 0,
                 data: Any = None, recv_tag: Any = None):
        """Simultaneous send+receive (deadlock-free exchange)."""
        started = self._op_begin("sendrecv", peer=dst, size=size)
        rreq = yield from self.irecv(src, tag if recv_tag is None else recv_tag)
        sreq = yield from self.isend(dst, tag, size, data)
        yield from self.stack.wait(sreq)
        msg = yield from self.wait(rreq)
        self._op_end("sendrecv", started)
        return msg

    # ------------------------------------------------------------------
    # communicator management (split / dup)
    # ------------------------------------------------------------------
    def split(self, color: Any, key: Optional[int] = None):
        """MPI_Comm_split: collective; returns the new communicator.

        Ranks with equal ``color`` form a new communicator, ordered by
        ``(key, old rank)``.  ``color=None`` returns None (the rank
        opts out, like MPI_UNDEFINED).
        """
        self._split_seq += 1
        ctx = (self.context, "split", self._split_seq)
        key = self.rank if key is None else key
        members = yield from self.allgather(32, value=(color, key, self.rank))
        if color is None:
            return None
        mine = sorted(
            ((k, r) for c, k, r in members if c == color),
            key=lambda kr: kr)
        group = [self._world(r) for _k, r in mine]
        return Communicator(self._runtime, self._world_rank,
                            group=group, context=(ctx, color))

    def dup(self):
        """MPI_Comm_dup: same group, isolated communication context."""
        self._split_seq += 1
        ctx = (self.context, "dup", self._split_seq)
        yield from self.barrier()
        return Communicator(self._runtime, self._world_rank,
                            group=list(self.group), context=ctx)

    # ------------------------------------------------------------------
    # persistent requests (MPI_Send_init / Recv_init / Start)
    # ------------------------------------------------------------------
    def send_init(self, dst: int, tag: Any = 0, size: int = 0,
                  data: Any = None, datatype: Datatype = CONTIGUOUS):
        """Create a persistent send handle (MPI_Send_init)."""
        return PersistentRequest(self, "send", dst, tag, size, data, datatype)

    def recv_init(self, src: Any = ANY_SOURCE, tag: Any = 0,
                  datatype: Datatype = CONTIGUOUS):
        """Create a persistent receive handle (MPI_Recv_init)."""
        return PersistentRequest(self, "recv", src, tag, 0, None, datatype)

    def start(self, preq: "PersistentRequest"):
        """Activate a persistent handle (MPI_Start)."""
        yield from preq.start()

    def startall(self, preqs):
        """Activate several persistent handles (MPI_Startall)."""
        for preq in preqs:
            yield from preq.start()

    # ------------------------------------------------------------------
    # threads (MPI_THREAD_MULTIPLE extension — paper Section 3.3.2)
    # ------------------------------------------------------------------
    def spawn_thread(self, gen):
        """Run ``gen`` as an additional application thread of this rank.

        The thread competes for the node's cores like any Marcel thread.
        The paper's Section 3.3.2 motivation applies: with PIOMan,
        threads blocked in ``wait`` sit on semaphores and *release*
        their core, so sibling threads can compute; without PIOMan every
        waiting thread busy-polls and burns a core.

        Returns a handle for :meth:`join`.
        """
        sched = self.scheduler

        def body():
            yield sched.acquire_core()
            try:
                result = yield from gen
            finally:
                sched.release_core()
            return result

        return self.sim.spawn(body(), name=f"rank{self.rank}-thread")

    def join(self, thread):
        """Block until a spawned thread finishes; returns its result.

        With PIOMan the joining thread releases its core while blocked
        (semaphore semantics); otherwise it busy-waits, holding it.
        """
        if not thread.triggered:
            if self.stack.pioman is not None:
                yield from self.stack.pioman.semaphore_wait(thread)
            else:
                yield thread
        if not thread.ok:
            raise thread.value
        return thread.value

    # ------------------------------------------------------------------
    # compute phases
    # ------------------------------------------------------------------
    def compute(self, seconds: float):
        """Burn CPU for ``seconds`` (scaled by the stack's efficiency)."""
        eff = self._runtime.compute_efficiency
        yield from self.scheduler.compute(seconds / eff)

    def compute_flops(self, flops: float):
        """Burn the CPU time ``flops`` operations take on one core."""
        yield from self.compute(self.scheduler.flops_time(flops))

    # ------------------------------------------------------------------
    # collectives (delegated to repro.mpi.collectives)
    # ------------------------------------------------------------------
    def _next_coll_tag(self, name: str):
        self._coll_seq += 1
        return ("coll", self._coll_seq, name)

    def barrier(self):
        yield from _coll.barrier(self)

    def bcast(self, size: int, data: Any = None, root: int = 0):
        result = yield from _coll.bcast(self, size, data, root)
        return result

    def reduce(self, size: int, value: Any = None, root: int = 0, op=None):
        result = yield from _coll.reduce(self, size, value, root, op)
        return result

    def allreduce(self, size: int, value: Any = None, op=None):
        result = yield from _coll.allreduce(self, size, value, op)
        return result

    def gather(self, size: int, value: Any = None, root: int = 0):
        result = yield from _coll.gather(self, size, value, root)
        return result

    def scatter(self, size: int, values: Optional[list] = None, root: int = 0):
        result = yield from _coll.scatter(self, size, values, root)
        return result

    def allgather(self, size: int, value: Any = None):
        result = yield from _coll.allgather(self, size, value)
        return result

    def alltoall(self, size: int, values: Optional[list] = None):
        result = yield from _coll.alltoall(self, size, values)
        return result

    def scan(self, size: int, value: Any = None, op=None):
        result = yield from _coll.scan(self, size, value, op)
        return result

    def exscan(self, size: int, value: Any = None, op=None):
        result = yield from _coll.exscan(self, size, value, op)
        return result

    def reduce_scatter(self, size: int, values: Optional[list] = None, op=None):
        result = yield from _coll.reduce_scatter(self, size, values, op)
        return result

    def gatherv(self, size: int, value: Any = None, root: int = 0):
        result = yield from _coll.gatherv(self, size, value, root)
        return result

    def scatterv(self, sizes: Optional[list] = None,
                 values: Optional[list] = None, root: int = 0):
        result = yield from _coll.scatterv(self, sizes, values, root)
        return result

    def alltoallv(self, sizes: Optional[list] = None,
                  values: Optional[list] = None):
        result = yield from _coll.alltoallv(self, sizes, values)
        return result

    # ------------------------------------------------------------------
    # self-messaging (rank -> same rank)
    # ------------------------------------------------------------------
    def _self_send(self, tag: Any, size: int, data: Any) -> MPIRequest:
        req = MPIRequest(self.sim, "send", self.rank, tag, size, data)
        waiting = self._self_waiting.get(tag)
        if waiting:
            rreq = waiting.pop(0)
            rreq._finish(self.sim, data=data, size=size, source=self.rank, tag=tag)
        else:
            self._self_pending.append((tag, size, data))
        req._finish(self.sim)
        return req

    def _self_recv(self, tag: Any) -> MPIRequest:
        req = MPIRequest(self.sim, "recv", self.rank, tag)
        for i, (t, size, data) in enumerate(self._self_pending):
            if t == tag:
                self._self_pending.pop(i)
                req._finish(self.sim, data=data, size=size,
                            source=self.rank, tag=tag)
                return req
        self._self_waiting.setdefault(tag, []).append(req)
        return req

    # ------------------------------------------------------------------
    def _check_rank(self, rank: int) -> None:
        if not (0 <= rank < self.size):
            raise ValueError(f"rank {rank} out of range for size {self.size}")

    def __repr__(self) -> str:
        return f"Communicator(rank={self.rank}, size={self.size})"


class PersistentRequest:
    """A reusable communication handle (MPI_Send_init / MPI_Recv_init).

    ``start()`` activates it (issuing the underlying nonblocking
    operation); ``wait()`` (or ``comm.wait(handle)``) completes the
    active operation and leaves the handle ready for the next start —
    the classic iterative-application idiom (real NPB LU uses it).
    """

    def __init__(self, comm: Communicator, kind: str, peer: Any, tag: Any,
                 size: int, data: Any, datatype: Datatype):
        if kind not in ("send", "recv"):
            raise ValueError(f"bad persistent request kind {kind!r}")
        self.comm = comm
        self.kind = kind
        self.peer = peer
        self.tag = tag
        self.size = size
        self.data = data
        self.datatype = datatype
        self.active: Any = None
        self.starts = 0

    def start(self):
        """Generator: activate the handle (MPI_Start)."""
        if self.active is not None and not self.active.complete:
            raise RuntimeError("persistent request started while active")
        self.starts += 1
        if self.kind == "send":
            self.active = yield from self.comm.isend(
                self.peer, self.tag, self.size, self.data,
                datatype=self.datatype)
        else:
            self.active = yield from self.comm.irecv(
                self.peer, self.tag, datatype=self.datatype)

    def wait(self):
        """Generator: complete the active operation; handle stays usable."""
        if self.active is None:
            raise RuntimeError("persistent request waited before start")
        msg = yield from self.comm.wait(self.active)
        self.active = None
        return msg
