"""MPI-flavoured programming interface over the simulated stacks.

Rank programs are generator functions receiving a
:class:`~repro.mpi.api.Communicator`; communication calls are
``yield from``-ed (mpi4py-style lowercase API):

.. code-block:: python

    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, tag=7, size=1024, data="hello")
        elif comm.rank == 1:
            msg = yield from comm.recv(src=0, tag=7)
            assert msg.data == "hello"

Collectives (barrier, bcast, reduce, allreduce, allgather, gather,
scatter, alltoall) are implemented over point-to-point with the classic
binomial/dissemination/pairwise algorithms.
"""

from repro.mpi.api import Communicator, Message
from repro.mpi.datatypes import Datatype, CONTIGUOUS, vector
from repro.mpi.rma import Window, GetHandle
from repro.mpich2.request import ANY_SOURCE, ANY_TAG

__all__ = [
    "Communicator",
    "Message",
    "Datatype",
    "CONTIGUOUS",
    "vector",
    "Window",
    "GetHandle",
    "ANY_SOURCE",
    "ANY_TAG",
]
