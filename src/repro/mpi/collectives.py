"""Collective algorithms over point-to-point primitives.

Classic MPICH-style small-message algorithms live here:

* barrier — dissemination (ceil(log2 p) rounds, any p);
* bcast / reduce — binomial tree;
* allreduce — recursive doubling (power-of-two), reduce+bcast otherwise;
* gather / scatter — linear to/from root (sufficient at skeleton scale);
* allgather — ring;
* alltoall — pairwise exchange;
* scan / exscan — linear chain (inclusive/exclusive prefix);
* reduce_scatter — reduce-to-root then scatter.

The large-message counterparts (ring/Rabenseifner allreduce,
scatter-allgather bcast, Bruck allgather/alltoall, tree barrier) live
in :mod:`repro.coll.algorithms`.  Both sets register with
:mod:`repro.coll.registry`, and the public entry points below for
barrier/bcast/reduce/allreduce/allgather/alltoall are *dispatchers*:
they pick the algorithm through :mod:`repro.coll.selector` (size/p
cutoff table, overridable by ``selector.forced`` or a tuned table) and
emit ``coll.begin``/``coll.end`` trace records around the run.

Every collective draws a fresh tag from the communicator's collective
sequence, so overlapping collectives in one program cannot cross-match
(MPI programs call collectives in the same order on every rank).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.coll import registry as _registry
from repro.coll import selector as _selector


def _default_op(a: Any, b: Any) -> Any:
    if a is None or b is None:
        return a if b is None else b
    return a + b


# ----------------------------------------------------------------------
# selector dispatch
# ----------------------------------------------------------------------

def _dispatch(comm, collective: str, size: int, payload: Any, args: tuple):
    """Resolve the algorithm for this call and run it, traced.

    ``payload`` is only consulted for segmented algorithms (must be
    None or a list there); selection itself depends on (p, size) alone,
    so it is identical on every rank.
    """
    algo = _selector.resolve(collective, comm.size, size, payload)
    sim = comm.sim
    if not sim.tracing:
        result = yield from algo.fn(comm, *args)
        return result
    sim.record("coll.begin", coll=collective, algo=algo.name,
               rank=comm.rank, p=comm.size, size=size)
    t0 = sim.now
    result = yield from algo.fn(comm, *args)
    sim.record("coll.end", coll=collective, algo=algo.name,
               rank=comm.rank, p=comm.size, size=size, dur=sim.now - t0)
    return result


def barrier(comm):
    """Barrier, dispatched (dissemination or tree)."""
    yield from _dispatch(comm, "barrier", 0, None, ())


def bcast(comm, size: int, data: Any = None, root: int = 0):
    """Broadcast, dispatched (binomial or scatter-allgather).

    Selection ignores the payload (it differs between root and
    non-roots); every registered bcast algorithm accepts any payload.
    """
    result = yield from _dispatch(comm, "bcast", size, None,
                                  (size, data, root))
    return result


def reduce(comm, size: int, value: Any = None, root: int = 0, op=None):
    """Reduction to root, dispatched (binomial)."""
    result = yield from _dispatch(comm, "reduce", size, None,
                                  (size, value, root, op))
    return result


def allreduce(comm, size: int, value: Any = None, op=None):
    """Allreduce, dispatched (recursive doubling, ring, Rabenseifner)."""
    result = yield from _dispatch(comm, "allreduce", size, value,
                                  (size, value, op))
    return result


def allgather(comm, size: int, value: Any = None):
    """Allgather, dispatched (ring or Bruck)."""
    result = yield from _dispatch(comm, "allgather", size, None,
                                  (size, value))
    return result


def alltoall(comm, size: int, values: Optional[list] = None):
    """All-to-all, dispatched (pairwise or Bruck).

    ``size`` is the per-pair message size (each rank sends ``size``
    bytes to every other rank).
    """
    result = yield from _dispatch(comm, "alltoall", size, None,
                                  (size, values))
    return result


# ----------------------------------------------------------------------
# classic algorithm implementations
# ----------------------------------------------------------------------

def barrier_dissemination(comm):
    """Dissemination barrier."""
    tag = comm._next_coll_tag("barrier")
    p, r = comm.size, comm.rank
    if p == 1:
        return
    k = 1
    while k < p:
        dst = (r + k) % p
        src = (r - k) % p
        yield from comm.sendrecv(dst, src, tag=(tag, k), size=1)
        k *= 2


def bcast_binomial(comm, size: int, data: Any = None, root: int = 0):
    """Binomial-tree broadcast; returns the broadcast data."""
    tag = comm._next_coll_tag("bcast")
    p = comm.size
    if p == 1:
        return data
    vr = (comm.rank - root) % p  # virtual rank with root at 0
    mask = 1
    while mask < p:
        if vr & mask:
            src = (vr - mask + root) % p
            msg = yield from comm.recv(src=src, tag=tag)
            data = msg.data
            break
        mask *= 2
    mask //= 2
    while mask > 0:
        if vr + mask < p:
            dst = (vr + mask + root) % p
            yield from comm.send(dst, tag=tag, size=size, data=data)
        mask //= 2
    return data


def reduce_binomial(comm, size: int, value: Any = None, root: int = 0,
                    op=None):
    """Binomial-tree reduction; the root returns the combined value."""
    tag = comm._next_coll_tag("reduce")
    op = op or _default_op
    p = comm.size
    if p == 1:
        return value
    vr = (comm.rank - root) % p
    acc = value
    mask = 1
    while mask < p:
        if vr & mask:
            dst = (vr - mask + root) % p
            yield from comm.send(dst, tag=(tag, mask), size=size, data=acc)
            return None
        partner = vr + mask
        if partner < p:
            src = (partner + root) % p
            msg = yield from comm.recv(src=src, tag=(tag, mask))
            acc = op(acc, msg.data)
        mask *= 2
    return acc


def allreduce_recursive_doubling(comm, size: int, value: Any = None, op=None):
    """Recursive doubling when p is a power of two, else reduce+bcast."""
    tag = comm._next_coll_tag("allreduce")
    op = op or _default_op
    p, r = comm.size, comm.rank
    if p == 1:
        return value
    if p & (p - 1) == 0:
        acc = value
        mask = 1
        while mask < p:
            partner = r ^ mask
            msg = yield from comm.sendrecv(partner, partner, tag=(tag, mask),
                                           size=size, data=acc)
            acc = op(acc, msg.data)
            mask *= 2
        return acc
    # non-power-of-two: binomial reduce + binomial bcast (direct calls —
    # the composition is part of this algorithm, not a re-dispatch)
    acc = yield from reduce_binomial(comm, size, value, root=0, op=op)
    acc = yield from bcast_binomial(comm, size, acc, root=0)
    return acc


def gather(comm, size: int, value: Any = None, root: int = 0):
    """Linear gather; the root returns the list indexed by rank."""
    tag = comm._next_coll_tag("gather")
    if comm.size == 1:
        return [value]
    if comm.rank == root:
        out: list = [None] * comm.size
        out[root] = value
        reqs = []
        for src in range(comm.size):
            if src == root:
                continue
            req = yield from comm.irecv(src=src, tag=(tag, src))
            reqs.append((src, req))
        for src, req in reqs:
            msg = yield from comm.wait(req)
            out[src] = msg.data
        return out
    yield from comm.send(root, tag=(tag, comm.rank), size=size, data=value)
    return None


def scatter(comm, size: int, values: Optional[list] = None, root: int = 0):
    """Linear scatter; every rank returns its element."""
    tag = comm._next_coll_tag("scatter")
    if comm.size == 1:
        return values[0] if values else None
    if comm.rank == root:
        reqs = []
        for dst in range(comm.size):
            if dst == root:
                continue
            data = values[dst] if values else None
            req = yield from comm.isend(dst, tag=(tag, dst), size=size, data=data)
            reqs.append(req)
        for req in reqs:
            yield from comm.wait(req)
        return values[root] if values else None
    msg = yield from comm.recv(src=root, tag=(tag, comm.rank))
    return msg.data


def allgather_ring(comm, size: int, value: Any = None):
    """Ring allgather; returns the list indexed by rank."""
    tag = comm._next_coll_tag("allgather")
    p, r = comm.size, comm.rank
    out: list = [None] * p
    out[r] = value
    if p == 1:
        return out
    right, left = (r + 1) % p, (r - 1) % p
    block = r
    for step in range(p - 1):
        msg = yield from comm.sendrecv(right, left, tag=(tag, step),
                                       size=size, data=(block, out[block]))
        block, data = msg.data
        out[block] = data
    return out


def alltoall_pairwise(comm, size: int, values: Optional[list] = None):
    """Pairwise-exchange all-to-all; returns the list indexed by source."""
    tag = comm._next_coll_tag("alltoall")
    p, r = comm.size, comm.rank
    out: list = [None] * p
    out[r] = values[r] if values else None
    for step in range(1, p):
        dst = (r + step) % p
        src = (r - step) % p
        data = values[dst] if values else None
        msg = yield from comm.sendrecv(dst, src, tag=(tag, step),
                                       size=size, data=data)
        out[src] = msg.data
    return out


def scan(comm, size: int, value: Any = None, op=None):
    """Inclusive prefix reduction: rank r returns op(v_0, ..., v_r)."""
    tag = comm._next_coll_tag("scan")
    op = op or _default_op
    acc = value
    if comm.rank > 0:
        msg = yield from comm.recv(src=comm.rank - 1, tag=tag)
        acc = op(msg.data, value)
    if comm.rank < comm.size - 1:
        yield from comm.send(comm.rank + 1, tag=tag, size=size, data=acc)
    return acc


def exscan(comm, size: int, value: Any = None, op=None):
    """Exclusive prefix reduction: rank r returns op(v_0, ..., v_{r-1}).

    Rank 0 returns None (undefined in MPI; None here).
    """
    tag = comm._next_coll_tag("exscan")
    op = op or _default_op
    prefix = None
    if comm.rank > 0:
        msg = yield from comm.recv(src=comm.rank - 1, tag=tag)
        prefix = msg.data
    if comm.rank < comm.size - 1:
        carry = value if prefix is None else op(prefix, value)
        yield from comm.send(comm.rank + 1, tag=tag, size=size, data=carry)
    return prefix


def reduce_scatter(comm, size: int, values: Optional[list] = None, op=None):
    """Element-wise reduce of per-rank vectors, block-scattered back.

    ``values`` is a list of ``comm.size`` contributions (one destined to
    each rank); rank r returns the combination of everyone's r-th entry.
    """
    op = op or _default_op
    combined = yield from reduce_binomial(
        comm, size * comm.size,
        value=list(values) if values is not None else None,
        root=0,
        op=lambda a, b: (None if a is None and b is None
                         else [op(x, y) for x, y in zip(a, b)]
                         if a is not None and b is not None
                         else (a if b is None else b)))
    out = yield from scatter(comm, size, values=combined, root=0)
    return out


def gatherv(comm, size: int, value: Any = None, root: int = 0):
    """Variable-size gather: each rank contributes ``size`` bytes of its
    own choosing; the root returns ``[(size, value), ...]`` by rank."""
    tag = comm._next_coll_tag("gatherv")
    if comm.size == 1:
        return [(size, value)]
    if comm.rank == root:
        out: list = [None] * comm.size
        out[root] = (size, value)
        for src in range(comm.size):
            if src == root:
                continue
            msg = yield from comm.recv(src=src, tag=(tag, src))
            out[src] = (msg.size, msg.data)
        return out
    yield from comm.send(root, tag=(tag, comm.rank), size=size, data=value)
    return None


def scatterv(comm, sizes: Optional[list] = None,
             values: Optional[list] = None, root: int = 0):
    """Variable-size scatter: the root ships ``sizes[d]`` bytes to each
    destination; every rank returns its element."""
    tag = comm._next_coll_tag("scatterv")
    if comm.size == 1:
        return values[0] if values else None
    if comm.rank == root:
        reqs = []
        for dst in range(comm.size):
            if dst == root:
                continue
            size = sizes[dst] if sizes else 0
            data = values[dst] if values else None
            req = yield from comm.isend(dst, tag=(tag, dst), size=size,
                                        data=data)
            reqs.append(req)
        for req in reqs:
            yield from comm.wait(req)
        return values[root] if values else None
    msg = yield from comm.recv(src=root, tag=(tag, comm.rank))
    return msg.data


def alltoallv(comm, sizes: Optional[list] = None,
              values: Optional[list] = None):
    """Variable-size all-to-all: rank r sends ``sizes[d]`` bytes to each
    destination d; returns the received list indexed by source."""
    tag = comm._next_coll_tag("alltoallv")
    p, r = comm.size, comm.rank
    out: list = [None] * p
    out[r] = values[r] if values else None
    for step in range(1, p):
        dst = (r + step) % p
        src = (r - step) % p
        size = sizes[dst] if sizes else 0
        data = values[dst] if values else None
        msg = yield from comm.sendrecv(dst, src, tag=(tag, step),
                                       size=size, data=data)
        out[src] = msg.data
    return out


# ----------------------------------------------------------------------
# registration (the classic algorithms are the payload-safe fallbacks)
# ----------------------------------------------------------------------

_registry.register(
    "barrier", "dissemination", barrier_dissemination, fallback=True,
    summary="ceil(log2 p) rounds of p simultaneous pairwise signals")
_registry.register(
    "bcast", "binomial", bcast_binomial, fallback=True,
    summary="log2 p tree hops of the full payload")
_registry.register(
    "reduce", "binomial", reduce_binomial, fallback=True,
    summary="log2 p tree hops of the full payload")
_registry.register(
    "allreduce", "recursive_doubling", allreduce_recursive_doubling,
    fallback=True,
    summary="log2 p exchanges of the full payload (reduce+bcast non-pow2)")
_registry.register(
    "allgather", "ring", allgather_ring, fallback=True,
    summary="p-1 neighbour steps of one contribution each")
_registry.register(
    "alltoall", "pairwise", alltoall_pairwise, fallback=True,
    summary="p-1 pairwise exchanges of the full per-pair payload")
