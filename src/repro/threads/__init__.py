"""Marcel-style user-level thread scheduling model.

The real PM2 suite schedules user-level (Marcel) threads over the
machine's cores and lets PIOMan exploit idle cores for communication
progress.  For the simulation, what matters is *core occupancy*: which
threads hold cores, when cores are idle, and how long a background
progress thread has to wait for one.  :class:`MarcelScheduler` models a
node's cores as a FIFO semaphore plus accounting.
"""

from repro.threads.marcel import MarcelScheduler

__all__ = ["MarcelScheduler"]
