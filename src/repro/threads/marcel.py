"""Per-node core scheduler (the Marcel substitute).

Threads are simulator tasks.  A thread that wants CPU time must hold a
core: MPI rank main threads acquire one at startup and hold it while
computing or busy-polling; PIOMan's background worker grabs whatever
core is free.  When a PIOMan-enabled stack blocks a rank on a
completion semaphore, the rank *releases* its core — exactly the
mechanism the paper describes for replacing busy-wait loops
(Section 3.3.2).
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.hardware.params import NodeParams
from repro.simulator import Event, Semaphore, Simulator, Task
from repro.simulator.rng import rng_stream

__all__ = ["MarcelScheduler"]


class MarcelScheduler:
    """Core manager for one node.

    Example
    -------
    >>> from repro.simulator import Simulator
    >>> from repro.hardware.params import NodeParams
    >>> sim = Simulator()
    >>> sched = MarcelScheduler(sim, NodeParams(cores=2))
    >>> def worker():
    ...     yield sched.acquire_core()
    ...     yield from sched.compute(1e-3)
    ...     sched.release_core()
    >>> _ = sim.spawn(worker())
    >>> sim.run()
    0.001
    """

    def __init__(self, sim: Simulator, params: NodeParams, node_id: int = 0,
                 seed: int = 0):
        self.sim = sim
        self.params = params
        self.node_id = node_id
        self._cores = Semaphore(sim, params.cores)
        self.threads_spawned = 0
        self._jitter_rng = (rng_stream(seed, "node-jitter", node_id)
                            if params.compute_jitter > 0.0 else None)

    # -- core ownership -------------------------------------------------
    @property
    def total_cores(self) -> int:
        return self.params.cores

    @property
    def idle_cores(self) -> int:
        """Cores not currently held by any thread."""
        return self._cores.value

    @property
    def waiting_for_core(self) -> int:
        return self._cores.waiting

    def acquire_core(self) -> Event:
        """Event that succeeds when a core is granted (FIFO order)."""
        return self._cores.acquire()

    def try_acquire_core(self) -> bool:
        return self._cores.try_acquire()

    def release_core(self) -> None:
        self._cores.release()

    # -- running work -----------------------------------------------------
    def compute(self, duration: float) -> Generator:
        """Burn ``duration`` seconds of CPU.  Caller must hold a core.

        With ``compute_jitter`` configured, the duration is stretched by
        a reproducible per-node random factor (OS noise model).
        """
        if duration < 0:
            raise ValueError(f"negative compute duration {duration!r}")
        if self._jitter_rng is not None and duration > 0.0:
            duration *= 1.0 + self.params.compute_jitter * float(
                self._jitter_rng.random())
        if duration > 0.0:
            yield self.sim.timeout(duration)

    def spawn(self, gen, name: str = "") -> Task:
        """Start a thread (bookkeeping wrapper over ``sim.spawn``)."""
        self.threads_spawned += 1
        return self.sim.spawn(gen, name=name or f"node{self.node_id}-thread")

    def flops_time(self, flops: float) -> float:
        """Seconds one core needs for ``flops`` floating-point operations."""
        return flops / self.params.flops_per_core
