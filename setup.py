"""Legacy shim: offline environments without the `wheel` package cannot
use PEP 660 editable installs, so `pip install -e .` goes through here."""
from setuptools import setup

setup()
