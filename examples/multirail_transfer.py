#!/usr/bin/env python3
"""Heterogeneous multirail: stripe one large transfer across IB + MX.

Reproduces the paper's Fig. 5 story interactively: NewMadeleine's
split_balance strategy sends small messages on the fastest rail and
stripes large payloads across both NICs proportionally to their sampled
bandwidth, approaching the sum of the rails.

Run:  python examples/multirail_transfer.py
"""

from repro import config
from repro.runtime import run_mpi
from repro.simulator import Trace


def transfer(size):
    def program(comm):
        t0 = comm.sim.now
        if comm.rank == 0:
            yield from comm.send(1, tag=0, size=size)
        else:
            yield from comm.recv(src=0, tag=0)
        return comm.sim.now - t0
    return program


def measure(stack_name, rails, size):
    trace = Trace(categories={"nic.tx"})
    spec = config.mpich2_nmad(rails=rails)
    result = run_mpi(transfer(size), 2, spec, cluster=config.xeon_pair(),
                     trace=trace)
    per_rail = {}
    for rec in trace.filter("nic.tx"):
        per_rail[rec.data["rail"]] = (per_rail.get(rec.data["rail"], 0)
                                      + rec.data["size"])
    elapsed = result.result(1)
    print(f"{stack_name:>14}: {size / elapsed / (1 << 20):7.0f} MiB/s   "
          f"bytes per rail: "
          + ", ".join(f"{r}={b >> 20}MiB" for r, b in sorted(per_rail.items())))
    return size / elapsed


def main():
    size = 32 << 20
    print(f"transferring {size >> 20} MiB rank0 -> rank1\n")
    bw_mx = measure("MX only", ("mx",), size)
    bw_ib = measure("IB only", ("ib",), size)
    bw_multi = measure("IB + MX", ("ib", "mx"), size)
    print(f"\naggregate / sum-of-rails = "
          f"{bw_multi / (bw_ib + bw_mx):.2f} "
          f"(paper: multirail ~ sum of the individual rails)")

    print("\nsmall messages pick the fastest rail only:")
    trace = Trace(categories={"nic.tx"})
    run_mpi(transfer(64), 2, config.mpich2_nmad(rails=("ib", "mx")),
            cluster=config.xeon_pair(), trace=trace)
    rails = {r.data["rail"] for r in trace.filter("nic.tx")}
    print(f"  64 B message used rails: {sorted(rails)} (lowest latency wins)")


if __name__ == "__main__":
    main()
