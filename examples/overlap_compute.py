#!/usr/bin/env python3
"""Overlapping communication with computation via PIOMan (paper Fig. 7).

A sender posts a nonblocking 1 MiB rendezvous send, computes for
400 us, then waits.  Without PIOMan the rendezvous handshake only
advances when the application re-enters the library, so the total is
compute + transfer; with PIOMan an idle core answers the handshake in
the background and the total approaches max(compute, transfer).

Run:  python examples/overlap_compute.py
"""

from repro import config
from repro.runtime import run_mpi

SIZE = 1 << 20
COMPUTE = 400e-6


def overlap(compute_seconds):
    def program(comm):
        if comm.rank == 0:
            t0 = comm.sim.now
            req = yield from comm.isend(1, tag=0, size=SIZE)
            if compute_seconds:
                yield from comm.compute(compute_seconds)
            yield from comm.wait(req)
            return comm.sim.now - t0
        yield from comm.recv(src=0, tag=0)
        return None
    return program


def main():
    cluster = config.xeon_pair()
    ref = run_mpi(overlap(0.0), 2, config.mpich2_nmad(),
                  cluster=cluster).result(0)
    print(f"transfer alone                : {ref * 1e6:7.0f} us")
    print(f"compute alone                 : {COMPUTE * 1e6:7.0f} us")
    print(f"ideal overlap  max(comm, comp): {max(ref, COMPUTE) * 1e6:7.0f} us")
    print(f"no overlap     sum(comm, comp): {(ref + COMPUTE) * 1e6:7.0f} us")
    print()
    for name, spec in [
        ("MPICH2:Nmad (no PIOMan)", config.mpich2_nmad()),
        ("MPICH2:Nmad + PIOMan", config.mpich2_nmad_pioman()),
        ("MVAPICH2", config.mvapich2()),
        ("Open MPI", config.openmpi_ib()),
    ]:
        t = run_mpi(overlap(COMPUTE), 2, spec, cluster=cluster).result(0)
        verdict = "OVERLAPS" if t < ref + 0.5 * COMPUTE else "does not overlap"
        print(f"{name:<26}: {t * 1e6:7.0f} us   ({verdict})")


if __name__ == "__main__":
    main()
