#!/usr/bin/env python3
"""Inspect what actually crosses the stack: traces, metrics, Perfetto.

Runs the same 8 MiB transfer under three configurations and shows, for
each one, the full observability pipeline (``docs/OBSERVABILITY.md``):

* which trace categories each layer emitted (the taxonomy view),
* the frame-level wire traffic and activity timeline,
* the per-message critical-path latency breakdown,
* the headline metrics (bytes per rail, NIC busy fraction, polls/msg),

and writes one Perfetto JSON per configuration — load them at
https://ui.perfetto.dev to see every layer as its own track group.

Run:  python examples/trace_wire_traffic.py
"""

from collections import defaultdict

from repro import config
from repro.analysis import format_timeline, format_traffic, summarize_traffic
from repro.observability import (attach_metrics, format_breakdown, layer_of,
                                 message_lives, write_perfetto)
from repro.runtime import run_mpi
from repro.simulator import Trace

SIZE = 8 << 20


def transfer(comm):
    if comm.rank == 0:
        yield from comm.send(1, tag=0, size=SIZE)
        yield from comm.send(1, tag=1, size=512)   # a trailing small message
    else:
        yield from comm.recv(src=0, tag=0)
        yield from comm.recv(src=0, tag=1)


def show(title, spec, out):
    trace = Trace()
    metrics = attach_metrics(trace)
    result = run_mpi(transfer, 2, spec, cluster=config.xeon_pair(),
                     trace=trace)
    print(f"\n### {title}  (done at {result.elapsed * 1e6:.0f} us)")

    by_layer = defaultdict(list)
    for cat in sorted(trace.categories_seen()):
        by_layer[layer_of(cat)].append(cat)
    print(f"{len(trace)} records from {len(by_layer)} layers:")
    for layer in sorted(by_layer):
        print(f"  {layer:<9} {', '.join(by_layer[layer])}")

    print()
    print(format_traffic(summarize_traffic(trace)))
    print(format_timeline(trace, buckets=8, width=40))
    print()
    print(format_breakdown(message_lives(trace)))

    derived = metrics.derived()
    print()
    for rail, nbytes in sorted(derived["bytes_per_rail"].items()):
        busy = derived["nic_busy_fraction"].get(rail, 0.0)
        print(f"rail {rail}: {int(nbytes)} bytes on the wire, "
              f"NIC busy {busy * 100:.1f}%")
    if derived["polls_per_message"]:
        print(f"pioman polls per received message: "
              f"{derived['polls_per_message']:.2f}")

    write_perfetto(trace, out)
    print(f"Perfetto trace -> {out}")


def main():
    print(f"one {SIZE >> 20} MiB message + one 512 B message, rank0 -> rank1")
    show("CH3-direct (single IB rail)", config.mpich2_nmad(),
         "trace_direct.json")
    show("CH3-direct, multirail IB+MX", config.mpich2_nmad(rails=("ib", "mx")),
         "trace_multirail.json")
    show("netmod path (nested handshakes)", config.mpich2_nmad_netmod(),
         "trace_netmod.json")


if __name__ == "__main__":
    main()
