#!/usr/bin/env python3
"""Inspect what actually crosses the wire: traces + traffic analysis.

Runs the same 8 MiB transfer under three configurations and prints what
each one put on the network — the frame-level view of the eager /
rendezvous / multirail protocols, plus an activity timeline.

Run:  python examples/trace_wire_traffic.py
"""

from repro import config
from repro.analysis import format_timeline, format_traffic, summarize_traffic
from repro.runtime import run_mpi
from repro.simulator import Trace

SIZE = 8 << 20


def transfer(comm):
    if comm.rank == 0:
        yield from comm.send(1, tag=0, size=SIZE)
        yield from comm.send(1, tag=1, size=512)   # a trailing small message
    else:
        yield from comm.recv(src=0, tag=0)
        yield from comm.recv(src=0, tag=1)


def show(title, spec):
    trace = Trace(categories={"nic.tx"})
    result = run_mpi(transfer, 2, spec, cluster=config.xeon_pair(),
                     trace=trace)
    print(f"\n### {title}  (done at {result.elapsed * 1e6:.0f} us)")
    print(format_traffic(summarize_traffic(trace)))
    print(format_timeline(trace, buckets=8, width=40))


def main():
    print(f"one {SIZE >> 20} MiB message + one 512 B message, rank0 -> rank1")
    show("CH3-direct (single IB rail)", config.mpich2_nmad())
    show("CH3-direct, multirail IB+MX", config.mpich2_nmad(rails=("ib", "mx")))
    show("netmod path (nested handshakes)", config.mpich2_nmad_netmod())


if __name__ == "__main__":
    main()
