#!/usr/bin/env python3
"""A master/worker pattern exercising MPI_ANY_SOURCE (paper Fig. 3).

Rank 0 is a server answering requests from workers it does not know the
order of — the exact pattern that forces the ANY_SOURCE request-list
machinery in the CH3-direct path, since NewMadeleine can neither match
wildcard sources nor cancel posted requests.

Run:  python examples/anysource_server.py
"""

from repro import config
from repro.mpi import ANY_SOURCE
from repro.runtime import run_mpi

N_TASKS_PER_WORKER = 3


def program(comm):
    if comm.rank == 0:
        # server: answer whoever asks first
        n_workers = comm.size - 1
        served = []
        for _ in range(n_workers * N_TASKS_PER_WORKER):
            msg = yield from comm.recv(src=ANY_SOURCE, tag="request")
            served.append(msg.source)
            yield from comm.send(msg.source, tag="answer",
                                 size=1024, data=f"work-for-{msg.source}")
        return served
    # workers: staggered requests, remote and local senders mixed
    yield from comm.compute(comm.rank * 7e-6)
    answers = []
    for i in range(N_TASKS_PER_WORKER):
        yield from comm.send(0, tag="request", size=64, data=comm.rank)
        msg = yield from comm.recv(src=0, tag="answer")
        answers.append(msg.data)
        yield from comm.compute(20e-6)
    return answers


def main():
    # 6 ranks over 3 nodes: the server sees both shared-memory and
    # network ANY_SOURCE matches
    result = run_mpi(program, 6, config.mpich2_nmad(),
                     cluster=config.ClusterSpec(n_nodes=3), ranks_per_node=2)
    served = result.result(0)
    print(f"server handled {len(served)} requests")
    print(f"arrival order of sources: {served}")
    for rank in range(1, 6):
        print(f"worker {rank} answers: {result.result(rank)}")
    counts = {s: served.count(s) for s in sorted(set(served))}
    assert all(c == N_TASKS_PER_WORKER for c in counts.values())
    print("every worker was served exactly", N_TASKS_PER_WORKER, "times")


if __name__ == "__main__":
    main()
