#!/usr/bin/env python3
"""One-sided halo exchange with the MPI-2 RMA extension.

The paper's conclusion lists efficient MPI-2 RMA as future work; this
reproduction includes fence-synchronized put/get/accumulate layered on
the same NewMadeleine transport.  The example runs a 1D ring stencil
where every rank *puts* its boundary values into its neighbours'
windows, then a global accumulate tallies a checksum — all one-sided.

Run:  python examples/rma_halo_exchange.py
"""

from repro import config
from repro.mpi import Window
from repro.runtime import run_mpi

STEPS = 4
HALO_BYTES = 8 << 10


def program(comm):
    p, r = comm.size, comm.rank
    left, right = (r - 1) % p, (r + 1) % p
    # slots: 0 = halo from left, 1 = halo from right, 2 = checksum cell
    win = Window(comm, nslots=3, init=0)
    value = float(r)

    yield from win.fence()
    for step in range(STEPS):
        # one-sided: write my value into both neighbours' halo slots
        yield from win.put(right, slot=0, size=HALO_BYTES, data=value)
        yield from win.put(left, slot=1, size=HALO_BYTES, data=value)
        yield from win.fence()
        # Jacobi-style update from the halos written by my neighbours
        value = (win.read(0) + win.read(1)) / 2.0
        yield from comm.compute(5e-6)

    # one-sided global checksum into rank 0's window
    yield from win.accumulate(0, slot=2, size=8, data=value,
                              op=lambda a, b: a + b)
    yield from win.fence()
    return (value, win.read(2) if r == 0 else None)


def main():
    p = 8
    result = run_mpi(program, p, config.mpich2_nmad(),
                     cluster=config.ClusterSpec(n_nodes=4), ranks_per_node=2)
    values = [v for v, _ in result.rank_results]
    checksum = result.result(0)[1]
    print(f"{p} ranks, {STEPS} one-sided halo steps")
    print("final values:", [f"{v:.3f}" for v in values])
    print(f"one-sided checksum at rank 0: {checksum:.3f}")
    print(f"(equals sum of values: {sum(values):.3f})")
    print(f"simulated time: {result.elapsed * 1e6:.1f} us")
    assert abs(checksum - sum(values)) < 1e-9


if __name__ == "__main__":
    main()
