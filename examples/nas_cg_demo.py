#!/usr/bin/env python3
"""Run the NAS CG skeleton (class B) across the paper's four stacks.

Shows the Fig. 8 methodology at example scale: a communication-accurate
kernel skeleton, per-stack execution-time projection, and the PIOMan
overhead measurement.

Run:  python examples/nas_cg_demo.py
"""

from repro import config
from repro.workloads.nas import run_kernel


def main():
    print("NAS CG class B on the simulated Grid'5000 Opteron cluster\n")
    print(f"{'procs':>6} {'MVAPICH2':>10} {'Open MPI':>10} "
          f"{'Nmad':>10} {'Nmad+PIOM':>10}")
    for p in (8, 16, 32):
        row = []
        for spec in (config.mvapich2(), config.openmpi_ib(),
                     config.mpich2_nmad(), config.mpich2_nmad_pioman()):
            res = run_kernel("cg", "B", p, spec)
            row.append(res.time_seconds)
        print(f"{p:>6} " + " ".join(f"{t:>10.1f}" for t in row))
    print("\n(seconds; lower is better — note Open MPI's lag and the"
          "\n sub-3% PIOMan overhead, as in the paper's Fig. 8)")


if __name__ == "__main__":
    main()
