#!/usr/bin/env python3
"""Using NewMadeleine standalone through its nm_sr interface.

The paper quotes the library's native API (Section 2.2.1)::

    nm_sr_isend( destination, tag, *buffer, size, *nmad_request );
    nm_sr_irecv( destination, tag, *buffer, size, *nmad_request );

This example drives the simulated library the same way, without any
MPICH2 layer on top, and shows the aggregation strategy merging a burst
of small sends into fewer packet wrappers.

Run:  python examples/raw_newmadeleine.py
"""

from repro.hardware import build_cluster, presets
from repro.nmad import NmadCore, SendRecvInterface
from repro.nmad.drivers import make_ib_driver
from repro.nmad.strategies import make_strategy
from repro.simulator import Simulator, Trace


def build_world(strategy):
    trace = Trace(categories={"nic.tx"})
    sim = Simulator(trace=trace)
    cluster = build_cluster(sim, 2, presets.XEON_NODE, [presets.IB_CONNECTX])
    ifaces = []
    for rank in (0, 1):
        node = cluster.node(rank)
        core = NmadCore(sim, rank, rank, node.mem,
                        node.make_registrar(cache=False))
        core.add_driver(make_ib_driver(node.nics["ib"]))
        core.set_strategy(make_strategy(strategy, core))
        ifaces.append(SendRecvInterface(sim, core))
    return sim, ifaces, trace


def burst(sim, tx, rx, n=32, size=2048):
    def sender():
        blocker = yield from tx.nm_sr_isend(1, "blk", None, 16 << 10)
        reqs = []
        for i in range(n):
            req = yield from tx.nm_sr_isend(1, "burst", i, size)
            reqs.append(req)
        yield from tx.nm_sr_rwait(blocker)
        for req in reqs:
            yield from tx.nm_sr_rwait(req)

    def receiver():
        req = yield from rx.nm_sr_irecv(0, "blk", 16 << 10)
        yield from rx.nm_sr_rwait(req)
        for _ in range(n):
            req = yield from rx.nm_sr_irecv(0, "burst", size)
            yield from rx.nm_sr_rwait(req)

    sim.spawn(sender())
    sim.spawn(receiver())
    sim.run()


def main():
    for strategy in ("default", "aggreg"):
        sim, (tx, rx), trace = build_world(strategy)
        burst(sim, tx, rx)
        n_frames = trace.count("nic.tx")
        print(f"strategy={strategy:8s}: 33 messages went out in "
              f"{n_frames} packet wrappers, done at {sim.now * 1e6:.1f} us")
    print("\nAggregation coalesces the small sends that queued up while")
    print("the NIC was busy with the 16 KiB blocker (paper Section 2.2).")


if __name__ == "__main__":
    main()
