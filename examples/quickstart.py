#!/usr/bin/env python3
"""Quickstart: run an MPI ping-pong over the simulated MPICH2-NewMadeleine.

This is the two-minute tour of the public API:

1. pick a stack configuration (``repro.config``),
2. pick a cluster (the paper's dual-Xeon pair),
3. write a rank program as a generator over the Communicator,
4. ``run_mpi`` it and read the results.

Run:  python examples/quickstart.py
"""

from repro import config
from repro.runtime import run_mpi


def pingpong(comm):
    """Rank 0 measures one-way latency to rank 1 across message sizes."""
    results = []
    for size in (4, 512, 64 << 10, 4 << 20):
        reps = 10
        # warm-up (registration caches, if the stack has any)
        if comm.rank == 0:
            yield from comm.send(1, tag=("warm", size), size=size)
            yield from comm.recv(src=1, tag=("warm", size))
        else:
            yield from comm.recv(src=0, tag=("warm", size))
            yield from comm.send(0, tag=("warm", size), size=size)

        t0 = comm.sim.now
        for i in range(reps):
            if comm.rank == 0:
                yield from comm.send(1, tag=(size, i), size=size, data=b"ping")
                msg = yield from comm.recv(src=1, tag=(size, i))
                assert msg.data == b"pong"
            else:
                msg = yield from comm.recv(src=0, tag=(size, i))
                assert msg.data == b"ping"
                yield from comm.send(0, tag=(size, i), size=size, data=b"pong")
        one_way = (comm.sim.now - t0) / (2 * reps)
        results.append((size, one_way))
    return results


def main():
    print("MPICH2-NewMadeleine over simulated ConnectX InfiniBand")
    print(f"{'size':>10} {'one-way latency':>18} {'bandwidth':>14}")
    result = run_mpi(pingpong, nprocs=2, stack=config.mpich2_nmad(),
                     cluster=config.xeon_pair())
    for size, one_way in result.result(0):
        bw = size / one_way / (1 << 20)
        print(f"{size:>10} {one_way * 1e6:>15.2f} us {bw:>9.0f} MiB/s")

    print("\nSame program, MVAPICH2 comparator:")
    result = run_mpi(pingpong, nprocs=2, stack=config.mvapich2(),
                     cluster=config.xeon_pair())
    for size, one_way in result.result(0):
        print(f"{size:>10} {one_way * 1e6:>15.2f} us")


if __name__ == "__main__":
    main()
