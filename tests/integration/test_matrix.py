"""Cross-feature matrix: one realistic mini-application on every stack.

The program mixes everything a real MPI code uses — point-to-point with
mixed sizes, nonblocking requests, ANY_SOURCE, probe, collectives,
compute phases — and must produce identical *values* on every stack
configuration (timing differs; semantics must not).
"""

import pytest

from repro import config
from repro.mpi import ANY_SOURCE
from repro.runtime import run_mpi

ALL_SPECS = {
    "nmad": config.mpich2_nmad,
    "nmad-multirail": lambda: config.mpich2_nmad(rails=("ib", "mx")),
    "nmad-pioman": config.mpich2_nmad_pioman,
    "nmad-netmod": config.mpich2_nmad_netmod,
    "mvapich2": config.mvapich2,
    "openmpi": config.openmpi_ib,
    "openmpi-pml-mx": config.openmpi_pml_mx,
    "openmpi-btl-mx": config.openmpi_btl_mx,
}


def mini_app(comm):
    """A ring + master/worker + collective workout; returns checkables."""
    p, r = comm.size, comm.rank
    out = {}

    # 1. ring shift with mixed sizes (eager and rendezvous)
    for size in (64, 256 << 10):
        msg = yield from comm.sendrecv((r + 1) % p, (r - 1) % p,
                                       tag=("ring", size), size=size,
                                       data=r)
        out[f"ring{size}"] = msg.data
    yield from comm.compute(5e-6)

    # 2. master/worker with ANY_SOURCE on rank 0
    if r == 0:
        sources = []
        for _ in range(p - 1):
            msg = yield from comm.recv(src=ANY_SOURCE, tag="work")
            sources.append(msg.source)
        out["sources"] = sorted(sources)
    else:
        yield from comm.compute(r * 3e-6)
        yield from comm.send(0, tag="work", size=512, data=r)

    # 3. probe-then-receive
    if r == 0:
        yield from comm.send(1 % p, tag="probe-me", size=2048, data="peek")
    if r == 1 % p:
        src, size = yield from comm.probe(src=ANY_SOURCE, tag="probe-me")
        msg = yield from comm.recv(src=src, tag="probe-me")
        out["probed"] = (size, msg.data)

    # 4. collectives
    out["sum"] = yield from comm.allreduce(8, value=r + 1)
    gathered = yield from comm.gather(64, value=r * r, root=0)
    if r == 0:
        out["squares"] = gathered
    out["bcast"] = yield from comm.bcast(1024, data=("hello", p) if r == 0
                                         else None, root=0)
    yield from comm.barrier()
    return out


@pytest.mark.parametrize("flavor", list(ALL_SPECS))
def test_mini_app_on_every_stack(flavor):
    p = 4
    r = run_mpi(mini_app, p, ALL_SPECS[flavor](),
                cluster=config.ClusterSpec(
                    n_nodes=2, rails=config.xeon_pair().rails),
                ranks_per_node=2)
    for rank in range(p):
        out = r.result(rank)
        assert out["ring64"] == (rank - 1) % p
        assert out[f"ring{256 << 10}"] == (rank - 1) % p
        assert out["sum"] == p * (p + 1) // 2
        assert out["bcast"] == ("hello", p)
    assert r.result(0)["sources"] == [1, 2, 3]
    assert r.result(0)["squares"] == [0, 1, 4, 9]
    assert r.result(1)["probed"] == (2048, "peek")


@pytest.mark.parametrize("flavor", ["nmad", "nmad-pioman", "mvapich2"])
def test_mini_app_single_node(flavor):
    """All ranks on one node: everything goes through shared memory."""
    p = 4
    r = run_mpi(mini_app, p, ALL_SPECS[flavor](),
                cluster=config.ClusterSpec(n_nodes=1), ranks_per_node=p)
    assert r.result(0)["sum"] == 10


def test_timing_sane_across_stacks():
    """Every stack finishes; pioman/netmod cost more than direct."""
    times = {}
    for flavor in ("nmad", "nmad-netmod"):
        r = run_mpi(mini_app, 4, ALL_SPECS[flavor](),
                    cluster=config.ClusterSpec(
                        n_nodes=4, rails=config.xeon_pair().rails))
        times[flavor] = r.elapsed
    assert times["nmad-netmod"] > times["nmad"]
