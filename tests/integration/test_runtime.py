"""Runtime assembly: placement, validation, failure surfacing."""

import pytest

from repro import config
from repro.runtime import MPIRuntime, run_mpi


def test_default_cluster_one_rank_per_node():
    rt = MPIRuntime(4, config.mpich2_nmad())
    assert len(rt.cluster) == 4
    assert [rt.rank_to_node(r) for r in range(4)] == [0, 1, 2, 3]


def test_block_placement():
    rt = MPIRuntime(8, config.mpich2_nmad(),
                    cluster=config.ClusterSpec(n_nodes=2), ranks_per_node=4)
    assert [rt.rank_to_node(r) for r in range(8)] == [0, 0, 0, 0, 1, 1, 1, 1]
    assert rt.ranks_on_node(0) == [0, 1, 2, 3]


def test_overflow_ranks_land_on_last_node():
    rt = MPIRuntime(5, config.mpich2_nmad(),
                    cluster=config.ClusterSpec(n_nodes=2), ranks_per_node=2)
    assert rt.rank_to_node(4) == 1


def test_missing_rail_rejected():
    with pytest.raises(ValueError, match="rails"):
        MPIRuntime(2, config.mpich2_nmad(rails=("mx",)),
                   cluster=config.ClusterSpec(n_nodes=2))  # cluster has ib only


def test_zero_procs_rejected():
    with pytest.raises(ValueError):
        MPIRuntime(0, config.mpich2_nmad())


def test_unknown_stack_kind_rejected():
    with pytest.raises(ValueError, match="unknown stack kind"):
        MPIRuntime(2, config.mpich2_nmad().with_(kind="weird"))


def test_deadlock_reported_with_rank_list():
    def deadlock(comm):
        # both ranks wait for a message nobody sends
        yield from comm.recv(src=1 - comm.rank, tag="never")

    with pytest.raises(RuntimeError, match=r"ranks \[0, 1\]"):
        run_mpi(deadlock, 2, config.mpich2_nmad(), cluster=config.xeon_pair())


def test_partial_deadlock_names_stuck_rank():
    def program(comm):
        if comm.rank == 0:
            yield from comm.compute(1e-6)
            return "done"
        yield from comm.recv(src=0, tag="never")

    with pytest.raises(RuntimeError, match=r"ranks \[1\]"):
        run_mpi(program, 2, config.mpich2_nmad(), cluster=config.xeon_pair())


def test_application_exception_propagates():
    def program(comm):
        yield from comm.compute(1e-6)
        if comm.rank == 1:
            raise ValueError("application bug")

    with pytest.raises(ValueError, match="application bug"):
        run_mpi(program, 2, config.mpich2_nmad(), cluster=config.xeon_pair())


def test_run_result_fields():
    def program(comm):
        yield from comm.compute((comm.rank + 1) * 1e-3)
        return comm.rank * 2

    r = run_mpi(program, 3, config.mpich2_nmad(),
                cluster=config.ClusterSpec(n_nodes=3))
    assert r.rank_results == [0, 2, 4]
    assert r.elapsed == pytest.approx(3e-3)
    assert r.rank_times[0] == pytest.approx(1e-3)
    assert r.result(2) == 4


def test_pioman_instantiated_only_when_requested():
    rt = MPIRuntime(2, config.mpich2_nmad(), cluster=config.xeon_pair())
    assert all(pm is None for pm in rt.piomans.values())
    rt2 = MPIRuntime(2, config.mpich2_nmad_pioman(), cluster=config.xeon_pair())
    assert all(pm is not None for pm in rt2.piomans.values())


def test_multirail_stack_gets_both_drivers():
    rt = MPIRuntime(2, config.mpich2_nmad(rails=("ib", "mx")),
                    cluster=config.xeon_pair())
    assert sorted(d.name for d in rt.stacks[0].core.drivers) == ["ib", "mx"]


def test_spec_with_helper():
    spec = config.mpich2_nmad()
    mod = spec.with_(strategy="default")
    assert mod.strategy == "default"
    assert spec.strategy == "aggreg"  # original untouched
