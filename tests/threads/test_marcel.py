"""Unit tests for the Marcel core-scheduler model."""

import pytest

from repro.hardware.params import NodeParams
from repro.simulator import Simulator
from repro.threads import MarcelScheduler


def make_sched(cores=2):
    sim = Simulator()
    return sim, MarcelScheduler(sim, NodeParams(cores=cores))


def test_idle_cores_accounting():
    sim, sched = make_sched(cores=4)
    assert sched.idle_cores == 4
    assert sched.try_acquire_core()
    assert sched.idle_cores == 3
    sched.release_core()
    assert sched.idle_cores == 4


def test_compute_advances_time():
    sim, sched = make_sched()
    log = []

    def worker():
        yield sched.acquire_core()
        yield from sched.compute(5e-6)
        log.append(sim.now)
        sched.release_core()

    sched.spawn(worker())
    sim.run()
    assert log == [pytest.approx(5e-6)]


def test_compute_zero_duration_is_instant():
    sim, sched = make_sched()

    def worker():
        yield sched.acquire_core()
        yield from sched.compute(0.0)
        sched.release_core()

    sched.spawn(worker())
    assert sim.run() == 0.0


def test_compute_negative_rejected():
    sim, sched = make_sched()

    def worker():
        yield sched.acquire_core()
        yield from sched.compute(-1.0)

    sched.spawn(worker())
    with pytest.raises(ValueError):
        sim.run()


def test_oversubscribed_threads_queue_for_cores():
    sim, sched = make_sched(cores=1)
    log = []

    def worker(name):
        yield sched.acquire_core()
        yield from sched.compute(1e-3)
        log.append((name, sim.now))
        sched.release_core()

    sched.spawn(worker("a"))
    sched.spawn(worker("b"))
    sim.run()
    assert log == [("a", pytest.approx(1e-3)), ("b", pytest.approx(2e-3))]


def test_two_cores_run_in_parallel():
    sim, sched = make_sched(cores=2)
    log = []

    def worker(name):
        yield sched.acquire_core()
        yield from sched.compute(1e-3)
        log.append((name, sim.now))
        sched.release_core()

    sched.spawn(worker("a"))
    sched.spawn(worker("b"))
    sim.run()
    assert log[0][1] == pytest.approx(1e-3)
    assert log[1][1] == pytest.approx(1e-3)


def test_flops_time():
    sim, sched = make_sched()
    t = sched.flops_time(2.0e9)
    assert t == pytest.approx(2.0e9 / NodeParams().flops_per_core)


def test_spawn_counts_threads():
    sim, sched = make_sched()

    def nop():
        yield sim.timeout(0)

    sched.spawn(nop())
    sched.spawn(nop())
    assert sched.threads_spawned == 2
    sim.run()
