"""The OS-noise (compute jitter) model."""

import pytest

from repro import config
from repro.hardware.params import NodeParams
from repro.hardware.presets import XEON_MEM
from repro.runtime import run_mpi


def jitter_cluster(jitter):
    node = NodeParams(cores=8, flops_per_core=3.0e9,
                      compute_jitter=jitter, mem=XEON_MEM)
    return config.ClusterSpec(n_nodes=2, node=node,
                              rails=config.xeon_pair().rails)


def timed_compute(comm):
    t0 = comm.sim.now
    for _ in range(10):
        yield from comm.compute(10e-6)
    return comm.sim.now - t0


def test_zero_jitter_is_exact():
    r = run_mpi(timed_compute, 2, config.mpich2_nmad(),
                cluster=jitter_cluster(0.0))
    assert r.result(0) == pytest.approx(100e-6, abs=1e-12)


def test_jitter_stretches_compute_within_bound():
    r = run_mpi(timed_compute, 2, config.mpich2_nmad(),
                cluster=jitter_cluster(0.10))
    elapsed = r.result(0)
    assert 100e-6 < elapsed <= 110e-6 * 1.0001


def test_jitter_reproducible_for_same_seed():
    a = run_mpi(timed_compute, 2, config.mpich2_nmad(),
                cluster=jitter_cluster(0.10), seed=7)
    b = run_mpi(timed_compute, 2, config.mpich2_nmad(),
                cluster=jitter_cluster(0.10), seed=7)
    assert a.result(0) == b.result(0)
    assert a.result(1) == b.result(1)


def test_jitter_differs_across_seeds():
    a = run_mpi(timed_compute, 2, config.mpich2_nmad(),
                cluster=jitter_cluster(0.10), seed=1)
    b = run_mpi(timed_compute, 2, config.mpich2_nmad(),
                cluster=jitter_cluster(0.10), seed=2)
    assert a.result(0) != b.result(0)


def test_jitter_differs_across_nodes():
    """Each node draws from its own stream: ranks on different nodes
    see different noise."""
    r = run_mpi(timed_compute, 2, config.mpich2_nmad(),
                cluster=jitter_cluster(0.10), seed=3)
    assert r.result(0) != r.result(1)


def test_nas_with_jitter_still_sane():
    from repro.workloads.nas import run_kernel
    from repro.config import grid5000
    from repro.hardware.presets import OPTERON_MEM

    node = NodeParams(cores=8, flops_per_core=1.0e9,
                      compute_jitter=0.05, mem=OPTERON_MEM)
    cluster = config.ClusterSpec(n_nodes=8, node=node,
                                 rails=grid5000().rails)
    base = run_kernel("cg", "A", 8, config.mpich2_nmad())
    noisy = run_kernel("cg", "A", 8, config.mpich2_nmad(),
                       cluster=cluster, ranks_per_node=1)
    # noise can only slow things down, and by at most ~the jitter bound
    assert base.time_seconds < noisy.time_seconds < base.time_seconds * 1.10
