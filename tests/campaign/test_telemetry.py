"""Per-run campaign telemetry lands beside the content-addressed cache."""

import json

from repro.campaign import ResultCache, run_campaign


def _read_jsonl(path):
    with open(path) as fh:
        return [json.loads(line) for line in fh if line.strip()]


def test_campaign_appends_telemetry(tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    report = run_campaign(["ext_stencil_overlap"], fast=True, cache=cache)
    assert report.telemetry_path == cache.telemetry_path

    rows = _read_jsonl(cache.telemetry_path)
    assert len(rows) == 1
    entry = rows[0]
    assert entry["points"] == report.points
    assert entry["cache_hits"] == 0
    assert entry["cache_misses"] == report.points
    assert entry["wall_seconds"] > 0
    assert len(entry["per_point"]) == report.points
    first = entry["per_point"][0]
    assert first["module"] == "ext_stencil_overlap"
    assert not first["cached"]
    assert first["elapsed"] > 0
    assert entry["executed_seconds"] >= first["elapsed"]


def test_warm_rerun_appends_hit_entry(tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    run_campaign(["ext_stencil_overlap"], fast=True, cache=cache)
    warm = run_campaign(["ext_stencil_overlap"], fast=True, cache=cache)
    assert warm.all_cached

    rows = _read_jsonl(cache.telemetry_path)
    assert len(rows) == 2
    entry = rows[1]
    assert entry["cache_hits"] == warm.points
    assert entry["cache_misses"] == 0
    assert entry["executed_seconds"] == 0.0
    assert all(p["cached"] for p in entry["per_point"])


def test_no_cache_means_no_telemetry():
    report = run_campaign(["ext_stencil_overlap"], fast=True, cache=None)
    assert report.telemetry_path is None
