"""Property tests (hypothesis) for the content-addressed cache key.

The contract under test:

* equal point configs hash equal (the key is a pure function of the
  canonical JSON, not of dict ordering or object identity);
* perturbing *any* field — seed, a size, a rail bandwidth in the
  hardware fingerprint, the source digest — changes the key;
* a cache hit returns a result bit-identical (canonical JSON) to what
  was stored.
"""

from __future__ import annotations

import copy
from typing import Any, List, Tuple

from hypothesis import given, settings, strategies as st

from repro.campaign import (ResultCache, campaign_key, canonical_json,
                            hardware_fingerprint)
from repro.campaign.points import Point

MODULES = ["fig4_infiniband", "fig6_pioman_overhead", "fig8_nas"]
KINDS = ["netpipe", "overlap", "nas", "stencil"]

scalars = st.one_of(
    st.integers(min_value=-(10 ** 6), max_value=10 ** 6),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=16),
    st.booleans(),
)
params_st = st.dictionaries(st.text(min_size=1, max_size=12), scalars,
                            max_size=6)
points_st = st.builds(
    Point,
    module=st.sampled_from(MODULES),
    key=st.text(min_size=1, max_size=24),
    kind=st.sampled_from(KINDS),
    params=params_st,
    seed=st.integers(min_value=0, max_value=2 ** 31),
)

#: fixed digests so the property tests don't depend on the live tree
CODE = "0" * 64
HW = {"hw.nic": {"bandwidth": 1.25e9, "latency": 1.3e-6},
      "costs.X": {"gap": 0.4e-6}}


@given(points_st)
@settings(max_examples=100, deadline=None)
def test_equal_configs_hash_equal(point: Point) -> None:
    cfg = point.config()
    clone = copy.deepcopy(cfg)
    # dict insertion order must not matter either
    reordered = dict(reversed(list(clone.items())))
    assert campaign_key(cfg, hw=HW, code_digest=CODE) \
        == campaign_key(clone, hw=HW, code_digest=CODE) \
        == campaign_key(reordered, hw=HW, code_digest=CODE)


@given(points_st, st.integers(min_value=1, max_value=100))
@settings(max_examples=100, deadline=None)
def test_seed_perturbation_changes_key(point: Point, bump: int) -> None:
    cfg = point.config()
    other = dict(cfg, seed=cfg["seed"] + bump)
    assert campaign_key(cfg, hw=HW, code_digest=CODE) \
        != campaign_key(other, hw=HW, code_digest=CODE)


@given(points_st, st.sampled_from(["module", "key", "kind"]))
@settings(max_examples=100, deadline=None)
def test_field_perturbation_changes_key(point: Point, field: str) -> None:
    cfg = point.config()
    other = dict(cfg, **{field: cfg[field] + "'"})
    assert campaign_key(cfg, hw=HW, code_digest=CODE) \
        != campaign_key(other, hw=HW, code_digest=CODE)


@given(points_st, st.text(min_size=1, max_size=12), scalars)
@settings(max_examples=100, deadline=None)
def test_param_perturbation_changes_key(point: Point, name: str,
                                        value: Any) -> None:
    cfg = point.config()
    other = dict(cfg, params=dict(cfg["params"], **{name: value}))
    same = canonical_json(other) == canonical_json(cfg)
    keys_equal = (campaign_key(cfg, hw=HW, code_digest=CODE)
                  == campaign_key(other, hw=HW, code_digest=CODE))
    assert keys_equal == same


def _numeric_leaves(obj: Any, prefix: Tuple[Any, ...] = ()) \
        -> List[Tuple[Any, ...]]:
    out = []
    if isinstance(obj, dict):
        for k, v in obj.items():
            out.extend(_numeric_leaves(v, prefix + (k,)))
    elif isinstance(obj, list):
        for i, v in enumerate(obj):
            out.extend(_numeric_leaves(v, prefix + (i,)))
    elif isinstance(obj, (int, float)) and not isinstance(obj, bool):
        out.append(prefix)
    return out


@given(points_st, st.data())
@settings(max_examples=50, deadline=None)
def test_hardware_perturbation_changes_key(point: Point, data) -> None:
    """Bumping any numeric hardware constant (e.g. a rail bandwidth)
    must move every key computed against that fingerprint."""
    fp = hardware_fingerprint()
    leaves = _numeric_leaves(fp)
    assert leaves, "hardware fingerprint has no numeric constants?"
    path = data.draw(st.sampled_from(leaves), label="leaf")
    perturbed = copy.deepcopy(fp)
    cur = perturbed
    for step in path[:-1]:
        cur = cur[step]
    cur[path[-1]] = cur[path[-1]] + 1
    cfg = point.config()
    assert campaign_key(cfg, hw=fp, code_digest=CODE) \
        != campaign_key(cfg, hw=perturbed, code_digest=CODE)


@given(points_st)
@settings(max_examples=50, deadline=None)
def test_code_digest_changes_key(point: Point) -> None:
    cfg = point.config()
    assert campaign_key(cfg, hw=HW, code_digest=CODE) \
        != campaign_key(cfg, hw=HW, code_digest="1" * 64)


json_values = st.recursive(
    st.one_of(st.none(), st.booleans(),
              st.integers(min_value=-(10 ** 9), max_value=10 ** 9),
              st.floats(allow_nan=False, allow_infinity=False),
              st.text(max_size=16)),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4)),
    max_leaves=12)


@given(points_st, json_values)
@settings(max_examples=50, deadline=None)
def test_cache_roundtrip_is_bit_identical(point: Point, result: Any) -> None:
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(tmp)
        cfg = point.config()
        key = campaign_key(cfg, hw=HW, code_digest=CODE)
        assert cache.get(key) is None
        cache.put(key, cfg, result, 0.25)
        hit = cache.get(key)
        assert hit is not None
        got, elapsed = hit
        assert canonical_json(got) == canonical_json(result)
        assert elapsed == 0.25
