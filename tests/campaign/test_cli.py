"""The ``repro campaign`` subcommand."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


def test_campaign_cli_cold_then_warm(tmp_path, capsys) -> None:
    cache_dir = str(tmp_path / "cache")
    report_path = str(tmp_path / "report.json")
    rc = main(["campaign", "ext_stencil_overlap", "--fast", "--quiet",
               "--workers", "2", "--cache-dir", cache_dir,
               "--report", report_path])
    assert rc == 0
    out = capsys.readouterr().out
    assert "0 hit(s)" in out and "miss(es)" in out

    with open(report_path) as fh:
        report = json.load(fh)
    assert report["stats"]["cache_misses"] == report["stats"]["points"] > 0
    assert "ext_stencil_overlap" in report["modules"]

    rc = main(["campaign", "ext_stencil_overlap", "--fast", "--quiet",
               "--cache-dir", cache_dir])
    assert rc == 0
    out = capsys.readouterr().out
    assert "[fully cached]" in out


def test_campaign_cli_renders_tables(tmp_path, capsys) -> None:
    rc = main(["campaign", "ext_stencil_overlap", "--fast", "--no-cache"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "stencil halo exchange" in out
    assert "campaign:" in out


def test_campaign_cli_rejects_unknown_module() -> None:
    with pytest.raises(SystemExit):
        main(["campaign", "not_a_module", "--fast", "--no-cache"])
