"""Campaign determinism: workers=N == workers=1 == warm cached rerun.

The merged data is compared through ``canonical_json`` after dataclass
flattening, so "equal" here means *byte-identical serialized results* —
not approximately equal.  These tests use the fast sweeps of two cheap
modules to keep wall time bounded.
"""

from __future__ import annotations

from repro.campaign import ResultCache, canonical_json, run_campaign
from repro.campaign.cache import _as_plain

MODULES = ["fig6_pioman_overhead", "ext_stencil_overlap"]


def _frozen(report) -> str:
    return canonical_json(_as_plain(report.modules))


def test_parallel_equals_serial() -> None:
    serial = run_campaign(MODULES, fast=True, workers=1, cache=None)
    pooled = run_campaign(MODULES, fast=True, workers=4, cache=None)
    assert serial.points == pooled.points > 0
    assert _frozen(serial) == _frozen(pooled)


def test_cached_rerun_is_byte_identical(tmp_path) -> None:
    cache = ResultCache(str(tmp_path / "cache"))
    cold = run_campaign(MODULES, fast=True, workers=2, cache=cache)
    assert cold.cache_misses == cold.points
    assert len(cache) == cold.points
    warm = run_campaign(MODULES, fast=True, workers=1, cache=cache)
    assert warm.all_cached
    assert warm.cache_misses == 0
    assert _frozen(cold) == _frozen(warm)


def test_force_recomputes_but_matches(tmp_path) -> None:
    cache = ResultCache(str(tmp_path / "cache"))
    first = run_campaign(["ext_stencil_overlap"], fast=True, cache=cache)
    forced = run_campaign(["ext_stencil_overlap"], fast=True, cache=cache,
                          force=True)
    assert forced.cache_hits == 0
    assert forced.cache_misses == forced.points
    assert _frozen(first) == _frozen(forced)


def test_campaign_matches_module_run() -> None:
    """The merged campaign data is exactly what serial ``run()`` returns."""
    from repro.experiments import fig6_pioman_overhead

    report = run_campaign(["fig6_pioman_overhead"], fast=True, cache=None)
    direct = fig6_pioman_overhead.run(fast=True)
    assert canonical_json(_as_plain(report.modules["fig6_pioman_overhead"])) \
        == canonical_json(_as_plain(direct))


def test_report_stats_and_metrics(tmp_path) -> None:
    cache = ResultCache(str(tmp_path / "cache"))
    report = run_campaign(["ext_stencil_overlap"], fast=True, cache=cache)
    stats = report.stats()
    assert stats["points"] == report.points
    assert stats["per_module"]["ext_stencil_overlap"]["points"] \
        == report.points
    assert report.registry is not None
    assert report.registry.counter("campaign.points").value == report.points
    assert report.registry.counter("campaign.cache_misses").value \
        == report.points
    # the whole report must be JSON-serializable (dataclasses flattened)
    import json

    text = json.dumps(report.to_dict(), sort_keys=True)
    assert "ext_stencil_overlap" in text
