"""CLI commands and trace-analysis utilities."""

import pytest

from repro.analysis import format_timeline, format_traffic, summarize_traffic
from repro.cli import _parse_size, main
from repro.simulator import Trace


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def test_parse_size():
    assert _parse_size("4") == 4
    assert _parse_size("64K") == 64 * 1024
    assert _parse_size("2M") == 2 << 20
    assert _parse_size(" 1k ") == 1024


def test_cli_stacks(capsys):
    assert main(["stacks"]) == 0
    out = capsys.readouterr().out
    assert "mpich2_nmad" in out
    assert "MVAPICH2" in out


def test_cli_netpipe(capsys):
    assert main(["netpipe", "--sizes", "4,1K", "--reps", "2"]) == 0
    out = capsys.readouterr().out
    assert "latency_us" in out
    assert "MPICH2:Nem:Nmad" in out


def test_cli_netpipe_intra(capsys):
    assert main(["netpipe", "--sizes", "4", "--reps", "2", "--intra"]) == 0
    assert "intra-node" in capsys.readouterr().out


def test_cli_overlap(capsys):
    assert main(["overlap", "--size", "64K", "--compute", "100",
                 "--reps", "2"]) == 0
    out = capsys.readouterr().out
    assert "sending time" in out


def test_cli_nas(capsys):
    assert main(["nas", "--kernel", "ep", "--cls", "A", "--procs", "4"]) == 0
    out = capsys.readouterr().out
    assert "EP class A" in out
    assert "projected execution time" in out


def test_cli_nas_square_adjustment(capsys):
    assert main(["nas", "--kernel", "bt", "--cls", "A", "--procs", "8"]) == 0
    assert "9 processes" in capsys.readouterr().out


def test_cli_unknown_stack():
    with pytest.raises(SystemExit, match="unknown stack"):
        main(["netpipe", "--stack", "nope"])


def test_cli_unknown_experiment():
    with pytest.raises(SystemExit, match="unknown experiment"):
        main(["experiments", "fig99"])


# ---------------------------------------------------------------------------
# static analysis front-ends: repro lint / repro check
# ---------------------------------------------------------------------------

def violation_pkg(tmp_path):
    root = tmp_path / "pkg"
    root.mkdir()
    (root / "__init__.py").write_text("")
    (root / "a.py").write_text(
        "import random\n\n\ndef jitter():\n    return random.random()\n")
    return str(root)


def test_cli_lint_sarif_format(capsys):
    assert main(["lint", "--format", "sarif"]) == 0
    out = capsys.readouterr().out
    assert '"version": "2.1.0"' in out
    assert "RPR001" in out      # rule catalog listed even when clean


def test_cli_lint_json_output_file(tmp_path, capsys):
    out_file = tmp_path / "lint.json"
    assert main(["lint", "--format", "json",
                 "--output", str(out_file)]) == 0
    assert "written to" in capsys.readouterr().out
    import json
    assert json.loads(out_file.read_text())["tool"] == "repro-lint"


def test_cli_check_clean_on_real_package(capsys):
    assert main(["check"]) == 0
    assert "clean" in capsys.readouterr().out


def test_cli_check_list_contracts(capsys):
    assert main(["check", "--list-contracts"]) == 0
    out = capsys.readouterr().out
    for code in ("RPC001", "RPC002", "RPC003", "RPC004", "RPC005",
                 "RPC006"):
        assert code in out


def test_cli_check_flags_fixture_violation(tmp_path, capsys):
    assert main(["check", violation_pkg(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "RPC003" in out and "1 violation(s)" in out


def test_cli_check_baseline_ratchet(tmp_path, capsys):
    root = violation_pkg(tmp_path)
    baseline = str(tmp_path / "baseline.json")
    assert main(["check", root, "--update-baseline", baseline]) == 0
    assert main(["check", root, "--baseline", baseline]) == 0
    assert "1 baselined" in capsys.readouterr().out


def test_cli_check_sarif_artifact(tmp_path, capsys):
    out_file = tmp_path / "check.sarif"
    assert main(["check", violation_pkg(tmp_path), "--format", "sarif",
                 "--output", str(out_file)]) == 1
    import json
    doc = json.loads(out_file.read_text())
    assert doc["runs"][0]["results"][0]["ruleId"] == "RPC003"


def test_cli_check_dead_code_report(tmp_path, capsys):
    root = tmp_path / "pkg"
    root.mkdir()
    (root / "__init__.py").write_text("")
    (root / "a.py").write_text("def orphan():\n    pass\n")
    assert main(["check", str(root), "--dead-code"]) == 0
    out = capsys.readouterr().out
    assert "pkg.a.orphan" in out
    assert "1 unreachable" in out


def test_cli_check_stats(capsys):
    assert main(["check", "--stats"]) == 0
    out = capsys.readouterr().out
    assert "call graph:" in out and "generator(s)" in out


# ---------------------------------------------------------------------------
# trace analysis
# ---------------------------------------------------------------------------

def traced_run():
    from repro import config
    from repro.runtime import run_mpi

    trace = Trace(categories={"nic.tx"})

    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, tag=0, size=1 << 20)
            yield from comm.send(1, tag=1, size=64)
        else:
            yield from comm.recv(src=0, tag=0)
            yield from comm.recv(src=0, tag=1)

    run_mpi(program, 2, config.mpich2_nmad(rails=("ib", "mx")),
            cluster=config.xeon_pair(), trace=trace)
    return trace


def test_summarize_traffic_counts_everything():
    trace = traced_run()
    summary = summarize_traffic(trace)
    assert summary.total_frames == len(trace.filter("nic.tx"))
    assert summary.total_bytes > 1 << 20
    assert "ib" in summary.rails
    assert summary.rail("ib").frames >= 3  # rts + cts + data + eager


def test_rail_summary_bandwidth():
    trace = traced_run()
    summary = summarize_traffic(trace)
    assert summary.rail("ib").effective_bandwidth > 0


def test_format_traffic_readable():
    text = format_traffic(summarize_traffic(traced_run()))
    assert "total:" in text
    assert "rail ib:" in text


def test_format_timeline_histogram():
    text = format_timeline(traced_run(), buckets=5)
    assert text.count("\n") == 4
    assert "#" in text
    assert "us |" in text


def test_format_timeline_empty():
    assert format_timeline(Trace()) == "(no records)"
