"""The two-sided benchmark regression guard."""

import importlib.util
import json
import os

import pytest

_GUARD = os.path.join(os.path.dirname(__file__), os.pardir,
                      "benchmarks", "check_simulator_regression.py")


@pytest.fixture()
def guard():
    spec = importlib.util.spec_from_file_location("check_guard", _GUARD)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def _bench_json(path, mins, datetime="2026-01-01T00:00:00"):
    doc = {"datetime": datetime, "commit_info": {"id": "deadbeef"},
           "benchmarks": [{"fullname": name, "stats": {"min": timing}}
                          for name, timing in mins.items()]}
    with open(path, "w") as fh:
        json.dump(doc, fh)
    return str(path)


def test_within_threshold_passes(guard, tmp_path, capsys):
    base = _bench_json(tmp_path / "base.json", {"b::t_a": 0.010})
    cur = _bench_json(tmp_path / "cur.json", {"b::t_a": 0.011})
    assert guard.main([cur, "--baseline", base, "--no-history"]) == 0
    assert "OK " in capsys.readouterr().out


def test_regression_fails(guard, tmp_path, capsys):
    base = _bench_json(tmp_path / "base.json", {"b::t_a": 0.010})
    cur = _bench_json(tmp_path / "cur.json", {"b::t_a": 0.013})  # 0.77x
    assert guard.main([cur, "--baseline", base, "--no-history"]) == 1
    assert "REG" in capsys.readouterr().out


def test_missing_benchmark_fails(guard, tmp_path):
    base = _bench_json(tmp_path / "base.json",
                       {"b::t_a": 0.010, "b::t_b": 0.010})
    cur = _bench_json(tmp_path / "cur.json", {"b::t_a": 0.010})
    assert guard.main([cur, "--baseline", base, "--no-history"]) == 1


def test_improvement_detected_and_baseline_emitted(guard, tmp_path, capsys):
    base = _bench_json(tmp_path / "base.json", {"b::t_a": 0.010})
    cur = _bench_json(tmp_path / "cur.json", {"b::t_a": 0.008})  # 1.25x
    assert guard.main([cur, "--baseline", base, "--no-history"]) == 0
    assert "IMP" in capsys.readouterr().out
    updated = base + ".updated"
    assert os.path.exists(updated)
    assert json.load(open(updated)) == json.load(open(cur))


def test_update_baseline_in_place(guard, tmp_path):
    base = _bench_json(tmp_path / "base.json", {"b::t_a": 0.010})
    cur = _bench_json(tmp_path / "cur.json", {"b::t_a": 0.008})
    assert guard.main([cur, "--baseline", base, "--no-history",
                       "--update-baseline"]) == 0
    assert json.load(open(base)) == json.load(open(cur))
    assert not os.path.exists(base + ".updated")


def test_history_entry_schema(guard, tmp_path):
    base = _bench_json(tmp_path / "base.json",
                       {"b::t_a": 0.010, "b::t_b": 0.010})
    cur = _bench_json(tmp_path / "cur.json",
                      {"b::t_a": 0.008, "b::t_b": 0.010, "b::t_c": 0.005})
    history = tmp_path / "hist.jsonl"
    assert guard.main([cur, "--baseline", base,
                       "--history", str(history)]) == 0
    (entry,) = [json.loads(line) for line in history.read_text().splitlines()]
    assert entry["datetime"] == "2026-01-01T00:00:00"
    assert entry["commit"] == "deadbeef"
    assert entry["threshold"] == 0.15
    assert entry["improvements"] == ["b::t_a"]
    assert entry["new"] == ["b::t_c"]
    assert entry["regressions"] == []
    assert entry["benches"]["b::t_a"]["ratio"] == pytest.approx(1.25)
    assert entry["benches"]["b::t_c"]["ratio"] is None


def test_history_appends_regression_names(guard, tmp_path):
    base = _bench_json(tmp_path / "base.json", {"b::t_a": 0.010})
    cur = _bench_json(tmp_path / "cur.json", {"b::t_a": 0.020})
    history = tmp_path / "hist.jsonl"
    assert guard.main([cur, "--baseline", base,
                       "--history", str(history)]) == 1
    (entry,) = [json.loads(line) for line in history.read_text().splitlines()]
    assert entry["regressions"] == ["b::t_a"]

def test_history_per_scheduler_head_to_head(guard, tmp_path, capsys):
    base = _bench_json(tmp_path / "base.json",
                       {"b::t_q[heap]": 0.010, "b::t_q[calendar]": 0.010})
    cur = _bench_json(tmp_path / "cur.json",
                      {"b::t_q[heap]": 0.010, "b::t_q[calendar]": 0.009})
    history = tmp_path / "hist.jsonl"
    assert guard.main([cur, "--baseline", base,
                       "--history", str(history)]) == 0
    (entry,) = [json.loads(line) for line in history.read_text().splitlines()]
    assert entry["per_scheduler"] == {"heap": {"b::t_q": 0.010},
                                      "calendar": {"b::t_q": 0.009}}
    out = capsys.readouterr().out
    assert "head-to-head" in out
    assert "1.11x vs heap" in out
