"""Fast-mode smoke tests: every experiment module runs and keeps its shape."""

import pytest

from repro.experiments import (
    EXPERIMENTS,
    fig4_infiniband,
    fig5_multirail,
    fig6_pioman_overhead,
    fig7_overlap,
    fig8_nas,
)


def test_registry_lists_all_figures():
    assert EXPERIMENTS == [
        "fig4_infiniband", "fig5_multirail", "fig6_pioman_overhead",
        "fig7_overlap", "fig8_nas",
    ]


def test_fig4_fast_shape():
    data = fig4_infiniband.run(fast=True)
    lat = data["latency"]
    assert set(lat) == {"MVAPICH2", "Open MPI", "MPICH2:Nem:Nmad:IB",
                        "MPICH2:Nem:Nmad:IB w/AS"}
    i = 0
    assert (lat["MVAPICH2"][i] < lat["Open MPI"][i]
            < lat["MPICH2:Nem:Nmad:IB"][i]
            < lat["MPICH2:Nem:Nmad:IB w/AS"][i])
    assert len(data["bandwidth"]) == 3


def test_fig5_fast_shape():
    data = fig5_multirail.run(fast=True)
    multi = data["latency"]["MPICH2:Nmad:Multi-MX-IB"]
    ib = data["latency"]["MPICH2:Nmad:IB"]
    assert multi[0] == pytest.approx(ib[0], rel=0.01)
    bw = data["bandwidth"]
    assert bw["MPICH2:Nmad:Multi-MX-IB"][-1] > bw["MPICH2:Nmad:IB"][-1]


def test_fig6_fast_shape():
    data = fig6_pioman_overhead.run(fast=True)
    shm = data["shm"]
    assert shm["MPICH2:Nemesis"][0] < shm["Open MPI"][0] \
        < shm["MPICH2:Nemesis:PIOMan"][0]
    mx = data["mx"]
    assert mx["MPICH2:Nem:Nmad:PIOM:MX"][0] > mx["MPICH2:Nem:Nmad:MX"][0]


def test_fig7_fast_shape():
    data = fig7_overlap.run(fast=True)
    rdv = data["rdv"]
    size = data["rdv_sizes"][2]  # 256K
    i = data["rdv_sizes"].index(size)
    assert rdv["MPICH2:Nem:Nmad:PIOMan:IB"][i] < rdv["MPICH2:Nem:NMad:IB"][i]


def test_fig8_fast_shape():
    data = fig8_nas.run(fast=True)
    assert data["class"] == "A"
    tables = data["tables"]
    assert set(data["procs"]) == {8, 16}
    for p in data["procs"]:
        nmad = tables[p]["MPICH2-NMad_NO_PIOMan"]
        ompi = tables[p]["Open_MPI"]
        for i, kernel in enumerate(data["kernels"]):
            assert nmad[i] is not None and nmad[i] > 0
            assert ompi[i] > nmad[i]
    # PIOMan unavailable for MG/LU, as in the paper
    piom = tables[8]["MPICH2-NMad_with_PIOMan"]
    mg_i = data["kernels"].index("mg")
    lu_i = data["kernels"].index("lu")
    assert piom[mg_i] is None and piom[lu_i] is None


def test_fig_main_functions_print(capsys):
    fig4_infiniband.main(fast=True)
    out = capsys.readouterr().out
    assert "Fig 4(a)" in out and "Fig 4(b)" in out and "paper reference" in out
