"""Golden regression suite: every measured number in EXPERIMENTS.md.

Each ``tests/goldens/*.json`` file pins one figure's measured values
(with tolerances) and the shape claims around them (orderings,
constant-overhead differences, parity ratios).  The data is produced
through the campaign runner, so a warm ``.repro-cache`` makes reruns
nearly free; fig8 uses an explicit subset of its points because the
full class-C figure takes minutes.

Check operations (see ``_evaluate``):

``value`` (default)  ``data[path] * scale`` is close to ``value``
``diff``             ``(data[path] - data[path_b]) * scale``
``ratio``            ``data[path] / data[path_b]``
``max``              ``max(data[path]) * scale``
``order``            values at ``paths`` are strictly increasing
"""

from __future__ import annotations

import json
import math
from functools import lru_cache
from pathlib import Path
from typing import Any, Dict, List, Tuple

import pytest

GOLDEN_DIR = Path(__file__).parents[1] / "goldens"
REPO_ROOT = Path(__file__).parents[2]


def _load_goldens() -> Dict[str, Dict[str, Any]]:
    out = {}
    for path in sorted(GOLDEN_DIR.glob("*.json")):
        with open(path) as fh:
            out[path.stem] = json.load(fh)
    return out


GOLDENS = _load_goldens()

CASES: List[Tuple[str, str]] = [
    (stem, check["name"])
    for stem, golden in GOLDENS.items()
    for check in golden["checks"]
]


def _shared_cache():
    """The repo-level result cache (gitignored); None if unwritable."""
    from repro.campaign import ResultCache

    try:
        return ResultCache(str(REPO_ROOT / ".repro-cache"))
    except OSError:
        return None


@lru_cache(maxsize=None)
def _figure_data(stem: str) -> Any:
    """Produce the data a golden's checks index into (once per figure)."""
    golden = GOLDENS[stem]
    if golden["mode"] == "merged":
        from repro.campaign import run_campaign

        report = run_campaign(modules=[golden["module"]],
                              fast=golden["fast"], cache=_shared_cache())
        return report.modules[golden["module"]]
    # points mode: execute only the listed subset of the module's points
    import importlib

    from repro.campaign import campaign_key, execute_point

    mod = importlib.import_module(f"repro.experiments.{golden['module']}")
    wanted = set(golden["point_keys"])
    points = [p for p in mod.points(fast=golden["fast"]) if p.key in wanted]
    missing = wanted - {p.key for p in points}
    assert not missing, f"golden {stem} names unknown point keys: {missing}"
    cache = _shared_cache()
    results = {}
    for point in points:
        key = campaign_key(point.config()) if cache is not None else ""
        hit = cache.get(key) if cache is not None else None
        if hit is not None:
            results[point.key] = hit[0]
            continue
        result = execute_point(point.config())
        results[point.key] = result
        if cache is not None:
            cache.put(key, point.config(), result, 0.0)
    return results


def _resolve(data: Any, path: List[Any]) -> Any:
    cur = data
    for step in path:
        if isinstance(cur, dict) and step not in cur:
            step = int(step)
        cur = cur[step]
    return cur


def _evaluate(data: Any, check: Dict[str, Any]) -> None:
    op = check.get("op", "value")
    if op == "order":
        values = [_resolve(data, p) for p in check["paths"]]
        assert all(a < b for a, b in zip(values, values[1:])), (
            f"{check['name']}: expected strictly increasing, got {values}")
        return
    scale = check.get("scale", 1.0)
    if op == "value":
        got = _resolve(data, check["path"]) * scale
    elif op == "diff":
        got = (_resolve(data, check["path"])
               - _resolve(data, check["path_b"])) * scale
    elif op == "ratio":
        got = _resolve(data, check["path"]) / _resolve(data, check["path_b"])
    elif op == "max":
        got = max(_resolve(data, check["path"])) * scale
    else:  # pragma: no cover - malformed golden
        raise AssertionError(f"unknown golden op {op!r}")
    expected = check["value"]
    rtol = check.get("rtol", 0.0)
    atol = check.get("atol", 0.0)
    assert math.isclose(got, expected, rel_tol=rtol, abs_tol=atol), (
        f"{check['name']}: got {got:.6g}, golden {expected:.6g} "
        f"(rtol={rtol}, atol={atol})")


@pytest.mark.parametrize("stem,name", CASES,
                         ids=[f"{s}:{n}" for s, n in CASES])
def test_golden(stem: str, name: str) -> None:
    golden = GOLDENS[stem]
    check = next(c for c in golden["checks"] if c["name"] == name)
    _evaluate(_figure_data(stem), check)


def test_every_figure_has_a_golden() -> None:
    """Each run_all experiment module must be pinned by a golden file."""
    from repro.campaign.runner import ALL_MODULES

    covered = {g["module"] for g in GOLDENS.values()}
    assert covered == set(ALL_MODULES), (
        f"goldens missing for: {set(ALL_MODULES) - covered}")
