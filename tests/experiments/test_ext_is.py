"""The IS datatype extension experiment."""

from repro.experiments import ext_is_datatypes
from repro.workloads.nas import KERNELS


def test_ext_is_runs_and_shows_datatype_cost():
    data = ext_is_datatypes.run(fast=True)
    strided = data["tables"]["strided (datatypes)"]
    contig = data["tables"]["contiguous"]
    for s, c in zip(strided, contig):
        assert s > c                     # pack/unpack costs time
        assert s < c * 1.5               # but is not the dominant term


def test_temporary_kernel_is_cleaned_up():
    ext_is_datatypes.run(fast=True)
    assert "is-contig" not in KERNELS


def test_main_prints(capsys):
    ext_is_datatypes.main(fast=True)
    out = capsys.readouterr().out
    assert "NAS IS" in out
    assert "pack/unpack" in out
