"""Seed determinism: identical traces for identical (seed, plan) runs."""

from repro import config
from repro.faults import (FaultPlan, RailFaults, canonical_records,
                          fresh_id_space, trace_fingerprint)
from repro.runtime.builder import run_mpi
from repro.simulator import Trace
from repro.workloads.netpipe import pingpong


def _netpipe_trace(spec, seed, faults=None):
    fresh_id_space()
    trace = Trace()
    run_mpi(pingpong(64 * 1024, reps=3, warmup=0), 2, spec,
            cluster=config.xeon_pair(), trace=trace, seed=seed,
            faults=faults)
    return trace


def test_multirail_netpipe_trace_is_reproducible():
    spec = config.mpich2_nmad(rails=("ib", "mx"))
    a = _netpipe_trace(spec, seed=99)
    b = _netpipe_trace(spec, seed=99)
    assert list(canonical_records(a)) == list(canonical_records(b))


def test_faulted_run_is_reproducible():
    spec = config.mpich2_nmad_reliable(rails=("ib", "mx"))
    plan = FaultPlan(name="drop", rails=(
        RailFaults(rail="ib", drop_prob=0.05),
        RailFaults(rail="mx", drop_prob=0.05),
    ))
    a = _netpipe_trace(spec, seed=42, faults=plan)
    b = _netpipe_trace(spec, seed=42, faults=plan)
    assert list(canonical_records(a)) == list(canonical_records(b))
    assert "reliab.retransmit" in a.categories_seen()  # faults really hit


def test_different_seed_diverges_under_faults():
    spec = config.mpich2_nmad_reliable(rails=("ib", "mx"))
    plan = FaultPlan(name="drop", rails=(
        RailFaults(rail="ib", drop_prob=0.1),
        RailFaults(rail="mx", drop_prob=0.1),
    ))
    a = _netpipe_trace(spec, seed=1, faults=plan)
    b = _netpipe_trace(spec, seed=2, faults=plan)
    assert trace_fingerprint(a) != trace_fingerprint(b)


def test_fingerprint_is_stable_hash():
    spec = config.mpich2_nmad(rails=("ib", "mx"))
    a = _netpipe_trace(spec, seed=7)
    f1, f2 = trace_fingerprint(a), trace_fingerprint(a)
    assert f1 == f2
    assert len(f1) == 64 and int(f1, 16) >= 0  # sha256 hex
