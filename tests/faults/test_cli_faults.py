"""The ``repro faults`` CLI subcommand."""

import json

import pytest

from repro.cli import main


def test_faults_subcommand_writes_valid_json(tmp_path, capsys):
    out = tmp_path / "chaos.json"
    rc = main(["faults", "--plan", "drop", "--messages", "4",
               "--size", "64K", "--seed", "5", "--drop-prob", "0.05",
               "--out", str(out)])
    assert rc == 0
    text = capsys.readouterr().out
    assert "exactly-once       : OK" in text
    payload = json.loads(out.read_text())
    assert payload["exactly_once"] is True
    assert payload["plan"]["name"] == "drop"
    assert payload["delivered"] == payload["expected"] == 4
    assert payload["fingerprint"]
    assert "faulted" in payload["metrics"]


def test_faults_clean_plan_reports_no_faults(capsys):
    rc = main(["faults", "--plan", "clean", "--messages", "2",
               "--size", "4K"])
    assert rc == 0
    assert "0 duplicates suppressed" in capsys.readouterr().out


def test_faults_rejects_unreliable_stack():
    with pytest.raises(SystemExit):
        main(["faults", "--stack", "mpich2_nmad"])


def test_faults_rejects_unknown_stack():
    with pytest.raises(SystemExit):
        main(["faults", "--stack", "nope"])
