"""Acceptance: seeded drop + mid-transfer rail outage on the reliable stack.

One chaos scenario, inspected from every angle: exactly-once delivery,
rail death and recovery trace evidence, no data traffic on the dead rail
while it is down, traffic returning after recovery, and determinism of
the whole faulted run under a fixed seed.
"""

from types import SimpleNamespace

import pytest

from repro import config
from repro.faults import fresh_id_space, named_plan, trace_fingerprint
from repro.faults.report import stream_program
from repro.observability import attach_metrics
from repro.runtime.builder import run_mpi
from repro.simulator import Trace

SEED = 1234
MESSAGES = 16
SIZE = 512 * 1024


def _faulted_run(plan, spec, trace=None):
    fresh_id_space()
    return run_mpi(stream_program(MESSAGES, SIZE, window=4), 2, spec,
                   cluster=config.xeon_pair(), trace=trace, seed=SEED,
                   faults=plan)


@pytest.fixture(scope="module")
def chaos():
    spec = config.mpich2_nmad_reliable(rails=("ib", "mx"))
    fresh_id_space()
    clean = run_mpi(stream_program(MESSAGES, SIZE, window=4), 2, spec,
                    cluster=config.xeon_pair(), seed=SEED)
    clean_elapsed = max(r["t_end"] if isinstance(r, dict) else r
                        for r in clean.rank_results)
    plan = named_plan("drop+outage", rails=spec.rails, t_hint=clean_elapsed,
                      drop_prob=0.01)
    trace = Trace()
    metrics = attach_metrics(trace)
    result = _faulted_run(plan, spec, trace=trace)
    recv = next(r for r in result.rank_results if isinstance(r, dict))
    return SimpleNamespace(spec=spec, plan=plan, trace=trace,
                           metrics=metrics, clean_elapsed=clean_elapsed,
                           received=recv["received"],
                           faulted_elapsed=recv["t_end"])


def test_exactly_once_in_order(chaos):
    assert chaos.received == [("msg", i) for i in range(MESSAGES)]


def test_rail_dies_and_recovers(chaos):
    downs = [r for r in chaos.trace if r.category == "reliab.rail_down"]
    ups = [r for r in chaos.trace if r.category == "reliab.rail_up"]
    assert len(downs) == 1 and downs[0].data["rail"] == "mx"
    assert len(ups) == 1 and ups[0].data["rail"] == "mx"
    assert downs[0].time < ups[0].time
    assert ups[0].data["downtime"] > 0


def test_no_data_on_dead_rail(chaos):
    """Between death and recovery mx carries probes/acks, never payload."""
    down = next(r.time for r in chaos.trace
                if r.category == "reliab.rail_down")
    up = next(r.time for r in chaos.trace if r.category == "reliab.rail_up")
    during = [r for r in chaos.trace
              if r.category == "nic.tx" and r.data["rail"] == "mx"
              and down < r.time < up]
    assert all(r.data["kind"] != "nmad" for r in during)
    # the health monitor *is* probing it meanwhile
    assert any(r.data["kind"] == "nm_probe" for r in during)


def test_traffic_returns_after_recovery(chaos):
    up = next(r.time for r in chaos.trace if r.category == "reliab.rail_up")
    after = [r for r in chaos.trace
             if r.category == "nic.tx" and r.data["rail"] == "mx"
             and r.time > up and r.data["kind"] == "nmad"]
    assert after, "recovered rail never carried payload again"


def test_orphans_failed_over_to_surviving_rail(chaos):
    from repro.faults.report import _counter_total
    assert _counter_total(chaos.metrics, "reliab.failovers") >= 1
    assert _counter_total(chaos.metrics, "reliab.retransmits") >= 1
    assert any(r.category == "reliab.failover" for r in chaos.trace)


def test_throughput_degrades_then_total_time_bounded(chaos):
    assert chaos.faulted_elapsed > chaos.clean_elapsed
    # losing the slower of two rails must not cost more than ~the whole
    # transfer again; this bounds pathological retry storms
    assert chaos.faulted_elapsed < 2.5 * chaos.clean_elapsed
    assert chaos.metrics.degraded_bandwidth_fraction() > 0


def test_faulted_run_is_deterministic(chaos):
    trace2 = Trace()
    _faulted_run(chaos.plan, chaos.spec, trace=trace2)
    assert trace_fingerprint(trace2) == trace_fingerprint(chaos.trace)
