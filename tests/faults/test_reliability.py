"""Ack/retransmit and rendezvous-retry semantics under lossy rails."""

import pytest

from repro import config
from repro.faults import FaultPlan, RailFaults, fresh_id_space, named_plan
from repro.faults.report import stream_program
from repro.nmad.reliability import ReliabilityParams
from repro.runtime.builder import run_mpi
from repro.simulator import Trace


def _run(plan, messages=8, size=64 * 1024, seed=5, spec=None, trace=None):
    spec = spec or config.mpich2_nmad_reliable()
    fresh_id_space()
    res = run_mpi(stream_program(messages, size), 2, spec,
                  cluster=config.xeon_pair(), seed=seed, faults=plan,
                  trace=trace)
    recv = next(r for r in res.rank_results if isinstance(r, dict))
    return recv["received"]


def test_clean_run_with_reliability_is_exact():
    received = _run(None, messages=6)
    assert received == [("msg", i) for i in range(6)]


def test_drops_are_recovered_by_retransmission():
    plan = FaultPlan(name="drop", rails=(
        RailFaults(rail="ib", drop_prob=0.05),
        RailFaults(rail="mx", drop_prob=0.05),
    ))
    trace = Trace()
    received = _run(plan, messages=10, trace=trace)
    assert received == [("msg", i) for i in range(10)]
    cats = trace.categories_seen()
    assert "reliab.retransmit" in cats
    assert "reliab.ack" in cats


def test_corruption_is_recovered():
    # corrupt frames reach the NIC but fail CRC there; retransmission
    # must still deliver every payload exactly once
    plan = FaultPlan(name="corrupt", rails=(
        RailFaults(rail="ib", corrupt_prob=0.05),
        RailFaults(rail="mx", corrupt_prob=0.05),
    ))
    trace = Trace()
    received = _run(plan, messages=10, trace=trace)
    assert received == [("msg", i) for i in range(10)]
    assert "fault.corrupt" in trace.categories_seen()


def test_heavy_loss_still_exactly_once():
    plan = FaultPlan(name="drop", rails=(
        RailFaults(rail="ib", drop_prob=0.2),
        RailFaults(rail="mx", drop_prob=0.2),
    ))
    trace = Trace()
    received = _run(plan, messages=6, size=256 * 1024, trace=trace)
    assert received == [("msg", i) for i in range(6)]
    # rendezvous traffic under 20% loss exercises dedup or rdv retries
    assert "reliab.retransmit" in trace.categories_seen()


def test_eager_sized_messages_survive_loss():
    plan = FaultPlan(name="drop", rails=(
        RailFaults(rail="ib", drop_prob=0.1),
        RailFaults(rail="mx", drop_prob=0.1),
    ))
    received = _run(plan, messages=20, size=1024)
    assert received == [("msg", i) for i in range(20)]


def test_without_reliability_loss_deadlocks():
    # the guarantee is *loud* failure: a lost frame without the
    # reliability layer must abort the run, never silently drop a message
    plan = FaultPlan(name="outage", rails=(
        RailFaults(rail="ib", drop_prob=0.5),
        RailFaults(rail="mx", drop_prob=0.5),
    ))
    spec = config.mpich2_nmad(rails=("ib", "mx"))
    assert spec.reliability is None
    with pytest.raises(RuntimeError):
        _run(plan, messages=6, spec=spec, seed=3)


def test_reliability_params_defaults():
    p = ReliabilityParams()
    assert p.backoff > 1.0
    assert p.dead_after >= 1
    assert 0 < p.ack_size < 128
    assert p.rdv_timeout > 0


def test_named_plan_scales_to_hint():
    plan = named_plan("drop+outage", rails=("ib", "mx"), t_hint=2e-3)
    mx = plan.for_rail("mx")
    assert mx.outages[0].start == pytest.approx(0.6e-3)
    assert mx.outages[0].end == pytest.approx(1.2e-3)
