"""Fault-plan construction, validation, and serialization."""

import pytest

from repro.faults import (
    PLAN_NAMES,
    FaultPlan,
    OutageWindow,
    RailFaults,
    StallWindow,
    named_plan,
)


def test_window_covers_half_open():
    w = OutageWindow(1.0, 2.0)
    assert not w.covers(0.5)
    assert w.covers(1.0)
    assert w.covers(1.999)
    assert not w.covers(2.0)


def test_bad_windows_rejected():
    with pytest.raises(ValueError):
        OutageWindow(2.0, 1.0)
    with pytest.raises(ValueError):
        OutageWindow(-1.0, 1.0)
    with pytest.raises(ValueError):
        StallWindow(0.0, 1.0, factor=0.5)


def test_rail_faults_probability_validation():
    with pytest.raises(ValueError):
        RailFaults(rail="ib", drop_prob=1.0)
    with pytest.raises(ValueError):
        RailFaults(rail="ib", drop_prob=-0.1)
    with pytest.raises(ValueError):
        RailFaults(rail="ib", drop_prob=0.6, corrupt_prob=0.6)
    rf = RailFaults(rail="ib", drop_prob=0.1, corrupt_prob=0.1)
    assert rf.stochastic
    assert not RailFaults(rail="ib").stochastic


def test_plan_rejects_duplicate_rails():
    with pytest.raises(ValueError):
        FaultPlan(name="x", rails=(RailFaults(rail="ib"),
                                   RailFaults(rail="ib")))


def test_stall_factor_lookup():
    rf = RailFaults(rail="mx", stalls=(StallWindow(1.0, 2.0, 3.0),))
    assert rf.stall_factor(0.5) == 1.0
    assert rf.stall_factor(1.5) == 3.0
    assert rf.in_outage(1.5) is False


def test_roundtrip_serialization():
    plan = named_plan("drop+outage", rails=("ib", "mx"), t_hint=1e-3)
    again = FaultPlan.from_dict(plan.to_dict())
    assert again == plan


def test_named_plans_shape():
    for name in PLAN_NAMES:
        plan = named_plan(name, rails=("ib", "mx"), t_hint=1e-3)
        assert plan.name == name
        if name == "clean":
            assert plan.empty
    outage = named_plan("outage", rails=("ib", "mx"), t_hint=1e-3)
    # the last (slower) rail is the victim
    assert outage.for_rail("mx") is not None
    assert outage.for_rail("ib") is None
    assert outage.for_rail("mx").outages[0].start == pytest.approx(0.3e-3)
    stall = named_plan("stall", rails=("ib", "mx"))
    assert stall.for_rail("ib").stalls[0].factor == 4.0


def test_unknown_plan_name_rejected():
    with pytest.raises(ValueError):
        named_plan("nope")
    with pytest.raises(ValueError):
        named_plan("drop", rails=())
