"""FaultInjector behaviour against raw NIC/Fabric hardware."""

from repro.faults import FaultInjector, FaultPlan, OutageWindow, RailFaults, StallWindow
from repro.hardware import presets as hw
from repro.hardware.nic import Fabric, Frame
from repro.simulator import Simulator


def _rig(plan, seed=7):
    sim = Simulator()
    fabric = Fabric(sim, hw.IB_CONNECTX)
    a, b = fabric.attach(0), fabric.attach(1)
    injector = FaultInjector(sim, plan, seed=seed).attach([fabric])
    return sim, fabric, a, b, injector


def _blast(sim, src_nic, n=200, size=4096):
    for _ in range(n):
        src_nic.post_send(Frame(src=0, dst=1, size=size))
    sim.run()


def test_clean_plan_delivers_everything():
    sim, _fabric, a, b, inj = _rig(FaultPlan(name="clean"))
    _blast(sim, a, n=50)
    assert b.rx_frames == 50
    assert inj.dropped == inj.corrupted == inj.outage_dropped == 0


def test_random_drop_is_seed_deterministic():
    plan = FaultPlan(name="drop", rails=(
        RailFaults(rail="ib", drop_prob=0.3),))
    results = []
    for _ in range(2):
        sim, _fabric, a, b, inj = _rig(plan, seed=11)
        _blast(sim, a)
        results.append((b.rx_frames, inj.dropped))
    assert results[0] == results[1]
    assert 0 < results[0][1] < 200  # some but not all dropped

    sim, _fabric, a, b, inj = _rig(plan, seed=12)
    _blast(sim, a)
    assert (b.rx_frames, inj.dropped) != results[0]


def test_outage_window_drops_without_rng():
    # every frame arrives inside the window -> all dropped, zero draws
    plan = FaultPlan(name="outage", rails=(
        RailFaults(rail="ib", outages=(OutageWindow(0.0, 1.0),)),))
    sim, _fabric, a, b, inj = _rig(plan)
    _blast(sim, a, n=20)
    assert b.rx_frames == 0
    assert inj.outage_dropped == 20
    assert inj.dropped == 0


def test_outage_window_ends():
    plan = FaultPlan(name="outage", rails=(
        RailFaults(rail="ib", outages=(OutageWindow(0.0, 1e-9),)),))
    sim, _fabric, a, b, _inj = _rig(plan)
    _blast(sim, a, n=5)  # wire latency alone puts arrivals past the window
    assert b.rx_frames == 5


def test_corrupt_frames_are_delivered_marked():
    plan = FaultPlan(name="corrupt", rails=(
        RailFaults(rail="ib", corrupt_prob=0.5),))
    sim, fabric, a, b, inj = _rig(plan)
    corrupt_seen = []
    b.rx_notify = lambda fr: corrupt_seen.append(fr.corrupt)
    _blast(sim, a, n=100)
    assert b.rx_frames == 100  # corruption does not drop at the fabric
    assert inj.corrupted > 0
    assert sum(corrupt_seen) == inj.corrupted


def test_stall_window_slows_injection():
    fast = FaultPlan(name="clean")
    slow = FaultPlan(name="stall", rails=(
        RailFaults(rail="ib", stalls=(StallWindow(0.0, 1.0, factor=5.0),)),))
    times = []
    for plan in (fast, slow):
        sim, _fabric, a, b, inj = _rig(plan)
        _blast(sim, a, n=10, size=1 << 20)
        times.append(sim.now)
    assert times[1] > times[0] * 3  # 5x injection dominates the run


def test_unlisted_rail_untouched():
    plan = FaultPlan(name="drop", rails=(
        RailFaults(rail="mx", drop_prob=0.9),))
    sim, _fabric, a, b, inj = _rig(plan)
    _blast(sim, a, n=30)
    assert b.rx_frames == 30
    assert inj.dropped == 0
