"""Sub-communicators (split/dup) and persistent requests."""

import pytest

from repro import config
from repro.mpi import ANY_SOURCE
from repro.runtime import run_mpi


def run_p(program, nprocs, spec=None):
    return run_mpi(program, nprocs, spec or config.mpich2_nmad(),
                   cluster=config.ClusterSpec(n_nodes=nprocs))


# ---------------------------------------------------------------------------
# split / dup
# ---------------------------------------------------------------------------

def test_split_into_rows():
    """A 2x3 grid split by row: each sub-communicator has its own ranks."""
    def program(comm):
        row = comm.rank // 3
        sub = yield from comm.split(color=row)
        total = yield from sub.allreduce(8, value=comm.rank)
        return (row, sub.rank, sub.size, total)

    r = run_p(program, 6)
    for world_rank, (row, sub_rank, sub_size, total) in enumerate(r.rank_results):
        assert row == world_rank // 3
        assert sub_rank == world_rank % 3
        assert sub_size == 3
        assert total == sum(range(row * 3, row * 3 + 3))


def test_split_key_reorders_ranks():
    def program(comm):
        sub = yield from comm.split(color=0, key=-comm.rank)  # reversed
        return sub.rank

    r = run_p(program, 4)
    assert r.rank_results == [3, 2, 1, 0]


def test_split_with_none_color_opts_out():
    def program(comm):
        color = 0 if comm.rank < 2 else None
        sub = yield from comm.split(color=color)
        if sub is None:
            return "out"
        total = yield from sub.allreduce(8, value=1)
        return total

    r = run_p(program, 4)
    assert r.rank_results == [2, 2, "out", "out"]


def test_split_traffic_isolated_from_parent():
    """Same tag on parent and child must not cross-match."""
    def program(comm):
        sub = yield from comm.split(color=0)
        if comm.rank == 0:
            yield from comm.send(1, tag="t", size=32, data="world")
            yield from sub.send(1, tag="t", size=32, data="sub")
            return None
        if comm.rank == 1:
            sub_msg = yield from sub.recv(src=0, tag="t")
            world_msg = yield from comm.recv(src=0, tag="t")
            return (world_msg.data, sub_msg.data)

    r = run_p(program, 2)
    assert r.result(1) == ("world", "sub")


def test_nested_split():
    def program(comm):
        half = yield from comm.split(color=comm.rank // 4)
        quarter = yield from half.split(color=half.rank // 2)
        total = yield from quarter.allreduce(8, value=comm.rank)
        return (quarter.size, total)

    r = run_p(program, 8)
    expected = [(2, 1), (2, 1), (2, 5), (2, 5), (2, 9), (2, 9), (2, 13), (2, 13)]
    assert r.rank_results == expected


def test_dup_isolates_contexts():
    def program(comm):
        dup = yield from comm.dup()
        assert dup.size == comm.size and dup.rank == comm.rank
        if comm.rank == 0:
            yield from dup.send(1, tag=9, size=16, data="dup")
            yield from comm.send(1, tag=9, size=16, data="orig")
            return None
        a = yield from comm.recv(src=0, tag=9)
        b = yield from dup.recv(src=0, tag=9)
        return (a.data, b.data)

    r = run_p(program, 2)
    assert r.result(1) == ("orig", "dup")


def test_sub_comm_anysource_and_probe():
    def program(comm):
        sub = yield from comm.split(color=comm.rank % 2)
        if sub.rank == 0:
            msg = yield from sub.recv(src=ANY_SOURCE, tag="w")
            return (msg.source, msg.data)
        yield from sub.send(0, tag="w", size=32, data=f"r{comm.rank}")
        return None

    r = run_p(program, 4)
    assert r.result(0) == (1, "r2")   # sub rank 1 of color-0 comm = world 2
    assert r.result(1) == (1, "r3")


def test_message_source_is_communicator_local():
    def program(comm):
        sub = yield from comm.split(color=comm.rank // 2)
        if sub.rank == 1:
            yield from sub.send(0, tag=0, size=8, data="x")
            return None
        msg = yield from sub.recv(src=1, tag=0)
        return msg.source

    r = run_p(program, 4)
    assert r.result(0) == 1   # local rank, not world rank 1
    assert r.result(2) == 1   # local rank, not world rank 3


# ---------------------------------------------------------------------------
# persistent requests
# ---------------------------------------------------------------------------

def test_persistent_ring_reused_across_iterations():
    iters = 5

    def program(comm):
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        psend = comm.send_init(right, tag="ring", size=128)
        precv = comm.recv_init(src=left, tag="ring")
        got = []
        for it in range(iters):
            psend.data = (comm.rank, it)
            yield from comm.startall([precv, psend])
            msg = yield from comm.wait(precv)
            yield from psend.wait()
            got.append(msg.data)
        assert psend.starts == iters and precv.starts == iters
        return got

    r = run_p(program, 4)
    for rank, got in enumerate(r.rank_results):
        left = (rank - 1) % 4
        assert got == [(left, it) for it in range(iters)]


def test_persistent_start_while_active_rejected():
    def program(comm):
        if comm.rank == 0:
            precv = comm.recv_init(src=1, tag=0)
            yield from precv.start()
            yield from precv.start()   # active and incomplete
        else:
            yield from comm.compute(1e-3)

    with pytest.raises(RuntimeError, match="while active"):
        run_p(program, 2)


def test_persistent_wait_before_start_rejected():
    def program(comm):
        preq = comm.send_init(1 - comm.rank, tag=0, size=8)
        yield from preq.wait()

    with pytest.raises(RuntimeError, match="before start"):
        run_p(program, 2)


def test_persistent_kind_validated():
    def program(comm):
        from repro.mpi.api import PersistentRequest
        PersistentRequest(comm, "bad", 0, 0, 0, None, None)
        yield from comm.barrier()

    with pytest.raises(ValueError, match="bad persistent request kind"):
        run_p(program, 2)
