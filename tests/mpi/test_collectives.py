"""Collective algorithms: correctness of values and synchronization."""

import pytest

from repro import config
from repro.runtime import run_mpi


def run_coll(program, nprocs, spec=None):
    spec = spec or config.mpich2_nmad()
    cluster = config.ClusterSpec(n_nodes=nprocs)
    return run_mpi(program, nprocs, spec, cluster=cluster)


PROC_COUNTS = [1, 2, 3, 4, 5, 8]


@pytest.mark.parametrize("p", PROC_COUNTS)
def test_barrier_synchronizes(p):
    def program(comm):
        # stagger arrival; everyone must leave after the last arrival
        yield from comm.compute((comm.rank + 1) * 10e-6)
        yield from comm.barrier()
        return comm.sim.now

    r = run_coll(program, p)
    latest_arrival = p * 10e-6
    for t in r.rank_results:
        assert t >= latest_arrival


@pytest.mark.parametrize("p", PROC_COUNTS)
def test_bcast_delivers_root_value(p):
    def program(comm):
        value = {"n": 42} if comm.rank == 0 else None
        out = yield from comm.bcast(1024, data=value, root=0)
        return out

    r = run_coll(program, p)
    assert all(v == {"n": 42} for v in r.rank_results)


@pytest.mark.parametrize("p", PROC_COUNTS)
def test_bcast_nonzero_root(p):
    root = p - 1

    def program(comm):
        value = "rooted" if comm.rank == root else None
        out = yield from comm.bcast(64, data=value, root=root)
        return out

    r = run_coll(program, p)
    assert all(v == "rooted" for v in r.rank_results)


@pytest.mark.parametrize("p", PROC_COUNTS)
def test_reduce_sum(p):
    def program(comm):
        out = yield from comm.reduce(8, value=comm.rank + 1, root=0)
        return out

    r = run_coll(program, p)
    assert r.result(0) == p * (p + 1) // 2
    for other in r.rank_results[1:]:
        assert other is None


@pytest.mark.parametrize("p", PROC_COUNTS)
def test_allreduce_sum(p):
    def program(comm):
        out = yield from comm.allreduce(8, value=comm.rank + 1)
        return out

    r = run_coll(program, p)
    assert r.rank_results == [p * (p + 1) // 2] * p


def test_allreduce_custom_op():
    def program(comm):
        out = yield from comm.allreduce(8, value=comm.rank + 1,
                                        op=lambda a, b: max(a, b))
        return out

    r = run_coll(program, 4)
    assert r.rank_results == [4, 4, 4, 4]


@pytest.mark.parametrize("p", PROC_COUNTS)
def test_gather_collects_by_rank(p):
    def program(comm):
        out = yield from comm.gather(16, value=f"r{comm.rank}", root=0)
        return out

    r = run_coll(program, p)
    assert r.result(0) == [f"r{i}" for i in range(p)]


@pytest.mark.parametrize("p", PROC_COUNTS)
def test_scatter_distributes_by_rank(p):
    def program(comm):
        values = [f"v{i}" for i in range(p)] if comm.rank == 0 else None
        out = yield from comm.scatter(16, values=values, root=0)
        return out

    r = run_coll(program, p)
    assert r.rank_results == [f"v{i}" for i in range(p)]


@pytest.mark.parametrize("p", PROC_COUNTS)
def test_allgather_everyone_sees_everything(p):
    def program(comm):
        out = yield from comm.allgather(16, value=comm.rank * 10)
        return out

    r = run_coll(program, p)
    expected = [i * 10 for i in range(p)]
    assert all(v == expected for v in r.rank_results)


@pytest.mark.parametrize("p", PROC_COUNTS)
def test_alltoall_transposes(p):
    def program(comm):
        values = [f"{comm.rank}->{d}" for d in range(p)]
        out = yield from comm.alltoall(32, values=values)
        return out

    r = run_coll(program, p)
    for rank, got in enumerate(r.rank_results):
        assert got == [f"{s}->{rank}" for s in range(p)]


def test_collectives_mixed_node_placement():
    """Collectives crossing both shm and network paths."""
    def program(comm):
        out = yield from comm.allreduce(8, value=1)
        yield from comm.barrier()
        out2 = yield from comm.allgather(64, value=comm.rank)
        return (out, out2)

    r = run_mpi(program, 8, config.mpich2_nmad(),
                cluster=config.ClusterSpec(n_nodes=2), ranks_per_node=4)
    for total, gathered in r.rank_results:
        assert total == 8
        assert gathered == list(range(8))


def test_consecutive_collectives_do_not_cross_match():
    def program(comm):
        a = yield from comm.allreduce(8, value=1)
        b = yield from comm.allreduce(8, value=10)
        c = yield from comm.allreduce(8, value=100)
        return (a, b, c)

    r = run_coll(program, 4)
    assert r.rank_results == [(4, 40, 400)] * 4


def test_collectives_under_pioman():
    def program(comm):
        out = yield from comm.allreduce(8, value=comm.rank)
        return out

    r = run_coll(program, 4, spec=config.mpich2_nmad_pioman())
    assert r.rank_results == [6, 6, 6, 6]


def test_collectives_on_native_stack():
    def program(comm):
        out = yield from comm.allreduce(8, value=comm.rank)
        values = [comm.rank * p for p in range(comm.size)]
        out2 = yield from comm.alltoall(128, values=values)
        return (out, out2)

    r = run_coll(program, 4, spec=config.mvapich2())
    for rank, (total, got) in enumerate(r.rank_results):
        assert total == 6
        assert got == [s * rank for s in range(4)]
