"""Edge cases for the classic collectives: odd p, zero-size v-variants.

The base suite in ``test_collectives.py`` sweeps the common process
counts; this file pins the awkward corners — every odd (non-power-of
two) count for the log-structured algorithms, the p=1 degenerate forms,
and v-variants where some ranks contribute zero bytes.
"""

from __future__ import annotations

import pytest

from repro import config
from repro.runtime import run_mpi

ODD_PROCS = [1, 3, 5, 7]


def run_coll(program, nprocs):
    return run_mpi(program, nprocs, config.mpich2_nmad(),
                   cluster=config.ClusterSpec(n_nodes=nprocs))


@pytest.mark.parametrize("p", ODD_PROCS)
def test_barrier_odd_counts(p):
    def program(comm):
        yield from comm.compute((p - comm.rank) * 5e-6)
        yield from comm.barrier()
        return comm.sim.now

    r = run_coll(program, p)
    latest = p * 5e-6
    assert all(t >= latest for t in r.rank_results)


@pytest.mark.parametrize("p", ODD_PROCS)
def test_allreduce_odd_counts(p):
    def program(comm):
        out = yield from comm.allreduce(64, value=comm.rank + 1,
                                        op=lambda a, b: a * b)
        return out

    r = run_coll(program, p)
    expect = 1
    for k in range(1, p + 1):
        expect *= k
    assert r.rank_results == [expect] * p


@pytest.mark.parametrize("p", ODD_PROCS)
def test_scan_inclusive_prefix(p):
    def program(comm):
        out = yield from comm.scan(64, value=[comm.rank],
                                   op=lambda a, b: a + b)
        return out

    r = run_coll(program, p)
    for rank, got in enumerate(r.rank_results):
        assert got == list(range(rank + 1))


@pytest.mark.parametrize("p", ODD_PROCS)
def test_exscan_exclusive_prefix(p):
    def program(comm):
        out = yield from comm.exscan(64, value=[comm.rank],
                                     op=lambda a, b: a + b)
        return out

    r = run_coll(program, p)
    assert r.rank_results[0] is None      # undefined on rank 0
    for rank in range(1, p):
        assert r.rank_results[rank] == list(range(rank))


@pytest.mark.parametrize("p", ODD_PROCS)
def test_scan_exscan_agree(p):
    """scan(r) == op(exscan(r), v_r) for every rank beyond 0."""

    def program(comm):
        inc = yield from comm.scan(16, value=comm.rank + 1)
        exc = yield from comm.exscan(16, value=comm.rank + 1)
        return inc, exc

    r = run_coll(program, p)
    for rank, (inc, exc) in enumerate(r.rank_results):
        if rank == 0:
            assert exc is None
        else:
            assert inc == exc + (rank + 1)


@pytest.mark.parametrize("p", [1, 3, 5])
def test_gatherv_zero_size_contributions(p):
    """Even ranks contribute real bytes, odd ranks contribute nothing."""

    def program(comm):
        size = 128 if comm.rank % 2 == 0 else 0
        data = f"chunk{comm.rank}" if size else None
        out = yield from comm.gatherv(size, value=data, root=0)
        return out

    r = run_coll(program, p)
    got = r.rank_results[0]
    assert len(got) == p
    for rank, (size, data) in enumerate(got):
        if rank % 2 == 0:
            assert (size, data) == (128, f"chunk{rank}")
        else:
            assert (size, data) == (0, None)
    assert all(res is None for res in r.rank_results[1:])


@pytest.mark.parametrize("p", [1, 3, 5])
def test_scatterv_zero_size_slots(p):
    def program(comm):
        sizes = values = None
        if comm.rank == 0:
            sizes = [64 if d % 2 == 0 else 0 for d in range(p)]
            values = [f"slot{d}" if d % 2 == 0 else None for d in range(p)]
        out = yield from comm.scatterv(sizes=sizes, values=values, root=0)
        return out

    r = run_coll(program, p)
    for rank, got in enumerate(r.rank_results):
        assert got == (f"slot{rank}" if rank % 2 == 0 else None)


@pytest.mark.parametrize("p", [1, 3, 5, 7])
def test_alltoallv_zero_size_lanes(p):
    """Rank r ships data only to ranks below it; the rest are empty."""

    def program(comm):
        sizes = [32 if dst < comm.rank else 0 for dst in range(p)]
        values = [(comm.rank, dst) if dst < comm.rank else None
                  for dst in range(p)]
        out = yield from comm.alltoallv(sizes=sizes, values=values)
        return out

    r = run_coll(program, p)
    for rank, got in enumerate(r.rank_results):
        assert len(got) == p
        for src in range(p):
            if rank < src:
                assert got[src] == (src, rank)
            else:
                assert got[src] is None


def test_reduce_scatter_p1_and_odd():
    for p in (1, 3, 5):
        def program(comm):
            values = [10 * comm.rank + dst for dst in range(comm.size)]
            out = yield from comm.reduce_scatter(32, values=values,
                                                 op=lambda a, b: a + b)
            return out

        r = run_coll(program, p)
        for rank, got in enumerate(r.rank_results):
            assert got == sum(10 * src + rank for src in range(p))
