"""Synchronous sends (MPI_Ssend/Issend): completion implies matching."""

import pytest

from repro import config
from repro.runtime import run_mpi


def run2(program, spec=None, intra=False, nprocs=2):
    spec = spec or config.mpich2_nmad()
    if intra:
        return run_mpi(program, nprocs, spec,
                       cluster=config.ClusterSpec(n_nodes=1),
                       ranks_per_node=nprocs)
    return run_mpi(program, nprocs, spec, cluster=config.xeon_pair())


SPECS = {
    "direct": config.mpich2_nmad,
    "netmod": config.mpich2_nmad_netmod,
    "pioman": config.mpich2_nmad_pioman,
    "native": config.mvapich2,
}


@pytest.mark.parametrize("flavor", list(SPECS))
def test_ssend_delivers_data(flavor):
    def program(comm):
        if comm.rank == 0:
            yield from comm.ssend(1, tag=0, size=128, data="sync")
            return None
        msg = yield from comm.recv(src=0, tag=0)
        return msg.data

    r = run2(program, spec=SPECS[flavor]())
    assert r.result(1) == "sync"


@pytest.mark.parametrize("flavor", ["direct", "netmod", "native"])
def test_ssend_blocks_until_receiver_posts(flavor):
    """The defining semantics: a small ssend cannot complete before the
    matching receive is posted, unlike a buffered eager send."""
    delay = 200e-6

    def program(comm):
        if comm.rank == 0:
            t0 = comm.sim.now
            yield from comm.ssend(1, tag="sync", size=64)
            return comm.sim.now - t0
        yield from comm.compute(delay)
        yield from comm.recv(src=0, tag="sync")
        return None

    r = run2(program, spec=SPECS[flavor]())
    assert r.result(0) >= delay * 0.95


def test_plain_send_does_not_block_on_late_receiver():
    delay = 200e-6

    def program(comm):
        if comm.rank == 0:
            t0 = comm.sim.now
            yield from comm.send(1, tag="eager", size=64)
            return comm.sim.now - t0
        yield from comm.compute(delay)
        yield from comm.recv(src=0, tag="eager")
        return None

    r = run2(program)
    assert r.result(0) < delay / 2  # buffered eager completes locally


def test_ssend_intra_node_blocks_until_match():
    delay = 150e-6

    def program(comm):
        if comm.rank == 0:
            t0 = comm.sim.now
            yield from comm.ssend(1, tag="ls", size=64, data="x")
            return comm.sim.now - t0
        yield from comm.compute(delay)
        msg = yield from comm.recv(src=0, tag="ls")
        return msg.data

    r = run2(program, intra=True)
    assert r.result(0) >= delay * 0.95
    assert r.result(1) == "x"


def test_issend_overlappable():
    """Issend returns immediately; the wait carries the sync semantics."""
    def program(comm):
        if comm.rank == 0:
            req = yield from comm.issend(1, tag="is", size=64)
            assert not req.complete
            yield from comm.compute(10e-6)
            yield from comm.wait(req)
            return comm.sim.now
        yield from comm.recv(src=0, tag="is")
        return None

    r = run2(program)
    assert r.result(0) > 0


def test_ssend_large_message_equivalent_to_send():
    """Above the eager threshold both use rendezvous anyway."""
    def make(sync):
        def program(comm):
            t0 = comm.sim.now
            if comm.rank == 0:
                if sync:
                    yield from comm.ssend(1, tag=0, size=1 << 20)
                else:
                    yield from comm.send(1, tag=0, size=1 << 20)
            else:
                yield from comm.recv(src=0, tag=0)
            return comm.sim.now - t0
        return program

    t_send = run2(make(False)).result(1)
    t_ssend = run2(make(True)).result(1)
    assert t_ssend == pytest.approx(t_send, rel=0.01)
