"""Communicator API: requests, self-messaging, compute, datatypes."""

import pytest

from repro import config
from repro.mpi.datatypes import CONTIGUOUS, vector
from repro.runtime import run_mpi


def run1(program):
    return run_mpi(program, 1, config.mpich2_nmad(),
                   cluster=config.ClusterSpec(n_nodes=1))


def run2(program, spec=None):
    return run_mpi(program, 2, spec or config.mpich2_nmad(),
                   cluster=config.xeon_pair())


def test_rank_and_size():
    def program(comm):
        yield from comm.compute(0)
        return (comm.rank, comm.size)

    r = run_mpi(program, 3, config.mpich2_nmad(),
                cluster=config.ClusterSpec(n_nodes=3))
    assert r.rank_results == [(0, 3), (1, 3), (2, 3)]


def test_send_to_invalid_rank_rejected():
    def program(comm):
        yield from comm.send(5, tag=0, size=1)

    with pytest.raises(ValueError, match="out of range"):
        run2(program)


def test_self_send_recv():
    def program(comm):
        yield from comm.send(0, tag="self", size=10, data="me")
        msg = yield from comm.recv(src=0, tag="self")
        return (msg.source, msg.data)

    r = run1(program)
    assert r.result(0) == (0, "me")


def test_self_irecv_before_send():
    def program(comm):
        req = yield from comm.irecv(src=0, tag="later")
        yield from comm.send(0, tag="later", size=4, data=99)
        msg = yield from comm.wait(req)
        return msg.data

    r = run1(program)
    assert r.result(0) == 99


def test_self_messages_match_by_tag():
    def program(comm):
        yield from comm.send(0, tag="a", size=1, data="A")
        yield from comm.send(0, tag="b", size=1, data="B")
        mb = yield from comm.recv(src=0, tag="b")
        ma = yield from comm.recv(src=0, tag="a")
        return (ma.data, mb.data)

    r = run1(program)
    assert r.result(0) == ("A", "B")


def test_compute_advances_clock():
    def program(comm):
        t0 = comm.sim.now
        yield from comm.compute(5e-3)
        return comm.sim.now - t0

    r = run1(program)
    assert r.result(0) == pytest.approx(5e-3)


def test_compute_flops_uses_node_rate():
    def program(comm):
        t0 = comm.sim.now
        yield from comm.compute_flops(3.0e9)  # Xeon preset: 3 GF/s
        return comm.sim.now - t0

    r = run1(program)
    assert r.result(0) == pytest.approx(1.0)


def test_compute_efficiency_applies_to_native_stacks():
    def program(comm):
        t0 = comm.sim.now
        yield from comm.compute(1.0)
        return comm.sim.now - t0

    r = run2(program, spec=config.openmpi_ib())
    assert r.result(0) == pytest.approx(1.0 / 0.92)


def test_message_fields():
    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, tag=17, size=321, data=b"q")
            return None
        msg = yield from comm.recv(src=0, tag=17)
        return (msg.source, msg.tag, msg.size, msg.data)

    r = run2(program)
    assert r.result(1) == (0, 17, 321, b"q")


def test_waitall_returns_messages_in_request_order():
    def program(comm):
        if comm.rank == 0:
            for i in range(3):
                yield from comm.send(1, tag=i, size=16, data=i * 100)
            return None
        reqs = []
        for i in (2, 0, 1):
            req = yield from comm.irecv(src=0, tag=i)
            reqs.append(req)
        msgs = yield from comm.waitall(reqs)
        return [m.data for m in msgs]

    r = run2(program)
    assert r.result(1) == [200, 0, 100]


def test_vector_datatype_charges_pack_cost():
    strided = vector(count=64, blocklen=64, stride=256)
    assert not strided.contiguous

    def make(dt):
        def program(comm):
            t0 = comm.sim.now
            if comm.rank == 0:
                yield from comm.send(1, tag=0, size=256 << 10, datatype=dt)
            else:
                yield from comm.recv(src=0, tag=0, datatype=dt)
            return comm.sim.now - t0
        return program

    t_contig = run2(make(CONTIGUOUS)).result(1)
    t_vector = run2(make(strided)).result(1)
    assert t_vector > t_contig


def test_dense_vector_is_contiguous():
    dt = vector(count=10, blocklen=8, stride=8)
    assert dt.contiguous
    assert dt.pack_cost(None, 1000) == 0.0


def test_vector_validation():
    with pytest.raises(ValueError):
        vector(count=0, blocklen=1, stride=1)
    with pytest.raises(ValueError):
        vector(count=1, blocklen=4, stride=2)


def test_sparser_vectors_cost_more():
    from repro.hardware.params import MemParams

    mem = MemParams()
    dense = vector(count=8, blocklen=64, stride=128)
    sparse = vector(count=8, blocklen=8, stride=128)
    assert sparse.pack_cost(mem, 4096) > dense.pack_cost(mem, 4096)


def test_program_must_be_generator():
    def not_a_program(comm):
        return 42

    with pytest.raises(TypeError, match="generator"):
        run1(not_a_program)
