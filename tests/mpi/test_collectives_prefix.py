"""scan / exscan / reduce_scatter collectives."""

import pytest

from repro import config
from repro.runtime import run_mpi


def run_coll(program, nprocs, spec=None):
    spec = spec or config.mpich2_nmad()
    return run_mpi(program, nprocs, spec,
                   cluster=config.ClusterSpec(n_nodes=nprocs))


@pytest.mark.parametrize("p", [1, 2, 4, 5, 8])
def test_scan_inclusive_prefix(p):
    def program(comm):
        out = yield from comm.scan(8, value=comm.rank + 1)
        return out

    r = run_coll(program, p)
    expected = [sum(range(1, i + 2)) for i in range(p)]
    assert r.rank_results == expected


@pytest.mark.parametrize("p", [1, 2, 4, 7])
def test_exscan_exclusive_prefix(p):
    def program(comm):
        out = yield from comm.exscan(8, value=comm.rank + 1)
        return out

    r = run_coll(program, p)
    expected = [None] + [sum(range(1, i + 1)) for i in range(1, p)]
    assert r.rank_results == expected


def test_scan_custom_op():
    def program(comm):
        out = yield from comm.scan(8, value=comm.rank + 1,
                                   op=lambda a, b: a * b)
        return out

    r = run_coll(program, 4)
    assert r.rank_results == [1, 2, 6, 24]


@pytest.mark.parametrize("p", [1, 2, 4])
def test_reduce_scatter_blocks(p):
    def program(comm):
        # rank r contributes [r*10 + d for each destination d]
        values = [comm.rank * 10 + d for d in range(comm.size)]
        out = yield from comm.reduce_scatter(16, values=values)
        return out

    r = run_coll(program, p)
    for dest, got in enumerate(r.rank_results):
        expected = sum(src * 10 + dest for src in range(p))
        assert got == expected


def test_scan_under_pioman():
    def program(comm):
        out = yield from comm.scan(8, value=1)
        return out

    r = run_coll(program, 4, spec=config.mpich2_nmad_pioman())
    assert r.rank_results == [1, 2, 3, 4]


def test_prefix_collectives_on_native_stack():
    def program(comm):
        a = yield from comm.scan(8, value=comm.rank)
        b = yield from comm.exscan(8, value=comm.rank)
        return (a, b)

    r = run_coll(program, 4, spec=config.openmpi_ib())
    assert [a for a, _ in r.rank_results] == [0, 1, 3, 6]
    assert [b for _, b in r.rank_results] == [None, 0, 1, 3]
