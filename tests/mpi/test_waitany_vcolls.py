"""waitany, wtime, and the v-variant collectives."""

import pytest

from repro import config
from repro.runtime import run_mpi


def run_p(program, nprocs, spec=None):
    return run_mpi(program, nprocs, spec or config.mpich2_nmad(),
                   cluster=config.ClusterSpec(n_nodes=nprocs))


def test_waitany_returns_first_completion():
    def program(comm):
        if comm.rank == 0:
            # "slow" posted first, "fast" second; fast must win
            slow = yield from comm.irecv(src=1, tag="slow")
            fast = yield from comm.irecv(src=1, tag="fast")
            index, msg = yield from comm.waitany([slow, fast])
            rest = yield from comm.wait(slow)
            return (index, msg.data, rest.data)
        yield from comm.compute(10e-6)
        yield from comm.send(0, tag="fast", size=32, data="first!")
        yield from comm.compute(200e-6)
        yield from comm.send(0, tag="slow", size=32, data="later")
        return None

    r = run_p(program, 2)
    assert r.result(0) == (1, "first!", "later")


def test_waitany_under_pioman():
    def program(comm):
        if comm.rank == 0:
            reqs = []
            for tag in ("a", "b"):
                req = yield from comm.irecv(src=1, tag=tag)
                reqs.append(req)
            idx, msg = yield from comm.waitany(reqs)
            yield from comm.waitall([reqs[1 - idx]])
            return msg.data
        yield from comm.send(0, tag="b", size=16, data="b-data")
        yield from comm.compute(100e-6)
        yield from comm.send(0, tag="a", size=16, data="a-data")
        return None

    r = run_p(program, 2, spec=config.mpich2_nmad_pioman())
    assert r.result(0) == "b-data"


def test_waitany_empty_rejected():
    def program(comm):
        yield from comm.waitany([])

    with pytest.raises(ValueError, match="at least one"):
        run_p(program, 2)


def test_wtime_tracks_simulated_clock():
    def program(comm):
        t0 = comm.wtime()
        yield from comm.compute(5e-3)
        return comm.wtime() - t0

    r = run_p(program, 1)
    assert r.result(0) == pytest.approx(5e-3)


def test_gatherv_collects_sizes_and_values():
    def program(comm):
        size = 100 * (comm.rank + 1)
        out = yield from comm.gatherv(size, value=f"r{comm.rank}", root=0)
        return out

    r = run_p(program, 3)
    assert r.result(0) == [(100, "r0"), (200, "r1"), (300, "r2")]
    assert r.result(1) is None


def test_scatterv_distributes_unequal_blocks():
    def program(comm):
        sizes = [64 * (d + 1) for d in range(comm.size)] if comm.rank == 0 else None
        values = [f"v{d}" for d in range(comm.size)] if comm.rank == 0 else None
        out = yield from comm.scatterv(sizes=sizes, values=values, root=0)
        return out

    r = run_p(program, 3)
    assert r.rank_results == ["v0", "v1", "v2"]


def test_alltoallv_transposes_unequal():
    def program(comm):
        p = comm.size
        sizes = [64 * (d + 1) for d in range(p)]
        values = [f"{comm.rank}->{d}" for d in range(p)]
        out = yield from comm.alltoallv(sizes=sizes, values=values)
        return out

    r = run_p(program, 4)
    for rank, got in enumerate(r.rank_results):
        assert got == [f"{s}->{rank}" for s in range(4)]


def test_vcolls_larger_blocks_cost_more():
    def make(block):
        def program(comm):
            t0 = comm.sim.now
            sizes = [block] * comm.size if comm.rank == 0 else None
            yield from comm.scatterv(sizes=sizes, root=0)
            return comm.sim.now - t0
        return program

    small = run_p(make(64), 4).elapsed
    big = run_p(make(1 << 20), 4).elapsed
    assert big > small * 5
