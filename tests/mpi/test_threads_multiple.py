"""Multithreaded ranks: the MPI_THREAD_MULTIPLE extension.

The paper (Section 3.3.2): with PIOMan's semaphore waits, "instead of
concurrently polling when several threads invoke MPI_Wait — which would
boil down to wasting CPU time — these threads would relinquish the CPU
in order to allow other threads to compute."
"""

import pytest

from repro import config
from repro.hardware.params import NodeParams
from repro.hardware.presets import XEON_MEM
from repro.runtime import run_mpi


def small_node_cluster(cores):
    node = NodeParams(cores=cores, flops_per_core=3.0e9, mem=XEON_MEM)
    return config.ClusterSpec(n_nodes=2, node=node,
                              rails=config.xeon_pair().rails)


def test_spawned_thread_runs_and_returns():
    def program(comm):
        def worker():
            yield from comm.compute(10e-6)
            return comm.rank * 100

        t = comm.spawn_thread(worker())
        result = yield from comm.join(t)
        return result

    r = run_mpi(program, 2, config.mpich2_nmad(), cluster=config.xeon_pair())
    assert r.rank_results == [0, 100]


def test_threads_communicate_concurrently():
    """Two threads of rank 0 each converse with rank 1 on its own tag."""
    def program(comm):
        if comm.rank == 0:
            def talker(tag):
                yield from comm.send(1, tag=tag, size=64, data=tag)
                msg = yield from comm.recv(src=1, tag=("re", tag))
                return msg.data

            t1 = comm.spawn_thread(talker("a"))
            t2 = comm.spawn_thread(talker("b"))
            r1 = yield from comm.join(t1)
            r2 = yield from comm.join(t2)
            return (r1, r2)
        # rank 1: serve both tags (probe for whichever arrived first)
        served = []
        for _ in range(2):
            hit_tag = None
            for tag in ("a", "b"):
                if tag in served:
                    continue
                probe = yield from comm.iprobe(src=0, tag=tag)
                if probe:
                    hit_tag = tag
                    break
            if hit_tag is None:
                hit_tag = "a" if "a" not in served else "b"
            yield from comm.recv(src=0, tag=hit_tag)
            served.append(hit_tag)
            yield from comm.send(0, tag=("re", hit_tag), size=64,
                                 data=f"echo-{hit_tag}")
        return served

    r = run_mpi(program, 2, config.mpich2_nmad(), cluster=config.xeon_pair())
    assert sorted(r.result(0)) == ["echo-a", "echo-b"]


def test_thread_exception_propagates_through_join():
    def program(comm):
        def bad():
            yield from comm.compute(1e-6)
            raise ValueError("thread bug")

        t = comm.spawn_thread(bad())
        try:
            yield from comm.join(t)
        except ValueError as err:
            return str(err)

    r = run_mpi(program, 2, config.mpich2_nmad(), cluster=config.xeon_pair())
    assert r.result(0) == "thread bug"


def waiting_vs_compute_program(comm):
    """Rank 0: one thread waits for a late message while another computes.

    On a 2-core node the main thread holds one core while joining.
    The waiter's behaviour decides whether the compute thread can run.
    """
    if comm.rank == 0:
        def waiter():
            msg = yield from comm.recv(src=1, tag="late")
            return msg.data

        def computer():
            yield from comm.compute(50e-6)
            return comm.sim.now

        tw = comm.spawn_thread(waiter())
        tc = comm.spawn_thread(computer())
        got = yield from comm.join(tw)
        done_at = yield from comm.join(tc)
        return (got, done_at)
    yield from comm.compute(300e-6)
    yield from comm.send(0, tag="late", size=64, data="finally")


def test_pioman_waiting_thread_releases_core():
    """With PIOMan the waiter blocks on a semaphore, freeing its core:
    the compute thread finishes long before the message arrives."""
    r = run_mpi(waiting_vs_compute_program, 2,
                config.mpich2_nmad_pioman(progress="pioman"),
                cluster=small_node_cluster(cores=2))
    got, compute_done = r.result(0)
    assert got == "finally"
    assert compute_done < 150e-6  # well before the 300 us message


def test_busy_wait_thread_starves_compute():
    """Without PIOMan the waiter busy-polls, holding its core; with the
    main thread joining on the other core, compute starves until the
    message arrives (the paper's 'wasting CPU time')."""
    r = run_mpi(waiting_vs_compute_program, 2, config.mpich2_nmad(),
                cluster=small_node_cluster(cores=2))
    got, compute_done = r.result(0)
    assert got == "finally"
    assert compute_done > 300e-6
