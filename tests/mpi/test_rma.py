"""MPI-2 RMA extension: fence-synchronized put/get/accumulate."""

import pytest

from repro import config
from repro.mpi.rma import Window
from repro.runtime import run_mpi


def run_rma(program, nprocs=2, spec=None, nodes=None):
    spec = spec or config.mpich2_nmad()
    cluster = config.ClusterSpec(n_nodes=nodes or nprocs)
    return run_mpi(program, nprocs, spec, cluster=cluster)


def test_put_visible_after_fence():
    def program(comm):
        win = Window(comm, nslots=2, init="empty")
        yield from win.fence()
        if comm.rank == 0:
            yield from win.put(1, slot=1, size=1024, data="written")
        yield from win.fence()
        return win.read(1)

    r = run_rma(program)
    assert r.result(1) == "written"
    assert r.result(0) == "empty"


def test_get_reads_remote_slot():
    def program(comm):
        win = Window(comm, nslots=1, init=f"data-of-{comm.rank}")
        yield from win.fence()
        handle = None
        if comm.rank == 0:
            handle = win.get(1, slot=0, size=512)
            assert not handle.complete  # not yet: fills at the fence
        yield from win.fence()
        return handle.value if handle else None

    r = run_rma(program)
    assert r.result(0) == "data-of-1"


def test_accumulate_combines_contributions():
    def program(comm):
        win = Window(comm, nslots=1, init=0)
        yield from win.fence()
        yield from win.accumulate(0, slot=0, size=8, data=comm.rank + 1,
                                  op=lambda a, b: a + b)
        yield from win.fence()
        return win.read(0)

    r = run_rma(program, nprocs=4)
    assert r.result(0) == 10  # 1+2+3+4


def test_local_put_and_get():
    def program(comm):
        win = Window(comm, nslots=1, init=None)
        yield from win.fence()
        yield from win.put(comm.rank, slot=0, size=64, data="self")
        handle = win.get(comm.rank, slot=0, size=64)
        assert handle.complete
        yield from win.fence()
        return (win.read(0), handle.value)

    r = run_rma(program, nprocs=2)
    assert r.result(0) == ("self", "self")


def test_multiple_epochs_are_independent():
    def program(comm):
        win = Window(comm, nslots=1, init=0)
        yield from win.fence()
        if comm.rank == 0:
            yield from win.put(1, slot=0, size=64, data="first")
        yield from win.fence()
        seen_first = win.read(0)
        if comm.rank == 0:
            yield from win.put(1, slot=0, size=64, data="second")
        yield from win.fence()
        return (seen_first, win.read(0))

    r = run_rma(program)
    assert r.result(1) == ("first", "second")


def test_puts_from_many_origins():
    def program(comm):
        win = Window(comm, nslots=comm.size, init=None)
        yield from win.fence()
        if comm.rank != 0:
            yield from win.put(0, slot=comm.rank, size=256,
                               data=f"from-{comm.rank}")
        yield from win.fence()
        return list(win._slots)

    r = run_rma(program, nprocs=4)
    assert r.result(0) == [None, "from-1", "from-2", "from-3"]


def test_large_put_uses_rendezvous_path():
    def program(comm):
        win = Window(comm, nslots=1)
        yield from win.fence()
        if comm.rank == 0:
            yield from win.put(1, slot=0, size=4 << 20, data="huge")
        yield from win.fence()
        return win.read(0)

    r = run_rma(program)
    assert r.result(1) == "huge"


def test_rma_on_shared_memory_ranks():
    def program(comm):
        win = Window(comm, nslots=1)
        yield from win.fence()
        if comm.rank == 0:
            yield from win.put(1, slot=0, size=128, data="local-put")
        yield from win.fence()
        return win.read(0)

    r = run_mpi(program, 2, config.mpich2_nmad(),
                cluster=config.ClusterSpec(n_nodes=1), ranks_per_node=2)
    assert r.result(1) == "local-put"


def test_rma_under_pioman():
    def program(comm):
        win = Window(comm, nslots=1, init=0)
        yield from win.fence()
        yield from win.accumulate(0, slot=0, size=8, data=1,
                                  op=lambda a, b: a + b)
        yield from win.fence()
        return win.read(0)

    r = run_rma(program, nprocs=3, spec=config.mpich2_nmad_pioman())
    assert r.result(0) == 3


def test_op_outside_epoch_rejected():
    def program(comm):
        win = Window(comm, nslots=1)
        yield from win.put(1 - comm.rank, slot=0, size=8, data="x")

    with pytest.raises(RuntimeError, match="outside a fence epoch"):
        run_rma(program)


def test_bad_target_and_slot_rejected():
    def program(comm):
        win = Window(comm, nslots=1)
        yield from win.fence()
        if comm.rank == 0:
            yield from win.put(9, slot=0, size=8)
        yield from win.fence()

    with pytest.raises(ValueError, match="target rank"):
        run_rma(program)

    def program2(comm):
        win = Window(comm, nslots=1)
        yield from win.fence()
        if comm.rank == 0:
            yield from win.put(1, slot=5, size=8)
        yield from win.fence()

    with pytest.raises(ValueError, match="slot"):
        run_rma(program2)


def test_window_needs_slots():
    def program(comm):
        Window(comm, nslots=0)
        yield from comm.barrier()

    with pytest.raises(ValueError, match="at least one slot"):
        run_rma(program)
