"""MPI_Probe / MPI_Iprobe behaviour across stacks."""

import pytest

from repro import config
from repro.mpi import ANY_SOURCE
from repro.runtime import run_mpi


def run2(program, spec=None, intra=False):
    spec = spec or config.mpich2_nmad()
    if intra:
        return run_mpi(program, 2, spec,
                       cluster=config.ClusterSpec(n_nodes=1), ranks_per_node=2)
    return run_mpi(program, 2, spec, cluster=config.xeon_pair())


SPECS = {
    "direct": config.mpich2_nmad,
    "netmod": config.mpich2_nmad_netmod,
    "pioman": config.mpich2_nmad_pioman,
    "native": config.mvapich2,
}


@pytest.mark.parametrize("flavor", list(SPECS))
def test_iprobe_none_before_arrival(flavor):
    def program(comm):
        if comm.rank == 1:
            hit = yield from comm.iprobe(src=0, tag="nothing-yet")
            yield from comm.send(0, tag="go", size=4)
            return hit
        yield from comm.recv(src=1, tag="go")
        return None

    r = run2(program, spec=SPECS[flavor]())
    assert r.result(1) is None


@pytest.mark.parametrize("flavor", ["direct", "netmod", "native"])
def test_iprobe_sees_arrived_message_without_consuming(flavor):
    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, tag="look", size=777, data="intact")
            return None
        yield from comm.compute(100e-6)       # let it arrive
        hit1 = yield from comm.iprobe(src=0, tag="look")
        hit2 = yield from comm.iprobe(src=0, tag="look")
        msg = yield from comm.recv(src=0, tag="look")
        return (hit1, hit2, msg.data)

    r = run2(program, spec=SPECS[flavor]())
    hit1, hit2, data = r.result(1)
    assert hit1 == (0, 777)
    assert hit2 == (0, 777)  # probing does not consume
    assert data == "intact"


@pytest.mark.parametrize("flavor", list(SPECS))
def test_blocking_probe_waits_for_message(flavor):
    def program(comm):
        if comm.rank == 0:
            yield from comm.compute(50e-6)
            yield from comm.send(1, tag="eventually", size=123)
            return None
        hit = yield from comm.probe(src=0, tag="eventually")
        assert comm.sim.now >= 50e-6
        msg = yield from comm.recv(src=0, tag="eventually")
        return (hit, msg.size)

    r = run2(program, spec=SPECS[flavor]())
    assert r.result(1) == ((0, 123), 123)


def test_probe_any_source():
    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, tag="who", size=55)
            return None
        hit = yield from comm.probe(src=ANY_SOURCE, tag="who")
        msg = yield from comm.recv(src=hit[0], tag="who")
        return (hit, msg.source)

    r = run2(program)
    assert r.result(1) == ((0, 55), 0)


def test_probe_then_sized_recv_pattern():
    """The classic probe-to-discover-size idiom."""
    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, tag="blob", size=4096, data=list(range(10)))
            return None
        src, size = yield from comm.probe(src=ANY_SOURCE, tag="blob")
        msg = yield from comm.recv(src=src, tag="blob")
        return (size, msg.size, msg.data)

    r = run2(program)
    assert r.result(1) == (4096, 4096, list(range(10)))


def test_probe_intra_node():
    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, tag="local", size=31)
            return None
        hit = yield from comm.probe(src=0, tag="local")
        yield from comm.recv(src=0, tag="local")
        return hit

    r = run2(program, intra=True)
    assert r.result(1) == (0, 31)


def test_probe_rendezvous_message():
    """Probing a large (RTS-parked) message reports its full size."""
    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, tag="big", size=1 << 20)
            return None
        hit = yield from comm.probe(src=0, tag="big")
        msg = yield from comm.recv(src=0, tag="big")
        return (hit, msg.size)

    r = run2(program)
    assert r.result(1) == ((0, 1 << 20), 1 << 20)
