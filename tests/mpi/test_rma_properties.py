"""Property-based tests on the RMA extension: random op schedules vs oracle."""

from hypothesis import given, settings, strategies as st

from repro import config
from repro.mpi.rma import Window
from repro.runtime import run_mpi


# each op: (origin, kind, target, slot, value)
op_strategy = st.tuples(
    st.integers(0, 2),                       # origin rank
    st.sampled_from(["put", "acc"]),
    st.integers(0, 2),                       # target rank
    st.integers(0, 1),                       # slot
    st.integers(-50, 50),                    # value
)


@given(st.lists(op_strategy, min_size=0, max_size=10))
@settings(max_examples=30, deadline=None)
def test_random_rma_schedule_matches_oracle(ops):
    """One epoch of random puts/accumulates equals a sequential oracle.

    Puts racing on the same (target, slot) are unordered in MPI; to keep
    the oracle exact we drop conflicting puts (accumulates commute, so
    any number of them may share a slot with at most zero puts).
    """
    filtered = []
    put_slots = set()
    acc_slots = set()
    for op in ops:
        _origin, kind, target, slot, _v = op
        key = (target, slot)
        if kind == "put":
            if key in put_slots or key in acc_slots:
                continue
            put_slots.add(key)
        else:
            if key in put_slots:
                continue
            acc_slots.add(key)
        filtered.append(op)

    # oracle: apply ops to a model of the windows
    model = {(rank, slot): 0 for rank in range(3) for slot in range(2)}
    for _origin, kind, target, slot, value in filtered:
        if kind == "put":
            model[(target, slot)] = value
        else:
            model[(target, slot)] += value

    def program(comm):
        win = Window(comm, nslots=2, init=0)
        yield from win.fence()
        for origin, kind, target, slot, value in filtered:
            if origin != comm.rank:
                continue
            if kind == "put":
                yield from win.put(target, slot=slot, size=64, data=value)
            else:
                yield from win.accumulate(target, slot=slot, size=64,
                                          data=value, op=lambda a, b: a + b)
        yield from win.fence()
        return list(win._slots)

    r = run_mpi(program, 3, config.mpich2_nmad(),
                cluster=config.ClusterSpec(n_nodes=3))
    for rank in range(3):
        for slot in range(2):
            assert r.result(rank)[slot] == model[(rank, slot)], (
                f"rank {rank} slot {slot}: {filtered}")
